"""Legacy-compatible install shim.

All package metadata lives in ``pyproject.toml``; this file only lets
minimal environments (no ``wheel``, no network for build isolation)
fall back to ``pip install -e . --no-use-pep517 --no-build-isolation``.
"""

from setuptools import setup

setup()
