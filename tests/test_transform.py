"""Tests for SCC decomposition and subgraph extraction."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    cycle_graph,
    from_edges,
    is_strongly_connected,
    largest_scc,
    strongly_connected_components,
    subgraph_vertices,
    twitter_like,
)


@pytest.fixture
def two_components():
    """Two 3-cycles joined by a one-way bridge 2 -> 3."""
    return from_edges(
        [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)]
    )


class TestScc:
    def test_labels_partition_two_cycles(self, two_components):
        labels = strongly_connected_components(two_components)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_single_component(self):
        labels = strongly_connected_components(cycle_graph(6))
        assert np.unique(labels).size == 1

    def test_singletons_in_dag(self):
        g = from_edges([(0, 1), (1, 2)], repair_dangling="none")
        labels = strongly_connected_components(g)
        assert np.unique(labels).size == 3

    def test_empty_graph(self):
        from repro.graph import GraphBuilder

        empty = GraphBuilder(num_vertices=0, repair_dangling="none").build()
        assert strongly_connected_components(empty).size == 0


class TestSubgraph:
    def test_induced_edges_only(self, two_components):
        sub = subgraph_vertices(
            two_components, np.array([0, 1, 2]), repair_dangling="none"
        )
        assert sub.num_vertices == 3
        assert sorted(sub.edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_mapping_returned(self, two_components):
        sub, mapping = subgraph_vertices(
            two_components, np.array([3, 5]), return_mapping=True,
            repair_dangling="none",
        )
        assert list(mapping) == [3, 5]
        assert sub.num_vertices == 2

    def test_duplicates_collapsed(self, two_components):
        sub = subgraph_vertices(two_components, np.array([0, 0, 1]))
        assert sub.num_vertices == 2

    def test_validation(self, two_components):
        with pytest.raises(GraphError):
            subgraph_vertices(two_components, np.array([], dtype=np.int64))
        with pytest.raises(GraphError):
            subgraph_vertices(two_components, np.array([99]))


class TestLargestScc:
    def test_extracts_bigger_cycle(self):
        g = from_edges(
            # 4-cycle and a 2-cycle, connected one way.
            [(0, 1), (1, 2), (2, 3), (3, 0), (4, 5), (5, 4), (0, 4)]
        )
        scc, mapping = largest_scc(g, return_mapping=True)
        assert scc.num_vertices == 4
        assert sorted(mapping.tolist()) == [0, 1, 2, 3]
        assert is_strongly_connected(scc)

    def test_result_strongly_connected_on_powerlaw(self):
        g = twitter_like(n=1000, seed=4)
        scc = largest_scc(g)
        assert is_strongly_connected(scc)
        assert scc.num_vertices > 100

    def test_whole_graph_when_connected(self):
        g = cycle_graph(9)
        assert largest_scc(g).num_vertices == 9
