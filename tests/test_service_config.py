"""ServiceConfig: the typed construction path and its kwargs shim.

``RankingService(graph, **cfg.to_kwargs())`` and
``RankingService.from_config(graph, cfg)`` must build *identical*
services — same backend layout, same cache, same normalized
``service_config`` — because the kwargs path is a one-release
deprecation window over the dataclass, not a second construction
semantics.
"""

import dataclasses

import pytest

from repro.core import FrogWildConfig
from repro.errors import ConfigError
from repro.graph import twitter_like
from repro.serving import (
    LocalBackend,
    RankingQuery,
    RankingService,
    ServiceConfig,
    ShardedBackend,
)

GRAPH = twitter_like(n=250, seed=4)
CONFIG = FrogWildConfig(num_frogs=600, iterations=3, seed=1)


class TestEquivalence:
    def test_kwargs_and_from_config_build_identical_services(self):
        cfg = ServiceConfig(
            config=CONFIG,
            num_machines=4,
            num_shards=2,
            seed=9,
            max_batch_size=8,
            cache_capacity=32,
        )
        via_kwargs = RankingService(GRAPH, **cfg.to_kwargs())
        via_config = RankingService.from_config(GRAPH, cfg)
        try:
            assert via_kwargs.service_config == via_config.service_config
            assert type(via_kwargs.backend) is type(via_config.backend)
            assert via_kwargs.num_machines == via_config.num_machines
            assert via_kwargs.coalescer.max_batch_size == 8
            assert via_config.coalescer.max_batch_size == 8
            query = [RankingQuery(seeds=(1, 2), k=5)]
            a = via_kwargs.query_batch(query)[0]
            b = via_config.query_batch(query)[0]
            assert list(a.vertices) == list(b.vertices)
            assert list(a.scores) == list(b.scores)
        finally:
            via_kwargs.close()
            via_config.close()

    def test_normalized_config_is_exposed(self):
        service = RankingService(
            GRAPH, CONFIG, num_machines=4, seed=7, kernel="lane-loop"
        )
        try:
            assert service.service_config.kernel == "lane-loop"
            assert service.service_config.num_machines == 4
            assert service.service_config.seed == 7
            assert service.service_config.config is CONFIG
        finally:
            service.close()

    def test_defaults_match_init_defaults(self):
        cfg = ServiceConfig()
        service = RankingService(GRAPH)
        try:
            for field in dataclasses.fields(ServiceConfig):
                if field.name == "config":
                    continue  # __init__ defaults it per-seed
                assert getattr(service.service_config, field.name) == (
                    getattr(cfg, field.name)
                ), field.name
        finally:
            service.close()


class TestConfigApi:
    def test_evolve_returns_updated_copy(self):
        cfg = ServiceConfig(num_machines=4)
        shardy = cfg.evolve(num_shards=4)
        assert shardy.num_shards == 4
        assert shardy.num_machines == 4
        assert cfg.num_shards == 1  # original untouched

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            ServiceConfig().num_machines = 3

    def test_backend_selection_flows_through(self):
        local = RankingService.from_config(
            GRAPH, ServiceConfig(config=CONFIG, num_machines=4)
        )
        sharded = RankingService.from_config(
            GRAPH,
            ServiceConfig(config=CONFIG, num_machines=4, num_shards=2),
        )
        try:
            assert isinstance(local.backend, LocalBackend)
            assert isinstance(sharded.backend, ShardedBackend)
        finally:
            local.close()
            sharded.close()

    def test_from_config_rejects_frogwild_config(self):
        with pytest.raises(ConfigError):
            RankingService.from_config(GRAPH, CONFIG)
