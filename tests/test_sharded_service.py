"""Sharded execution backend: accuracy, exact cost partition, merging.

The sharded backend splits each query's frog budget across shard
sub-clusters and merges the per-shard counters by summation — exact
because frogs are independent walkers.  These tests pin down:

* golden-tolerance agreement of the 4-shard top-k with both the
  unsharded :class:`LocalBackend` and exact (personalized) PageRank,
  at the same thresholds as ``test_golden_topk``;
* exact partitioning of per-query cost attribution across shards;
* the merge primitives (counter, ledger, report) in isolation.
"""

import numpy as np
import pytest

from repro.core import (
    FrogWildConfig,
    PageRankEstimate,
    merge_shard_results,
    seed_distribution,
)
from repro.engine import CostLedger
from repro.errors import ConfigError
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank
from repro.serving import (
    LocalBackend,
    RankingQuery,
    RankingService,
    ShardedBackend,
)

GRAPH = twitter_like(n=1000, seed=21)  # the golden regression graph
CONFIG = FrogWildConfig(num_frogs=30_000, iterations=8, seed=1, ps=0.8)
SEED_SETS = [np.array([7]), np.array([11, 42]), np.array([100, 3])]
QUERIES = [
    RankingQuery(seeds=tuple(seeds.tolist()), k=10) for seeds in SEED_SETS
]


def _overlap(estimated: np.ndarray, ranking: np.ndarray, k: int) -> float:
    exact_top = set(np.argsort(-ranking)[:k].tolist())
    return len(set(estimated.tolist()) & exact_top) / k


@pytest.fixture(scope="module")
def outcomes():
    local = LocalBackend(GRAPH, num_machines=8, seed=0)
    sharded = ShardedBackend(GRAPH, num_shards=4, num_machines=8, seed=0)
    return (
        local.run_batch(CONFIG, QUERIES),
        sharded.run_batch(CONFIG, QUERIES),
    )


class TestShardedGolden:
    def test_topk_within_golden_tolerance_of_local(self, outcomes):
        """4-shard top-k agrees with the unsharded backend at the
        thresholds of ``test_golden_topk``: both are FrogWild samples of
        the same PPR law, so they overlap each other at least as well
        as each overlaps the exact ranking."""
        local, sharded = outcomes
        for seeds, local_lane, sharded_lane in zip(
            SEED_SETS, local.lanes, sharded.lanes
        ):
            personalization = seed_distribution(GRAPH.num_vertices, seeds)
            truth = exact_pagerank(GRAPH, personalization=personalization)
            # Same tolerances as TestBatchedGolden's personalized check.
            assert _overlap(sharded_lane.estimate.top_k(10), truth, 10) >= 0.6
            mass = normalized_mass_captured(
                sharded_lane.estimate.vector(), truth, 20
            )
            assert mass > 0.8
            # Sharded and local agree with each other.
            assert _overlap(
                sharded_lane.estimate.top_k(10),
                local_lane.estimate.vector(),
                10,
            ) >= 0.6

    def test_merged_estimate_spends_the_full_budget(self, outcomes):
        _, sharded = outcomes
        for lane in sharded.lanes:
            assert lane.estimate.num_frogs == CONFIG.num_frogs
            assert lane.report.extra["shards"] == 4.0

    def test_sharded_execution_is_deterministic(self):
        backend = ShardedBackend(GRAPH, num_shards=4, num_machines=8, seed=0)
        first = backend.run_batch(CONFIG, QUERIES)
        second = backend.run_batch(CONFIG, QUERIES)
        for a, b in zip(first.lanes, second.lanes):
            np.testing.assert_array_equal(a.estimate.counts, b.estimate.counts)
            assert a.report.network_bytes == b.report.network_bytes


class TestCostPartition:
    def test_attribution_sums_exactly_across_shards(self, outcomes):
        """Billed bytes partition exactly: summed per-query attribution
        equals the summed per-shard attribution, and the shared bytes
        equal the sum of shard wire traffic."""
        _, sharded = outcomes
        assert len(sharded.shards) == 4
        lane_attributed = sum(
            lane.report.network_bytes for lane in sharded.lanes
        )
        shard_attributed = sum(
            cost.attributed_network_bytes for cost in sharded.shards
        )
        assert lane_attributed == shard_attributed
        assert sharded.shared_network_bytes == sum(
            cost.shared_network_bytes for cost in sharded.shards
        )
        lane_cpu = sum(lane.report.cpu_seconds for lane in sharded.lanes)
        shard_cpu = sum(cost.cpu_seconds for cost in sharded.shards)
        assert lane_cpu == pytest.approx(shard_cpu)

    def test_merge_goes_through_the_ledger(self):
        """Batched-runner lanes carry their CostLedger, and
        merge_shard_results merges through it: the merged report's
        bytes equal the merged ledger's standalone pricing, which in
        turn equals the sum of the per-shard priced bytes (pricing is
        linear in records and messages)."""
        from repro.core import run_frogwild_batch, BatchQuery

        config = FrogWildConfig(num_frogs=1_000, iterations=3, seed=0)
        shard_lanes = []
        for shard in range(2):
            result = run_frogwild_batch(
                GRAPH,
                [BatchQuery(num_frogs=500, seed=shard)],
                config,
                num_machines=4,
            )
            lane = result.results[0]
            assert lane.ledger is not None
            shard_lanes.append(lane)
        merged = merge_shard_results(shard_lanes)
        assert merged.ledger is not None
        assert merged.report.network_bytes == (
            merged.ledger.standalone_network_bytes()
        )
        assert merged.report.network_bytes == sum(
            lane.report.network_bytes for lane in shard_lanes
        )
        assert merged.ledger.supersteps == max(
            lane.ledger.supersteps for lane in shard_lanes
        )
        # Merging copied, it did not mutate the first shard's ledger.
        assert shard_lanes[0].ledger.network_records <= (
            merged.ledger.network_records
        )
        assert shard_lanes[0].report.network_bytes == (
            shard_lanes[0].ledger.standalone_network_bytes()
        )

    def test_batch_wall_time_is_slowest_shard(self, outcomes):
        _, sharded = outcomes
        assert sharded.simulated_time_s == max(
            cost.simulated_time_s for cost in sharded.shards
        )
        for lane in sharded.lanes:
            assert lane.report.total_time_s <= sharded.simulated_time_s

    def test_each_shard_amortizes_internally(self, outcomes):
        _, sharded = outcomes
        for cost in sharded.shards:
            assert cost.shared_network_bytes <= cost.attributed_network_bytes


class TestBudgetSplit:
    def test_uneven_budget_goes_to_low_shards(self):
        backend = ShardedBackend(GRAPH, num_shards=4, num_machines=8, seed=0)
        assert backend._shares(10) == [3, 3, 2, 2]
        assert backend._shares(4) == [1, 1, 1, 1]

    def test_budget_smaller_than_shards_skips_idle_shards(self):
        backend = ShardedBackend(GRAPH, num_shards=4, num_machines=8, seed=0)
        config = FrogWildConfig(num_frogs=2, iterations=2, seed=0)
        outcome = backend.run_batch(config, QUERIES[:1])
        assert len(outcome.shards) == 2  # shards 2 and 3 sat this out
        assert outcome.lanes[0].estimate.num_frogs == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            ShardedBackend(GRAPH, num_shards=0)
        with pytest.raises(ConfigError):
            ShardedBackend(GRAPH, num_shards=2, machines_per_shard=0)
        # A fleet smaller than the shard count cannot be split honestly.
        with pytest.raises(ConfigError):
            ShardedBackend(GRAPH, num_shards=4, num_machines=2)
        # Explicit machines_per_shard sizes shards independently.
        backend = ShardedBackend(
            GRAPH, num_shards=4, machines_per_shard=1, num_machines=2
        )
        assert backend.machines_per_shard == 1


class TestShardedService:
    def test_service_with_shards_reports_breakdown(self):
        service = RankingService(
            GRAPH,
            FrogWildConfig(num_frogs=2_000, iterations=4, seed=0),
            num_machines=8,
            num_shards=4,
            max_batch_size=4,
        )
        assert service.num_shards == 4
        assert service.replication is None  # no single-cluster ingress
        answers = service.query_batch(
            [RankingQuery(seeds=(v,)) for v in range(3)]
        )
        assert len(answers) == 3
        breakdown = service.stats.shard_breakdown()
        assert sorted(breakdown) == [0, 1, 2, 3]
        assert sum(
            costs["attributed_network_bytes"] for costs in breakdown.values()
        ) == service.stats.attributed_network_bytes
        row = service.stats.as_dict()
        assert "shard0_shared_network_bytes" in row
        # Cached replay is unaffected by sharding.
        assert service.query([0]).cached


class TestMergePrimitives:
    def test_estimate_merge_sums_counts_and_frogs(self):
        a = PageRankEstimate(np.array([1, 2, 3]), 6)
        b = PageRankEstimate(np.array([4, 0, 1]), 5)
        merged = PageRankEstimate.merge([a, b])
        np.testing.assert_array_equal(merged.counts, [5, 2, 4])
        assert merged.num_frogs == 11

    def test_estimate_merge_validates(self):
        with pytest.raises(ConfigError):
            PageRankEstimate.merge([])
        with pytest.raises(ConfigError):
            PageRankEstimate.merge([
                PageRankEstimate(np.array([1]), 1),
                PageRankEstimate(np.array([1, 2]), 1),
            ])

    def test_ledger_merge_adds_costs_takes_max_steps(self):
        a = CostLedger(record_bytes=8, message_header_bytes=32,
                       supersteps=5, cpu_ops=100, network_records=10,
                       network_messages=3)
        b = CostLedger(record_bytes=8, message_header_bytes=32,
                       supersteps=7, cpu_ops=50, network_records=4,
                       network_messages=2)
        a.merge(b)
        assert a.supersteps == 7
        assert a.cpu_ops == 150
        assert a.network_records == 14 and a.network_messages == 5
        assert a.standalone_network_bytes() == 32 * 5 + 8 * 14

    def test_ledger_merge_rejects_mismatched_pricing(self):
        from repro.errors import EngineError

        a = CostLedger(record_bytes=8, message_header_bytes=32)
        b = CostLedger(record_bytes=16, message_header_bytes=32)
        with pytest.raises(EngineError):
            a.merge(b)

    def test_merge_shard_results_single_lane_passthrough(self):
        backend = LocalBackend(GRAPH, num_machines=4, seed=0)
        outcome = backend.run_batch(
            FrogWildConfig(num_frogs=500, iterations=2, seed=0), QUERIES[:1]
        )
        lane = outcome.lanes[0]
        from repro.core.frogwild import FrogWildResult

        result = FrogWildResult(lane.estimate, lane.report, None)
        assert merge_shard_results([result]) is result
        with pytest.raises(ConfigError):
            merge_shard_results([])
