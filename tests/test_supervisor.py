"""Fail-soft process pool: supervision, partial answers, chaos parity.

The paper's graceful-degradation claim (losing a machine costs ~1/M of
the frogs, nothing else) is only real if the *implementation* survives
losing a machine.  These tests SIGKILL actual worker processes and pin
down the three ``on_shard_failure`` policies:

* ``"partial"`` — a mid-batch kill still answers, from an exact merge
  of the surviving shards, with the estimator's population rescaled
  and a wider (finite) Theorem-1 bound; the *next* batch is bitwise
  identical to a never-crashed pool;
* ``"fail"`` — the same kill raises a typed
  :class:`~repro.errors.ShardFailure` *after* the pool is restored —
  no wedged backend, no leaked ``/dev/shm`` segments;
* ``"retry"`` — the lost slice re-runs on the respawned worker and
  the batch comes back bitwise identical (same share, same per-shard
  seed), with nothing marked degraded.

Plus the supervisor lifecycle (heartbeat revival, respawn re-attach to
the live epoch, orphan sweeps) and the simulated-vs-real bridge: a
:class:`~repro.traffic.ChaosSchedule` round-trips through
:class:`~repro.faults.FaultSchedule`, and the accuracy dent a real
partial merge suffers matches what the simulated fault layer predicts
at the same lost-frog fraction.
"""

import math
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.cluster import SharedArena
from repro.core import FrogWildConfig
from repro.errors import ConfigError, ShardFailure, WorkerCrashError
from repro.faults import (
    FAULT_KINDS,
    FaultSchedule,
    MachineCrash,
    MessageDrop,
    run_frogwild_with_faults,
)
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank
from repro.serving import ProcessPoolBackend, RankingQuery, RankingService
from repro.theory.bounds import config_error_bound
from repro.traffic import ChaosEvent, ChaosInjector, ChaosSchedule

GRAPH = twitter_like(n=300, seed=3)
CONFIG = FrogWildConfig(num_frogs=1_500, iterations=3, seed=5)
QUERIES = [RankingQuery(seeds=(1, 2), k=10)]


def _pool(**overrides):
    kwargs = dict(
        num_shards=3,
        num_machines=6,
        seed=0,
        timeout_s=20.0,
        on_shard_failure="partial",
    )
    kwargs.update(overrides)
    return ProcessPoolBackend(GRAPH, **kwargs)


def _kill_mid_batch(backend, shard, after_s=0.3, park_s=30.0):
    """Arm a deterministic mid-batch SIGKILL of one shard's worker.

    The ``delay`` chaos op makes the worker compute its next batch and
    then *withhold* the reply; the timer's SIGKILL therefore lands
    while the batch is in flight, every time.
    """
    backend.inject_chaos(shard, "delay", park_s)
    pid = backend.worker_pid(shard)
    timer = threading.Timer(after_s, os.kill, (pid, signal.SIGKILL))
    timer.daemon = True
    timer.start()
    return timer


# ----------------------------------------------------------------------
# Policy: partial
# ----------------------------------------------------------------------
class TestPartialPolicy:
    def test_mid_batch_kill_answers_with_rescaled_population(self):
        with _pool() as backend:
            healthy = backend.run_batch(CONFIG, QUERIES)
            _kill_mid_batch(backend, shard=1)
            partial = backend.run_batch(CONFIG, QUERIES)
            assert partial.degraded_shards == (1,)
            assert partial.lost_frogs > 0
            assert (
                partial.lanes[0].estimate.num_frogs
                == healthy.lanes[0].estimate.num_frogs - partial.lost_frogs
            )
            # The merge is exact over survivors: no shard-1 cost row.
            assert [c.shard for c in partial.shards] == [0, 2]
            # Respawned pool: the next batch is bitwise healthy.
            again = backend.run_batch(CONFIG, QUERIES)
            assert again.degraded_shards == ()
            assert np.array_equal(
                again.lanes[0].estimate.counts,
                healthy.lanes[0].estimate.counts,
            )
            assert backend.supervisor.stats.respawns >= 1

    def test_partial_answer_carries_widened_bound_and_skips_cache(self):
        pool = _pool()
        service = RankingService(
            GRAPH,
            CONFIG,
            num_machines=6,
            cache_capacity=8,
            seed=0,
            backend=pool,
        )
        try:
            _kill_mid_batch(pool, shard=1)
            answer = service.query_batch(QUERIES)[0]
            assert answer.partial
            assert answer.degraded_shards == (1,)
            assert answer.error_bound is not None
            assert math.isfinite(answer.error_bound)
            healthy_bound = config_error_bound(
                CONFIG, QUERIES[0].k, GRAPH.num_vertices
            )
            assert answer.error_bound > healthy_bound
            assert service.stats.queries_partial == 1
            # Not cached: the re-ask runs fresh on the healed pool.
            again = service.query_batch(QUERIES)[0]
            assert not again.cached
            assert not again.partial
            assert again.error_bound is None
        finally:
            service.close()

    def test_all_shards_lost_raises_even_in_partial_mode(self):
        with _pool(num_shards=2, num_machines=6) as backend:
            backend.run_batch(CONFIG, QUERIES)
            for shard in range(2):
                backend.inject_chaos(shard, "delay", 30.0)
            pids = [backend.worker_pid(s) for s in range(2)]
            timer = threading.Timer(
                0.3, lambda: [os.kill(p, signal.SIGKILL) for p in pids]
            )
            timer.daemon = True
            timer.start()
            with pytest.raises(ShardFailure) as info:
                backend.run_batch(CONFIG, QUERIES)
            assert info.value.lost_frogs == CONFIG.num_frogs
            # Still not wedged.
            assert backend.run_batch(CONFIG, QUERIES).degraded_shards == ()


# ----------------------------------------------------------------------
# Policy: fail
# ----------------------------------------------------------------------
class TestFailPolicy:
    def test_mid_batch_kill_raises_typed_and_restores_pool(self):
        backend = _pool(on_shard_failure="fail")
        try:
            healthy = backend.run_batch(CONFIG, QUERIES)
            _kill_mid_batch(backend, shard=2)
            with pytest.raises(ShardFailure) as info:
                backend.run_batch(CONFIG, QUERIES)
            assert info.value.shard == 2
            assert info.value.cause in ("died", "timeout")
            assert info.value.lost_frogs > 0
            assert isinstance(info.value.__cause__, WorkerCrashError)
            # The raise happened *after* restoration: next batch is
            # bitwise healthy, no manual intervention.
            again = backend.run_batch(CONFIG, QUERIES)
            assert np.array_equal(
                again.lanes[0].estimate.counts,
                healthy.lanes[0].estimate.counts,
            )
        finally:
            prefix = backend.arena_prefix
            backend.close()
        assert SharedArena.list_segments(prefix) == []

    def test_kill_between_batches_is_a_free_resend(self):
        # A worker dead at dispatch lost no work: every policy respawns
        # and resends without marking anything degraded.
        for policy in ("fail", "partial", "retry"):
            with _pool(on_shard_failure=policy) as backend:
                healthy = backend.run_batch(CONFIG, QUERIES)
                os.kill(backend.worker_pid(1), signal.SIGKILL)
                time.sleep(0.2)
                outcome = backend.run_batch(CONFIG, QUERIES)
                assert outcome.degraded_shards == ()
                assert np.array_equal(
                    outcome.lanes[0].estimate.counts,
                    healthy.lanes[0].estimate.counts,
                ), policy


# ----------------------------------------------------------------------
# Policy: retry
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_mid_batch_kill_rerun_is_bitwise_healthy(self):
        with _pool(on_shard_failure="retry") as backend:
            healthy = backend.run_batch(CONFIG, QUERIES)
            _kill_mid_batch(backend, shard=0)
            outcome = backend.run_batch(CONFIG, QUERIES)
            assert outcome.degraded_shards == ()
            assert outcome.lost_frogs == 0
            assert np.array_equal(
                outcome.lanes[0].estimate.counts,
                healthy.lanes[0].estimate.counts,
            )

    def test_exhausted_budget_falls_back_to_partial(self):
        with _pool(
            on_shard_failure="retry", retry_budget=0, retry_backoff_s=0.0
        ) as backend:
            backend.run_batch(CONFIG, QUERIES)
            _kill_mid_batch(backend, shard=1)
            outcome = backend.run_batch(CONFIG, QUERIES)
            assert outcome.degraded_shards == (1,)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ConfigError):
            _pool(on_shard_failure="panic")


# ----------------------------------------------------------------------
# Supervisor lifecycle
# ----------------------------------------------------------------------
class TestSupervisor:
    def test_check_revives_dead_worker_with_new_pid(self):
        with _pool() as backend:
            old_pid = backend.worker_pid(1)
            os.kill(old_pid, signal.SIGKILL)
            time.sleep(0.2)
            assert backend.supervisor.check() == 1
            assert backend.worker_pid(1) != old_pid
            assert backend.supervisor.stats.respawns == 1
            assert backend.supervisor.stats.crash_log[0][1] == 1

    def test_check_on_healthy_pool_is_a_no_op(self):
        with _pool() as backend:
            assert backend.supervisor.check() == 0
            assert backend.supervisor.stats.heartbeats == backend.num_shards
            assert backend.supervisor.stats.respawns == 0

    def test_heartbeat_thread_heals_between_batches(self):
        with _pool(heartbeat_s=0.1) as backend:
            healthy = backend.run_batch(CONFIG, QUERIES)
            os.kill(backend.worker_pid(2), signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while (
                backend.supervisor.stats.respawns == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            assert backend.supervisor.stats.respawns >= 1
            outcome = backend.run_batch(CONFIG, QUERIES)
            assert outcome.degraded_shards == ()
            assert np.array_equal(
                outcome.lanes[0].estimate.counts,
                healthy.lanes[0].estimate.counts,
            )

    def test_respawn_reattaches_to_current_epoch(self):
        with _pool() as backend:
            backend.run_batch(CONFIG, QUERIES)
            # Advance the epoch, then crash: the revived worker must
            # serve the *new* epoch's arenas.
            backend.refresh(GRAPH, backend.replications)
            refreshed = backend.run_batch(CONFIG, QUERIES)
            os.kill(backend.worker_pid(0), signal.SIGKILL)
            time.sleep(0.2)
            assert backend.supervisor.check() == 1
            again = backend.run_batch(CONFIG, QUERIES)
            assert np.array_equal(
                again.lanes[0].estimate.counts,
                refreshed.lanes[0].estimate.counts,
            )

    def test_timeout_cause_for_hung_worker(self):
        with _pool(timeout_s=1.0, on_shard_failure="fail") as backend:
            backend.run_batch(CONFIG, QUERIES)
            backend.inject_chaos(1, "hang", 6.0)
            with pytest.raises(ShardFailure) as info:
                backend.run_batch(CONFIG, QUERIES)
            assert info.value.cause == "timeout"

    def test_no_leaked_segments_after_kill_and_close(self):
        backend = _pool()
        _kill_mid_batch(backend, shard=1)
        backend.run_batch(CONFIG, QUERIES)
        prefix = backend.arena_prefix
        assert SharedArena.list_segments(prefix) != []
        backend.close()
        assert SharedArena.list_segments(prefix) == []

    def test_sweep_orphans_respects_live_set(self):
        arena = SharedArena.create(
            {"x": np.arange(4)}, epoch=0, prefix="repro-arena-testsweep"
        )
        other = SharedArena.create(
            {"y": np.arange(4)}, epoch=0, prefix="repro-arena-testsweep"
        )
        try:
            names = SharedArena.list_segments("repro-arena-testsweep")
            assert len(names) == 2
            swept = SharedArena.sweep_orphans(
                "repro-arena-testsweep", live={arena.spec.name}
            )
            assert swept == [other.spec.name]
            assert SharedArena.list_segments("repro-arena-testsweep") == [
                arena.spec.name
            ]
            # Idempotent.
            assert (
                SharedArena.sweep_orphans(
                    "repro-arena-testsweep", live={arena.spec.name}
                )
                == []
            )
        finally:
            arena.destroy()
            other.close()
        assert SharedArena.list_segments("repro-arena-testsweep") == []

    def test_sweep_needs_a_prefix(self):
        with pytest.raises(ConfigError):
            SharedArena.list_segments("")


# ----------------------------------------------------------------------
# Chaos schedule: taxonomy bridge and injector
# ----------------------------------------------------------------------
class TestChaosSchedule:
    def test_shared_taxonomy(self):
        assert MachineCrash(step=1, machine=0).chaos_kind in FAULT_KINDS
        assert MessageDrop(0.1).chaos_kind in FAULT_KINDS
        assert ChaosEvent(0.0, "kill", 0).kind in FAULT_KINDS

    def test_roundtrip_with_fault_schedule(self):
        simulated = FaultSchedule(
            crashes=(
                MachineCrash(step=1, machine=0, rebirth=False),
                MachineCrash(step=2, machine=3, rebirth=False),
            ),
            message_drop=MessageDrop(0.5),
        )
        chaos = ChaosSchedule.from_fault_schedule(simulated, step_time_s=0.5)
        assert [e.kind for e in chaos.events] == ["kill", "kill"]
        assert [e.time_s for e in chaos.events] == [0.5, 1.0]
        back = chaos.to_fault_schedule(step_time_s=0.5)
        assert {(c.step, c.machine) for c in back.crashes} == {
            (1, 0),
            (2, 3),
        }
        assert all(not c.rebirth for c in back.crashes)
        # drop has no real-process analogue and is documentedly lost.
        assert back.message_drop is None

    def test_latency_only_events_have_no_simulated_twin(self):
        chaos = ChaosSchedule(
            events=(
                ChaosEvent(0.5, "hang", 0, duration_s=1.0),
                ChaosEvent(1.0, "delay", 1, duration_s=1.0),
            )
        )
        assert chaos.to_fault_schedule().crashes == ()
        assert chaos.kills() == ()

    def test_event_validation(self):
        with pytest.raises(ConfigError):
            ChaosEvent(0.0, "explode", 0)
        with pytest.raises(ConfigError):
            ChaosEvent(-1.0, "kill", 0)
        with pytest.raises(ConfigError):
            ChaosEvent(0.0, "kill", -1)

    def test_injector_needs_a_process_pool(self):
        with pytest.raises(ConfigError):
            ChaosInjector(object(), ChaosSchedule())

    def test_injector_fires_against_real_pool(self):
        with _pool() as backend:
            backend.run_batch(CONFIG, QUERIES)
            schedule = ChaosSchedule(
                events=(ChaosEvent(0.05, "kill", 1),)
            )
            injector = ChaosInjector(backend, schedule).arm()
            deadline = time.monotonic() + 5.0
            while not injector.fired and time.monotonic() < deadline:
                time.sleep(0.02)
            injector.disarm()
            assert [e.kind for _, e in injector.fired] == ["kill"]
            assert backend.supervisor.check() == 1


# ----------------------------------------------------------------------
# Simulated vs real: one degradation story
# ----------------------------------------------------------------------
class TestSimulatedRealParity:
    def test_partial_dent_matches_simulated_dent(self):
        """Losing 1-of-3 shards (real SIGKILL) costs about what the
        simulated fault layer predicts for losing the same frog
        fraction — the paper's ~1/M claim, cross-checked between the
        two fault vocabularies at matched loss."""
        k = 20
        ranking = exact_pagerank(GRAPH)
        with _pool() as backend:
            healthy = backend.run_batch(CONFIG, QUERIES)
            _kill_mid_batch(backend, shard=1)
            partial = backend.run_batch(CONFIG, QUERIES)
            assert partial.degraded_shards == (1,)
        real_healthy = normalized_mass_captured(
            healthy.lanes[0].estimate.vector(), ranking, k
        )
        real_partial = normalized_mass_captured(
            partial.lanes[0].estimate.vector(), ranking, k
        )
        real_dent = real_healthy - real_partial

        # The simulated twin: crash machines carrying ~1/3 of the
        # frogs at the matching superstep, frogs not reborn.
        chaos = ChaosSchedule(events=(ChaosEvent(0.0, "kill", 0),))
        simulated = chaos.to_fault_schedule(step_time_s=1.0)
        assert all(not c.rebirth for c in simulated.crashes)
        num_machines = 3
        sim_result, _fault_log = run_frogwild_with_faults(
            GRAPH,
            schedule=simulated,
            config=CONFIG,
            num_machines=num_machines,
        )
        sim_clean, _ = run_frogwild_with_faults(
            GRAPH,
            schedule=FaultSchedule(),
            config=CONFIG,
            num_machines=num_machines,
        )
        sim_dent = normalized_mass_captured(
            sim_clean.estimate.vector(), ranking, k
        ) - normalized_mass_captured(
            sim_result.estimate.vector(), ranking, k
        )
        # Both dents are small (graceful degradation) and of the same
        # order; the tolerance is loose because the simulated crash
        # loses resident frogs (~1/M at one step) while the real kill
        # loses a full shard slice (1/3).
        assert real_dent <= 0.15
        assert sim_dent <= 0.15
        assert abs(real_dent - sim_dent) <= 0.12
