"""Tests for the asynchronous engine and async PageRank."""

import numpy as np
import pytest

from repro.engine import AsyncEngine, AsyncVertexProgram, build_cluster
from repro.errors import ConfigError, EngineError
from repro.graph import cycle_graph
from repro.metrics import normalized_mass_captured
from repro.pagerank import AsyncPageRank, async_pagerank, exact_pagerank


class _ConstantProgram(AsyncVertexProgram):
    """Sets every vertex to a constant; converges after one pass."""

    name = "constant"

    def initial_data(self, state):
        return np.zeros(state.num_vertices)

    def update(self, vertex, gather_sum, data, state):
        return 7.0, False  # never signal: one update per vertex


class _CountingProgram(AsyncVertexProgram):
    """Signals successors a fixed number of generations."""

    name = "counting"

    def __init__(self, generations):
        self.generations = generations

    def initial_data(self, state):
        return np.zeros(state.num_vertices)

    def initial_schedule(self, state):
        return np.array([0], dtype=np.int64)

    def update(self, vertex, gather_sum, data, state):
        new = data[vertex] + 1.0
        return new, new < self.generations


class TestAsyncEngine:
    def test_constant_program_one_update_per_vertex(self, small_cluster):
        engine = AsyncEngine(small_cluster, _ConstantProgram())
        report = engine.run()
        assert engine.converged
        assert engine.updates_executed == small_cluster.num_vertices
        assert np.all(engine.data == 7.0)
        assert report.extra["converged"] == 1.0

    def test_signals_propagate(self):
        graph = cycle_graph(10)
        state = build_cluster(graph, 2, seed=0)
        engine = AsyncEngine(state, _CountingProgram(generations=3))
        engine.run()
        # Vertex 0 started; signals circulate the ring until every
        # visited vertex hit 3 generations.
        assert engine.data is not None
        assert engine.data.max() == 3.0

    def test_max_updates_cap(self, small_cluster):
        engine = AsyncEngine(small_cluster, _ConstantProgram())
        report = engine.run(max_updates=10)
        assert not engine.converged
        assert engine.updates_executed == 10
        assert report.extra["updates"] == 10.0

    def test_rejects_bad_max_updates(self, small_cluster):
        with pytest.raises(EngineError):
            AsyncEngine(small_cluster, _ConstantProgram()).run(max_updates=0)

    def test_rejects_negative_lock_ops(self, small_cluster):
        with pytest.raises(EngineError):
            AsyncEngine(small_cluster, _ConstantProgram(), lock_ops=-1)

    def test_locking_costs_network(self, small_twitter):
        """Lock protocol records appear on the wire when lock_ops > 0."""
        locked_state = build_cluster(small_twitter, 4, seed=0)
        AsyncEngine(locked_state, _ConstantProgram(), lock_ops=1).run()
        lock_bytes = locked_state.fabric.snapshot().bytes_for("lock")
        assert lock_bytes > 0

        free_state = build_cluster(small_twitter, 4, seed=0)
        AsyncEngine(free_state, _ConstantProgram(), lock_ops=0).run()
        assert free_state.fabric.snapshot().bytes_for("lock") == 0

    def test_no_barrier_cost(self, small_cluster):
        """Async pays one epoch closure, not one barrier per update."""
        engine = AsyncEngine(small_cluster, _ConstantProgram())
        report = engine.run()
        assert report.supersteps == 1


class TestAsyncPageRank:
    def test_validation(self):
        with pytest.raises(ConfigError):
            AsyncPageRank(p_teleport=0.0)
        with pytest.raises(ConfigError):
            AsyncPageRank(tolerance=0.0)

    def test_converges_to_exact(self, small_twitter):
        result = async_pagerank(
            small_twitter, num_machines=4, tolerance=1e-5
        )
        truth = exact_pagerank(small_twitter)
        mass = normalized_mass_captured(result.distribution(), truth, 50)
        assert mass > 0.97

    def test_tighter_tolerance_more_updates(self, small_twitter):
        loose = async_pagerank(small_twitter, num_machines=4, tolerance=1e-2)
        tight = async_pagerank(small_twitter, num_machines=4, tolerance=1e-5)
        assert tight.report.extra["updates"] > loose.report.extra["updates"]

    def test_dynamic_scheduling_skips_settled_vertices(self, small_twitter):
        """Async update counts are residual-driven: dropping the
        tolerance by 10x must NOT cost 10x the updates (settled
        vertices stop being rescheduled)."""
        loose = async_pagerank(small_twitter, num_machines=4, tolerance=1e-3)
        tight = async_pagerank(small_twitter, num_machines=4, tolerance=1e-4)
        ratio = tight.report.extra["updates"] / loose.report.extra["updates"]
        assert ratio < 5.0

    def test_cycle_uniform(self):
        graph = cycle_graph(16)
        result = async_pagerank(graph, num_machines=2, tolerance=1e-8)
        assert np.allclose(result.distribution(), 1.0 / 16, atol=1e-4)

    def test_report_fields(self, small_twitter):
        result = async_pagerank(small_twitter, num_machines=4)
        report = result.report
        assert report.algorithm.startswith("async_pr")
        assert report.network_bytes > 0
        assert report.cpu_seconds > 0
        assert report.total_time_s > 0
