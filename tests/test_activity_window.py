"""Tests for the sliding-window activity graph."""

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.dynamic import ActivityWindow, DynamicDiGraph, PageRankTracker
from repro.errors import ConfigError, GraphError


class TestValidation:
    def test_rejects_bad_horizon(self):
        with pytest.raises(ConfigError):
            ActivityWindow(10, horizon=0.0)

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphError):
            ActivityWindow(0, horizon=1.0)

    def test_rejects_time_travel(self):
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=10.0)
        with pytest.raises(ConfigError):
            window.observe([(1, 2)], timestamp=9.0)

    def test_rejects_out_of_range_edges(self):
        window = ActivityWindow(3, horizon=5.0)
        with pytest.raises(GraphError):
            window.observe([(0, 7)], timestamp=0.0)


class TestTransitions:
    def test_first_interaction_adds_edge(self):
        window = ActivityWindow(10, horizon=5.0)
        delta = window.observe([(0, 1)], timestamp=0.0)
        assert delta.num_added == 1
        assert delta.num_removed == 0

    def test_repeat_interaction_is_silent(self):
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=0.0)
        delta = window.observe([(0, 1)], timestamp=1.0)
        assert delta.num_added == 0
        assert delta.num_removed == 0
        assert window.num_live_interactions == 2

    def test_expiry_removes_edge(self):
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=0.0)
        delta = window.observe([(2, 3)], timestamp=6.0)
        assert delta.num_added == 1
        removed = {tuple(row) for row in delta.removed}
        assert removed == {(0, 1)}

    def test_refresh_prevents_expiry(self):
        """A second interaction inside the horizon keeps the edge alive
        past the first one's expiry."""
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=0.0)
        window.observe([(0, 1)], timestamp=4.0)
        delta = window.observe([], timestamp=6.0)  # first event expires
        assert delta.num_removed == 0
        delta = window.observe([], timestamp=10.0)  # second one too
        removed = {tuple(row) for row in delta.removed}
        assert removed == {(0, 1)}

    def test_same_batch_refresh_not_expired(self):
        """An edge re-observed in the same batch that evicts its old
        interaction must stay present."""
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=0.0)
        delta = window.observe([(0, 1)], timestamp=6.0)
        assert delta.num_added == 0
        assert delta.num_removed == 0
        assert window.num_live_interactions == 1

    def test_exact_cutoff_expires(self):
        """Interactions aged exactly `horizon` are evicted."""
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=0.0)
        delta = window.observe([], timestamp=5.0)
        assert delta.num_removed == 1


class TestStateQueries:
    def test_current_edges(self):
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1), (1, 2)], timestamp=0.0)
        window.observe([(2, 3)], timestamp=6.0)
        edges = {tuple(row) for row in window.current_edges()}
        assert edges == {(2, 3)}

    def test_clock_advances(self):
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1)], timestamp=3.5)
        assert window.clock == 3.5

    def test_to_dynamic_graph(self):
        window = ActivityWindow(10, horizon=5.0)
        window.observe([(0, 1), (4, 5)], timestamp=0.0)
        graph = window.to_dynamic_graph()
        assert graph.num_edges == 2
        assert graph.has_edge(4, 5)


class TestDeltaStreamConsistency:
    def test_applying_deltas_reproduces_window(self):
        """A DynamicDiGraph driven purely by observe() deltas always
        equals the window's own edge set."""
        rng = np.random.default_rng(0)
        window = ActivityWindow(20, horizon=3.0)
        live = DynamicDiGraph(20)
        for t in range(12):
            batch = rng.integers(0, 20, size=(5, 2))
            batch = batch[batch[:, 0] != batch[:, 1]]
            delta = window.observe(batch, timestamp=float(t))
            live.apply(delta)
            window_edges = {tuple(r) for r in window.current_edges()}
            live_edges = {tuple(r) for r in live.edge_array()}
            assert window_edges == live_edges

    def test_feeds_a_tracker(self):
        """End-to-end: interaction stream -> window -> tracker."""
        rng = np.random.default_rng(1)
        n = 300
        window = ActivityWindow(n, horizon=4.0)
        live = DynamicDiGraph(n)
        # Preload activity so the first snapshot is non-trivial.
        warmup = rng.integers(0, n, size=(3_000, 2))
        warmup = warmup[warmup[:, 0] != warmup[:, 1]]
        live.apply(window.observe(warmup, timestamp=0.0))
        tracker = PageRankTracker(
            live,
            k=10,
            config=FrogWildConfig(num_frogs=3_000, iterations=4, seed=0),
            num_machines=4,
        )
        for t in range(1, 4):
            batch = rng.integers(0, n, size=(500, 2))
            batch = batch[batch[:, 0] != batch[:, 1]]
            update = tracker.update(window.observe(batch, float(t)))
            assert update.top_k.size == 10
        assert len(tracker.history) == 4
