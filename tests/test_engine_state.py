"""Unit tests for ClusterState and build_cluster."""

import numpy as np
import pytest

from repro.cluster import RandomVertexCut
from repro.engine import build_cluster
from repro.errors import EngineError


class TestBuildCluster:
    def test_builds_consistent_state(self, small_twitter):
        state = build_cluster(small_twitter, num_machines=4)
        assert state.num_machines == 4
        assert state.num_vertices == small_twitter.num_vertices
        assert state.fabric.total_bytes() == 0
        assert state.clock.elapsed_s == 0.0

    def test_reuses_supplied_partition(self, small_twitter):
        part = RandomVertexCut(seed=9).partition(small_twitter, 4)
        state = build_cluster(small_twitter, 4, partition=part)
        assert state.replication.partition is part

    def test_rejects_partition_machine_mismatch(self, small_twitter):
        part = RandomVertexCut(seed=9).partition(small_twitter, 4)
        with pytest.raises(EngineError, match="targets 4 machines"):
            build_cluster(small_twitter, 8, partition=part)


class TestAccounting:
    def test_charge_single(self, small_cluster):
        small_cluster.charge(1, 10, phase="apply")
        assert small_cluster.machines[1].cpu_ops == 10

    def test_charge_many(self, small_cluster):
        small_cluster.charge_many(np.array([1, 2, 3, 4]))
        assert small_cluster.machines.total_cpu_ops() == 10

    def test_charge_many_shape_checked(self, small_cluster):
        with pytest.raises(EngineError, match="shape"):
            small_cluster.charge_many(np.array([1, 2]))

    def test_send_batched_counts_messages(self, small_cluster):
        small_cluster.send_batched(0, 1, 5, "sync")
        assert small_cluster.fabric.total_bytes() > 0

    def test_send_pair_matrix(self, small_cluster):
        records = np.zeros((4, 4), dtype=np.int64)
        records[0, 1] = 3
        records[2, 3] = 1
        records[1, 1] = 100  # diagonal: local, free
        small_cluster.send_pair_matrix(records, kind="sync")
        model = small_cluster.fabric.size_model
        assert small_cluster.fabric.total_bytes() == (
            model.batch_bytes(3) + model.batch_bytes(1)
        )

    def test_send_pair_matrix_shape_checked(self, small_cluster):
        with pytest.raises(EngineError):
            small_cluster.send_pair_matrix(np.zeros((2, 2)), kind="x")


class TestSuperstepBarrier:
    def test_end_superstep_records_and_resets(self, small_cluster):
        small_cluster.charge(0, 100, phase="apply")
        small_cluster.send_batched(0, 1, 10, "sync")
        small_cluster.end_superstep(active_vertices=50)

        stats = small_cluster.stats
        assert stats.num_supersteps == 1
        step = stats.steps[0]
        assert step.active == 50
        assert step.cpu_ops == 100
        assert step.bytes_sent > 0
        assert step.sim_seconds > 0

        # Accumulators reset; cumulative counters survive.
        small_cluster.end_superstep(active_vertices=0)
        assert small_cluster.stats.steps[1].cpu_ops == 0
        assert small_cluster.stats.steps[1].bytes_sent == 0
        assert small_cluster.fabric.total_bytes() > 0

    def test_time_includes_barrier(self, small_cluster):
        small_cluster.end_superstep(active_vertices=0)
        assert small_cluster.clock.elapsed_s >= (
            small_cluster.cost_model.barrier_latency_s
        )
