"""Unit tests for vertex-cut partitioners."""

import numpy as np
import pytest

from repro.cluster import (
    EdgePartition,
    GridVertexCut,
    HdrfVertexCut,
    ObliviousVertexCut,
    RandomVertexCut,
    ReplicationTable,
    grid_shape,
    make_partitioner,
)
from repro.errors import PartitionError
from repro.graph import cycle_graph


class TestEdgePartition:
    def test_load_vector(self):
        part = EdgePartition(np.array([0, 0, 1, 2]), num_machines=3)
        assert list(part.edges_per_machine()) == [2, 1, 1]

    def test_imbalance(self):
        part = EdgePartition(np.array([0, 0, 0, 1]), num_machines=2)
        assert part.load_imbalance() == pytest.approx(1.5)

    def test_rejects_out_of_range(self):
        with pytest.raises(PartitionError):
            EdgePartition(np.array([0, 5]), num_machines=2)


class TestRandomVertexCut:
    def test_covers_all_edges(self, small_twitter):
        part = RandomVertexCut(seed=0).partition(small_twitter, 4)
        assert part.edge_machine.shape == (small_twitter.num_edges,)
        assert set(np.unique(part.edge_machine)) <= set(range(4))

    def test_roughly_balanced(self, small_twitter):
        part = RandomVertexCut(seed=0).partition(small_twitter, 4)
        assert part.load_imbalance() < 1.15

    def test_deterministic(self, small_twitter):
        a = RandomVertexCut(seed=5).partition(small_twitter, 4)
        b = RandomVertexCut(seed=5).partition(small_twitter, 4)
        assert np.array_equal(a.edge_machine, b.edge_machine)

    def test_single_machine(self, small_twitter):
        part = RandomVertexCut().partition(small_twitter, 1)
        assert np.all(part.edge_machine == 0)


class TestObliviousVertexCut:
    def test_covers_all_edges(self, small_twitter):
        part = ObliviousVertexCut(seed=0).partition(small_twitter, 4)
        assert part.edge_machine.shape == (small_twitter.num_edges,)

    def test_lower_replication_than_random(self, small_twitter):
        random_part = RandomVertexCut(seed=0).partition(small_twitter, 8)
        greedy_part = ObliviousVertexCut(seed=0).partition(small_twitter, 8)
        rf_random = ReplicationTable(small_twitter, random_part).replication_factor()
        rf_greedy = ReplicationTable(small_twitter, greedy_part).replication_factor()
        assert rf_greedy < rf_random

    def test_reasonable_balance(self, small_twitter):
        part = ObliviousVertexCut(seed=0).partition(small_twitter, 4)
        assert part.load_imbalance() < 1.6


class TestGridShape:
    def test_perfect_square(self):
        assert grid_shape(16) == (4, 4)

    def test_rectangle(self):
        assert grid_shape(12) == (3, 4)
        assert grid_shape(24) == (4, 6)

    def test_prime_degenerates(self):
        assert grid_shape(7) == (1, 7)

    def test_one_machine(self):
        assert grid_shape(1) == (1, 1)

    def test_rejects_zero(self):
        with pytest.raises(PartitionError):
            grid_shape(0)


class TestGridVertexCut:
    def test_covers_all_edges(self, small_twitter):
        part = GridVertexCut(seed=0).partition(small_twitter, 4)
        assert part.edge_machine.shape == (small_twitter.num_edges,)

    def test_replication_cap_holds(self, small_twitter):
        """No vertex may exceed rows + cols - 1 replicas on a grid cut."""
        part = GridVertexCut(seed=0).partition(small_twitter, 16)
        repl = ReplicationTable(small_twitter, part)
        rows, cols = grid_shape(16)
        assert repl.replica_counts.max() <= rows + cols - 1

    def test_placement_respects_constraint_sets(self):
        """Every edge lands in the intersection of both endpoint sets."""
        graph = cycle_graph(50)
        num_machines = 9
        seed = 3
        part = GridVertexCut(seed=seed).partition(graph, num_machines)
        rows, cols = grid_shape(num_machines)
        rng = np.random.default_rng([105, seed])
        home = rng.integers(0, num_machines, size=graph.num_vertices)
        machine_row = np.arange(num_machines) // cols
        machine_col = np.arange(num_machines) % cols
        src = graph.edge_sources()
        dst = graph.indices
        for edge in range(graph.num_edges):
            u, v = int(src[edge]), int(dst[edge])
            p = int(part.edge_machine[edge])
            in_su = (machine_row[p] == home[u] // cols) or (
                machine_col[p] == home[u] % cols
            )
            in_sv = (machine_row[p] == home[v] // cols) or (
                machine_col[p] == home[v] % cols
            )
            assert in_su and in_sv

    def test_lower_replication_than_random(self, small_twitter):
        random_part = RandomVertexCut(seed=0).partition(small_twitter, 16)
        grid_part = GridVertexCut(seed=0).partition(small_twitter, 16)
        rf_random = ReplicationTable(small_twitter, random_part).replication_factor()
        rf_grid = ReplicationTable(small_twitter, grid_part).replication_factor()
        assert rf_grid < rf_random

    def test_deterministic(self, small_twitter):
        a = GridVertexCut(seed=9).partition(small_twitter, 6)
        b = GridVertexCut(seed=9).partition(small_twitter, 6)
        assert np.array_equal(a.edge_machine, b.edge_machine)

    def test_single_machine(self, small_twitter):
        part = GridVertexCut(seed=0).partition(small_twitter, 1)
        assert np.all(part.edge_machine == 0)


class TestHdrfVertexCut:
    def test_covers_all_edges(self, small_twitter):
        part = HdrfVertexCut(seed=0).partition(small_twitter, 4)
        assert part.edge_machine.shape == (small_twitter.num_edges,)

    def test_lower_replication_than_random(self, small_twitter):
        random_part = RandomVertexCut(seed=0).partition(small_twitter, 8)
        hdrf_part = HdrfVertexCut(seed=0).partition(small_twitter, 8)
        rf_random = ReplicationTable(small_twitter, random_part).replication_factor()
        rf_hdrf = ReplicationTable(small_twitter, hdrf_part).replication_factor()
        assert rf_hdrf < rf_random

    def test_hubs_replicate_more_than_tail(self, small_twitter):
        """The defining HDRF property: replication concentrates on hubs."""
        part = HdrfVertexCut(seed=0).partition(small_twitter, 8)
        repl = ReplicationTable(small_twitter, part)
        degree = np.asarray(small_twitter.out_degree()) + np.asarray(
            small_twitter.in_degree()
        )
        hubs = np.argsort(degree)[-50:]
        tail = np.argsort(degree)[: small_twitter.num_vertices // 2]
        assert (
            repl.replica_counts[hubs].mean()
            > repl.replica_counts[tail].mean() + 0.5
        )

    def test_balance_increases_with_lambda(self, small_twitter):
        loose = HdrfVertexCut(seed=0, lam=0.1).partition(small_twitter, 8)
        tight = HdrfVertexCut(seed=0, lam=4.0).partition(small_twitter, 8)
        assert tight.load_imbalance() <= loose.load_imbalance() + 1e-9

    def test_rejects_negative_lambda(self):
        with pytest.raises(PartitionError):
            HdrfVertexCut(lam=-1.0)

    def test_deterministic(self, small_twitter):
        a = HdrfVertexCut(seed=2).partition(small_twitter, 4)
        b = HdrfVertexCut(seed=2).partition(small_twitter, 4)
        assert np.array_equal(a.edge_machine, b.edge_machine)


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_partitioner("random"), RandomVertexCut)
        assert isinstance(make_partitioner("oblivious"), ObliviousVertexCut)
        assert isinstance(make_partitioner("grid"), GridVertexCut)
        assert isinstance(make_partitioner("hdrf"), HdrfVertexCut)

    def test_unknown_name(self):
        with pytest.raises(PartitionError, match="unknown"):
            make_partitioner("magic")

    def test_rejects_zero_machines(self):
        with pytest.raises(PartitionError):
            RandomVertexCut().partition(cycle_graph(4), 0)

    def test_rejects_empty_graph(self):
        from repro.graph import GraphBuilder

        empty = GraphBuilder(num_vertices=3, repair_dangling="none").build()
        with pytest.raises(PartitionError):
            RandomVertexCut().partition(empty, 2)
