"""Unit tests for the synthetic graph generators."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    livejournal_like,
    power_law_exponent,
    preferential_attachment,
    reciprocity,
    star_graph,
    twitter_like,
)


class TestFixtures:
    def test_cycle_structure(self):
        g = cycle_graph(5)
        assert sorted(g.edges()) == [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]

    def test_cycle_rejects_tiny(self):
        with pytest.raises(GraphError):
            cycle_graph(1)

    def test_star_structure(self):
        g = star_graph(4)
        assert g.out_degree(0) == 3
        assert g.in_degree(0) == 3
        for spoke in (1, 2, 3):
            assert g.has_edge(0, spoke)
            assert g.has_edge(spoke, 0)

    def test_star_rejects_tiny(self):
        with pytest.raises(GraphError):
            star_graph(1)

    def test_complete_edge_count(self):
        g = complete_graph(6)
        assert g.num_edges == 30
        assert not g.has_edge(0, 0)

    def test_complete_rejects_tiny(self):
        with pytest.raises(GraphError):
            complete_graph(1)


class TestErdosRenyi:
    def test_size_and_degree(self):
        g = erdos_renyi(500, avg_out_degree=6, seed=0)
        assert g.num_vertices == 500
        mean_deg = g.num_edges / g.num_vertices
        assert 4 < mean_deg < 8

    def test_deterministic(self):
        assert erdos_renyi(100, 4, seed=3) == erdos_renyi(100, 4, seed=3)

    def test_different_seeds_differ(self):
        assert erdos_renyi(100, 4, seed=3) != erdos_renyi(100, 4, seed=4)

    def test_rejects_bad_degree(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, avg_out_degree=0)
        with pytest.raises(GraphError):
            erdos_renyi(10, avg_out_degree=100)

    def test_no_dangling(self):
        g = erdos_renyi(200, 2, seed=1)
        assert g.dangling_vertices().size == 0


class TestChungLu:
    def test_in_degree_heavy_tail(self):
        g = chung_lu(3000, exponent=2.2, avg_degree=8, seed=0)
        in_deg = np.asarray(g.in_degree())
        # Hubs exist: the max in-degree dwarfs the mean.
        assert in_deg.max() > 15 * in_deg.mean()

    def test_tail_exponent_ballpark(self):
        g = chung_lu(8000, exponent=2.2, avg_degree=10, seed=1)
        theta = power_law_exponent(np.asarray(g.in_degree()))
        assert 1.6 < theta < 3.2

    def test_rejects_flat_exponent(self):
        with pytest.raises(GraphError):
            chung_lu(100, exponent=1.0)


class TestPreferentialAttachment:
    def test_vertex_count(self):
        g = preferential_attachment(400, out_degree=5, seed=0)
        assert g.num_vertices == 400

    def test_reciprocity_knob(self):
        low = preferential_attachment(800, 6, reciprocity=0.0, seed=0)
        high = preferential_attachment(800, 6, reciprocity=0.9, seed=0)
        assert reciprocity(high) > reciprocity(low) + 0.2

    def test_heavy_out_degree_tail_when_enabled(self):
        fixed = preferential_attachment(1500, 8, seed=0)
        heavy = preferential_attachment(
            1500, 8, out_degree_exponent=2.2, seed=0
        )
        fixed_max = int(np.max(fixed.out_degree()))
        heavy_max = int(np.max(heavy.out_degree()))
        assert heavy_max > 2 * fixed_max

    def test_rejects_bad_params(self):
        with pytest.raises(GraphError):
            preferential_attachment(10, out_degree=0)
        with pytest.raises(GraphError):
            preferential_attachment(10, 2, reciprocity=1.5)
        with pytest.raises(GraphError):
            preferential_attachment(10, 2, attachment_bias=0.0)
        with pytest.raises(GraphError):
            preferential_attachment(10, 2, out_degree_exponent=1.5)

    def test_deterministic(self):
        a = preferential_attachment(300, 4, seed=9)
        b = preferential_attachment(300, 4, seed=9)
        assert a == b


class TestWorkloadGenerators:
    def test_twitter_like_skewed(self):
        g = twitter_like(n=2000, seed=5)
        in_deg = np.asarray(g.in_degree())
        assert in_deg.max() > 20 * in_deg.mean()
        assert g.dangling_vertices().size == 0

    def test_livejournal_more_reciprocal_than_twitter(self):
        tw = twitter_like(n=1500, seed=2)
        lj = livejournal_like(n=1500, seed=2)
        assert reciprocity(lj) > reciprocity(tw) + 0.2

    def test_default_sizes(self):
        assert twitter_like(n=500).num_vertices == 500
        assert livejournal_like(n=500).num_vertices == 500


class TestRmat:
    def test_vertex_count_is_power_of_two(self):
        from repro.graph import rmat

        g = rmat(scale=8, edge_factor=4, seed=0)
        assert g.num_vertices == 256
        assert g.num_edges > 0

    def test_edge_count_bounded_by_draws(self):
        from repro.graph import rmat

        g = rmat(scale=9, edge_factor=8, seed=1)
        # Dedup and self-loop removal only ever shrink the draw count.
        assert g.num_edges <= 8 * 512

    def test_skewed_degrees(self):
        from repro.graph import rmat

        g = rmat(scale=11, edge_factor=8, seed=2)
        in_deg = np.asarray(g.in_degree())
        assert in_deg.max() > 10 * in_deg.mean()

    def test_uniform_quadrants_give_flat_degrees(self):
        from repro.graph import rmat

        g = rmat(scale=10, edge_factor=8, a=0.25, b=0.25, c=0.25,
                 noise=0.0, seed=3)
        in_deg = np.asarray(g.in_degree())
        # Without skew the max degree stays near the mean.
        assert in_deg.max() < 5 * in_deg.mean()

    def test_no_self_loops_except_repair(self):
        from repro.graph import rmat

        g = rmat(scale=8, edge_factor=4, seed=4)
        edges = g.edge_array()
        loops = edges[edges[:, 0] == edges[:, 1]]
        # Any surviving self loop is a dangling repair.
        for v in loops[:, 0]:
            assert g.out_degree(int(v)) == 1

    def test_deterministic(self):
        from repro.graph import rmat

        assert rmat(scale=8, seed=9) == rmat(scale=8, seed=9)

    def test_validation(self):
        from repro.graph import rmat

        with pytest.raises(GraphError):
            rmat(scale=0)
        with pytest.raises(GraphError):
            rmat(scale=8, edge_factor=0)
        with pytest.raises(GraphError):
            rmat(scale=8, a=0.9, b=0.2, c=0.2)
        with pytest.raises(GraphError):
            rmat(scale=8, noise=1.0)

    def test_frogwild_runs_on_rmat(self):
        from repro.core import FrogWildConfig, run_frogwild
        from repro.graph import rmat
        from repro.metrics import normalized_mass_captured
        from repro.pagerank import exact_pagerank

        g = rmat(scale=10, edge_factor=8, seed=5)
        result = run_frogwild(
            g,
            FrogWildConfig(num_frogs=8_000, iterations=4, seed=0),
            num_machines=4,
        )
        truth = exact_pagerank(g)
        mass = normalized_mass_captured(result.estimate.vector(), truth, 20)
        assert mass > 0.85
