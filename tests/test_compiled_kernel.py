"""Compiled kernel tier: bitwise parity, fallback, layout, arena.

The ``kernel="compiled"`` tier replaces the fused kernel's
``unique`` + ``searchsorted`` + ``bincount`` chains with single-pass
compiled loops, but it must never change a computed value.  These
tests pin that contract without requiring Numba on the test host:
``REPRO_COMPILED_FORCE=python`` makes the compiled tier run its
pure-Python pass implementations — the very loops Numba jits — so the
parity matrix here exercises the compiled code paths bit-for-bit
everywhere (CI's ``kernel-compiled`` lane re-runs the same tests with
the ``[accel]`` extra installed, where the jitted loops must agree):

* **parity matrix** — compiled output (per-lane counters, attributed
  reports, physical report) is bitwise identical to the pinned fused
  kernel for every supported configuration, at B=1 against the
  single-query runner, on dangling graphs, and on both the dense and
  the sorted reduction paths (``REPRO_COMPILED_DENSE_BUDGET=0``);
* **graceful degradation** — requesting ``"compiled"`` without Numba
  falls back to ``"fused"`` with exactly one RuntimeWarning per
  process (never an ImportError, even with the ``numba`` import
  masked in a fresh interpreter), and :func:`available_kernels`
  reports what is runnable;
* **int32 narrowing** — lane-key packing round-trips against the
  int64 reference and the overflow guard trips exactly at
  ``B * n >= 2**31`` (hypothesis property);
* **arena & tiles** — bump-allocator accounting (peak ≤ demand,
  growth keeps old views valid, persistent regions survive reset) and
  tile plans that partition rows under any budget;
* **serving seam** — ``kernel="compiled"`` flows through
  :class:`ShardedBackend` and :class:`ProcessPoolBackend` (workers
  included) without perturbing the golden counters.
"""

import os
import pathlib
import subprocess
import sys
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchQuery,
    FrogWildConfig,
    available_kernels,
    run_frogwild,
    run_frogwild_batch,
)
from repro.core.kernels import (
    KERNEL_TIERS,
    BufferArena,
    lane_key_dtype,
    pack_lane_keys,
    plan_tiles,
    reset_fallback_warning,
    resolve_kernel,
    unpack_lane_keys,
)
from repro.engine import build_cluster
from repro.errors import ConfigError
from repro.graph import from_edges, twitter_like

GRAPH = twitter_like(n=600, seed=13)


@pytest.fixture
def force_python(monkeypatch):
    """Run the compiled tier's passes in pure Python on Numba-less hosts."""
    monkeypatch.setenv("REPRO_COMPILED_FORCE", "python")


def _run(queries, kernel="fused", machines=4, graph=None, **config_kwargs):
    graph = GRAPH if graph is None else graph
    defaults = dict(num_frogs=1500, iterations=4, seed=7)
    defaults.update(config_kwargs)
    config = FrogWildConfig(**defaults)
    return run_frogwild_batch(
        graph,
        queries,
        config,
        state=build_cluster(graph, machines, seed=config.seed),
        kernel=kernel,
    )


def _assert_bitwise(compiled, fused):
    for lane_c, lane_f in zip(compiled.results, fused.results):
        np.testing.assert_array_equal(
            lane_c.estimate.counts, lane_f.estimate.counts
        )
        assert lane_c.report.network_bytes == lane_f.report.network_bytes
        assert lane_c.report.cpu_seconds == lane_f.report.cpu_seconds
        assert lane_c.report.supersteps == lane_f.report.supersteps
    assert compiled.report.network_bytes == fused.report.network_bytes
    assert compiled.report.cpu_seconds == fused.report.cpu_seconds
    assert compiled.report.total_time_s == fused.report.total_time_s


# ----------------------------------------------------------------------
# Bitwise parity with the pinned fused kernel
# ----------------------------------------------------------------------
class TestCompiledParity:
    CONFIGS = [
        dict(),
        dict(ps=0.6),
        dict(ps=0.0),
        dict(ps=0.3, erasure_model="independent"),
        dict(ps=0.8, scatter_mode="binomial"),
        dict(ps=0.4, scatter_mode="binomial", erasure_model="independent"),
        dict(ps=0.6, sync_mode="shared"),
        dict(ps=0.6, wire_dedupe=True),
        dict(ps=0.6, sync_mode="shared", wire_dedupe=True),
    ]

    @pytest.mark.parametrize("config_kwargs", CONFIGS)
    def test_compiled_matches_fused_golden(
        self, force_python, config_kwargs
    ):
        queries = [
            BatchQuery(seed=4),
            BatchQuery(seed=5, num_frogs=700),
            BatchQuery(seed=6, num_frogs=2200),
        ]
        compiled = _run(queries, kernel="compiled", **config_kwargs)
        fused = _run(queries, kernel="fused", **config_kwargs)
        _assert_bitwise(compiled, fused)

    @pytest.mark.parametrize(
        "config_kwargs",
        [dict(), dict(ps=0.6, sync_mode="shared"), dict(wire_dedupe=True)],
    )
    def test_sorted_reduction_path_matches(
        self, force_python, monkeypatch, config_kwargs
    ):
        """Dense-map and sort-scan reductions are interchangeable: a
        zero working-set budget forces every pass onto the sorted
        fallback without changing one bit."""
        queries = [BatchQuery(seed=4), BatchQuery(seed=5, num_frogs=900)]
        fused = _run(queries, kernel="fused", **config_kwargs)
        monkeypatch.setenv("REPRO_COMPILED_DENSE_BUDGET", "0")
        compiled = _run(queries, kernel="compiled", **config_kwargs)
        _assert_bitwise(compiled, fused)

    def test_b1_matches_single_query_runner(self, force_python):
        config = FrogWildConfig(num_frogs=1500, iterations=4, seed=7)
        batch = run_frogwild_batch(
            GRAPH,
            [BatchQuery(seed=7)],
            config,
            state=build_cluster(GRAPH, 4, seed=7),
            kernel="compiled",
        )
        single = run_frogwild(
            GRAPH, config, state=build_cluster(GRAPH, 4, seed=7)
        )
        np.testing.assert_array_equal(
            batch.results[0].estimate.counts, single.estimate.counts
        )
        assert (
            batch.results[0].report.network_bytes
            == single.report.network_bytes
        )

    @pytest.mark.parametrize(
        "config_kwargs",
        [dict(), dict(sync_mode="shared"), dict(scatter_mode="binomial")],
    )
    def test_dangling_vertices_parity(self, force_python, config_kwargs):
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3), (4, 0),
             (0, 4), (4, 3)],
            repair_dangling="none",
        )
        queries = [BatchQuery(seed=5 + s) for s in range(3)]
        kwargs = dict(
            graph=graph,
            machines=3,
            num_frogs=300,
            iterations=6,
            ps=0.2,
            seed=5,
        )
        kwargs.update(config_kwargs)
        compiled = _run(queries, kernel="compiled", **kwargs)
        fused = _run(queries, kernel="fused", **kwargs)
        _assert_bitwise(compiled, fused)
        if config_kwargs.get("scatter_mode", "multinomial") == "multinomial":
            # Multinomial scatter conserves the population even when
            # frogs idle on dangling rows (binomial may duplicate).
            for lane in compiled.results:
                assert lane.estimate.total_stopped == 300


# ----------------------------------------------------------------------
# Graceful degradation without Numba
# ----------------------------------------------------------------------
class TestFallback:
    @pytest.fixture
    def no_numba(self, monkeypatch):
        from repro.core.kernels import compiled

        monkeypatch.delenv("REPRO_COMPILED_FORCE", raising=False)
        monkeypatch.setattr(compiled, "HAVE_NUMBA", False)
        reset_fallback_warning()
        yield
        reset_fallback_warning()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError, match="kernel"):
            resolve_kernel("vectorized")

    def test_available_kernels_excludes_compiled(self, no_numba):
        assert available_kernels() == ("lane-loop", "fused")

    def test_available_kernels_with_force(self, force_python):
        assert available_kernels() == KERNEL_TIERS

    def test_fallback_warns_exactly_once(self, no_numba):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert resolve_kernel("compiled") == "fused"
            assert resolve_kernel("compiled") == "fused"
        fallback = [
            w for w in caught if issubclass(w.category, RuntimeWarning)
        ]
        assert len(fallback) == 1
        assert "accel" in str(fallback[0].message)

    def test_fallback_run_matches_fused(self, no_numba):
        queries = [BatchQuery(seed=4), BatchQuery(seed=5)]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            degraded = _run(queries, kernel="compiled")
        fused = _run(queries, kernel="fused")
        _assert_bitwise(degraded, fused)

    def test_masked_numba_import_never_raises(self):
        """Even a hard-masked ``import numba`` (fresh interpreter) must
        degrade to fused with a warning, not an ImportError."""
        code = (
            "import sys, warnings\n"
            "sys.modules['numba'] = None\n"
            "from repro.core.kernels import compiled, resolve_kernel\n"
            "assert not compiled.HAVE_NUMBA\n"
            "with warnings.catch_warnings(record=True) as caught:\n"
            "    warnings.simplefilter('always')\n"
            "    assert resolve_kernel('compiled') == 'fused'\n"
            "assert len(caught) == 1\n"
            "print('masked-ok')\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": "src",
                "REPRO_COMPILED_FORCE": "",
            },
            cwd=pathlib.Path(__file__).resolve().parent.parent,
        )
        assert result.returncode == 0, result.stderr
        assert "masked-ok" in result.stdout


# ----------------------------------------------------------------------
# int32 lane-key narrowing (property)
# ----------------------------------------------------------------------
class TestLaneKeyNarrowing:
    @given(
        num_lanes=st.integers(1, 512),
        num_vertices=st.integers(1, 1 << 40),
    )
    @settings(max_examples=120, deadline=None)
    def test_dtype_guard_trips_exactly_at_int32_span(
        self, num_lanes, num_vertices
    ):
        span = num_lanes * num_vertices
        dtype = lane_key_dtype(num_lanes, num_vertices)
        if span < 2**31:
            assert dtype == np.int32
            assert (
                lane_key_dtype(num_lanes, num_vertices, require_int32=True)
                == np.int32
            )
        else:
            assert dtype == np.int64
            with pytest.raises(OverflowError):
                lane_key_dtype(num_lanes, num_vertices, require_int32=True)

    @given(
        num_lanes=st.integers(1, 64),
        num_vertices=st.integers(1, 100_000),
        data=st.data(),
    )
    @settings(max_examples=80, deadline=None)
    def test_pack_roundtrips_against_int64_reference(
        self, num_lanes, num_vertices, data
    ):
        size = data.draw(st.integers(0, 50))
        lanes = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, num_lanes - 1),
                    min_size=size,
                    max_size=size,
                )
            ),
            dtype=np.int64,
        )
        verts = np.asarray(
            data.draw(
                st.lists(
                    st.integers(0, num_vertices - 1),
                    min_size=size,
                    max_size=size,
                )
            ),
            dtype=np.int64,
        )
        keys = pack_lane_keys(
            lanes, verts, num_vertices, num_lanes=num_lanes
        )
        reference = lanes * num_vertices + verts
        np.testing.assert_array_equal(keys.astype(np.int64), reference)
        back_lanes, back_verts = unpack_lane_keys(keys, num_vertices)
        np.testing.assert_array_equal(back_lanes, lanes)
        np.testing.assert_array_equal(back_verts, verts)
        expected = lane_key_dtype(num_lanes, num_vertices)
        assert keys.dtype == expected


# ----------------------------------------------------------------------
# Buffer arena accounting
# ----------------------------------------------------------------------
class TestBufferArena:
    def test_views_are_aligned_and_disjoint(self):
        arena = BufferArena(initial_bytes=1 << 12)
        a = arena.take(100, np.int64)
        b = arena.take((10, 7), np.float64)
        assert a.ctypes.data % 64 == 0
        assert b.ctypes.data % 64 == 0
        a[:] = 1
        b[:] = 2.0
        assert int(a.sum()) == 100  # b never overwrote a
        assert b.shape == (10, 7)

    def test_growth_keeps_old_views_alive(self):
        arena = BufferArena(initial_bytes=256)
        early = arena.take(16, np.int64)
        early[:] = np.arange(16)
        late = arena.take(4096, np.int64)  # forces a grow
        late[:] = -1
        np.testing.assert_array_equal(early, np.arange(16))
        assert arena.grows == 1

    def test_peak_and_demand_accounting(self):
        arena = BufferArena(initial_bytes=1 << 16)
        for _ in range(3):
            arena.reset()
            arena.take(1000, np.int64)
            arena.take(500, np.int32)
        stats = arena.stats()
        assert stats["alloc_demand_bytes"] == 3 * (8000 + 2000)
        assert stats["scratch_peak_bytes"] <= stats["capacity_bytes"]
        # Reuse means peak stays one superstep's worth, while the
        # pre-arena demand keeps accumulating.
        assert stats["scratch_peak_bytes"] < stats["alloc_demand_bytes"]
        assert stats["resets"] == 3

    def test_persistent_survives_reset_and_regrows_zeroed(self):
        arena = BufferArena()
        seen = arena.persistent("seen", 128, np.uint8)
        seen[:] = 1
        arena.reset()
        assert arena.persistent("seen", 128, np.uint8) is seen
        bigger = arena.persistent("seen", 256, np.uint8)
        assert bigger.size == 256
        assert int(bigger.sum()) == 0  # regrown buffers come back zeroed
        assert arena.stats()["persistent_bytes"] == 256


# ----------------------------------------------------------------------
# CSR tile planning
# ----------------------------------------------------------------------
class TestPlanTiles:
    def test_bounds_partition_rows(self):
        weights = np.array([10, 20, 30, 5, 100, 1], dtype=np.int64)
        bounds = plan_tiles(weights, budget=40)
        assert bounds[0] == 0 and bounds[-1] == len(weights)
        assert np.all(np.diff(bounds) > 0)
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            # Either under budget, or a single oversized row.
            assert hi - lo == 1 or int(weights[lo:hi].sum()) <= 40

    def test_oversized_row_gets_own_tile(self):
        bounds = plan_tiles(np.array([1000], dtype=np.int64), budget=8)
        np.testing.assert_array_equal(bounds, [0, 1])

    def test_empty_input(self):
        np.testing.assert_array_equal(
            plan_tiles(np.zeros(0, dtype=np.int64), budget=64), [0]
        )

    def test_plan_is_traversal_only(self, force_python, monkeypatch):
        """A pathologically tiny tile budget must not change results."""
        queries = [BatchQuery(seed=4), BatchQuery(seed=5)]
        fused = _run(queries, kernel="fused")
        monkeypatch.setenv("REPRO_L2_BYTES", "1")
        compiled = _run(queries, kernel="compiled")
        _assert_bitwise(compiled, fused)


# ----------------------------------------------------------------------
# Serving backends
# ----------------------------------------------------------------------
class TestServingParity:
    def _queries(self):
        from repro.serving import RankingQuery

        return [
            RankingQuery(seeds=(7,), k=10),
            RankingQuery(seeds=(11, 42), k=10),
        ]

    def test_sharded_backend_compiled_matches_fused(self, force_python):
        from repro.serving import ShardedBackend

        config = FrogWildConfig(num_frogs=2000, iterations=4, seed=5)
        fused = ShardedBackend(
            GRAPH, num_shards=2, num_machines=8, seed=0, kernel="fused"
        ).run_batch(config, self._queries())
        compiled = ShardedBackend(
            GRAPH, num_shards=2, num_machines=8, seed=0, kernel="compiled"
        ).run_batch(config, self._queries())
        for lane_c, lane_f in zip(compiled.lanes, fused.lanes):
            np.testing.assert_array_equal(
                lane_c.estimate.counts, lane_f.estimate.counts
            )
            assert (
                lane_c.report.network_bytes == lane_f.report.network_bytes
            )

    def test_process_backend_compiled_matches_fused(self, force_python):
        """The forced-python env propagates to worker processes, so the
        compiled tier runs inside every worker and still merges to the
        fused golden counters."""
        from repro.serving import ProcessPoolBackend, ShardedBackend

        config = FrogWildConfig(num_frogs=2000, iterations=4, seed=5)
        fused = ShardedBackend(
            GRAPH, num_shards=2, num_machines=8, seed=0, kernel="fused"
        ).run_batch(config, self._queries())
        with ProcessPoolBackend(
            GRAPH, num_shards=2, num_machines=8, seed=0, kernel="compiled"
        ) as backend:
            compiled = backend.run_batch(config, self._queries())
        for lane_c, lane_f in zip(compiled.lanes, fused.lanes):
            np.testing.assert_array_equal(
                lane_c.estimate.counts, lane_f.estimate.counts
            )
            assert (
                lane_c.report.network_bytes == lane_f.report.network_bytes
            )
