"""Unit tests for the forward local-push PageRank baseline."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import GraphBuilder, cycle_graph
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank, forward_push_pagerank


class TestValidation:
    def test_rejects_bad_eps(self, cycle10):
        with pytest.raises(ConfigError):
            forward_push_pagerank(cycle10, eps=0.0)

    def test_rejects_bad_teleport(self, cycle10):
        with pytest.raises(ConfigError):
            forward_push_pagerank(cycle10, p_teleport=1.0)

    def test_rejects_bad_max_pushes(self, cycle10):
        with pytest.raises(ConfigError):
            forward_push_pagerank(cycle10, max_pushes=0)

    def test_rejects_out_of_range_seed(self, cycle10):
        with pytest.raises(ConfigError):
            forward_push_pagerank(cycle10, source=10)

    def test_rejects_non_distribution_source(self, cycle10):
        with pytest.raises(ConfigError):
            forward_push_pagerank(cycle10, source=np.ones(10))

    def test_rejects_misshaped_source(self, cycle10):
        with pytest.raises(ConfigError):
            forward_push_pagerank(cycle10, source=np.array([1.0]))


class TestInvariants:
    def test_mass_conservation(self, cycle10):
        """estimate + residual account for exactly the unit source."""
        result = forward_push_pagerank(cycle10, eps=1e-3)
        total = result.estimate.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_residuals_below_threshold_on_convergence(self, cycle10):
        eps = 1e-3
        result = forward_push_pagerank(cycle10, eps=eps)
        assert result.converged
        out_deg = np.maximum(np.asarray(cycle10.out_degree()), 1)
        assert np.all(result.residual < eps * out_deg + 1e-12)

    def test_estimate_underestimates_pi(self, complete5):
        """Forward push only ever adds absorbed mass: pointwise <= pi."""
        result = forward_push_pagerank(complete5, eps=1e-6)
        pi = exact_pagerank(complete5)
        assert np.all(result.estimate <= pi + 1e-6)

    def test_nonnegative_outputs(self, star8):
        result = forward_push_pagerank(star8, eps=1e-4)
        assert result.estimate.min() >= 0
        assert result.residual.min() >= 0


class TestAccuracy:
    def test_converges_to_exact_on_cycle(self):
        graph = cycle_graph(25)
        result = forward_push_pagerank(graph, eps=1e-9)
        pi = exact_pagerank(graph)
        # Cycle PageRank is uniform; tiny eps recovers it closely.
        assert np.abs(result.estimate - pi).max() < 1e-6

    def test_smaller_eps_is_more_accurate(self, small_twitter):
        pi = exact_pagerank(small_twitter)
        coarse = forward_push_pagerank(small_twitter, eps=1e-3)
        fine = forward_push_pagerank(small_twitter, eps=1e-6)
        err_coarse = np.abs(coarse.estimate - pi).sum()
        err_fine = np.abs(fine.estimate - pi).sum()
        assert err_fine < err_coarse

    def test_top_k_recovery(self, small_twitter):
        pi = exact_pagerank(small_twitter)
        result = forward_push_pagerank(small_twitter, eps=1e-6)
        mass = normalized_mass_captured(result.estimate, pi, k=50)
        assert mass > 0.99

    def test_work_grows_with_precision(self, small_twitter):
        coarse = forward_push_pagerank(small_twitter, eps=1e-3)
        fine = forward_push_pagerank(small_twitter, eps=1e-5)
        assert fine.pushes > coarse.pushes

    def test_mass_accounted_increases_with_precision(self, small_twitter):
        coarse = forward_push_pagerank(small_twitter, eps=1e-3)
        fine = forward_push_pagerank(small_twitter, eps=1e-5)
        assert fine.mass_accounted() > coarse.mass_accounted()


class TestPersonalized:
    def test_one_hot_source_matches_exact_ppr(self):
        graph = cycle_graph(12)
        seed = 3
        result = forward_push_pagerank(graph, eps=1e-10, source=seed)
        personalization = np.zeros(12)
        personalization[seed] = 1.0
        ppr = exact_pagerank(graph, personalization=personalization)
        assert np.abs(result.estimate - ppr).max() < 1e-6

    def test_seed_has_highest_score(self, small_twitter):
        result = forward_push_pagerank(small_twitter, eps=1e-5, source=7)
        assert int(np.argmax(result.estimate)) == 7

    def test_array_source(self, cycle10):
        source = np.zeros(10)
        source[[2, 5]] = 0.5
        result = forward_push_pagerank(cycle10, eps=1e-8, source=source)
        total = result.estimate.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)


class TestTermination:
    def test_max_pushes_cap(self, small_twitter):
        result = forward_push_pagerank(small_twitter, eps=1e-8, max_pushes=10)
        assert not result.converged
        assert result.pushes == 10

    def test_dangling_vertices_absorb(self):
        """Push on a graph with a sink: no crash, mass accounted."""
        graph = GraphBuilder(
            num_vertices=3, repair_dangling="none"
        ).add_edges([(0, 1), (0, 2), (1, 2)]).build()
        result = forward_push_pagerank(graph, eps=1e-6)
        total = result.estimate.sum() + result.residual.sum()
        assert total == pytest.approx(1.0, abs=1e-9)
