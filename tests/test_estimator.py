"""Unit tests for the PageRank estimator and top-k selection."""

import numpy as np
import pytest

from repro.core import PageRankEstimate, top_k_indices
from repro.errors import ConfigError


class TestTopK:
    def test_basic_order(self):
        values = np.array([0.1, 0.5, 0.3, 0.9])
        assert list(top_k_indices(values, 2)) == [3, 1]

    def test_ties_break_by_index(self):
        values = np.array([0.5, 0.5, 0.5])
        assert list(top_k_indices(values, 2)) == [0, 1]

    def test_k_larger_than_n(self):
        values = np.array([2.0, 1.0])
        assert list(top_k_indices(values, 10)) == [0, 1]

    def test_k_zero(self):
        assert top_k_indices(np.array([1.0]), 0).size == 0

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigError):
            top_k_indices(np.array([1.0]), -1)


class TestPageRankEstimate:
    def test_vector_normalization(self):
        est = PageRankEstimate(np.array([2, 3, 5]), num_frogs=10)
        np.testing.assert_allclose(est.vector(), [0.2, 0.3, 0.5])

    def test_vector_with_lost_frogs(self):
        # Binomial scatter can lose frogs; vector sums below 1.
        est = PageRankEstimate(np.array([2, 3]), num_frogs=10)
        assert est.vector().sum() == pytest.approx(0.5)
        np.testing.assert_allclose(est.distribution().sum(), 1.0)

    def test_distribution_degenerate(self):
        est = PageRankEstimate(np.zeros(4, dtype=np.int64), num_frogs=5)
        np.testing.assert_allclose(est.distribution(), 0.25)

    def test_top_k(self):
        est = PageRankEstimate(np.array([0, 7, 3, 9]), num_frogs=19)
        assert list(est.top_k(2)) == [3, 1]

    def test_counters_exposed(self):
        counts = np.array([1, 2, 3])
        est = PageRankEstimate(counts, num_frogs=6)
        assert est.total_stopped == 6
        assert est.num_vertices == 3
        assert est.num_frogs == 6
        np.testing.assert_array_equal(est.counts, counts)

    def test_rejects_negative_counts(self):
        with pytest.raises(ConfigError):
            PageRankEstimate(np.array([1, -1]), num_frogs=2)

    def test_rejects_bad_frogs(self):
        with pytest.raises(ConfigError):
            PageRankEstimate(np.array([1]), num_frogs=0)

    def test_rejects_matrix_counts(self):
        with pytest.raises(ConfigError):
            PageRankEstimate(np.zeros((2, 2)), num_frogs=1)
