"""Cross-module integration tests: the paper's claims end to end."""

import numpy as np
import pytest

from repro import (
    FrogWildConfig,
    exact_pagerank,
    graphlab_pagerank,
    normalized_mass_captured,
    run_frogwild,
    twitter_like,
)
from repro.engine import build_cluster
from repro.metrics import exact_identification
from repro.pagerank import monte_carlo_pagerank


@pytest.fixture(scope="module")
def graph():
    return twitter_like(n=4000, seed=17)


@pytest.fixture(scope="module")
def truth(graph):
    return exact_pagerank(graph)


class TestHeadlineClaims:
    """The paper's abstract, quantified at simulator scale."""

    def test_frogwild_much_less_network_than_exact(self, graph):
        exact = graphlab_pagerank(graph, num_machines=8, tolerance=1e-9)
        frog = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=4000, iterations=4, ps=0.7, seed=0),
            num_machines=8,
        )
        assert frog.report.network_bytes * 10 < exact.report.network_bytes

    def test_frogwild_faster_per_iteration_than_exact(self, graph):
        exact = graphlab_pagerank(graph, num_machines=8, tolerance=1e-9)
        frog = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=4000, iterations=4, ps=0.7, seed=0),
            num_machines=8,
        )
        assert (
            frog.report.time_per_iteration_s
            < exact.report.time_per_iteration_s
        )

    def test_accuracy_comparable_to_reduced_iteration_pr(self, graph, truth):
        one_iter = graphlab_pagerank(graph, num_machines=8, iterations=1)
        frog = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=8000, iterations=4, ps=1.0, seed=0),
            num_machines=8,
        )
        frog_mass = normalized_mass_captured(
            frog.estimate.vector(), truth, 50
        )
        pr_mass = normalized_mass_captured(one_iter.ranks, truth, 50)
        assert frog_mass > pr_mass - 0.05

    def test_partial_sync_trades_accuracy_for_traffic(self, graph, truth):
        """Decreasing ps lowers traffic; accuracy degrades gracefully."""
        results = {}
        for ps in (1.0, 0.4, 0.1):
            res = run_frogwild(
                graph,
                FrogWildConfig(num_frogs=8000, iterations=4, ps=ps, seed=0),
                num_machines=8,
            )
            results[ps] = (
                res.report.network_bytes,
                normalized_mass_captured(res.estimate.vector(), truth, 50),
            )
        assert results[1.0][0] > results[0.4][0] > results[0.1][0]
        assert results[0.1][1] > 0.8  # still "reasonable" per the paper
        assert results[1.0][1] >= results[0.1][1] - 0.02


class TestConsistencyAcrossComponents:
    def test_frogwild_agrees_with_montecarlo(self, graph, truth):
        """Two independent random-walk implementations, one answer."""
        mc = monte_carlo_pagerank(graph, walkers_per_vertex=5, seed=0)
        frog = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=20_000, iterations=10, seed=0),
            num_machines=4,
        )
        top_mc = set(np.argsort(-mc)[:30].tolist())
        top_fw = set(frog.estimate.top_k(30).tolist())
        assert len(top_mc & top_fw) >= 20

    def test_partitioning_does_not_change_estimates_much(self, graph, truth):
        """ps=1 estimates are unbiased regardless of the vertex-cut."""
        masses = []
        for machines in (2, 16):
            res = run_frogwild(
                graph,
                FrogWildConfig(num_frogs=8000, iterations=4, seed=0),
                num_machines=machines,
            )
            masses.append(
                normalized_mass_captured(res.estimate.vector(), truth, 50)
            )
        assert abs(masses[0] - masses[1]) < 0.05

    def test_full_pipeline_reproducible(self, graph):
        def run_once():
            state = build_cluster(graph, num_machines=6, seed=3)
            res = run_frogwild(
                graph,
                FrogWildConfig(num_frogs=3000, iterations=3, ps=0.5, seed=3),
                state=state,
            )
            return (
                res.estimate.counts.tobytes(),
                res.report.network_bytes,
                res.report.total_time_s,
            )

        assert run_once() == run_once()

    def test_exact_id_and_mass_move_together(self, graph, truth):
        res = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=12_000, iterations=5, seed=1),
            num_machines=8,
        )
        vec = res.estimate.vector()
        assert normalized_mass_captured(vec, truth, 50) > 0.9
        assert exact_identification(vec, truth, 50) > 0.6
