"""Unit tests for master/mirror replication tables."""

import numpy as np
import pytest

from repro.cluster import EdgePartition, RandomVertexCut, ReplicationTable
from repro.errors import PartitionError
from repro.graph import from_edges


@pytest.fixture
def tiny_table():
    """Four vertices, hand-placed edges on 2 machines.

    Edges (CSR order): (0,1) m0, (0,2) m1, (1,2) m0, (2,3) m1, (3,0) m0.
    """
    graph = from_edges([(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)])
    partition = EdgePartition(np.array([0, 1, 0, 1, 0]), num_machines=2)
    return graph, ReplicationTable(graph, partition, seed=0)


class TestPlacement:
    def test_replicas_from_incident_edges(self, tiny_table):
        graph, table = tiny_table
        # Vertex 0: edges (0,1)@m0, (0,2)@m1, (3,0)@m0 -> both machines.
        assert list(table.replicas_of(0)) == [0, 1]
        # Vertex 1: edges (0,1)@m0, (1,2)@m0 -> machine 0 only.
        assert list(table.replicas_of(1)) == [0]

    def test_master_is_a_replica(self, tiny_table):
        _, table = tiny_table
        for v in range(4):
            assert table.master_of(v) in table.replicas_of(v)

    def test_mirrors_exclude_master(self, tiny_table):
        _, table = tiny_table
        for v in range(4):
            mirrors = table.mirrors_of(v)
            assert table.master_of(v) not in mirrors
            assert len(mirrors) == len(table.replicas_of(v)) - 1

    def test_replica_counts(self, tiny_table):
        _, table = tiny_table
        assert list(table.replica_counts) == [2, 1, 2, 2]

    def test_replication_factor(self, tiny_table):
        _, table = tiny_table
        assert table.replication_factor() == pytest.approx(7 / 4)

    def test_masters_on_partition_of_vertices(self, tiny_table):
        _, table = tiny_table
        all_masters = np.concatenate(
            [table.masters_on(p) for p in range(2)]
        )
        assert sorted(all_masters.tolist()) == [0, 1, 2, 3]

    def test_mismatched_partition_rejected(self):
        graph = from_edges([(0, 1), (1, 0)])
        bad = EdgePartition(np.array([0]), num_machines=2)
        with pytest.raises(PartitionError, match="does not match"):
            ReplicationTable(graph, bad)


class TestEdgeGroups:
    def test_out_groups_partition_out_edges(self, tiny_table):
        graph, table = tiny_table
        for v in range(4):
            machines, targets = table.out_edge_groups(v)
            grouped = np.sort(np.concatenate(targets)) if targets else []
            assert list(grouped) == sorted(graph.successors(v).tolist())
            assert len(set(machines.tolist())) == len(machines)

    def test_in_groups_partition_in_edges(self, tiny_table):
        graph, table = tiny_table
        for v in range(4):
            machines, sources = table.in_edge_groups(v)
            grouped = np.sort(np.concatenate(sources)) if sources else []
            assert list(grouped) == sorted(graph.predecessors(v).tolist())

    def test_out_group_machines_host_the_edges(self, tiny_table):
        graph, table = tiny_table
        # Vertex 0 out-edges: (0,1)@m0, (0,2)@m1.
        machines, targets = table.out_edge_groups(0)
        by_machine = {int(m): t.tolist() for m, t in zip(machines, targets)}
        assert by_machine == {0: [1], 1: [2]}

    def test_out_group_count(self, tiny_table):
        _, table = tiny_table
        assert table.out_group_count(0) == 2
        assert table.out_group_count(1) == 1

    def test_edge_anchor_matches_ptr(self, small_twitter):
        part = RandomVertexCut(seed=1).partition(small_twitter, 4)
        table = ReplicationTable(small_twitter, part)
        anchor = table.out_groups.edge_anchor()
        assert anchor.size == small_twitter.num_edges
        counts = np.bincount(anchor, minlength=small_twitter.num_vertices)
        np.testing.assert_array_equal(
            counts, np.diff(table.out_groups.anchor_edge_ptr)
        )


class TestSyncRecordMatrix:
    def test_matches_bruteforce(self, small_twitter):
        part = RandomVertexCut(seed=2).partition(small_twitter, 4)
        table = ReplicationTable(small_twitter, part, seed=0)
        rng = np.random.default_rng(0)
        changed = rng.random(small_twitter.num_vertices) < 0.3

        records = table.sync_record_matrix(changed)
        expected = np.zeros((4, 4), dtype=np.int64)
        for v in np.flatnonzero(changed):
            master = table.master_of(v)
            for mirror in table.mirrors_of(v):
                expected[master, mirror] += 1
        np.testing.assert_array_equal(records, expected)

    def test_no_changes_no_records(self, small_twitter):
        part = RandomVertexCut(seed=2).partition(small_twitter, 4)
        table = ReplicationTable(small_twitter, part)
        records = table.sync_record_matrix(
            np.zeros(small_twitter.num_vertices, dtype=bool)
        )
        assert records.sum() == 0
