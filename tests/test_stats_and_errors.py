"""Coverage for engine stats, run reports and the error hierarchy."""

import pytest

from repro.engine import EngineStats, RunReport, StepRecord
from repro.errors import (
    ConfigError,
    EngineError,
    ExperimentError,
    GraphError,
    GraphFormatError,
    PartitionError,
    ReproError,
)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error",
        [
            GraphError,
            GraphFormatError,
            PartitionError,
            EngineError,
            ConfigError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_repro_error(self, error):
        assert issubclass(error, ReproError)
        with pytest.raises(ReproError):
            raise error("boom")

    def test_format_error_is_graph_error(self):
        assert issubclass(GraphFormatError, GraphError)

    def test_catching_base_does_not_mask_others(self):
        with pytest.raises(ValueError):
            try:
                raise ValueError("not ours")
            except ReproError:  # pragma: no cover - must not trigger
                pytest.fail("ReproError must not catch ValueError")


class TestEngineStats:
    def test_accumulation(self):
        stats = EngineStats()
        stats.record_step(active=10, bytes_sent=100, cpu_ops=5, sim_seconds=0.5)
        stats.record_step(active=3, bytes_sent=50, cpu_ops=2, sim_seconds=0.25)
        assert stats.num_supersteps == 2
        assert stats.total_bytes() == 150
        assert stats.total_cpu_ops() == 7
        assert stats.total_seconds() == pytest.approx(0.75)
        assert stats.seconds_per_step() == pytest.approx(0.375)

    def test_step_indices(self):
        stats = EngineStats()
        for _ in range(3):
            stats.record_step(0, 0, 0, 0.0)
        assert [s.step for s in stats.steps] == [0, 1, 2]

    def test_empty(self):
        stats = EngineStats()
        assert stats.total_bytes() == 0
        assert stats.seconds_per_step() == 0.0

    def test_records_are_frozen(self):
        record = StepRecord(0, 1, 2, 3, 4.0)
        with pytest.raises(Exception):
            record.active = 99


class TestRunReport:
    def test_as_dict_merges_extra(self):
        report = RunReport(
            algorithm="x",
            num_machines=4,
            supersteps=2,
            total_time_s=1.0,
            time_per_iteration_s=0.5,
            network_bytes=10,
            cpu_seconds=0.1,
            extra={"ps": 0.7},
        )
        d = report.as_dict()
        assert d["algorithm"] == "x"
        assert d["ps"] == 0.7
        assert d["network_bytes"] == 10

    def test_extra_defaults_empty(self):
        report = RunReport("y", 1, 1, 0.0, 0.0, 0, 0.0)
        assert report.extra == {}
        assert "algorithm" in report.as_dict()
