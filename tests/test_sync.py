"""Unit tests for the randomized mirror-synchronization patch."""

import numpy as np
import pytest

from repro.engine import MirrorSynchronizer, build_cluster
from repro.errors import EngineError


@pytest.fixture
def state(small_twitter):
    return build_cluster(small_twitter, num_machines=4, seed=0)


def _vertices_with_mirrors(state, count=200):
    repl = state.replication
    has_mirror = repl.replica_counts > 1
    return np.flatnonzero(has_mirror)[:count]


class TestCoins:
    def test_ps1_syncs_every_mirror(self, state):
        sync = MirrorSynchronizer(state, 1.0, np.random.default_rng(0))
        vertices = _vertices_with_mirrors(state)
        fresh = sync.synchronize(vertices)
        repl = state.replication
        for row, v in enumerate(vertices):
            assert set(np.flatnonzero(fresh[row])) == set(repl.replicas_of(v))

    def test_ps0_syncs_only_master(self, state):
        sync = MirrorSynchronizer(state, 0.0, np.random.default_rng(0))
        vertices = _vertices_with_mirrors(state)
        fresh = sync.synchronize(vertices)
        repl = state.replication
        for row, v in enumerate(vertices):
            assert list(np.flatnonzero(fresh[row])) == [repl.master_of(v)]

    def test_fraction_close_to_ps(self, state):
        ps = 0.4
        sync = MirrorSynchronizer(state, ps, np.random.default_rng(0))
        repl = state.replication
        vertices = _vertices_with_mirrors(state, count=10_000)
        fresh = sync.synchronize(vertices)
        masters = repl.masters[vertices]
        fresh_mirrors = fresh.sum() - vertices.size  # subtract masters
        total_mirrors = (repl.replica_counts[vertices] - 1).sum()
        observed = fresh_mirrors / total_mirrors
        assert observed == pytest.approx(ps, abs=0.03)
        # Master column is always fresh.
        assert np.all(fresh[np.arange(vertices.size), masters])

    def test_empty_vertex_list(self, state):
        sync = MirrorSynchronizer(state, 0.5, np.random.default_rng(0))
        fresh = sync.synchronize(np.array([], dtype=np.int64))
        assert fresh.shape == (0, state.num_machines)


class TestAccounting:
    def test_ps1_record_count_matches_mirrors(self, state):
        sync = MirrorSynchronizer(state, 1.0, np.random.default_rng(0))
        vertices = _vertices_with_mirrors(state, count=500)
        sync.synchronize(vertices)
        repl = state.replication
        expected_records = int((repl.replica_counts[vertices] - 1).sum())
        model = state.fabric.size_model
        # Every sync record costs record_bytes; headers per machine pair.
        snapshot = state.fabric.snapshot()
        sync_bytes = snapshot.bytes_for("sync")
        header_bytes = (
            snapshot.messages_by_kind["sync"] * model.message_header_bytes
        )
        assert sync_bytes - header_bytes == expected_records * model.record_bytes()

    def test_lower_ps_less_traffic(self, small_twitter):
        totals = []
        for ps in (1.0, 0.3):
            state = build_cluster(small_twitter, num_machines=4, seed=0)
            sync = MirrorSynchronizer(state, ps, np.random.default_rng(1))
            sync.synchronize(_vertices_with_mirrors(state, count=1000))
            totals.append(state.fabric.total_bytes())
        assert totals[1] < 0.6 * totals[0]

    def test_force_sync_bills_mirrors_only(self, state):
        sync = MirrorSynchronizer(state, 0.0, np.random.default_rng(0))
        repl = state.replication
        vertices = _vertices_with_mirrors(state, count=10)
        mirrors = np.array(
            [repl.mirrors_of(v)[0] for v in vertices], dtype=np.int64
        )
        sync.force_sync(vertices, mirrors)
        assert state.fabric.total_bytes() > 0

        # Forcing the master machine is free.
        state2_masters = repl.masters[vertices].astype(np.int64)
        before = state.fabric.total_bytes()
        sync.force_sync(vertices, state2_masters)
        assert state.fabric.total_bytes() == before

    def test_force_sync_misalignment_rejected(self, state):
        sync = MirrorSynchronizer(state, 0.5, np.random.default_rng(0))
        with pytest.raises(EngineError):
            sync.force_sync(np.array([1, 2]), np.array([0]))


class TestValidation:
    def test_ps_out_of_range(self, state):
        with pytest.raises(EngineError, match="ps"):
            MirrorSynchronizer(state, 1.5, np.random.default_rng(0))
        with pytest.raises(EngineError, match="ps"):
            MirrorSynchronizer(state, -0.1, np.random.default_rng(0))
