"""Tests for deadline-based batch scheduling and coalescer ordering.

Everything runs under a virtual clock — no sleeps, no background
threads — so deadline semantics are pinned down deterministically.
"""

from time import sleep as time_sleep

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.errors import ConfigError
from repro.serving import (
    BatchScheduler,
    QueryCoalescer,
    RankingQuery,
    RankingService,
    VirtualClock,
)

DEFAULT = FrogWildConfig(seed=0)
FAST = FrogWildConfig(num_frogs=100, iterations=2, seed=0)
SLOW = FrogWildConfig(num_frogs=100, iterations=9, seed=0)


class TestCoalescerOrdering:
    def test_interleaved_configs_stay_fifo_within_config(self):
        """Mixed per-query overrides interleaved at add time drain as
        config-pure batches that each preserve arrival order."""
        coalescer = QueryCoalescer(max_batch_size=8)
        plan = [
            (0, None), (1, FAST), (2, None), (3, SLOW), (4, FAST),
            (5, None), (6, SLOW), (7, FAST),
        ]
        for vertex, config in plan:
            coalescer.add(RankingQuery(seeds=(vertex,), config=config), DEFAULT)
        batches = coalescer.drain()
        assert len(batches) == 3
        by_config = {config: queries for config, queries in batches}
        assert [q.seeds[0] for q in by_config[DEFAULT]] == [0, 2, 5]
        assert [q.seeds[0] for q in by_config[FAST]] == [1, 4, 7]
        assert [q.seeds[0] for q in by_config[SLOW]] == [3, 6]
        assert coalescer.pending_count() == 0

    def test_equal_valued_config_objects_share_a_batch(self):
        """Config purity is by value: two distinct-but-equal override
        instances coalesce into one batch (FrogWildConfig is a frozen
        dataclass, so equality and hashing are structural)."""
        coalescer = QueryCoalescer(max_batch_size=8)
        first = FrogWildConfig(num_frogs=500, seed=3)
        second = FrogWildConfig(num_frogs=500, seed=3)
        assert first is not second
        coalescer.add(RankingQuery(seeds=(1,), config=first), DEFAULT)
        coalescer.add(RankingQuery(seeds=(2,), config=second), DEFAULT)
        batches = coalescer.drain()
        assert len(batches) == 1
        assert [q.seeds[0] for q in batches[0][1]] == [1, 2]

    def test_oversize_group_slices_preserve_order(self):
        coalescer = QueryCoalescer(max_batch_size=3)
        for vertex in range(8):
            coalescer.add(RankingQuery(seeds=(vertex,)), DEFAULT)
        batches = coalescer.drain()
        assert [len(queries) for _, queries in batches] == [3, 3, 2]
        order = [q.seeds[0] for _, queries in batches for q in queries]
        assert order == list(range(8))

    def test_pop_full_leaves_partial_remainder_queued(self):
        coalescer = QueryCoalescer(max_batch_size=3)
        for vertex in range(7):
            coalescer.add(RankingQuery(seeds=(vertex,)), DEFAULT)
        full = coalescer.pop_full_entries()
        assert [len(entries) for _, entries in full] == [3, 3]
        assert coalescer.pending_count() == 1
        leftover = coalescer.drain()
        assert [q.seeds[0] for _, queries in leftover for q in queries] == [6]

    def test_due_entries_and_next_deadline(self):
        coalescer = QueryCoalescer(max_batch_size=8)
        coalescer.add(RankingQuery(seeds=(1,)), DEFAULT, arrival=10.0)
        coalescer.add(RankingQuery(seeds=(2,)), DEFAULT, arrival=11.0)
        coalescer.add(RankingQuery(seeds=(3,), config=FAST), DEFAULT,
                      arrival=12.0)
        # Deadlines anchor on each group's oldest entry.
        assert coalescer.next_deadline(5.0) == 15.0
        assert coalescer.pop_due_entries(14.9, 5.0) == []
        due = coalescer.pop_due_entries(15.0, 5.0)
        assert len(due) == 1
        config, entries = due[0]
        assert config == DEFAULT
        # The whole group rides, including the query that arrived later.
        assert [entry.query.seeds[0] for entry in entries] == [1, 2]
        assert coalescer.next_deadline(5.0) == 17.0
        assert coalescer.pending_count() == 1

    def test_unstamped_entry_makes_its_group_due_immediately(self):
        """An arrival-less entry is 'due at once' even when queued
        behind timed entries of the same config group."""
        coalescer = QueryCoalescer(max_batch_size=8)
        coalescer.add(RankingQuery(seeds=(1,)), DEFAULT, arrival=10.0)
        coalescer.add(RankingQuery(seeds=(2,)), DEFAULT)  # no arrival
        assert coalescer.next_deadline(5.0) == float("-inf")
        due = coalescer.pop_due_entries(10.1, 5.0)
        assert len(due) == 1
        assert [e.query.seeds[0] for e in due[0][1]] == [1, 2]

    def test_payloads_survive_the_queue(self):
        coalescer = QueryCoalescer(max_batch_size=2)
        coalescer.add(RankingQuery(seeds=(1,)), DEFAULT, payload="a")
        coalescer.add(RankingQuery(seeds=(2,)), DEFAULT, payload="b")
        [(_, entries)] = coalescer.pop_full_entries()
        assert [entry.payload for entry in entries] == ["a", "b"]


class TestBatchScheduler:
    def make(self, max_batch_size=4, max_delay_s=5.0):
        dispatched = []
        clock = VirtualClock()
        scheduler = BatchScheduler(
            lambda config, entries: dispatched.append((config, entries)),
            QueryCoalescer(max_batch_size),
            max_delay_s=max_delay_s,
            clock=clock,
        )
        return scheduler, clock, dispatched

    def test_nothing_dispatches_before_the_deadline(self):
        scheduler, clock, dispatched = self.make()
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        clock.advance(4.9)
        assert scheduler.poll() == 0
        assert dispatched == []
        assert scheduler.pending_count() == 1

    def test_deadline_expiry_dispatches_the_partial_batch(self):
        scheduler, clock, dispatched = self.make()
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        clock.advance(2.0)
        scheduler.submit(RankingQuery(seeds=(2,)), DEFAULT)
        clock.advance(3.0)  # oldest has now waited exactly 5.0
        assert scheduler.poll() == 1
        [(config, entries)] = dispatched
        assert config == DEFAULT
        assert [entry.query.seeds[0] for entry in entries] == [1, 2]
        assert scheduler.stats.deadline_dispatches == 1
        assert scheduler.pending_count() == 0

    def test_full_batch_dispatches_inline_at_submit(self):
        scheduler, _, dispatched = self.make(max_batch_size=3)
        for vertex in range(3):
            scheduler.submit(RankingQuery(seeds=(vertex,)), DEFAULT)
        # No poll needed: the fill trigger fired inside the last submit.
        assert len(dispatched) == 1
        assert scheduler.stats.fill_dispatches == 1
        assert scheduler.pending_count() == 0

    def test_next_deadline_tracks_oldest_pending_group(self):
        scheduler, clock, _ = self.make()
        assert scheduler.next_deadline() is None
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        assert scheduler.next_deadline() == pytest.approx(5.0)
        clock.advance(1.0)
        scheduler.submit(RankingQuery(seeds=(2,), config=FAST), DEFAULT)
        # The default-config group is still the oldest.
        assert scheduler.next_deadline() == pytest.approx(5.0)

    def test_flush_ignores_deadlines(self):
        scheduler, _, dispatched = self.make()
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        scheduler.submit(RankingQuery(seeds=(2,), config=FAST), DEFAULT)
        assert scheduler.flush() == 2
        assert len(dispatched) == 2
        assert scheduler.stats.flush_dispatches == 2
        assert scheduler.pending_count() == 0

    def test_no_deadline_means_fill_or_flush_only(self):
        scheduler, clock, dispatched = self.make(max_delay_s=None)
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        clock.advance(1e9)
        assert scheduler.poll() == 0
        assert dispatched == []
        assert scheduler.flush() == 1

    def test_one_failing_batch_does_not_strand_its_siblings(self):
        """Batches already popped from the coalescer all dispatch even
        when an earlier one raises — otherwise their submitters' futures
        would hang forever.  The first error resurfaces afterwards."""
        dispatched = []

        def dispatch(config, entries):
            if config == FAST:
                raise RuntimeError("shard meltdown")
            dispatched.append(config)

        scheduler = BatchScheduler(dispatch, QueryCoalescer(4))
        scheduler.submit(RankingQuery(seeds=(1,), config=FAST), DEFAULT)
        scheduler.submit(RankingQuery(seeds=(2,)), DEFAULT)
        scheduler.submit(RankingQuery(seeds=(3,), config=SLOW), DEFAULT)
        with pytest.raises(RuntimeError, match="shard meltdown"):
            scheduler.flush()
        # The two healthy batches still ran, and stats counted all 3.
        assert dispatched == [DEFAULT, SLOW]
        assert scheduler.stats.flush_dispatches == 3
        assert scheduler.pending_count() == 0

    def test_background_thread_survives_a_dispatch_error(self):
        """A failing deadline dispatch must not kill the loop: the
        error is parked on ``last_error`` and later submissions still
        dispatch on their deadlines."""
        import threading

        dispatched = threading.Event()

        def dispatch(config, entries):
            if entries[0].query.seeds == (666,):
                raise RuntimeError("poison query")
            dispatched.set()

        scheduler = BatchScheduler(
            dispatch, QueryCoalescer(4), max_delay_s=0.005
        )
        scheduler.start()
        try:
            scheduler.submit(RankingQuery(seeds=(666,)), DEFAULT)
            for _ in range(1000):
                if scheduler.last_error is not None:
                    break
                time_sleep(0.005)
            assert isinstance(scheduler.last_error, RuntimeError)
            assert scheduler.running
            scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
            assert dispatched.wait(timeout=30.0)
        finally:
            scheduler.stop(flush=False)

    def test_negative_delay_rejected(self):
        with pytest.raises(ConfigError):
            BatchScheduler(
                lambda config, entries: None,
                QueryCoalescer(4),
                max_delay_s=-1.0,
            )

    def test_stop_start_cycles_are_clean(self):
        """Restarting the loop works: each thread owns its stop event,
        so a fresh start never resurrects (or unsticks) an old loop."""
        import threading

        dispatched = threading.Event()
        scheduler = BatchScheduler(
            lambda config, entries: dispatched.set(),
            QueryCoalescer(4),
            max_delay_s=0.001,
        )
        for _ in range(3):
            scheduler.start()
            assert scheduler.running
            scheduler.stop(flush=False)
            assert not scheduler.running
        scheduler.start()
        try:
            scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
            assert dispatched.wait(timeout=30.0)
        finally:
            scheduler.stop(flush=False)

    def test_stop_joins_the_loop_before_reporting_stopped(self):
        """Regression: stop() used to clear the thread handle *before*
        joining, so ``running`` flipped False while the loop could still
        be dispatching, and the final flush could interleave with an
        in-flight poll dispatch.  Now the join strictly precedes both."""
        import threading

        in_dispatch = threading.Event()
        release = threading.Event()
        order = []

        def dispatch(config, entries):
            order.append(entries[0].query.seeds[0])
            if entries[0].query.seeds == (1,):
                in_dispatch.set()
                release.wait(timeout=30.0)

        scheduler = BatchScheduler(
            dispatch, QueryCoalescer(4), max_delay_s=0.001
        )
        scheduler.start()
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        assert in_dispatch.wait(timeout=30.0)
        # The loop thread is parked inside dispatch; this entry can only
        # leave via stop()'s final flush.
        scheduler.submit(RankingQuery(seeds=(2,)), DEFAULT)
        stopper = threading.Thread(target=scheduler.stop)
        stopper.start()
        time_sleep(0.05)
        # stop() must block on the in-flight dispatch, still reporting
        # the loop as running and the dispatch as active.
        assert stopper.is_alive()
        assert scheduler.running
        assert scheduler.active_dispatches == 1
        release.set()
        stopper.join(timeout=30.0)
        assert not stopper.is_alive()
        assert not scheduler.running
        assert scheduler.active_dispatches == 0
        # The flush ran strictly after the poll dispatch completed.
        assert order == [1, 2]

    def test_stop_without_start_still_flushes(self):
        scheduler, _, dispatched = self.make()
        scheduler.submit(RankingQuery(seeds=(1,)), DEFAULT)
        scheduler.stop()
        assert len(dispatched) == 1
        assert not scheduler.running

    def test_background_loop_rejects_virtual_clocks(self):
        """start() under a VirtualClock would sleep real seconds against
        frozen virtual deadlines and hang every future — fail fast."""
        scheduler, _, _ = self.make()
        with pytest.raises(ConfigError):
            scheduler.start()
        assert not scheduler.running

    def test_service_start_rejects_virtual_clocks(self):
        from repro.graph import star_graph

        service = RankingService(
            star_graph(20),
            config=FrogWildConfig(num_frogs=100, iterations=2, seed=0),
            num_machines=2,
            max_delay_s=0.01,
            clock=VirtualClock(),
        )
        with pytest.raises(ConfigError):
            with service:
                pass

    def test_virtual_clock_validates_direction(self):
        clock = VirtualClock()
        with pytest.raises(ConfigError):
            clock.advance(-1.0)


@pytest.fixture(scope="module")
def graph():
    from repro.graph import twitter_like

    return twitter_like(n=600, seed=9)


class TestScheduledService:
    """End-to-end deadline scheduling through RankingService.submit."""

    def make_service(self, graph, **kwargs):
        clock = VirtualClock()
        defaults = dict(
            config=FrogWildConfig(num_frogs=800, iterations=3, seed=0),
            num_machines=4,
            max_batch_size=4,
            max_delay_s=5.0,
            clock=clock,
        )
        defaults.update(kwargs)
        return RankingService(graph, **defaults), clock

    def test_trickle_batches_on_deadline(self, graph):
        service, clock = self.make_service(graph)
        futures = [service.submit([vertex]) for vertex in range(3)]
        assert not any(future.done() for future in futures)
        clock.advance(5.0)
        assert service.pump() == 1
        assert all(future.done() for future in futures)
        assert service.stats.batch_sizes == [3]
        answers = [future.result() for future in futures]
        assert [answer.query.seeds[0] for answer in answers] == [0, 1, 2]
        assert all(answer.batch_size == 3 for answer in answers)

    def test_fill_dispatches_without_waiting(self, graph):
        service, _ = self.make_service(graph)
        futures = [service.submit([vertex]) for vertex in range(4)]
        # Batch filled at the 4th submit: answered with no clock motion.
        assert all(future.done() for future in futures)
        assert service.scheduler.stats.fill_dispatches == 1

    def test_submit_hits_cache_immediately(self, graph):
        service, clock = self.make_service(graph)
        service.query([7])
        future = service.submit([7])
        assert future.done()
        assert future.result().cached

    def test_duplicate_submissions_share_one_lane(self, graph):
        service, clock = self.make_service(graph)
        first = service.submit([3], k=10)
        second = service.submit([3], k=4)
        clock.advance(5.0)
        service.pump()
        assert service.stats.queries_executed == 1
        assert service.stats.queries_served == 2
        wide, narrow = first.result(), second.result()
        assert narrow.vertices.tolist() == wide.vertices[:4].tolist()

    def test_result_timeout_when_not_scheduled(self, graph):
        service, _ = self.make_service(graph)
        future = service.submit([1])
        with pytest.raises(TimeoutError):
            future.result(timeout=0.0)
        service.flush()
        assert future.result().query.seeds == (1,)

    def test_sync_query_batch_leaves_scheduled_entries_queued(self, graph):
        """A synchronous ``query_batch`` call flushes only its own
        lanes: another caller's deadline-scheduled partial batch keeps
        accumulating toward its fill or deadline."""
        service, clock = self.make_service(graph)
        trickling = service.submit([11])
        answer = service.query([22])
        # The sync call was answered without force-dispatching the
        # trickle entry.
        assert not answer.cached
        assert not trickling.done()
        assert service.scheduler.pending_count() == 1
        clock.advance(5.0)
        service.pump()
        assert trickling.done()
        assert service.stats.batch_sizes == [1, 1]

    def test_sync_call_flushes_an_inflight_duplicate_it_depends_on(
        self, graph
    ):
        """If a sync call duplicates a query another caller already
        scheduled, it must dispatch that lane rather than block on a
        deadline that may never be pumped."""
        service, _ = self.make_service(graph)
        scheduled = service.submit([7])
        answer = service.query([7])
        assert scheduled.done()
        assert not answer.cached
        assert service.stats.queries_executed == 1
        np.testing.assert_array_equal(
            scheduled.result().vertices, answer.vertices
        )

    def test_background_thread_lifecycle(self, graph):
        """start()/stop() via the context manager: a real-clock service
        answers a trickle without explicit pumps (stop flushes)."""
        service = RankingService(
            graph,
            config=FrogWildConfig(num_frogs=400, iterations=2, seed=0),
            num_machines=4,
            max_batch_size=4,
            max_delay_s=0.01,
        )
        with service:
            assert service.scheduler.running
            futures = [service.submit([vertex]) for vertex in range(3)]
            answers = [future.result(timeout=30.0) for future in futures]
        assert not service.scheduler.running
        assert [a.query.seeds[0] for a in answers] == [0, 1, 2]
        assert service.stats.queries_executed == 3
