"""Shared fixtures: small deterministic graphs and clusters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import build_cluster
from repro.graph import (
    complete_graph,
    cycle_graph,
    from_edges,
    star_graph,
    twitter_like,
)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def diamond():
    """0 -> {1, 2} -> 3 -> 0: a tiny strongly connected DAG-with-back-edge."""
    return from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])


@pytest.fixture
def cycle10():
    return cycle_graph(10)


@pytest.fixture
def star8():
    return star_graph(8)


@pytest.fixture
def complete5():
    return complete_graph(5)


@pytest.fixture(scope="session")
def small_twitter():
    """A 1500-vertex power-law graph shared across test modules."""
    return twitter_like(n=1500, seed=42)


@pytest.fixture
def small_cluster(small_twitter):
    return build_cluster(small_twitter, num_machines=4, seed=0)
