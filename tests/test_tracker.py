"""Tests for stable hash ingress and the dynamic top-k tracker."""

import numpy as np
import pytest

from repro.cluster import ReplicationTable
from repro.core import FrogWildConfig
from repro.dynamic import (
    ChurnGenerator,
    DynamicDiGraph,
    GraphDelta,
    PageRankTracker,
    stable_hash_partition,
)
from repro.errors import ConfigError
from repro.graph import twitter_like


class TestStableHashPartition:
    def test_uniform_balance(self, small_twitter):
        part = stable_hash_partition(small_twitter, 8)
        assert part.load_imbalance() < 1.2

    def test_deterministic(self, small_twitter):
        a = stable_hash_partition(small_twitter, 8, seed=1)
        b = stable_hash_partition(small_twitter, 8, seed=1)
        assert np.array_equal(a.edge_machine, b.edge_machine)

    def test_seed_changes_placement(self, small_twitter):
        a = stable_hash_partition(small_twitter, 8, seed=1)
        b = stable_hash_partition(small_twitter, 8, seed=2)
        assert not np.array_equal(a.edge_machine, b.edge_machine)

    def test_surviving_edges_keep_machines(self):
        """The stability property: placement is a pure edge function."""
        base = twitter_like(n=400, seed=5)
        dynamic = DynamicDiGraph.from_digraph(base)
        snap_a = dynamic.snapshot()
        part_a = stable_hash_partition(snap_a, 6)
        placement_a = {
            (int(u), int(v)): int(m)
            for (u, v), m in zip(snap_a.edge_array(), part_a.edge_machine)
        }

        churn = ChurnGenerator(add_rate=0.05, remove_rate=0.05, seed=0)
        dynamic.apply(churn.step(dynamic))
        snap_b = dynamic.snapshot()
        part_b = stable_hash_partition(snap_b, 6)
        for (u, v), machine in zip(snap_b.edge_array(), part_b.edge_machine):
            key = (int(u), int(v))
            if key in placement_a:
                assert placement_a[key] == int(machine)

    def test_rejects_zero_machines(self, small_twitter):
        with pytest.raises(ConfigError):
            stable_hash_partition(small_twitter, 0)

    def test_usable_for_replication(self, small_twitter):
        part = stable_hash_partition(small_twitter, 4)
        table = ReplicationTable(small_twitter, part)
        assert table.replication_factor() >= 1.0


class TestPageRankTracker:
    @pytest.fixture
    def tracked(self):
        base = twitter_like(n=600, seed=9)
        dynamic = DynamicDiGraph.from_digraph(base)
        tracker = PageRankTracker(
            dynamic,
            k=15,
            config=FrogWildConfig(num_frogs=8_000, iterations=4, seed=0),
            num_machines=4,
            seed=0,
        )
        return dynamic, tracker

    def test_initial_refresh_recorded(self, tracked):
        _, tracker = tracked
        assert len(tracker.history) == 1
        first = tracker.history[0]
        assert first.step == 0
        assert first.jaccard_vs_previous == 1.0
        assert first.new_edge_placements > 0

    def test_current_top_k_size(self, tracked):
        _, tracker = tracked
        assert tracker.current_top_k.size == 15

    def test_update_applies_delta(self, tracked):
        dynamic, tracker = tracked
        m0 = dynamic.num_edges
        update = tracker.update(GraphDelta(added=[(0, 1), (1, 0)]))
        assert dynamic.num_edges >= m0
        assert update.step == 1
        assert len(tracker.history) == 2

    def test_incremental_ingress_charges_only_new_edges(self, tracked):
        dynamic, tracker = tracked
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=1)
        delta = churn.step(dynamic)
        update = tracker.update(delta)
        # Placements are bounded by the batch of added edges (plus any
        # self-loop repairs for newly dangling vertices).
        assert update.new_edge_placements <= delta.num_added + delta.num_removed

    def test_small_churn_keeps_list_stable(self, tracked):
        dynamic, tracker = tracked
        churn = ChurnGenerator(add_rate=0.005, remove_rate=0.005, seed=2)
        for _ in range(3):
            tracker.update(churn.step(dynamic))
        assert tracker.churn_stability() > 0.6

    def test_totals_aggregate_history(self, tracked):
        dynamic, tracker = tracked
        tracker.update(GraphDelta(added=[(2, 3)]))
        assert tracker.total_network_bytes() == sum(
            u.network_bytes for u in tracker.history
        )
        assert tracker.total_time_s() == pytest.approx(
            sum(u.total_time_s for u in tracker.history)
        )

    def test_validate_mode_scores_against_exact(self):
        base = twitter_like(n=400, seed=2)
        tracker = PageRankTracker(
            DynamicDiGraph.from_digraph(base),
            k=10,
            config=FrogWildConfig(num_frogs=10_000, iterations=4, seed=0),
            num_machines=4,
            validate=True,
        )
        mass = tracker.history[0].mass_vs_exact
        assert mass is not None
        assert mass > 0.8

    def test_rejects_k_above_n(self):
        with pytest.raises(ConfigError):
            PageRankTracker(DynamicDiGraph(5, [(0, 1)]), k=10)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ConfigError):
            PageRankTracker(DynamicDiGraph(5, [(0, 1)]), k=0)

    def test_hub_takeover_is_detected(self):
        """Rewiring the graph toward a new hub must change the list."""
        base = twitter_like(n=500, seed=4)
        dynamic = DynamicDiGraph.from_digraph(base)
        tracker = PageRankTracker(
            dynamic,
            k=5,
            config=FrogWildConfig(num_frogs=10_000, iterations=4, seed=0),
            num_machines=4,
        )
        newcomer = 499  # tail vertex: give it massive in-links
        sources = [v for v in range(200) if v != newcomer]
        update = tracker.update(
            GraphDelta(added=[(s, newcomer) for s in sources])
        )
        assert newcomer in set(update.top_k.tolist())
        assert update.jaccard_vs_previous < 1.0
