"""Tests for the per-phase traffic/CPU breakdown."""

import pytest

from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster, traffic_breakdown
from repro.pagerank import graphlab_pagerank

_CONFIG = FrogWildConfig(num_frogs=8_000, iterations=4, seed=0)


class TestBreakdownBasics:
    def test_empty_state_is_zero(self, small_cluster):
        breakdown = traffic_breakdown(small_cluster)
        assert breakdown.total_bytes == 0
        assert breakdown.total_ops == 0
        assert breakdown.byte_share("sync") == 0.0
        assert breakdown.op_share("apply") == 0.0

    def test_frogwild_kinds_present(self, small_twitter):
        result = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        breakdown = traffic_breakdown(result.state)
        assert breakdown.bytes_by_kind.get("sync", 0) > 0
        assert breakdown.bytes_by_kind.get("scatter", 0) > 0
        assert breakdown.total_bytes == result.report.network_bytes

    def test_shares_sum_to_one(self, small_twitter):
        result = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        breakdown = traffic_breakdown(result.state)
        total = sum(
            breakdown.byte_share(kind) for kind in breakdown.bytes_by_kind
        )
        assert total == pytest.approx(1.0)

    def test_ops_match_phases(self, small_twitter):
        result = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        breakdown = traffic_breakdown(result.state)
        assert set(breakdown.ops_by_phase) >= {"apply", "scatter", "sync"}
        assert breakdown.total_ops > 0

    def test_to_text_renders(self, small_twitter):
        result = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        text = traffic_breakdown(result.state).to_text()
        assert "network bytes by record kind:" in text
        assert "sync" in text
        assert "%" in text


class TestMechanism:
    def test_ps_attacks_the_sync_share(self, small_twitter):
        """The paper's mechanism, verified at the phase level: lowering
        ps shrinks the *sync* bytes specifically."""
        sync_bytes = {}
        for ps in (1.0, 0.2):
            result = run_frogwild(
                small_twitter,
                _CONFIG.with_updates(ps=ps),
                num_machines=4,
            )
            sync_bytes[ps] = traffic_breakdown(result.state).bytes_by_kind[
                "sync"
            ]
        assert sync_bytes[0.2] < 0.5 * sync_bytes[1.0]

    def test_gather_dominates_graphlab_pr(self, small_twitter):
        """The baseline's bill is gather + sync over every in-edge —
        together they dwarf scatter signals."""
        state = build_cluster(small_twitter, 4, seed=0)
        graphlab_pagerank(small_twitter, tolerance=1e-6, state=state)
        breakdown = traffic_breakdown(state)
        heavy = breakdown.byte_share("gather") + breakdown.byte_share("sync")
        assert heavy > breakdown.byte_share("scatter")

    def test_frogwild_has_no_gather_traffic(self, small_twitter):
        """Frogs carry the state: FrogWild never runs a gather phase."""
        result = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        breakdown = traffic_breakdown(result.state)
        assert breakdown.bytes_by_kind.get("gather", 0) == 0
