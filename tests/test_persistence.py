"""Tests for JSON/CSV experiment persistence."""

import csv

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    FigureResult,
    load_figure_json,
    load_rows_json,
    row_from_dict,
    row_to_dict,
    save_figure_json,
    save_rows_csv,
    save_rows_json,
)
from repro.experiments.harness import ExperimentRow


def _rows():
    return [
        ExperimentRow(
            workload="twitter",
            algorithm="FrogWild ps=0.7",
            num_machines=16,
            supersteps=4,
            total_time_s=0.25,
            time_per_iteration_s=0.0625,
            network_bytes=123_456,
            cpu_seconds=0.5,
            mass_captured={30: 0.97, 100: 0.95},
            exact_identification={30: 0.9},
            params={"ps": 0.7, "num_frogs": 24_000},
        ),
        ExperimentRow(
            workload="twitter",
            algorithm="GraphLab PR exact",
            num_machines=16,
            supersteps=45,
            total_time_s=8.0,
            time_per_iteration_s=0.18,
            network_bytes=99_000_000,
            cpu_seconds=20.0,
        ),
    ]


class TestRowRoundTrip:
    def test_dict_round_trip(self):
        row = _rows()[0]
        restored = row_from_dict(row_to_dict(row))
        assert restored == row

    def test_int_keys_survive(self):
        restored = row_from_dict(row_to_dict(_rows()[0]))
        assert restored.mass_captured[100] == 0.95

    def test_malformed_dict_raises(self):
        with pytest.raises(ExperimentError):
            row_from_dict({"workload": "x"})


class TestJsonFiles:
    def test_rows_round_trip(self, tmp_path):
        rows = _rows()
        path = save_rows_json(rows, tmp_path / "rows.json")
        assert load_rows_json(path) == rows

    def test_rows_file_not_array_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}", encoding="utf-8")
        with pytest.raises(ExperimentError):
            load_rows_json(path)

    def test_figure_round_trip(self, tmp_path):
        figure = FigureResult("3", "accuracy vs time", rows=_rows(), notes="n")
        path = save_figure_json(figure, tmp_path / "fig.json")
        restored = load_figure_json(path)
        assert restored.figure_id == "3"
        assert restored.title == "accuracy vs time"
        assert restored.notes == "n"
        assert restored.rows == figure.rows

    def test_figure_missing_keys_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"title": "x"}', encoding="utf-8")
        with pytest.raises(ExperimentError):
            load_figure_json(path)


class TestCsv:
    def test_header_is_column_union(self, tmp_path):
        path = save_rows_csv(_rows(), tmp_path / "rows.csv")
        with path.open() as handle:
            reader = csv.DictReader(handle)
            assert "mass@100" in reader.fieldnames
            assert "ps" in reader.fieldnames
            records = list(reader)
        assert len(records) == 2
        # Second row lacks mass@100: restval blank.
        assert records[1]["mass@100"] == ""

    def test_values_survive(self, tmp_path):
        path = save_rows_csv(_rows(), tmp_path / "rows.csv")
        with path.open() as handle:
            records = list(csv.DictReader(handle))
        assert records[0]["algorithm"] == "FrogWild ps=0.7"
        assert float(records[0]["mass@30"]) == pytest.approx(0.97)

    def test_empty_rows_raise(self, tmp_path):
        with pytest.raises(ExperimentError):
            save_rows_csv([], tmp_path / "rows.csv")
