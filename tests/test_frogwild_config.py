"""Unit tests for FrogWildConfig validation."""

import pytest

from repro.core import FrogWildConfig
from repro.errors import ConfigError


class TestValidation:
    def test_defaults_valid(self):
        config = FrogWildConfig()
        assert config.num_frogs > 0
        assert config.p_teleport == pytest.approx(0.15)
        assert config.scatter_mode == "multinomial"
        assert config.erasure_model == "at-least-one"

    @pytest.mark.parametrize("frogs", [0, -5])
    def test_rejects_bad_frogs(self, frogs):
        with pytest.raises(ConfigError, match="num_frogs"):
            FrogWildConfig(num_frogs=frogs)

    @pytest.mark.parametrize("iters", [0, -1])
    def test_rejects_bad_iterations(self, iters):
        with pytest.raises(ConfigError, match="iterations"):
            FrogWildConfig(iterations=iters)

    @pytest.mark.parametrize("ps", [-0.1, 1.0001])
    def test_rejects_bad_ps(self, ps):
        with pytest.raises(ConfigError, match="ps"):
            FrogWildConfig(ps=ps)

    @pytest.mark.parametrize("pt", [0.0, 1.0, -0.2])
    def test_rejects_bad_teleport(self, pt):
        with pytest.raises(ConfigError, match="p_teleport"):
            FrogWildConfig(p_teleport=pt)

    def test_rejects_unknown_scatter_mode(self):
        with pytest.raises(ConfigError, match="scatter_mode"):
            FrogWildConfig(scatter_mode="quantum")

    def test_rejects_unknown_erasure_model(self):
        with pytest.raises(ConfigError, match="erasure_model"):
            FrogWildConfig(erasure_model="sometimes")

    def test_boundary_ps_values_allowed(self):
        assert FrogWildConfig(ps=0.0).ps == 0.0
        assert FrogWildConfig(ps=1.0).ps == 1.0


class TestWithUpdates:
    def test_returns_modified_copy(self):
        base = FrogWildConfig(num_frogs=100)
        updated = base.with_updates(ps=0.5, iterations=7)
        assert updated.ps == 0.5
        assert updated.iterations == 7
        assert updated.num_frogs == 100
        assert base.ps == 1.0  # original untouched

    def test_updates_are_validated(self):
        with pytest.raises(ConfigError):
            FrogWildConfig().with_updates(ps=2.0)

    def test_frozen(self):
        config = FrogWildConfig()
        with pytest.raises(Exception):
            config.ps = 0.5
