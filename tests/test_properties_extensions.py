"""Property-based tests (hypothesis) for the extension subsystems:
dynamic graphs, forward push, chart scales, ranking metrics and the
stable hash ingress."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.core import top_k_jaccard
from repro.dynamic import DynamicDiGraph, GraphDelta, stable_hash_partition
from repro.graph import from_edges
from repro.metrics import ndcg_at_k, rank_biased_overlap
from repro.pagerank import forward_push_pagerank
from repro.viz import LinearScale, LogScale

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    min_size=1,
    max_size=80,
)

score_vectors = npst.arrays(
    np.float64,
    st.integers(3, 30),
    elements=st.floats(1e-6, 1.0),
)


# ---------------------------------------------------------------------------
# DynamicDiGraph invariants
# ---------------------------------------------------------------------------


@given(edge_lists, edge_lists)
@settings(max_examples=50, deadline=None)
def test_dynamic_add_then_remove_roundtrip(initial, extra):
    """Adding a batch and removing exactly what was new restores the
    original edge set."""
    graph = DynamicDiGraph(15, initial)
    before = graph.edge_array().copy()
    fresh = [
        (u, v) for u, v in extra if not graph.has_edge(u, v)
    ]
    added = graph.add_edges(extra)
    assert added == len(set(fresh))
    removed = graph.remove_edges(fresh)
    assert removed == added
    assert np.array_equal(graph.edge_array(), before)


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_dynamic_snapshot_matches_edge_set(edges):
    graph = DynamicDiGraph(15, edges)
    snapshot = graph.snapshot(repair_dangling="none")
    assert snapshot.num_edges == graph.num_edges
    assert np.array_equal(snapshot.edge_array(), graph.edge_array())


@given(edge_lists, edge_lists)
@settings(max_examples=50, deadline=None)
def test_dynamic_apply_counts_are_consistent(initial, batch):
    graph = DynamicDiGraph(15, initial)
    m0 = graph.num_edges
    delta = GraphDelta(added=batch)
    added, removed = graph.apply(delta)
    assert removed == 0
    assert graph.num_edges == m0 + added


# ---------------------------------------------------------------------------
# Forward push invariants
# ---------------------------------------------------------------------------


@given(edge_lists, st.floats(1e-4, 1e-2))
@settings(max_examples=40, deadline=None)
def test_push_mass_conservation(edges, eps):
    graph = from_edges(edges)
    result = forward_push_pagerank(graph, eps=eps)
    total = result.estimate.sum() + result.residual.sum()
    assert abs(total - 1.0) < 1e-9
    assert result.estimate.min() >= 0
    assert result.residual.min() >= -1e-15


@given(edge_lists, st.integers(0, 14))
@settings(max_examples=40, deadline=None)
def test_push_personalized_seed_validity(edges, seed_vertex):
    graph = from_edges(edges, num_vertices=15)
    result = forward_push_pagerank(graph, eps=1e-3, source=seed_vertex)
    total = result.estimate.sum() + result.residual.sum()
    assert abs(total - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# Chart scale invariants
# ---------------------------------------------------------------------------


@given(
    st.floats(-1e6, 1e6),
    st.floats(1e-6, 1e6),
    st.floats(0.0, 1.0),
)
@settings(max_examples=80, deadline=None)
def test_linear_scale_projection_in_unit_interval(lo, span, frac):
    scale = LinearScale(lo, lo + span)
    value = lo + frac * span
    projected = float(scale.project(np.array([value]))[0])
    assert -1e-9 <= projected <= 1.0 + 1e-9


@given(st.floats(1e-6, 1e6), st.floats(1.01, 1e6))
@settings(max_examples=80, deadline=None)
def test_log_scale_monotone(lo, factor):
    scale = LogScale(lo, lo * factor)
    mid = lo * np.sqrt(factor)
    p_lo, p_mid, p_hi = scale.project(np.array([lo, mid, lo * factor]))
    assert p_lo <= p_mid <= p_hi
    assert abs(p_lo - 0.0) < 1e-6
    assert abs(p_hi - 1.0) < 1e-6


# ---------------------------------------------------------------------------
# Ranking metric invariants
# ---------------------------------------------------------------------------


@given(score_vectors, st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_ndcg_bounded_and_reflexive(scores, k):
    assert ndcg_at_k(scores, scores, k) == 1.0
    noisy = scores[::-1].copy()
    value = ndcg_at_k(noisy, scores, k)
    assert 0.0 <= value <= 1.0 + 1e-9


@given(score_vectors, st.floats(0.05, 0.95))
@settings(max_examples=60, deadline=None)
def test_rbo_bounded_and_reflexive(scores, p):
    assert abs(rank_biased_overlap(scores, scores, p=p) - 1.0) < 1e-9
    other = np.roll(scores, 1)
    value = rank_biased_overlap(other, scores, p=p)
    assert 0.0 <= value <= 1.0


@given(
    st.lists(st.integers(0, 50), min_size=0, max_size=20),
    st.lists(st.integers(0, 50), min_size=0, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_topk_jaccard_bounds_and_symmetry(a, b):
    a_arr, b_arr = np.array(a), np.array(b)
    value = top_k_jaccard(a_arr, b_arr)
    assert 0.0 <= value <= 1.0
    assert value == top_k_jaccard(b_arr, a_arr)


# ---------------------------------------------------------------------------
# Stable hash ingress invariants
# ---------------------------------------------------------------------------


@given(edge_lists, st.integers(1, 8), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_stable_hash_placement_in_range_and_deterministic(
    edges, machines, seed
):
    graph = from_edges(edges)
    a = stable_hash_partition(graph, machines, seed=seed)
    b = stable_hash_partition(graph, machines, seed=seed)
    assert np.array_equal(a.edge_machine, b.edge_machine)
    assert a.edge_machine.min(initial=0) >= 0
    assert a.edge_machine.max(initial=0) < machines
