"""Coverage for the FigureResult container and figure registry."""

import pytest

from repro.experiments import ALL_FIGURES, FigureResult
from repro.experiments.harness import ExperimentRow


def _row(algorithm: str, time_s: float = 1.0) -> ExperimentRow:
    return ExperimentRow(
        workload="w",
        algorithm=algorithm,
        num_machines=2,
        supersteps=1,
        total_time_s=time_s,
        time_per_iteration_s=time_s,
        network_bytes=10,
        cpu_seconds=0.1,
        mass_captured={100: 0.9},
        exact_identification={100: 0.8},
    )


class TestFigureResult:
    def test_series_prefix_filter(self):
        result = FigureResult("9", "t")
        result.rows = [_row("FrogWild ps=1"), _row("GraphLab PR exact")]
        assert len(result.series("FrogWild")) == 1
        assert len(result.series("GraphLab")) == 1
        assert result.series("Sparsified") == []

    def test_to_text_includes_title_and_note(self):
        result = FigureResult("9", "my title", notes="a note")
        result.rows = [_row("x")]
        text = result.to_text()
        assert "Figure 9: my title" in text
        assert "note: a note" in text

    def test_to_text_without_note(self):
        result = FigureResult("9", "t")
        result.rows = [_row("x")]
        assert "note:" not in result.to_text()


class TestRegistry:
    def test_all_eight_figures_registered(self):
        assert sorted(ALL_FIGURES) == ["1", "2", "3", "4", "5", "6", "7", "8"]

    @pytest.mark.parametrize("figure_id", sorted(ALL_FIGURES))
    def test_registry_entries_callable(self, figure_id):
        assert callable(ALL_FIGURES[figure_id])
