"""Property and regression tests for the batched FrogWild kernel.

Three families of guarantees pin the kernel down:

* **invariants** (property-based, via hypothesis): frog conservation in
  multinomial scatter mode, non-negative estimates summing to at most 1,
  per-population cost attribution summing exactly to the shared totals;
* **B=1 equivalence**: a single-query batch is bit-identical — estimate
  *and* report numerics — to :func:`repro.core.run_frogwild` under the
  same seed, so the batched path can never drift from the validated
  single-query kernel;
* **behaviour**: config-mixing rules, early termination, amortization.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchQuery,
    FrogWildConfig,
    run_frogwild,
    run_frogwild_batch,
    run_personalized_frogwild,
    run_personalized_frogwild_batch,
)
from repro.engine import build_cluster
from repro.errors import ConfigError, EngineError
from repro.graph import twitter_like

GRAPH = twitter_like(n=600, seed=13)


def _batch(queries, machines=4, **config_kwargs):
    defaults = dict(num_frogs=1500, iterations=4, seed=7)
    defaults.update(config_kwargs)
    return run_frogwild_batch(
        GRAPH, queries, FrogWildConfig(**defaults), num_machines=machines
    )


class TestInvariants:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        ps=st.sampled_from([0.0, 0.2, 0.5, 0.8, 1.0]),
        batch_size=st.integers(1, 5),
        num_frogs=st.integers(1, 3_000),
        iterations=st.integers(1, 6),
    )
    def test_multinomial_conserves_frogs(
        self, seed, ps, batch_size, num_frogs, iterations
    ):
        """Total stopped frogs equal the launched budget, per population."""
        queries = [BatchQuery(seed=seed + lane) for lane in range(batch_size)]
        result = _batch(
            queries,
            seed=seed,
            ps=ps,
            num_frogs=num_frogs,
            iterations=iterations,
        )
        for lane in result.results:
            assert lane.estimate.total_stopped == num_frogs

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        ps=st.sampled_from([0.1, 0.6, 1.0]),
        batch_size=st.integers(1, 4),
    )
    def test_estimates_are_distributions(self, seed, ps, batch_size):
        """Estimates are non-negative and sum to at most 1."""
        queries = [BatchQuery(seed=seed + lane) for lane in range(batch_size)]
        result = _batch(queries, seed=seed, ps=ps)
        for lane in result.results:
            vector = lane.estimate.vector()
            assert vector.min() >= 0.0
            assert vector.sum() <= 1.0 + 1e-12

    @settings(max_examples=8, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        batch_size=st.integers(2, 5),
        erasure=st.sampled_from(["at-least-one", "independent"]),
    )
    def test_cost_attribution_sums_to_shared_totals(
        self, seed, batch_size, erasure
    ):
        """Per-population CPU attribution is an exact partition of the
        shared execution's total; attributed bytes dominate shared bytes
        (headers amortize, records never vanish)."""
        queries = [
            BatchQuery(seed=seed + lane, ps=(0.3 + 0.15 * lane))
            for lane in range(batch_size)
        ]
        result = _batch(queries, seed=seed, ps=0.7, erasure_model=erasure)
        total_cpu = sum(lane.report.cpu_seconds for lane in result.results)
        assert total_cpu == pytest.approx(result.report.cpu_seconds, abs=1e-12)
        assert result.attributed_network_bytes() >= result.report.network_bytes
        assert 0.0 < result.amortization_ratio() <= 1.0

    def test_conservation_under_mixed_ps_and_budgets(self):
        queries = [
            BatchQuery(num_frogs=500, ps=0.0),
            BatchQuery(num_frogs=2000, ps=1.0),
            BatchQuery(num_frogs=1250, ps=0.4, seed=99),
        ]
        result = _batch(queries)
        for query, lane in zip(queries, result.results):
            assert lane.estimate.total_stopped == query.num_frogs
            assert lane.estimate.num_frogs == query.num_frogs

    def test_binomial_mode_runs_and_stays_nonnegative(self):
        result = _batch(
            [BatchQuery(seed=s) for s in (1, 2)],
            scatter_mode="binomial",
            ps=0.8,
        )
        for lane in result.results:
            assert lane.estimate.counts.min() >= 0


class TestSingleQueryEquivalence:
    """B=1 batches replay the single-query runner bit for bit."""

    CONFIGS = [
        dict(num_frogs=2000, iterations=4, seed=7),
        dict(num_frogs=1500, iterations=5, seed=3, ps=0.6),
        dict(num_frogs=1000, iterations=4, seed=9, ps=0.3,
             erasure_model="independent"),
        dict(num_frogs=1200, iterations=4, seed=11, scatter_mode="binomial",
             ps=0.8),
        dict(num_frogs=1200, iterations=6, seed=5, ps=0.0),
    ]

    @pytest.mark.parametrize("config_kwargs", CONFIGS)
    def test_bitwise_identical_estimate_and_report(self, config_kwargs):
        config = FrogWildConfig(**config_kwargs)
        single = run_frogwild(
            GRAPH, config, state=build_cluster(GRAPH, 4, seed=config.seed)
        )
        batched = run_frogwild_batch(
            GRAPH,
            [BatchQuery()],
            config,
            state=build_cluster(GRAPH, 4, seed=config.seed),
        )
        lane = batched.results[0]
        np.testing.assert_array_equal(
            single.estimate.counts, lane.estimate.counts
        )
        assert single.report.network_bytes == lane.report.network_bytes
        assert single.report.cpu_seconds == lane.report.cpu_seconds
        assert single.report.supersteps == lane.report.supersteps
        assert single.report.total_time_s == lane.report.total_time_s
        # The batch-level (physical) report agrees too: with one lane
        # there is nothing to amortize.
        assert batched.report.network_bytes == single.report.network_bytes

    def test_personalized_single_query_equivalence(self):
        seeds = np.array([3, 77, 140])
        config = FrogWildConfig(num_frogs=1500, iterations=6, seed=2, ps=0.7)
        single = run_personalized_frogwild(
            GRAPH, seeds, config, num_machines=4
        )
        batched = run_personalized_frogwild_batch(
            GRAPH, [seeds], config, num_machines=4
        )
        np.testing.assert_array_equal(
            single.estimate.counts, batched.results[0].estimate.counts
        )
        assert (
            single.report.network_bytes
            == batched.results[0].report.network_bytes
        )

    def test_lane_matches_sequential_run_inside_larger_batch(self):
        """Populations are independent: each lane of a B=3 batch equals
        the standalone run with the same seed and birth law."""
        config = FrogWildConfig(num_frogs=1000, iterations=4, seed=0, ps=0.8)
        seeds = [4, 5, 6]
        batched = run_frogwild_batch(
            GRAPH,
            [BatchQuery(seed=s) for s in seeds],
            config,
            state=build_cluster(GRAPH, 4, seed=config.seed),
        )
        for lane_seed, lane in zip(seeds, batched.results):
            single = run_frogwild(
                GRAPH,
                config.with_updates(seed=lane_seed),
                state=build_cluster(GRAPH, 4, seed=config.seed),
            )
            np.testing.assert_array_equal(
                single.estimate.counts, lane.estimate.counts
            )


class TestBehaviour:
    def test_empty_batch_rejected(self):
        with pytest.raises(ConfigError):
            _batch([])

    def test_bad_distribution_rejected(self):
        with pytest.raises(EngineError):
            _batch([BatchQuery(start_distribution=np.ones(3))])
        bad = np.zeros(GRAPH.num_vertices)
        bad[0] = 2.0
        with pytest.raises(EngineError):
            _batch([BatchQuery(start_distribution=bad)])

    def test_bad_ps_rejected(self):
        with pytest.raises(ConfigError):
            _batch([BatchQuery(ps=1.5)])

    def test_early_termination_bounds_lane_supersteps(self):
        """With a tiny budget and many iterations, populations die out;
        their reports stop counting supersteps once they are gone."""
        result = _batch(
            [BatchQuery(num_frogs=2, seed=s) for s in range(4)],
            iterations=60,
        )
        for lane in result.results:
            assert lane.estimate.total_stopped == 2
            assert lane.report.supersteps <= 60
        assert result.report.supersteps == max(
            lane.report.supersteps for lane in result.results
        )

    def test_early_finished_lane_stops_accumulating_time(self):
        """A population that dies out is not billed the batch's
        remaining supersteps: its attributed simulated time stops at
        its last live barrier."""
        result = _batch(
            [BatchQuery(num_frogs=1), BatchQuery(num_frogs=3000)],
            iterations=60,
        )
        small, big = result.results
        assert small.report.supersteps < big.report.supersteps
        assert small.report.total_time_s < big.report.total_time_s
        assert big.report.total_time_s == pytest.approx(
            result.report.total_time_s
        )

    def test_batch_report_carries_batch_extras(self):
        result = _batch([BatchQuery(seed=s) for s in range(3)])
        assert result.report.extra["batch_size"] == 3.0
        assert result.report.extra["total_frogs"] == 3 * 1500.0
        for index, lane in enumerate(result.results):
            assert lane.report.extra["batch_index"] == float(index)
            assert lane.report.extra["batch_size"] == 3.0

    def test_shared_traversal_amortizes_headers(self):
        """A real B>1 batch moves fewer wire bytes than its populations
        would standalone (same records, shared message headers)."""
        result = _batch([BatchQuery(seed=s) for s in range(6)], machines=8)
        assert result.report.network_bytes < result.attributed_network_bytes()

    def test_personalized_batch_results_in_query_order(self):
        seed_sets = [np.array([1]), np.array([2, 3]), np.array([4, 5, 6])]
        result = run_personalized_frogwild_batch(
            GRAPH,
            seed_sets,
            FrogWildConfig(num_frogs=1500, iterations=6, seed=1),
            num_machines=4,
        )
        assert len(result) == 3
        # Frogs are born on the query's seeds, so early mass concentrates
        # near them: each query's top-1 differs and is reachable.
        tops = [lane.estimate.top_k(1)[0] for lane in result.results]
        assert len(set(map(int, tops))) >= 2

    def test_personalized_batch_validates_weights(self):
        with pytest.raises(ConfigError):
            run_personalized_frogwild_batch(
                GRAPH,
                [np.array([1]), np.array([2])],
                weights=[np.array([1.0])],
            )
