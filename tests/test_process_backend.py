"""Multi-process execution backend: equivalence, transport, lifecycle.

:class:`ProcessPoolBackend` inherits its shard layout, replication
tables and per-shard seeding from :class:`ShardedBackend`, so its
results must be *bitwise* identical to the in-process sharded backend —
not merely statistically close.  These tests pin down:

* bitwise agreement with :class:`ShardedBackend` on counters, reports
  and per-shard cost attribution, and golden-tolerance agreement with
  :class:`LocalBackend` / exact PageRank at the thresholds of
  ``test_sharded_service``;
* byte-exact reconciliation of the *measured* record transport against
  the simulated :class:`MessageSizeModel` pricing, across batches and
  epoch refreshes;
* the shared-memory plumbing in isolation (arena roundtrip, wire codec,
  CSR / replication-table component serialization);
* the epoch-remap handshake and the close lifecycle.
"""

import numpy as np
import pytest

from repro.core import FrogWildConfig, seed_distribution
from repro.cluster import (
    MessageSizeModel,
    ReplicationTable,
    SharedArena,
    TransportTally,
    WireCodec,
)
from repro.errors import ConfigError, EngineError
from repro.graph import twitter_like
from repro.pagerank import exact_pagerank
from repro.serving import (
    LocalBackend,
    ProcessPoolBackend,
    RankingQuery,
    RankingService,
    ShardedBackend,
)

GRAPH = twitter_like(n=1000, seed=21)  # the golden regression graph
CONFIG = FrogWildConfig(num_frogs=12_000, iterations=6, seed=1, ps=0.8)
SEED_SETS = [np.array([7]), np.array([11, 42])]
QUERIES = [
    RankingQuery(seeds=tuple(seeds.tolist()), k=10) for seeds in SEED_SETS
]

SMALL = twitter_like(n=400, seed=3)
FAST = FrogWildConfig(num_frogs=2_000, iterations=4, seed=5)


def _overlap(estimated: np.ndarray, ranking: np.ndarray, k: int) -> float:
    exact_top = set(np.argsort(-ranking)[:k].tolist())
    return len(set(estimated.tolist()) & exact_top) / k


# ----------------------------------------------------------------------
# Shared-memory plumbing (single-process, no workers)
# ----------------------------------------------------------------------
class TestSharedArena:
    def test_roundtrip_and_readonly_attach(self):
        arrays = {
            "a": np.arange(10, dtype=np.int64),
            "b": np.ones((3, 4), dtype=np.float64) * 2.5,
        }
        arena = SharedArena.create(arrays, epoch=1)
        try:
            attached = SharedArena.attach(arena.spec)
            try:
                for key, expected in arrays.items():
                    view = attached.arrays[key]
                    np.testing.assert_array_equal(view, expected)
                    assert not view.flags.writeable
                with pytest.raises((ValueError, RuntimeError)):
                    attached.arrays["a"][0] = 99
            finally:
                attached.close()
        finally:
            arena.destroy()

    def test_spec_is_epoch_tagged(self):
        arena = SharedArena.create({"x": np.zeros(4)}, epoch=7)
        try:
            assert arena.spec.epoch == 7
        finally:
            arena.destroy()


class TestWireCodec:
    def test_encode_matches_size_model_and_decodes(self):
        model = MessageSizeModel()
        codec = WireCodec(model)
        vertices = np.array([3, 1, 4, 1, 5], dtype=np.int64)
        payloads = np.array([9, 2, 6, 5, 3], dtype=np.int64)
        frame = codec.encode("result", vertices, payloads, tag=11)
        assert len(frame) == model.batch_bytes(len(vertices))
        kind, tag, out_vertices, out_payloads = codec.decode(frame)
        assert kind == "result" and tag == 11
        np.testing.assert_array_equal(out_vertices, vertices)
        np.testing.assert_array_equal(out_payloads, payloads)

    def test_tally_reconciles_by_construction(self):
        model = MessageSizeModel()
        tally = TransportTally()
        tally.add("result", 5, model.batch_bytes(5), model.batch_bytes(5))
        # An empty frame carries a real header the model prices at zero.
        tally.add("result", 0, model.message_header_bytes, 0)
        assert tally.reconciles(model)
        assert tally.empty_frames == 1
        merged = TransportTally()
        merged.merge(tally)
        assert merged.reconciles(model)
        assert merged.records == 5 and merged.messages == 2


class TestSharedComponents:
    def test_graph_csr_roundtrip(self):
        arrays = SMALL.csr_arrays()
        rebuilt = type(SMALL).from_csr_arrays(arrays)
        assert rebuilt.num_vertices == SMALL.num_vertices
        assert rebuilt.num_edges == SMALL.num_edges
        np.testing.assert_array_equal(
            rebuilt.successors(17), SMALL.successors(17)
        )

    def test_replication_table_component_roundtrip(self):
        table = ShardedBackend(
            SMALL, num_shards=1, num_machines=4, seed=0
        ).replications[0]
        components = table.shared_components()
        rebuilt = ReplicationTable.from_shared_components(SMALL, components)
        np.testing.assert_array_equal(rebuilt.masters, table.masters)
        np.testing.assert_array_equal(
            rebuilt.replica_matrix, table.replica_matrix
        )


# ----------------------------------------------------------------------
# End-to-end worker execution
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def outcomes():
    local = LocalBackend(GRAPH, num_machines=8, seed=0)
    sharded = ShardedBackend(GRAPH, num_shards=2, num_machines=8, seed=0)
    process = ProcessPoolBackend(GRAPH, num_shards=2, num_machines=8, seed=0)
    try:
        yield (
            local.run_batch(CONFIG, QUERIES),
            sharded.run_batch(CONFIG, QUERIES),
            process.run_batch(CONFIG, QUERIES),
            process,
        )
    finally:
        process.close()


class TestProcessEquivalence:
    def test_bitwise_identical_to_sharded_backend(self, outcomes):
        """Same tables, same shares, same per-shard seeds ⇒ the worker
        processes must reproduce the in-process sharded merge exactly."""
        _, sharded, process, _ = outcomes
        for sharded_lane, process_lane in zip(sharded.lanes, process.lanes):
            np.testing.assert_array_equal(
                process_lane.estimate.counts, sharded_lane.estimate.counts
            )
            assert (
                process_lane.estimate.num_frogs
                == sharded_lane.estimate.num_frogs
            )
            assert (
                process_lane.report.network_bytes
                == sharded_lane.report.network_bytes
            )
        assert (
            process.shared_network_bytes == sharded.shared_network_bytes
        )
        assert process.simulated_time_s == sharded.simulated_time_s
        for shard_cost, expected in zip(process.shards, sharded.shards):
            assert (
                shard_cost.attributed_network_bytes
                == expected.attributed_network_bytes
            )

    def test_golden_topk_within_established_tolerance(self, outcomes):
        """Process top-k agrees with LocalBackend and exact PPR at the
        ``test_sharded_service`` thresholds."""
        local, _, process, _ = outcomes
        for seeds, local_lane, process_lane in zip(
            SEED_SETS, local.lanes, process.lanes
        ):
            personalization = seed_distribution(GRAPH.num_vertices, seeds)
            truth = exact_pagerank(GRAPH, personalization=personalization)
            top = process_lane.estimate.top_k(10)
            assert _overlap(top, truth, 10) >= 0.6
            assert (
                _overlap(top, local_lane.estimate.vector(), 10) >= 0.6
            )

    def test_full_budget_spent(self, outcomes):
        _, _, process, _ = outcomes
        for lane in process.lanes:
            assert lane.estimate.num_frogs == CONFIG.num_frogs


class TestTransportReconciliation:
    def test_measured_bytes_reconcile_with_size_model(self, outcomes):
        """Every byte the workers physically framed must price out to
        the simulated model's batch_bytes of the same record traffic."""
        _, _, _, backend = outcomes
        summary = backend.transport_summary()
        assert summary["reconciles"] == 1.0
        assert summary["sent_measured_bytes"] > 0
        assert (
            summary["sent_measured_bytes"]
            == summary["received_measured_bytes"]
        )
        assert summary["sent_records"] == summary["received_records"]

    def test_reconciliation_survives_repeated_batches(self):
        with ProcessPoolBackend(
            SMALL, num_shards=2, num_machines=4, seed=0
        ) as backend:
            reference = ShardedBackend(
                SMALL, num_shards=2, num_machines=4, seed=0
            )
            query = [RankingQuery(seeds=(5,), k=10)]
            expected = reference.run_batch(FAST, query)
            for _ in range(3):
                outcome = backend.run_batch(FAST, query)
                np.testing.assert_array_equal(
                    outcome.lanes[0].estimate.counts,
                    expected.lanes[0].estimate.counts,
                )
                assert backend.transport_summary()["reconciles"] == 1.0


class TestRefreshLifecycle:
    def test_refresh_remaps_onto_new_snapshot(self):
        """After an epoch refresh the workers serve the *new* graph's
        tables, bitwise-matching a sharded backend built fresh on it."""
        new_graph = twitter_like(n=400, seed=8)
        reference = ShardedBackend(
            new_graph, num_shards=2, num_machines=4, seed=0
        )
        query = [RankingQuery(seeds=(9,), k=10)]
        with ProcessPoolBackend(
            SMALL, num_shards=2, num_machines=4, seed=0
        ) as backend:
            backend.run_batch(FAST, query)
            backend.refresh(new_graph, reference.replications)
            outcome = backend.run_batch(FAST, query)
            expected = reference.run_batch(FAST, query)
            np.testing.assert_array_equal(
                outcome.lanes[0].estimate.counts,
                expected.lanes[0].estimate.counts,
            )
            assert backend.transport_summary()["reconciles"] == 1.0

    def test_refresh_epoch_must_advance(self):
        with ProcessPoolBackend(
            SMALL, num_shards=1, num_machines=2, seed=0
        ) as backend:
            with pytest.raises(ConfigError, match="epoch must advance"):
                backend.refresh(SMALL, backend.replications, epoch=0)

    def test_refresh_validates_table_count(self):
        with ProcessPoolBackend(
            SMALL, num_shards=2, num_machines=4, seed=0
        ) as backend:
            with pytest.raises(ConfigError, match="replication tables"):
                backend.refresh(SMALL, backend.replications[:1])

    def test_close_is_idempotent_and_final(self):
        backend = ProcessPoolBackend(
            SMALL, num_shards=1, num_machines=2, seed=0
        )
        backend.run_batch(FAST, [RankingQuery(seeds=(1,), k=5)])
        backend.close()
        backend.close()  # idempotent
        assert backend._arenas == {}
        with pytest.raises(EngineError, match="closed"):
            backend.run_batch(FAST, [RankingQuery(seeds=(1,), k=5)])


class TestServiceWiring:
    def test_backend_string_process_matches_sharded(self):
        answers = {}
        for kind in ("sharded", "process"):
            service = RankingService(
                SMALL,
                config=FAST,
                num_machines=4,
                num_shards=2,
                backend=kind,
            )
            try:
                answers[kind] = service.query([7, 12], k=8)
            finally:
                service.close()
        np.testing.assert_array_equal(
            answers["process"].vertices, answers["sharded"].vertices
        )
        np.testing.assert_allclose(
            answers["process"].scores, answers["sharded"].scores
        )

    def test_unknown_backend_string_rejected(self):
        with pytest.raises(ConfigError, match="unknown backend"):
            RankingService(SMALL, config=FAST, backend="quantum")
