"""Integration tests across the extension subsystems.

Each test wires several of the newer packages together the way a
downstream user would: generators feeding the adaptive runner, fault
injection inside a dynamic tracker's refresh loop, persistence round
trips through the chart adapters, and the full interaction-stream
pipeline.
"""

import numpy as np

from repro.core import (
    AdaptiveConfig,
    FrogWildConfig,
    run_adaptive_frogwild,
    run_frogwild,
)
from repro.dynamic import (
    ActivityWindow,
    ChurnGenerator,
    DynamicDiGraph,
    PageRankTracker,
    stable_hash_partition,
)
from repro.engine import build_cluster, traffic_breakdown
from repro.experiments import (
    FigureResult,
    load_figure_json,
    save_figure_json,
)
from repro.experiments.harness import ExperimentHarness
from repro.experiments.workloads import Workload
from repro.faults import (
    FaultSchedule,
    MachineCrash,
    MessageDrop,
    StragglerCostModel,
    run_frogwild_with_faults,
)
from repro.graph import rmat, twitter_like
from repro.metrics import ndcg_at_k, normalized_mass_captured
from repro.pagerank import (
    async_pagerank,
    exact_pagerank,
    forward_push_pagerank,
)
from repro.viz import figure_chart


class TestAdaptiveOnRmat:
    def test_adaptive_runs_on_rmat_graph(self):
        """The Graph500 generator feeds the Remark 6 runner end to end."""
        graph = rmat(scale=10, edge_factor=8, seed=3)
        outcome = run_adaptive_frogwild(
            graph,
            AdaptiveConfig(k=10, pilot_frogs=1_000, max_frogs=32_000),
            num_machines=4,
            partitioner="hdrf",
            seed=0,
        )
        truth = exact_pagerank(graph)
        mass = normalized_mass_captured(outcome.estimate.vector(), truth, 10)
        assert mass > 0.8


class TestFaultsInsideTracking:
    def test_crashy_refreshes_keep_tracking(self):
        """A tracker whose every refresh suffers a crash still follows
        the graph (the faults module composing with dynamic state)."""
        base = twitter_like(n=800, seed=11)
        dynamic = DynamicDiGraph.from_digraph(base)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=0)
        config = FrogWildConfig(num_frogs=6_000, iterations=4, seed=0)
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=1, machine=0, rebirth=True),),
            message_drop=MessageDrop(0.05),
        )
        masses = []
        for tick in range(3):
            dynamic.apply(churn.step(dynamic))
            snapshot = dynamic.snapshot()
            state = build_cluster(
                snapshot, 4, seed=0,
                partition=stable_hash_partition(snapshot, 4),
            )
            result, log = run_frogwild_with_faults(
                snapshot, schedule, config, state=state
            )
            assert log.frogs_lost_to_crashes > 0
            truth = exact_pagerank(snapshot)
            masses.append(
                normalized_mass_captured(result.estimate.vector(), truth, 10)
            )
        assert all(m > 0.75 for m in masses)


class TestStragglerWithPartialSyncTracking:
    def test_tracker_under_straggler_cost_model(self):
        base = twitter_like(n=600, seed=4)
        tracker = PageRankTracker(
            DynamicDiGraph.from_digraph(base),
            k=10,
            config=FrogWildConfig(
                num_frogs=5_000, iterations=4, ps=0.4, seed=0
            ),
            num_machines=4,
            cost_model=StragglerCostModel(slowdowns=(4.0, 1.0, 1.0, 1.0)),
        )
        assert tracker.history[0].total_time_s > 0


class TestHarnessPersistenceViz:
    def test_harness_rows_chart_and_roundtrip(self, tmp_path, small_twitter):
        """Harness rows -> figure -> JSON -> chart, the full report
        pipeline."""
        workload = Workload(
            name="tiny",
            graph=small_twitter,
            default_frogs=2_000,
            default_iterations=3,
            default_machines=4,
            paper_vertices=small_twitter.num_vertices,
        )
        harness = ExperimentHarness(workload, seed=0)
        figure = FigureResult("X", "integration smoke")
        figure.rows.append(harness.run_frogwild(ks=(10,)))
        figure.rows.append(harness.run_graphlab(iterations=1, ks=(10,)))

        path = save_figure_json(figure, tmp_path / "fig.json")
        restored = load_figure_json(path)
        chart = figure_chart(restored, x="total_time_s", y="mass@10")
        assert "integration smoke" in chart
        assert "FrogWild" in chart

    def test_breakdown_of_harness_state(self, small_twitter):
        """traffic_breakdown applies to any engine run's state."""
        result = run_frogwild(
            small_twitter,
            FrogWildConfig(num_frogs=4_000, iterations=3, seed=0),
            num_machines=4,
            partitioner="grid",
        )
        breakdown = traffic_breakdown(result.state)
        assert breakdown.total_bytes == result.report.network_bytes


class TestBaselineAgreement:
    def test_all_solvers_agree_on_the_head(self, small_twitter):
        """Exact, push, async and FrogWild name (almost) the same top-10
        — four independent code paths cross-validating each other."""
        truth = exact_pagerank(small_twitter)
        push = forward_push_pagerank(small_twitter, eps=1e-7)
        asynchronous = async_pagerank(
            small_twitter, num_machines=4, tolerance=1e-6
        )
        frog = run_frogwild(
            small_twitter,
            FrogWildConfig(num_frogs=30_000, iterations=5, seed=0),
            num_machines=4,
        )
        for estimate in (
            push.estimate,
            asynchronous.distribution(),
            frog.estimate.vector(),
        ):
            assert normalized_mass_captured(estimate, truth, 10) > 0.9
        # NDCG agreement on the head for the deterministic solvers.
        assert ndcg_at_k(push.estimate, truth, 10) > 0.99
        assert ndcg_at_k(asynchronous.distribution(), truth, 10) > 0.99


class TestWindowToTrackerPipeline:
    def test_expired_hub_leaves_the_ranking(self):
        """An interaction burst makes a hub; after the window slides
        past it, the hub leaves the top-k."""
        n = 400
        rng = np.random.default_rng(7)
        window = ActivityWindow(n, horizon=2.0)
        live = DynamicDiGraph(n)

        def background(t):
            batch = rng.integers(0, n, size=(1_500, 2))
            return batch[batch[:, 0] != batch[:, 1]]

        hub = n - 1
        burst = np.column_stack(
            [np.arange(200), np.full(200, hub)]
        )
        first = np.concatenate([background(0), burst])
        live.apply(window.observe(first, timestamp=0.0))
        tracker = PageRankTracker(
            live,
            k=5,
            config=FrogWildConfig(num_frogs=6_000, iterations=4, seed=0),
            num_machines=4,
        )
        assert hub in set(tracker.current_top_k.tolist())

        # Slide the window past the burst with fresh background noise.
        for t in (1.0, 2.5, 4.0):
            update = tracker.update(window.observe(background(t), t))
        assert hub not in set(update.top_k.tolist())
