"""Unit tests for the simulated-time cost model."""

import numpy as np
import pytest

from repro.cluster import CostModel, SimulatedClock, SuperstepCost


class TestCostModel:
    def test_superstep_components(self):
        model = CostModel(
            bandwidth_bytes_per_s=100.0,
            barrier_latency_s=0.5,
            cpu_ops_per_s=10.0,
            per_message_overhead_s=0.0,
        )
        cost = model.superstep_time(
            bytes_sent=np.array([200.0, 0.0]),
            bytes_received=np.array([0.0, 200.0]),
            cpu_ops=np.array([5.0, 20.0]),
        )
        assert cost.barrier_s == pytest.approx(0.5)
        assert cost.comm_s == pytest.approx(2.0)  # 200 bytes / 100 B/s
        assert cost.compute_s == pytest.approx(2.0)  # 20 ops / 10 ops/s
        assert cost.total_s == pytest.approx(4.5)

    def test_straggler_dominates(self):
        model = CostModel(bandwidth_bytes_per_s=1.0, barrier_latency_s=0.0,
                          cpu_ops_per_s=1.0, per_message_overhead_s=0.0)
        cost = model.superstep_time(
            bytes_sent=np.array([10.0, 1.0]),
            bytes_received=np.array([1.0, 3.0]),
            cpu_ops=np.array([0.0, 0.0]),
        )
        assert cost.comm_s == pytest.approx(10.0)

    def test_message_overhead(self):
        model = CostModel(per_message_overhead_s=0.1, barrier_latency_s=0.0)
        cost = model.superstep_time(
            np.zeros(2), np.zeros(2), np.zeros(2), num_messages=5
        )
        assert cost.comm_s == pytest.approx(0.5)

    def test_empty_cluster_arrays(self):
        model = CostModel()
        cost = model.superstep_time(np.zeros(1), np.zeros(1), np.zeros(1))
        assert cost.total_s == pytest.approx(model.barrier_latency_s)

    def test_cpu_seconds(self):
        model = CostModel(cpu_ops_per_s=100.0)
        assert model.cpu_seconds(250) == pytest.approx(2.5)


class TestSimulatedClock:
    def test_advance_accumulates(self):
        clock = SimulatedClock()
        clock.advance(SuperstepCost(1.0, 2.0, 3.0))
        clock.advance(SuperstepCost(0.0, 1.0, 0.0))
        assert clock.elapsed_s == pytest.approx(7.0)
        assert clock.num_supersteps == 2
        assert clock.time_per_superstep() == pytest.approx(3.5)

    def test_empty_clock(self):
        clock = SimulatedClock()
        assert clock.elapsed_s == 0.0
        assert clock.time_per_superstep() == 0.0
