"""Unit tests for graph statistics and reachability."""

import numpy as np
import pytest

from repro.graph import (
    cycle_graph,
    from_edges,
    is_strongly_connected,
    power_law_exponent,
    reciprocity,
    star_graph,
    summarize,
    twitter_like,
)


class TestReciprocity:
    def test_fully_reciprocal(self):
        g = from_edges([(0, 1), (1, 0), (1, 2), (2, 1)])
        assert reciprocity(g) == pytest.approx(1.0)

    def test_no_reciprocity(self):
        assert reciprocity(cycle_graph(5)) == pytest.approx(0.0)

    def test_half_reciprocal(self):
        g = from_edges([(0, 1), (1, 0), (1, 2), (2, 0)], repair_dangling="none")
        assert reciprocity(g) == pytest.approx(0.5)

    def test_star_fully_reciprocal(self):
        assert reciprocity(star_graph(6)) == pytest.approx(1.0)


class TestPowerLawExponent:
    def test_recovers_planted_exponent(self, rng):
        theta = 2.5
        degrees = (1.0 - rng.random(50_000)) ** (-1.0 / (theta - 1.0)) * 4
        fitted = power_law_exponent(degrees.astype(int), d_min=8)
        assert fitted == pytest.approx(theta, abs=0.3)

    def test_nan_for_tiny_samples(self):
        assert np.isnan(power_law_exponent(np.array([1, 2, 3])))


class TestStrongConnectivity:
    def test_cycle_strongly_connected(self):
        assert is_strongly_connected(cycle_graph(7))

    def test_path_not_strongly_connected(self):
        g = from_edges([(0, 1), (1, 2)], repair_dangling="self-loop")
        assert not is_strongly_connected(g)

    def test_star_strongly_connected(self):
        assert is_strongly_connected(star_graph(5))


class TestSummary:
    def test_summary_fields(self):
        g = twitter_like(n=800, seed=1)
        s = summarize(g)
        assert s.num_vertices == 800
        assert s.num_edges == g.num_edges
        assert s.avg_out_degree == pytest.approx(g.num_edges / 800)
        assert s.max_in_degree >= s.avg_out_degree
        assert s.dangling_count == 0
        assert 0.0 <= s.reciprocity <= 1.0

    def test_summary_as_dict_keys(self):
        s = summarize(cycle_graph(4))
        d = s.as_dict()
        assert d["num_vertices"] == 4
        assert d["max_out_degree"] == 1
        assert "in_degree_tail_exponent" in d
