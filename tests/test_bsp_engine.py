"""Unit tests for the BSP engine driver and the GAS phase accounting."""

import numpy as np
import pytest

from repro.engine import ApplyResult, BSPEngine, BulkVertexProgram, build_cluster
from repro.errors import EngineError
from repro.graph import cycle_graph, from_edges


class SumInNeighbours(BulkVertexProgram):
    """data <- sum of in-neighbour data; used to check gather exactness."""

    gather_edges = "in"
    name = "sum-in"

    def __init__(self, rounds=1):
        self.rounds = rounds

    def initial_data(self, state):
        return np.arange(state.num_vertices, dtype=np.float64)

    def gather_contribution(self, sources, data, state):
        return data[sources]

    def apply_bulk(self, active, gather_sums, data, state, step):
        return ApplyResult(
            new_values=gather_sums,
            signal_mask=np.ones(active.size, dtype=bool),
            done=step + 1 >= self.rounds,
        )


class NoGatherCountdown(BulkVertexProgram):
    """gather_edges='none': data decrements until zero, no signals."""

    gather_edges = "none"
    name = "countdown"

    def initial_data(self, state):
        return np.full(state.num_vertices, 3.0)

    def apply_bulk(self, active, gather_sums, data, state, step):
        assert np.all(gather_sums == 0.0)
        new = data[active] - 1.0
        return ApplyResult(
            new_values=new,
            signal_mask=None if np.all(new <= 0) else np.ones(active.size, bool),
        )


class TestGatherExactness:
    def test_one_round_sums_in_neighbours(self):
        graph = from_edges([(0, 1), (0, 2), (1, 2), (2, 0), (3, 0)])
        state = build_cluster(graph, num_machines=3, seed=1)
        engine = BSPEngine(state, SumInNeighbours())
        engine.run()
        # initial data = [0,1,2,3]; in-neighbours: 0<-{2,3}, 1<-{0}, 2<-{0,1}, 3<-{}
        np.testing.assert_allclose(engine.data, [5.0, 0.0, 1.0, 0.0])

    def test_gather_independent_of_partitioning(self, small_twitter):
        results = []
        for machines in (1, 3, 5):
            state = build_cluster(small_twitter, machines, seed=2)
            engine = BSPEngine(state, SumInNeighbours())
            engine.run()
            results.append(engine.data)
        np.testing.assert_allclose(results[0], results[1])
        np.testing.assert_allclose(results[0], results[2])


class TestActivationFlow:
    def test_signals_keep_frontier_alive(self):
        state = build_cluster(cycle_graph(6), num_machines=2, seed=0)
        engine = BSPEngine(state, SumInNeighbours(rounds=4))
        report = engine.run()
        assert report.supersteps == 4

    def test_empty_frontier_terminates(self):
        state = build_cluster(cycle_graph(6), num_machines=2, seed=0)
        engine = BSPEngine(state, NoGatherCountdown())
        report = engine.run(max_supersteps=50)
        # 3 decrements reach zero; frontier dies after round 3.
        assert report.supersteps == 3
        np.testing.assert_allclose(engine.data, np.zeros(6))

    def test_max_supersteps_cap(self):
        state = build_cluster(cycle_graph(6), num_machines=2, seed=0)
        engine = BSPEngine(state, SumInNeighbours(rounds=1000))
        report = engine.run(max_supersteps=5)
        assert report.supersteps == 5


class TestTrafficAccounting:
    def test_single_machine_no_network(self):
        state = build_cluster(cycle_graph(10), num_machines=1, seed=0)
        engine = BSPEngine(state, SumInNeighbours(rounds=3))
        report = engine.run()
        assert report.network_bytes == 0

    def test_multi_machine_generates_all_kinds(self, small_twitter):
        state = build_cluster(small_twitter, num_machines=4, seed=0)
        engine = BSPEngine(state, SumInNeighbours(rounds=2))
        engine.run()
        kinds = state.fabric.snapshot().bytes_by_kind
        assert kinds.get("gather", 0) > 0
        assert kinds.get("sync", 0) > 0
        assert kinds.get("scatter", 0) > 0

    def test_more_machines_more_traffic(self, small_twitter):
        totals = []
        for machines in (2, 8):
            state = build_cluster(small_twitter, machines, seed=0)
            BSPEngine(state, SumInNeighbours(rounds=2)).run()
            totals.append(state.fabric.total_bytes())
        assert totals[1] > totals[0]

    def test_report_fields(self, small_twitter):
        state = build_cluster(small_twitter, num_machines=4, seed=0)
        engine = BSPEngine(state, SumInNeighbours(rounds=2))
        report = engine.run()
        assert report.algorithm == "sum-in"
        assert report.num_machines == 4
        assert report.supersteps == 2
        assert report.total_time_s > 0
        assert report.time_per_iteration_s == pytest.approx(
            report.total_time_s / 2
        )
        assert report.cpu_seconds > 0


class TestValidation:
    def test_bad_gather_mode_rejected(self, small_cluster):
        class Bad(SumInNeighbours):
            gather_edges = "out"

        with pytest.raises(EngineError, match="gather_edges"):
            BSPEngine(small_cluster, Bad())

    def test_misaligned_apply_result(self, small_cluster):
        class Bad(SumInNeighbours):
            def apply_bulk(self, active, gather_sums, data, state, step):
                return ApplyResult(new_values=np.zeros(3))

        with pytest.raises(EngineError, match="misaligned"):
            BSPEngine(small_cluster, Bad()).run()

    def test_bad_initial_data_shape(self, small_cluster):
        class Bad(SumInNeighbours):
            def initial_data(self, state):
                return np.zeros(7)

        with pytest.raises(EngineError, match="initial_data"):
            BSPEngine(small_cluster, Bad()).run()
