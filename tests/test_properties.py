"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.cluster import EdgePartition, ReplicationTable
from repro.core import FrogWildConfig, PageRankEstimate, run_frogwild, top_k_indices
from repro.graph import from_edges
from repro.metrics import (
    exact_identification,
    mass_captured,
    normalized_mass_captured,
    optimal_mass,
)
from repro.pagerank import exact_pagerank

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

edge_lists = st.lists(
    st.tuples(st.integers(0, 19), st.integers(0, 19)),
    min_size=1,
    max_size=120,
)

distributions = npst.arrays(
    np.float64,
    st.integers(3, 40),
    elements=st.floats(1e-6, 1.0),
).map(lambda a: a / a.sum())


# ---------------------------------------------------------------------------
# Graph builder invariants
# ---------------------------------------------------------------------------


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_builder_output_is_valid_csr(edges):
    g = from_edges(edges)
    assert g.indptr[0] == 0
    assert g.indptr[-1] == g.num_edges
    assert np.all(np.diff(g.indptr) >= 0)
    if g.num_edges:
        assert g.indices.min() >= 0
        assert g.indices.max() < g.num_vertices


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_builder_idempotent_on_own_output(edges):
    g = from_edges(edges)
    again = from_edges(list(g.edges()), num_vertices=g.num_vertices)
    assert again == g


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_builder_no_dangling_with_default_repair(edges):
    g = from_edges(edges)
    assert g.dangling_vertices().size == 0


@given(edge_lists)
@settings(max_examples=40, deadline=None)
def test_successors_sorted_and_unique(edges):
    g = from_edges(edges)
    for v in range(g.num_vertices):
        succ = g.successors(v)
        assert np.all(np.diff(succ) > 0)


# ---------------------------------------------------------------------------
# Top-k selection
# ---------------------------------------------------------------------------


@given(
    npst.arrays(np.float64, st.integers(1, 50), elements=st.floats(0, 1)),
    st.integers(0, 60),
)
@settings(max_examples=80, deadline=None)
def test_top_k_properties(values, k):
    chosen = top_k_indices(values, k)
    assert chosen.size == min(k, values.size)
    assert chosen.size == np.unique(chosen).size
    if chosen.size:
        worst_chosen = values[chosen].min()
        not_chosen = np.setdiff1d(np.arange(values.size), chosen)
        if not_chosen.size:
            assert worst_chosen >= values[not_chosen].max() - 1e-12
        # Returned in non-increasing order of value.
        assert np.all(np.diff(values[chosen]) <= 1e-12)


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------


@given(distributions, distributions, st.integers(1, 10))
@settings(max_examples=80, deadline=None)
def test_mass_captured_bounds(estimate, truth, k):
    if estimate.size != truth.size:
        truth = np.resize(truth, estimate.size)
        truth = truth / truth.sum()
    value = mass_captured(estimate, truth, k)
    assert 0.0 <= value <= 1.0 + 1e-12
    assert value <= optimal_mass(truth, k) + 1e-12
    assert normalized_mass_captured(estimate, truth, k) <= 1.0 + 1e-9


@given(distributions, st.integers(1, 10))
@settings(max_examples=40, deadline=None)
def test_self_estimates_are_perfect(truth, k):
    assert normalized_mass_captured(truth, truth, k) == 1.0
    assert exact_identification(truth, truth, k) == 1.0


# ---------------------------------------------------------------------------
# Estimator invariants
# ---------------------------------------------------------------------------


@given(
    npst.arrays(np.int64, st.integers(1, 30), elements=st.integers(0, 100)),
    st.integers(1, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_estimate_normalization(counts, frogs):
    est = PageRankEstimate(counts, num_frogs=frogs)
    np.testing.assert_allclose(est.distribution().sum(), 1.0)
    np.testing.assert_allclose(est.vector().sum() * frogs, counts.sum())


# ---------------------------------------------------------------------------
# Partition / replication invariants
# ---------------------------------------------------------------------------


@given(edge_lists, st.integers(1, 6), st.integers(0, 5))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_replication_covers_every_edge(edges, machines, seed):
    g = from_edges(edges)
    rng = np.random.default_rng(seed)
    placement = rng.integers(0, machines, size=g.num_edges, dtype=np.int32)
    table = ReplicationTable(g, EdgePartition(placement, machines), seed=seed)
    # Every edge's endpoints are replicated on its hosting machine.
    src = g.edge_sources()
    for e in range(g.num_edges):
        p = placement[e]
        assert p in table.replicas_of(int(src[e]))
        assert p in table.replicas_of(int(g.indices[e]))
    # Masters are valid replicas and replication factor >= 1.
    for v in range(g.num_vertices):
        assert table.master_of(v) in table.replicas_of(v)
    assert table.replication_factor() >= 1.0


# ---------------------------------------------------------------------------
# End-to-end FrogWild invariants
# ---------------------------------------------------------------------------


@given(
    st.integers(0, 1000),
    st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    st.integers(1, 5),
)
@settings(max_examples=12, deadline=None)
def test_frogwild_conserves_and_reports(seed, ps, iterations):
    g = from_edges([(i, (i + j) % 12) for i in range(12) for j in (1, 2, 5)])
    config = FrogWildConfig(
        num_frogs=300, iterations=iterations, ps=ps, seed=seed
    )
    result = run_frogwild(g, config, num_machines=3)
    assert result.estimate.total_stopped == 300
    assert result.report.supersteps == iterations
    assert result.report.network_bytes >= 0
    dist = result.estimate.distribution()
    np.testing.assert_allclose(dist.sum(), 1.0)


@given(st.integers(0, 50))
@settings(max_examples=10, deadline=None)
def test_frogwild_estimate_is_distribution_on_random_graphs(seed):
    rng = np.random.default_rng(seed)
    n = 30
    edges = np.column_stack(
        [rng.integers(0, n, size=150), rng.integers(0, n, size=150)]
    )
    g = from_edges(edges, num_vertices=n)
    truth = exact_pagerank(g)
    result = run_frogwild(
        g,
        FrogWildConfig(num_frogs=2000, iterations=6, seed=seed),
        num_machines=2,
    )
    mass = normalized_mass_captured(result.estimate.vector(), truth, 5)
    assert mass > 0.3  # loose sanity: far above random choice
