"""Statistical validation of the estimator across independent seeds.

Theorem 1's ingredients, checked empirically: at full synchronization
the per-vertex counters are unbiased for the t-step walk law, their
variance shrinks like 1/N, and partial synchronization can only add
(positive) correlation — Lemma 18's ``(1 - ps^2) p_meet`` term —
which shows up as extra variance in the captured-mass statistic.
"""

import numpy as np
import pytest

from repro.core import FrogWildConfig, run_frogwild
from repro.graph import twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank
from repro.theory import walk_distribution

_SEEDS = range(12)


@pytest.fixture(scope="module")
def graph():
    return twitter_like(n=800, seed=3)


@pytest.fixture(scope="module")
def truth(graph):
    return exact_pagerank(graph)


def _runs(graph, seeds, **overrides):
    defaults = dict(num_frogs=4_000, iterations=4, ps=1.0)
    defaults.update(overrides)
    return [
        run_frogwild(
            graph,
            FrogWildConfig(seed=seed, **defaults),
            num_machines=4,
        )
        for seed in seeds
    ]


class TestUnbiasedness:
    def test_mean_estimate_tracks_walk_law(self, graph):
        """Averaged over seeds, pi_hat approaches the truncated-walk
        distribution pi_t (Lemma 16's law), not some biased variant."""
        results = _runs(graph, _SEEDS)
        mean_estimate = np.mean(
            [r.estimate.vector() for r in results], axis=0
        )
        pi_t = walk_distribution(graph, 4)
        # Head agreement: the heavy entries match within sampling noise.
        top = np.argsort(pi_t)[::-1][:20]
        relative_error = np.abs(
            mean_estimate[top] - pi_t[top]
        ) / pi_t[top]
        assert relative_error.mean() < 0.15

    def test_total_mass_exact(self, graph):
        """Multinomial scatter conserves every frog, every seed."""
        for result in _runs(graph, range(5)):
            assert result.estimate.total_stopped == 4_000


class TestVarianceScaling:
    def test_variance_shrinks_with_n(self, graph, truth):
        """Quadrupling N roughly quarters the captured-mass variance."""
        small = [
            normalized_mass_captured(r.estimate.vector(), truth, 30)
            for r in _runs(graph, _SEEDS, num_frogs=2_000)
        ]
        large = [
            normalized_mass_captured(r.estimate.vector(), truth, 30)
            for r in _runs(graph, _SEEDS, num_frogs=8_000)
        ]
        assert np.var(large) < np.var(small)
        assert np.mean(large) > np.mean(small)

    def test_standard_errors_calibrated(self, graph):
        """Reported per-vertex SEs match the observed spread across
        seeds at ps=1 (within a factor of 2 on the head)."""
        results = _runs(graph, _SEEDS)
        estimates = np.array([r.estimate.vector() for r in results])
        observed_sd = estimates.std(axis=0)
        claimed_se = results[0].estimate.standard_errors()
        head = np.argsort(estimates.mean(axis=0))[::-1][:10]
        ratio = observed_sd[head] / np.maximum(claimed_se[head], 1e-12)
        assert 0.4 < ratio.mean() < 2.5


class TestPartialSyncCorrelation:
    def test_low_ps_does_not_bias_the_marginal(self, graph):
        """Definition 3's point: partial sync leaves each walker's
        marginal law unchanged, so the mean head mass stays put."""
        full = np.mean(
            [
                r.estimate.vector()
                for r in _runs(graph, _SEEDS, ps=1.0)
            ],
            axis=0,
        )
        partial = np.mean(
            [
                r.estimate.vector()
                for r in _runs(graph, _SEEDS, ps=0.2)
            ],
            axis=0,
        )
        top = np.argsort(full)[::-1][:20]
        assert np.abs(full[top] - partial[top]).sum() < 0.3 * full[top].sum()

    def test_accuracy_spread_stays_bounded_at_low_ps(self, graph, truth):
        """Lemma 18 bounds the correlation penalty: the captured-mass
        spread at ps=0.2 stays within a small multiple of the ps=1
        sampling noise (it does NOT blow up)."""
        full = [
            normalized_mass_captured(r.estimate.vector(), truth, 30)
            for r in _runs(graph, _SEEDS, ps=1.0)
        ]
        partial = [
            normalized_mass_captured(r.estimate.vector(), truth, 30)
            for r in _runs(graph, _SEEDS, ps=0.2)
        ]
        assert np.std(partial) < 5 * np.std(full) + 0.01
        assert np.mean(partial) > np.mean(full) - 0.1
