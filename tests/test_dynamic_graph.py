"""Tests for the mutable graph and churn generator."""

import numpy as np
import pytest

from repro.dynamic import ChurnGenerator, DynamicDiGraph, GraphDelta
from repro.errors import ConfigError, GraphError
from repro.graph import twitter_like


class TestGraphDelta:
    def test_empty_delta(self):
        delta = GraphDelta()
        assert delta.num_added == 0
        assert delta.num_removed == 0

    def test_counts(self):
        delta = GraphDelta(added=[(0, 1), (1, 2)], removed=[(2, 3)])
        assert delta.num_added == 2
        assert delta.num_removed == 1

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError):
            GraphDelta(added=np.array([1, 2, 3]))

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError):
            GraphDelta(added=[(-1, 2)])


class TestDynamicDiGraph:
    def test_initial_edges_deduped(self):
        graph = DynamicDiGraph(4, [(0, 1), (0, 1), (1, 2)])
        assert graph.num_edges == 2

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphError):
            DynamicDiGraph(0)

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(GraphError):
            DynamicDiGraph(3, [(0, 5)])

    def test_add_counts_only_new(self):
        graph = DynamicDiGraph(4, [(0, 1)])
        assert graph.add_edges([(0, 1), (1, 2)]) == 1
        assert graph.num_edges == 2

    def test_remove_counts_only_existing(self):
        graph = DynamicDiGraph(4, [(0, 1), (1, 2)])
        assert graph.remove_edges([(0, 1), (2, 3)]) == 1
        assert graph.num_edges == 1

    def test_has_edge(self):
        graph = DynamicDiGraph(4, [(0, 1)])
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(1, 0)

    def test_has_edge_bounds_checked(self):
        with pytest.raises(GraphError):
            DynamicDiGraph(2).has_edge(0, 7)

    def test_version_bumps_on_mutation(self):
        graph = DynamicDiGraph(4, [(0, 1)])
        v0 = graph.version
        graph.add_edges([(1, 2)])
        graph.remove_edges([(0, 1)])
        assert graph.version == v0 + 2

    def test_apply_removes_before_adding(self):
        graph = DynamicDiGraph(4, [(0, 1)])
        # Atomic rewire: delete (0,1), re-add it — the edge must survive.
        added, removed = graph.apply(
            GraphDelta(added=[(0, 1)], removed=[(0, 1)])
        )
        assert (added, removed) == (1, 1)
        assert graph.has_edge(0, 1)

    def test_out_degree(self):
        graph = DynamicDiGraph(3, [(0, 1), (0, 2), (1, 2)])
        assert list(graph.out_degree()) == [2, 1, 0]

    def test_snapshot_roundtrip(self):
        graph = DynamicDiGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        snapshot = graph.snapshot()
        assert snapshot.num_vertices == 4
        assert snapshot.num_edges == 4
        assert np.array_equal(snapshot.edge_array(), graph.edge_array())

    def test_snapshot_repairs_dangling(self):
        graph = DynamicDiGraph(3, [(0, 1), (1, 2)])
        snapshot = graph.snapshot()  # vertex 2 dangles -> self loop
        assert snapshot.out_degree(2) == 1

    def test_from_digraph_roundtrip(self):
        base = twitter_like(n=300, seed=1)
        dynamic = DynamicDiGraph.from_digraph(base)
        assert dynamic.num_edges == base.num_edges
        assert dynamic.snapshot(repair_dangling="none") == base


class TestChurnGenerator:
    @pytest.fixture
    def live_graph(self):
        return DynamicDiGraph.from_digraph(twitter_like(n=500, seed=7))

    def test_rejects_bad_rates(self):
        with pytest.raises(ConfigError):
            ChurnGenerator(add_rate=-0.1)
        with pytest.raises(ConfigError):
            ChurnGenerator(add_rate=0.0, remove_rate=0.0)
        with pytest.raises(ConfigError):
            ChurnGenerator(attachment_bias=2.0)

    def test_step_sizes_follow_rates(self, live_graph):
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.01, seed=0)
        delta = churn.step(live_graph)
        m = live_graph.num_edges
        assert delta.num_added == round(0.02 * m)
        assert delta.num_removed == round(0.01 * m)

    def test_removals_are_existing_edges(self, live_graph):
        churn = ChurnGenerator(add_rate=0.0, remove_rate=0.05, seed=0)
        delta = churn.step(live_graph)
        for u, v in delta.removed:
            assert live_graph.has_edge(int(u), int(v))

    def test_no_self_loops_added(self, live_graph):
        churn = ChurnGenerator(add_rate=0.05, remove_rate=0.0, seed=0)
        delta = churn.step(live_graph)
        assert np.all(delta.added[:, 0] != delta.added[:, 1])

    def test_steady_state_under_equal_rates(self, live_graph):
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.02, seed=0)
        m0 = live_graph.num_edges
        for _ in churn.stream(live_graph, steps=10):
            pass
        # Added edges may collide with existing ones, so the count can
        # drift slightly down, never explode.
        assert 0.8 * m0 < live_graph.num_edges <= m0 * 1.05

    def test_preferential_attachment_targets_hubs(self, live_graph):
        """With full bias, added targets concentrate above uniform."""
        biased = ChurnGenerator(
            add_rate=0.5, remove_rate=0.0, attachment_bias=1.0, seed=0
        )
        delta = biased.step(live_graph)
        in_degree = np.bincount(
            live_graph.edge_array()[:, 1],
            minlength=live_graph.num_vertices,
        )
        hubs = np.argsort(in_degree)[-50:]
        share = np.isin(delta.added[:, 1], hubs).mean()
        uniform_share = 50 / live_graph.num_vertices
        assert share > 3 * uniform_share

    def test_stream_without_apply_forks(self, live_graph):
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.02, seed=0)
        m0 = live_graph.num_edges
        deltas = list(churn.stream(live_graph, steps=3, apply=False))
        assert len(deltas) == 3
        assert live_graph.num_edges == m0

    def test_stream_rejects_negative_steps(self, live_graph):
        churn = ChurnGenerator(seed=0)
        with pytest.raises(ConfigError):
            list(churn.stream(live_graph, steps=-1))

    def test_deterministic(self):
        a_graph = DynamicDiGraph.from_digraph(twitter_like(n=200, seed=3))
        b_graph = DynamicDiGraph.from_digraph(twitter_like(n=200, seed=3))
        a = ChurnGenerator(seed=11).step(a_graph)
        b = ChurnGenerator(seed=11).step(b_graph)
        assert np.array_equal(a.added, b.added)
        assert np.array_equal(a.removed, b.removed)
