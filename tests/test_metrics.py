"""Unit tests for the accuracy metrics (Definition 2 and companions)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.metrics import (
    exact_identification,
    l1_error,
    linf_error,
    mass_captured,
    mean_true_rank,
    normalized_mass_captured,
    optimal_mass,
    topk_jaccard,
    topk_kendall_tau,
)


@pytest.fixture
def truth():
    return np.array([0.4, 0.3, 0.15, 0.1, 0.05])


class TestMassCaptured:
    def test_perfect_estimate(self, truth):
        assert mass_captured(truth, truth, 2) == pytest.approx(0.7)

    def test_wrong_order_partial_credit(self, truth):
        estimate = np.array([0.0, 0.1, 0.5, 0.4, 0.0])  # picks {2, 3}
        assert mass_captured(estimate, truth, 2) == pytest.approx(0.25)

    def test_optimal_mass(self, truth):
        assert optimal_mass(truth, 3) == pytest.approx(0.85)

    def test_normalized_bounds(self, truth, rng):
        for _ in range(10):
            estimate = rng.random(5)
            value = normalized_mass_captured(estimate, truth, 2)
            assert 0.0 < value <= 1.0

    def test_normalized_perfect_is_one(self, truth):
        assert normalized_mass_captured(truth, truth, 4) == pytest.approx(1.0)

    def test_maximized_by_truth(self, truth, rng):
        best = mass_captured(truth, truth, 2)
        for _ in range(20):
            assert mass_captured(rng.random(5), truth, 2) <= best + 1e-12

    def test_shape_mismatch(self, truth):
        with pytest.raises(ConfigError):
            mass_captured(np.ones(3), truth, 2)

    def test_bad_k(self, truth):
        with pytest.raises(ConfigError):
            mass_captured(truth, truth, 0)


class TestExactIdentification:
    def test_perfect(self, truth):
        assert exact_identification(truth, truth, 3) == pytest.approx(1.0)

    def test_half_overlap(self, truth):
        estimate = np.array([0.5, 0.0, 0.4, 0.0, 0.0])  # top-2 {0, 2}
        assert exact_identification(estimate, truth, 2) == pytest.approx(0.5)

    def test_zero_overlap(self, truth):
        estimate = np.array([0.0, 0.0, 0.0, 0.5, 0.5])
        assert exact_identification(estimate, truth, 2) == pytest.approx(0.0)

    def test_k_above_n(self, truth):
        assert exact_identification(truth, truth, 10) == pytest.approx(1.0)


class TestDistances:
    def test_l1(self):
        a = np.array([0.5, 0.5])
        b = np.array([1.0, 0.0])
        assert l1_error(a, b) == pytest.approx(1.0)

    def test_linf(self):
        a = np.array([0.5, 0.5, 0.0])
        b = np.array([0.2, 0.5, 0.3])
        assert linf_error(a, b) == pytest.approx(0.3)

    def test_zero_distance(self, truth):
        assert l1_error(truth, truth) == 0.0
        assert linf_error(truth, truth) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ConfigError):
            l1_error(np.ones(2), np.ones(3))
        with pytest.raises(ConfigError):
            linf_error(np.ones(2), np.ones(3))


class TestComparison:
    def test_jaccard_perfect(self, truth):
        assert topk_jaccard(truth, truth, 3) == pytest.approx(1.0)

    def test_jaccard_disjoint(self):
        a = np.array([1.0, 0.9, 0.0, 0.0])
        b = np.array([0.0, 0.0, 1.0, 0.9])
        assert topk_jaccard(a, b, 2) == pytest.approx(0.0)

    def test_kendall_perfect(self, truth):
        assert topk_kendall_tau(truth, truth, 4) == pytest.approx(1.0)

    def test_kendall_reversed(self, truth):
        estimate = truth[::-1].copy()
        estimate = np.array([0.05, 0.1, 0.15, 0.3, 0.4])
        # Same top-4 set in reversed order: tau = -1.
        assert topk_kendall_tau(estimate, truth, 4) == pytest.approx(-1.0)

    def test_kendall_single_common(self):
        a = np.array([1.0, 0.0, 0.0, 0.9])
        b = np.array([1.0, 0.9, 0.0, 0.0])
        assert topk_kendall_tau(a, b, 2) == pytest.approx(1.0)

    def test_mean_true_rank_perfect(self, truth):
        assert mean_true_rank(truth, truth, 3) == pytest.approx(2.0)

    def test_mean_true_rank_worst(self, truth):
        estimate = np.array([0.0, 0.0, 0.0, 0.5, 0.6])
        assert mean_true_rank(estimate, truth, 2) == pytest.approx(4.5)

    def test_bad_k(self, truth):
        with pytest.raises(ConfigError):
            topk_jaccard(truth, truth, 0)
        with pytest.raises(ConfigError):
            topk_kendall_tau(truth, truth, 0)
        with pytest.raises(ConfigError):
            mean_true_rank(truth, truth, 0)
