"""Coverage for workload scaling helpers and paper constants."""


from repro.experiments import (
    PAPER_FROGS,
    PAPER_LIVEJOURNAL_VERTICES,
    PAPER_TWITTER_VERTICES,
    livejournal_workload,
    twitter_workload,
)


class TestPaperConstants:
    def test_dataset_sizes_from_paper(self):
        assert PAPER_TWITTER_VERTICES == 41_600_000
        assert PAPER_LIVEJOURNAL_VERTICES == 4_800_000
        assert PAPER_FROGS == 800_000


class TestFrogScaling:
    def test_identity_at_paper_default(self):
        w = twitter_workload(n=700, default_frogs=999)
        assert w.frogs_scaled(PAPER_FROGS) == 999

    def test_proportional(self):
        w = twitter_workload(n=700, default_frogs=1000)
        assert w.frogs_scaled(400_000) == 500
        assert w.frogs_scaled(1_200_000) == 1500

    def test_floor_at_one(self):
        w = twitter_workload(n=700, default_frogs=1)
        assert w.frogs_scaled(1) == 1

    def test_rounding(self):
        w = twitter_workload(n=700, default_frogs=1000)
        # 999_999 / 800_000 * 1000 = 1249.99...
        assert w.frogs_scaled(999_999) == 1250


class TestWorkloadIdentity:
    def test_names(self):
        assert twitter_workload(n=600).name == "twitter"
        assert livejournal_workload(n=600).name == "livejournal"

    def test_paper_counterparts_recorded(self):
        assert (
            twitter_workload(n=600).paper_vertices == PAPER_TWITTER_VERTICES
        )
        assert (
            livejournal_workload(n=600).paper_vertices
            == PAPER_LIVEJOURNAL_VERTICES
        )

    def test_livejournal_more_reciprocal(self):
        from repro.graph import reciprocity

        tw = twitter_workload(n=1500).graph
        lj = livejournal_workload(n=1500).graph
        assert reciprocity(lj) > reciprocity(tw)


class TestRmatWorkload:
    def test_rmat_workload_shape(self):
        from repro.experiments import rmat_workload

        workload = rmat_workload(scale=10, edge_factor=8)
        assert workload.graph.num_vertices == 1024
        assert workload.name == "rmat10"
        assert workload.paper_vertices == 1024

    def test_rmat_workload_truth_cached(self):
        from repro.experiments import rmat_workload

        workload = rmat_workload(scale=10, edge_factor=8)
        truth_a = workload.truth
        truth_b = workload.truth
        assert truth_a is truth_b
        assert abs(truth_a.sum() - 1.0) < 1e-9

    def test_rmat_graph_cached_across_workloads(self):
        from repro.experiments import rmat_workload

        a = rmat_workload(scale=10, edge_factor=8)
        b = rmat_workload(scale=10, edge_factor=8)
        assert a.graph is b.graph
