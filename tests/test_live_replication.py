"""Incremental replication tables + background refresh.

Two pinned invariants:

* **equivalence** — after *any* sequence of deltas, the maintained
  :class:`~repro.cluster.ReplicationTable` is structurally equal
  (masters, replica bitmap, both machine-grouped adjacencies, partition)
  to a from-scratch build of the current snapshot;
* **epoch purity under background refresh** — queries dispatched while
  the next epoch is being built run, and are stamped, wholly on the
  epoch current at their dispatch; the publish at the end of a build is
  only the atomic swap.
"""

import threading

import numpy as np
import pytest

from repro.cluster import ReplicationTable, placement_diff
from repro.core import FrogWildConfig, RefreshPolicy
from repro.dynamic import ChurnGenerator, DynamicDiGraph, GraphDelta
from repro.errors import ConfigError
from repro.graph import twitter_like
from repro.live import (
    IncrementalIngress,
    IncrementalReplication,
    LiveRankingService,
)

FAST = FrogWildConfig(num_frogs=500, iterations=3, seed=0)


def make_replicator(n=300, graph_seed=3, machines=6, seed=4, policy=None):
    dynamic = DynamicDiGraph.from_digraph(
        twitter_like(n=n, seed=graph_seed)
    )
    ingress = IncrementalIngress(dynamic, machines, seed=seed)
    # Tests of the patch path pin full_rebuild_fraction=1.0: on these
    # small power-law graphs a few churned hub edges can push the
    # projected regroup work past the adaptive gate's default.
    replicator = IncrementalReplication(
        ingress,
        dynamic.snapshot(),
        seed=seed,
        policy=policy or RefreshPolicy(full_rebuild_fraction=1.0),
    )
    return dynamic, ingress, replicator


def assert_equivalent_to_rebuild(replicator, snapshot):
    scratch = ReplicationTable(
        snapshot,
        replicator.ingress.partition_for(snapshot),
        seed=replicator.seed,
    )
    assert replicator.table.structurally_equal(scratch)
    # Spot-check the named components of the acceptance criterion on
    # top of the array-level equality: masters, mirrors, group
    # structure, replication factor.
    table = replicator.table
    assert table.replication_factor() == scratch.replication_factor()
    for v in range(0, snapshot.num_vertices, 37):
        assert table.master_of(v) == scratch.master_of(v)
        np.testing.assert_array_equal(
            table.mirrors_of(v), scratch.mirrors_of(v)
        )
        mine = table.out_edge_groups(v)
        theirs = scratch.out_edge_groups(v)
        np.testing.assert_array_equal(mine[0], theirs[0])
        for a, b in zip(mine[1], theirs[1]):
            np.testing.assert_array_equal(a, b)


class TestPatchEquivalence:
    """Property: any random delta sequence == from-scratch rebuild."""

    @pytest.mark.parametrize("graph_seed,churn_seed", [(3, 7), (11, 2)])
    def test_random_delta_sequences(self, graph_seed, churn_seed):
        dynamic, ingress, replicator = make_replicator(
            graph_seed=graph_seed
        )
        churn = ChurnGenerator(
            add_rate=0.04, remove_rate=0.04, seed=churn_seed
        )
        for _ in range(5):
            ingress.apply(churn.step(dynamic))
            snapshot = dynamic.snapshot()
            patch = replicator.refresh(snapshot)
            assert not patch.full_rebuild
            assert_equivalent_to_rebuild(replicator, snapshot)

    def test_degenerate_deltas(self):
        """No-ops, rewires, dangling-repair flips, vertex isolation."""
        dynamic = DynamicDiGraph(
            12, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]
        )
        ingress = IncrementalIngress(dynamic, 3, seed=1)
        replicator = IncrementalReplication(
            ingress, dynamic.snapshot(), seed=1
        )
        deltas = [
            GraphDelta(),  # nothing at all
            GraphDelta(added=[(0, 1)]),  # duplicate insert (no-op)
            GraphDelta(removed=[(9, 10)]),  # missing removal (no-op)
            GraphDelta(removed=[(3, 4)], added=[(3, 7)]),  # atomic rewire
            # Strand vertex 5: loses its only out-edge, so the snapshot
            # grows a self-loop repair the table must track.
            GraphDelta(removed=[(5, 3)]),
            GraphDelta(added=[(5, 3)]),  # and shrink it again
            # Isolate vertex 2 entirely (lonely-pin path).
            GraphDelta(removed=[(2, 0), (1, 2)]),
        ]
        for delta in deltas:
            ingress.apply(delta)
            snapshot = dynamic.snapshot()
            replicator.refresh(snapshot)
            assert_equivalent_to_rebuild(replicator, snapshot)

    def test_full_rebuild_fallback_stays_equivalent(self):
        """full_rebuild_fraction=0 forces the from-scratch path; the
        result must be indistinguishable (it IS a from-scratch build),
        and the patch record must say so."""
        dynamic, ingress, replicator = make_replicator(
            policy=RefreshPolicy(full_rebuild_fraction=0.0)
        )
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.02, seed=9)
        ingress.apply(churn.step(dynamic))
        snapshot = dynamic.snapshot()
        patch = replicator.refresh(snapshot)
        assert patch.full_rebuild
        assert replicator.full_rebuilds == 1
        assert_equivalent_to_rebuild(replicator, snapshot)

    def test_adaptive_gate_rebuilds_when_hubs_dominate(self):
        """The fallback gates on projected regroup work (incident edges
        of touched vertices), so hub-heavy churn on a power-law graph
        takes the from-scratch path under the default policy."""
        dynamic, ingress, replicator = make_replicator(
            policy=RefreshPolicy()  # default full_rebuild_fraction
        )
        churn = ChurnGenerator(add_rate=0.05, remove_rate=0.05, seed=13)
        ingress.apply(churn.step(dynamic))
        snapshot = dynamic.snapshot()
        patch = replicator.refresh(snapshot)
        assert patch.full_rebuild  # hubs touched -> regroup ~ O(m)
        assert_equivalent_to_rebuild(replicator, snapshot)

    def test_salted_repartition_triggers_rebuild_and_stays_equivalent(self):
        """An imbalance-triggered re-salt moves (nearly) every edge; the
        placement diff sees it and the table follows to the new salt."""
        dynamic, ingress, replicator = make_replicator(
            policy=RefreshPolicy(full_rebuild_fraction=0.5)
        )
        # Force a full repartition through the ingress's own fallback.
        ingress.rebalance_threshold = 1.0 + 1e-9
        ingress.apply(GraphDelta(added=[(0, 299)]))
        assert ingress.full_repartitions >= 1
        snapshot = dynamic.snapshot()
        patch = replicator.refresh(snapshot)
        assert patch.full_rebuild  # nearly all placements moved
        assert_equivalent_to_rebuild(replicator, snapshot)


class TestPatchCost:
    def test_patch_touches_only_changed_vertices(self):
        """vertices_patched <= 2 * changed edge keys (their endpoints);
        edges_regrouped <= the changed vertices' incident degree sum."""
        dynamic, ingress, replicator = make_replicator(n=500)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=3)
        for _ in range(4):
            old_snapshot = replicator.table.graph
            old_keys = replicator._snap_keys.copy()
            old_machines = replicator._snap_machines.copy()
            ingress.apply(churn.step(dynamic))
            snapshot = dynamic.snapshot()
            patch = replicator.refresh(snapshot)
            assert not patch.full_rebuild
            assert patch.vertices_patched <= 2 * patch.edges_changed
            assert patch.vertices_patched < snapshot.num_vertices
            # The regroup bound: incident edges of the changed vertices
            # in the new snapshot, counted once per grouping direction.
            n = snapshot.num_vertices
            keys = (
                snapshot.edge_sources().astype(np.int64) * n
                + snapshot.indices
            )
            diff = placement_diff(
                old_keys,
                old_machines,
                keys,
                replicator._snap_machines,
            )
            touched = np.zeros(n, dtype=bool)
            touched[diff.changed_vertices(n)] = True
            bound = int(
                touched[snapshot.edge_sources()].sum()
                + touched[snapshot.indices].sum()
            )
            assert patch.edges_regrouped == bound
            assert old_snapshot.num_edges  # old epoch still intact

    def test_noop_refresh_patches_nothing(self):
        dynamic, ingress, replicator = make_replicator()
        ingress.sync()
        patch = replicator.refresh(dynamic.snapshot())
        assert patch.edges_changed == 0
        assert patch.vertices_patched == 0
        assert patch.edges_regrouped == 0

    def test_patch_never_mutates_the_previous_table(self):
        """Epoch safety: the old table keeps serving while the new one
        is built, so patching must be copy-on-write throughout."""
        dynamic, ingress, replicator = make_replicator(n=200)
        old = replicator.table
        fingerprints = {
            "masters": old.masters.copy(),
            "replicas": old.replica_matrix.copy(),
            "out_other": old.out_groups.sorted_other.copy(),
            "out_machine": old.out_groups.edge_machine_sorted.copy(),
            "in_other": old.in_groups.sorted_other.copy(),
        }
        churn = ChurnGenerator(add_rate=0.05, remove_rate=0.05, seed=1)
        ingress.apply(churn.step(dynamic))
        new_table = replicator.refresh(dynamic.snapshot()) and replicator.table
        assert new_table is not old
        np.testing.assert_array_equal(old.masters, fingerprints["masters"])
        np.testing.assert_array_equal(
            old.replica_matrix, fingerprints["replicas"]
        )
        np.testing.assert_array_equal(
            old.out_groups.sorted_other, fingerprints["out_other"]
        )
        np.testing.assert_array_equal(
            old.out_groups.edge_machine_sorted, fingerprints["out_machine"]
        )
        np.testing.assert_array_equal(
            old.in_groups.sorted_other, fingerprints["in_other"]
        )

    def test_ingress_cache_is_preseeded(self):
        """A patched table arrives with warm kernel tables + mirror
        bitmap, and they match what a cold build would produce."""
        from repro.core.frogwild import _KernelTables

        dynamic, ingress, replicator = make_replicator(n=150)
        churn = ChurnGenerator(add_rate=0.03, remove_rate=0.03, seed=8)
        ingress.apply(churn.step(dynamic))
        snapshot = dynamic.snapshot()
        replicator.refresh(snapshot)
        cache = replicator.table._ingress_cache
        assert "kernel_tables" in cache and "mirror_matrix" in cache
        cold = _KernelTables(replicator.table, snapshot.out_degree())
        warm = cache["kernel_tables"]
        for slot in _KernelTables.__slots__:
            np.testing.assert_array_equal(
                getattr(warm, slot), getattr(cold, slot)
            )
        expected_mirror = replicator.table.replica_matrix.copy()
        expected_mirror[
            np.arange(snapshot.num_vertices), replicator.table.masters
        ] = False
        np.testing.assert_array_equal(
            cache["mirror_matrix"], expected_mirror
        )


class TestBackgroundRefresh:
    def make_service(self, **kwargs):
        dynamic = DynamicDiGraph.from_digraph(
            twitter_like(n=300, seed=5)
        )
        defaults = dict(config=FAST, num_machines=4, seed=0)
        defaults.update(kwargs)
        return dynamic, LiveRankingService(dynamic, **defaults)

    def test_coalescing_covers_a_backlog_with_one_build(self):
        dynamic, service = self.make_service()
        refresher = service.start_refresher(thread=False)
        churn = ChurnGenerator(seed=2)
        tickets = [
            service.refresh_async(churn.step(dynamic)) for _ in range(3)
        ]
        assert refresher.pending_count() == 3
        update = refresher.run_pending()
        assert update.coalesced_deltas == 3
        assert update.background
        assert {t.result() for t in tickets} == {update}
        assert refresher.run_pending() is None
        assert refresher.stats.deltas_coalesced == 2
        # One epoch for three deltas; source and served agree.
        assert service.current_epoch.epoch_id == service.source.version

    def test_coalescing_can_be_disabled(self):
        dynamic, service = self.make_service(
            refresh_policy=RefreshPolicy(coalesce=False)
        )
        refresher = service.start_refresher(thread=False)
        churn = ChurnGenerator(seed=3)
        tickets = [
            service.refresh_async(churn.step(dynamic)) for _ in range(2)
        ]
        first = refresher.run_pending()
        assert first.coalesced_deltas == 1
        assert tickets[0].done() and not tickets[1].done()
        second = refresher.run_pending()
        assert tickets[1].result() is second

    def test_backpressure_without_a_worker_raises(self):
        dynamic, service = self.make_service(
            refresh_policy=RefreshPolicy(max_pending=1)
        )
        service.start_refresher(thread=False)
        service.refresh_async(GraphDelta(added=[(0, 299)]))
        with pytest.raises(ConfigError):
            service.refresh_async(GraphDelta(added=[(1, 299)]))

    def test_submit_after_stop_fails_fast(self):
        """A stopped refresher must reject submissions loudly — an
        enqueued ticket no worker will ever build would hang forever."""
        dynamic, service = self.make_service()
        refresher = service.start_refresher(thread=False)
        refresher.stop()
        with pytest.raises(ConfigError):
            service.refresh_async(GraphDelta(added=[(0, 299)]))
        refresher.start()  # restart clears the stopped state
        try:
            ticket = service.refresh_async(GraphDelta(added=[(1, 299)]))
            assert ticket.result(timeout=30).edges_added == 1
        finally:
            refresher.stop()

    def test_stop_without_flush_fails_pending_tickets(self):
        dynamic, service = self.make_service()
        refresher = service.start_refresher(thread=False)
        ticket = service.refresh_async(GraphDelta(added=[(0, 299)]))
        edges_before = service.source.num_edges
        refresher.stop(flush=False)
        with pytest.raises(ConfigError):
            ticket.result(timeout=1)
        # The abandoned delta was never applied anywhere.
        assert service.source.num_edges == edges_before

    def test_queries_mid_build_run_on_the_old_epoch(self):
        """The epoch-tear regression: a batch dispatched after the next
        epoch is fully built but before it is published must run, and be
        stamped, wholly on the old epoch."""
        dynamic, service = self.make_service()
        observed = {}

        def dispatch_mid_build(svc):
            answers = svc.query_batch(
                [svc._make_query([v], 5, None, None) for v in (1, 2, 3)]
            )
            observed["stamps"] = {
                a.report.extra["epoch"] for a in answers
            }
            observed["epoch_at_dispatch"] = svc.current_epoch.epoch_id

        refresher = service.start_refresher(
            on_built=dispatch_mid_build, thread=False
        )
        old_epoch = service.current_epoch.epoch_id
        churn = ChurnGenerator(seed=4)
        service.refresh_async(churn.step(dynamic))
        update = refresher.run_pending()
        assert observed["epoch_at_dispatch"] == old_epoch
        assert observed["stamps"] == {float(old_epoch)}  # never torn
        assert update.epoch > old_epoch
        after = service.query([1])
        assert after.report.extra["epoch"] == float(update.epoch)

    def test_threaded_refreshes_interleaved_with_queries(self):
        """Queries racing real background builds: every batch carries
        exactly one epoch stamp and every ticket resolves."""
        dynamic, service = self.make_service()
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.02, seed=6)
        stop = threading.Event()
        errors = []

        def hammer():
            try:
                while not stop.is_set():
                    answers = service.query_batch(
                        [service._make_query([v], 5, None, None)
                         for v in (0, 1, 2)]
                    )
                    # Cache hits legitimately carry the stamp of the
                    # epoch they executed on; the tear invariant is
                    # about *executed* lanes: one batch, one epoch.
                    stamps = {
                        a.report.extra["epoch"]
                        for a in answers
                        if not a.cached
                    }
                    assert len(stamps) <= 1
            except BaseException as error:  # pragma: no cover - fails test
                errors.append(error)

        thread = threading.Thread(target=hammer)
        thread.start()
        try:
            tickets = service.attach(churn, ticks=5, background=True)
            updates = [ticket.result(timeout=60) for ticket in tickets]
        finally:
            stop.set()
            thread.join()
            service.stop()
        assert not errors
        assert all(u.background for u in updates)
        # Builds may coalesce, but every delta is covered and the
        # sequence of published epochs is strictly increasing.
        sequences = sorted({u.sequence for u in updates})
        assert sequences == list(
            range(sequences[0], sequences[0] + len(sequences))
        )
        assert sum(
            u.coalesced_deltas for u in {id(u): u for u in updates}.values()
        ) == len(tickets)
        # Served epoch caught up with the source graph.
        assert service.current_epoch.epoch_id == service.source.version

    def test_sync_and_async_refresh_share_one_pipeline(self):
        """A synchronous refresh between background builds serializes on
        the refresh lock; sequences never skip or collide."""
        dynamic, service = self.make_service()
        refresher = service.start_refresher(thread=False)
        churn = ChurnGenerator(seed=7)
        service.refresh_async(churn.step(dynamic))
        sync_update = service.refresh(churn.step(dynamic))
        background_update = refresher.run_pending()
        assert background_update.sequence == sync_update.sequence + 1
        assert not sync_update.background
        assert service.live_stats()["refresher_builds"] == 1.0

    def test_sharded_service_patches_every_shard(self):
        dynamic, service = self.make_service(
            num_shards=2, num_machines=8
        )
        churn = ChurnGenerator(seed=8)
        update = service.refresh(churn.step(dynamic))
        assert len(service.replicators) == 2
        snapshot = service.current_epoch.graph
        for replicator in service.replicators:
            assert_equivalent_to_rebuild(replicator, snapshot)
        assert update.vertices_patched == sum(
            r.history[-1].vertices_patched for r in service.replicators
        )
