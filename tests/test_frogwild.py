"""Unit and behaviour tests for the FrogWild runner."""

import numpy as np
import pytest

from repro.core import FrogWildConfig, run_frogwild
from repro.engine import build_cluster
from repro.graph import complete_graph, cycle_graph, star_graph
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank


def _run(graph, machines=4, **kwargs):
    defaults = dict(num_frogs=4000, iterations=4, seed=7)
    defaults.update(kwargs)
    return run_frogwild(
        graph, FrogWildConfig(**defaults), num_machines=machines
    )


class TestConservation:
    def test_multinomial_conserves_frogs(self, small_twitter):
        result = _run(small_twitter, num_frogs=5000)
        assert result.estimate.total_stopped == 5000

    def test_conservation_under_partial_sync(self, small_twitter):
        for ps in (0.7, 0.3, 0.0):
            result = _run(small_twitter, ps=ps, num_frogs=3000)
            assert result.estimate.total_stopped == 3000

    def test_conservation_independent_erasures(self, small_twitter):
        result = _run(
            small_twitter, ps=0.2, erasure_model="independent", num_frogs=3000
        )
        assert result.estimate.total_stopped == 3000

    def test_binomial_mode_preserves_in_expectation(self, small_twitter):
        totals = [
            _run(
                small_twitter,
                scatter_mode="binomial",
                num_frogs=4000,
                seed=seed,
            ).estimate.total_stopped
            for seed in range(5)
        ]
        assert 0.7 * 4000 < np.mean(totals) < 1.4 * 4000


class TestAccuracy:
    def test_cycle_graph_uniform(self):
        graph = cycle_graph(50)
        result = _run(graph, num_frogs=20_000, iterations=6)
        # Uniform pi: every vertex ~ 1/50.
        assert result.estimate.distribution().max() < 3.0 / 50

    def test_complete_graph_uniform(self):
        graph = complete_graph(20)
        result = _run(graph, num_frogs=10_000)
        np.testing.assert_allclose(
            result.estimate.distribution(), 1 / 20, atol=0.02
        )

    def test_star_graph_finds_hub(self):
        graph = star_graph(30)
        result = _run(graph, num_frogs=5000)
        assert result.estimate.top_k(1)[0] == 0

    def test_mass_captured_high_on_powerlaw(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        result = _run(small_twitter, num_frogs=10_000, iterations=5)
        mass = normalized_mass_captured(result.estimate.vector(), truth, 50)
        assert mass > 0.9

    def test_estimate_close_to_pi_in_l1(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        result = _run(small_twitter, num_frogs=30_000, iterations=8)
        l1 = np.abs(result.estimate.distribution() - truth).sum()
        assert l1 < 0.5  # coarse: finite frogs + finite cut-off

    def test_binomial_mode_accuracy(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        result = _run(
            small_twitter, scatter_mode="binomial", num_frogs=10_000,
            iterations=5,
        )
        mass = normalized_mass_captured(
            result.estimate.distribution(), truth, 50
        )
        assert mass > 0.85


class TestDeterminism:
    def test_same_seed_same_result(self, small_twitter):
        a = _run(small_twitter, seed=11)
        b = _run(small_twitter, seed=11)
        np.testing.assert_array_equal(a.estimate.counts, b.estimate.counts)
        assert a.report.network_bytes == b.report.network_bytes

    def test_different_seed_differs(self, small_twitter):
        a = _run(small_twitter, seed=11)
        b = _run(small_twitter, seed=12)
        assert not np.array_equal(a.estimate.counts, b.estimate.counts)


class TestTrafficBehaviour:
    def test_network_monotone_in_ps(self, small_twitter):
        nbytes = [
            _run(small_twitter, ps=ps, num_frogs=5000).report.network_bytes
            for ps in (1.0, 0.5, 0.1)
        ]
        assert nbytes[0] > nbytes[1] > nbytes[2]

    def test_network_grows_with_frogs(self, small_twitter):
        small = _run(small_twitter, num_frogs=1000).report.network_bytes
        big = _run(small_twitter, num_frogs=8000).report.network_bytes
        assert big > 2 * small

    def test_single_machine_no_network(self, small_twitter):
        result = _run(small_twitter, machines=1)
        assert result.report.network_bytes == 0

    def test_supersteps_equal_iterations(self, small_twitter):
        result = _run(small_twitter, iterations=6)
        assert result.report.supersteps == 6

    def test_report_extras(self, small_twitter):
        result = _run(small_twitter, ps=0.4)
        extra = result.report.extra
        assert extra["ps"] == pytest.approx(0.4)
        assert extra["num_frogs"] == 4000
        assert extra["replication_factor"] > 1.0


class TestPrebuiltState:
    def test_accepts_prebuilt_cluster(self, small_twitter):
        state = build_cluster(small_twitter, num_machines=3, seed=0)
        result = run_frogwild(
            small_twitter, FrogWildConfig(num_frogs=1000, seed=0), state=state
        )
        assert result.state is state
        assert result.report.num_machines == 3

    def test_ps_zero_with_repair_still_moves(self, small_twitter):
        """ps=0: every scatter relies on the at-least-one repair."""
        result = _run(small_twitter, ps=0.0, num_frogs=2000)
        assert result.estimate.total_stopped == 2000
        # Frogs did move away from their uniform birth places: the top
        # counts concentrate above the uniform level.
        assert result.estimate.distribution().max() > 5.0 / small_twitter.num_vertices
