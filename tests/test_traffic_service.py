"""End-to-end traffic tests: overload, admission, degraded modes.

The deterministic acceptance scenario of the traffic subsystem: an
open-loop flash crowd replayed on a virtual clock against a
single-server queue model of the service.  Without admission control
the pending queue grows monotonically through the burst; with it the
queue stays bounded, shed queries fail fast with a typed
:class:`~repro.errors.OverloadError`, every degraded answer carries
its Theorem-1 error bound, and non-degraded answers still match the
full-fidelity golden result.

Also here: the :class:`~repro.serving.service.ServiceStats` memory
regressions the traffic harness exists to catch (bounded batch-size
window, shard-breakdown key union) and the
:class:`~repro.serving.RankingFuture` failure paths.
"""

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.errors import ConfigError, OverloadError
from repro.serving import RankingQuery, RankingService, VirtualClock
from repro.serving.service import BATCH_SIZE_WINDOW, ServiceStats
from repro.traffic import (
    AdmissionController,
    BurstArrivals,
    TrafficHarness,
    TrafficWorkload,
    UserPopulation,
)

MAX_PENDING = 12
BURST = dict(base_qps=3.0, burst_qps=150.0, burst_start_s=1.0,
             burst_duration_s=1.0, seed=2)
DURATION_S = 4.0
SCALE = 40.0


@pytest.fixture(scope="module")
def graph():
    from repro.graph import twitter_like

    return twitter_like(n=200, seed=7)


@pytest.fixture(scope="module")
def workload(graph):
    population = UserPopulation(
        num_users=200,
        num_vertices=graph.num_vertices,
        seeds_per_user=2,
        seed=1,
    )
    return TrafficWorkload(population, BurstArrivals(**BURST), seed=3)


def make_service(graph, admission=None):
    return RankingService(
        graph,
        FrogWildConfig(num_frogs=800, iterations=3, seed=0),
        num_machines=4,
        max_batch_size=4,
        max_delay_s=0.05,
        cache_ttl_s=0.5,
        clock=VirtualClock(),
        admission=admission,
    )


@pytest.fixture(scope="module")
def open_loop(graph, workload):
    """The burst replayed with no admission control."""
    harness = TrafficHarness(
        make_service(graph), workload, service_time_scale=SCALE
    )
    return harness.run_virtual(DURATION_S)


@pytest.fixture(scope="module")
def admitted(graph, workload):
    """The same burst with admission control and the default ladder."""
    service = make_service(
        graph, admission=AdmissionController(max_pending=MAX_PENDING)
    )
    harness = TrafficHarness(service, workload, service_time_scale=SCALE)
    result = harness.run_virtual(DURATION_S)
    return service, result


class TestOverloadWithoutAdmission:
    def test_queue_grows_monotonically_through_the_burst(self, open_loop):
        """rho > 1: each burst quarter's peak depth exceeds the last."""
        start = BURST["burst_start_s"]
        quarter = BURST["burst_duration_s"] / 4.0
        peaks = []
        for i in range(4):
            lo, hi = start + i * quarter, start + (i + 1) * quarter
            peaks.append(
                max(d for t, d in open_loop.depth_samples if lo <= t < hi)
            )
        assert peaks == sorted(peaks)
        assert peaks[-1] > peaks[0]

    def test_queue_depth_blows_past_any_reasonable_bound(self, open_loop):
        assert open_loop.report.queue_depth_max > 2 * MAX_PENDING

    def test_nothing_is_shed_and_everyone_eventually_answers(
        self, open_loop
    ):
        assert open_loop.shed_count() == 0
        assert len(open_loop.answers()) == open_loop.report.arrivals
        assert open_loop.report.traffic["shed"] == 0


class TestAdmissionControl:
    def test_queue_depth_is_bounded_at_max_pending(self, admitted):
        _, result = admitted
        assert result.report.queue_depth_max <= MAX_PENDING
        assert max(d for _, d in result.depth_samples) <= MAX_PENDING

    def test_shed_queries_fail_fast_with_typed_error(self, admitted):
        _, result = admitted
        shed = [
            f for f in result.futures
            if f.done() and f.trace is not None and f.trace.status == "shed"
        ]
        assert shed, "the burst must shed under a 12-deep bound"
        for future in shed:
            with pytest.raises(OverloadError) as err:
                future.result(timeout=0)
            assert err.value.limit == MAX_PENDING
            assert err.value.depth >= MAX_PENDING
            assert future.trace.resolve_s is not None

    def test_every_query_is_traced_to_a_terminal_status(self, admitted):
        _, result = admitted
        assert all(f.trace is not None for f in result.futures)
        statuses = {f.trace.status for f in result.futures}
        assert statuses <= {"served", "shed"}
        summary = result.report.traffic
        assert summary["offered"] == result.report.arrivals
        assert summary["served"] + summary["shed"] == summary["offered"]

    def test_latency_is_tamed_relative_to_open_loop(
        self, admitted, open_loop
    ):
        _, result = admitted
        p99 = result.report.traffic["latency_p99"]
        assert np.isfinite(p99)
        assert p99 < 0.75 * open_loop.report.traffic["latency_p99"]

    def test_degraded_answers_carry_their_error_bound(self, admitted):
        service, result = admitted
        degraded = [a for a in result.answers() if a.degraded]
        assert degraded, "the ladder must engage during the burst"
        for answer in degraded:
            assert answer.error_bound is not None
            assert answer.error_bound > 0
            expected = service.admission.error_bound(
                answer.query.effective_config(service.default_config),
                answer.query.k,
                service.graph.num_vertices,
            )
            assert answer.error_bound == pytest.approx(expected)
        summary = result.report.traffic
        assert summary["degraded_with_bound"] == summary["degraded"]
        assert summary["max_error_bound"] > 0

    def test_degraded_configs_walked_down_the_ladder(self, admitted):
        service, result = admitted
        base = service.default_config
        levels = {
            a.degrade_level: a.query.effective_config(base)
            for a in result.answers()
            if a.degraded
        }
        for level, config in levels.items():
            rung = service.admission.ladder.rungs[level - 1]
            assert config.num_frogs == max(
                1, int(base.num_frogs * rung.frog_fraction)
            )
            if rung.max_iterations is not None:
                assert config.iterations <= rung.max_iterations

    def test_non_degraded_answers_match_the_golden_topk(
        self, admitted, graph
    ):
        """Degradation never contaminates full-fidelity batchmates."""
        service, result = admitted
        executed = [
            a for a in result.answers() if not a.degraded and not a.cached
        ]
        assert executed
        golden = make_service(graph)
        for answer in executed[:5]:
            reference = golden.query_batch([answer.query])[0]
            assert np.array_equal(answer.vertices, reference.vertices)

    def test_admission_counters_reconcile(self, admitted):
        service, result = admitted
        stats = service.admission.stats
        assert stats.offered == (
            stats.admitted + stats.degraded + stats.shed
        )
        assert stats.shed == service.stats.queries_shed
        assert 0.0 < stats.shed_rate() < 1.0
        assert result.report.admission["shed"] == float(stats.shed)

    def test_perf_row_is_flat_and_json_ready(self, admitted):
        _, result = admitted
        row = result.report.as_dict()
        for key, value in row.items():
            assert isinstance(key, str)
            assert isinstance(value, (int, float)), key
        assert row["queue_depth_max"] <= MAX_PENDING
        assert row["admission_shed_rate"] > 0


class TestFutureFailurePaths:
    def test_shed_future_is_done_immediately(self, graph):
        service = make_service(
            graph, admission=AdmissionController(max_pending=2)
        )
        # Distinct seed sets so nothing coalesces; a 50-wide batch
        # never fills, so the queue just grows until the bound.
        service.scheduler.coalescer.max_batch_size = 50
        futures = [
            service.submit(seeds=(i, i + 1), k=5) for i in range(6)
        ]
        shed = [f for f in futures if f.done()]
        live = [f for f in futures if not f.done()]
        assert len(live) == 2 and len(shed) == 4
        for future in shed:
            with pytest.raises(OverloadError) as err:
                future.result(timeout=0)
            assert err.value.limit == 2
        # Pending futures report a typed timeout, not a hang.
        with pytest.raises(TimeoutError):
            live[0].result(timeout=0)
        service.flush()
        assert all(f.done() for f in live)

    def test_overload_error_propagates_through_query_batch(self, graph):
        service = make_service(
            graph, admission=AdmissionController(max_pending=1)
        )
        service.scheduler.coalescer.max_batch_size = 50
        queries = [RankingQuery(seeds=(i,), k=5) for i in range(4)]
        with pytest.raises(OverloadError):
            service.query_batch(queries)

    def test_done_after_fail_with_arbitrary_error(self):
        from repro.serving.service import RankingFuture

        future = RankingFuture(RankingQuery(seeds=(1,), k=5))
        assert not future.done()
        future._fail(ValueError("boom"))
        assert future.done()
        with pytest.raises(ValueError, match="boom"):
            future.result(timeout=0)

    def test_overload_error_carries_depth_and_limit(self):
        error = OverloadError("shed", depth=17, limit=16)
        assert error.depth == 17
        assert error.limit == 16
        assert isinstance(error, Exception)


class TestServiceStatsRegressions:
    def test_batch_size_memory_is_bounded(self):
        stats = ServiceStats()
        for i in range(3 * BATCH_SIZE_WINDOW):
            stats.record_batch_size(1 + (i % 7))
        assert len(stats.batch_sizes) == BATCH_SIZE_WINDOW
        assert stats.batch_size_count == 3 * BATCH_SIZE_WINDOW
        assert stats.batch_size_sum == sum(
            1 + (i % 7) for i in range(3 * BATCH_SIZE_WINDOW)
        )
        assert stats.largest_batch == 7
        assert stats.mean_batch_size() == pytest.approx(
            stats.batch_size_sum / stats.batch_size_count
        )
        assert 1 <= stats.batch_size_quantile(0.95) <= 7
        with pytest.raises(ConfigError):
            stats.batch_size_quantile(1.5)

    def test_batch_sizes_window_keeps_most_recent(self):
        stats = ServiceStats()
        for i in range(BATCH_SIZE_WINDOW + 10):
            stats.record_batch_size(i)
        assert stats.batch_sizes[0] == 10
        assert stats.batch_sizes[-1] == BATCH_SIZE_WINDOW + 9

    def test_shard_breakdown_unions_all_key_sets(self):
        stats = ServiceStats()
        stats.shard_shared_bytes[0] = 100
        stats.shard_attributed_bytes[1] = 200
        stats.shard_cpu_seconds[2] = 0.5
        breakdown = stats.shard_breakdown()
        assert sorted(breakdown) == [0, 1, 2]
        assert breakdown[1]["attributed_network_bytes"] == 200.0
        assert breakdown[1]["shared_network_bytes"] == 0.0
        assert breakdown[2]["cpu_seconds"] == 0.5
        row = stats.as_dict()
        assert row["shard2_cpu_seconds"] == 0.5
