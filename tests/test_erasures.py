"""Unit tests for edge-erasure models (Appendix A)."""

import numpy as np
import pytest

from repro.core import (
    AtLeastOneOutEdge,
    IndependentErasures,
    erased_walk_step,
    make_erasure_model,
)
from repro.errors import ConfigError
from repro.graph import from_edges


class TestFactory:
    def test_known_models(self):
        assert isinstance(make_erasure_model("independent"), IndependentErasures)
        assert isinstance(make_erasure_model("at-least-one"), AtLeastOneOutEdge)

    def test_unknown_model(self):
        with pytest.raises(ConfigError, match="unknown"):
            make_erasure_model("never")

    def test_repair_flags(self):
        assert AtLeastOneOutEdge().repairs_empty
        assert not IndependentErasures().repairs_empty


class TestErasedWalkStep:
    def test_marginal_law_unchanged_with_repair(self, rng):
        """Definition 3 / symmetry: erasures preserve the 1/d_out law."""
        graph = from_edges([(0, 1), (0, 2), (0, 3), (1, 0), (2, 0), (3, 0)])
        counts = np.zeros(4)
        trials = 30_000
        for _ in range(trials):
            counts[erased_walk_step(graph, 0, ps=0.4, rng=rng)] += 1
        freq = counts / trials
        np.testing.assert_allclose(freq[1:], 1 / 3, atol=0.015)
        assert freq[0] == 0.0

    def test_independent_model_can_strand(self, rng):
        graph = from_edges([(0, 1), (1, 0)])
        model = IndependentErasures()
        outcomes = {
            erased_walk_step(graph, 0, ps=0.05, rng=rng, model=model)
            for _ in range(500)
        }
        # With ps=0.05, nearly all steps are stranded at vertex 0.
        assert 0 in outcomes

    def test_repair_model_never_strands(self, rng):
        graph = from_edges([(0, 1), (1, 0)])
        for _ in range(200):
            nxt = erased_walk_step(
                graph, 0, ps=0.01, rng=rng, model=AtLeastOneOutEdge()
            )
            assert nxt == 1

    def test_stranded_marginal_conditioned_on_moving(self, rng):
        """Independent erasures: conditioned on moving, choice is uniform."""
        graph = from_edges([(0, 1), (0, 2), (1, 0), (2, 0)])
        moved = []
        for _ in range(20_000):
            nxt = erased_walk_step(
                graph, 0, ps=0.3, rng=rng, model=IndependentErasures()
            )
            if nxt != 0:
                moved.append(nxt)
        freq1 = moved.count(1) / len(moved)
        assert freq1 == pytest.approx(0.5, abs=0.02)

    def test_sink_vertex_stays(self, rng):
        graph = from_edges([(0, 1)], repair_dangling="none")
        assert erased_walk_step(graph, 1, ps=0.5, rng=rng) == 1
