"""Incremental ingress maintenance: equivalence, reuse, rebalancing.

The load-bearing invariant: after *any* sequence of deltas, the
maintained placement is byte-identical to a from-scratch
``stable_hash_partition`` of the current snapshot's edge set under the
ingress's current salt — incremental maintenance never drifts.
"""

import numpy as np
import pytest

from repro.cluster import make_partitioner, stable_hash_machines
from repro.dynamic import (
    ChurnGenerator,
    DynamicDiGraph,
    GraphDelta,
    stable_hash_partition,
)
from repro.errors import ConfigError
from repro.graph import twitter_like
from repro.live import IncrementalIngress


def make_dynamic(n=400, seed=3):
    return DynamicDiGraph.from_digraph(twitter_like(n=n, seed=seed))


def assert_matches_from_scratch(ingress, graph):
    """Maintained placement == from-scratch stable hash of the snapshot."""
    snapshot = graph.snapshot()
    expected = stable_hash_partition(
        snapshot, ingress.num_machines, seed=ingress.salt
    )
    actual = ingress.partition_for(snapshot)
    np.testing.assert_array_equal(
        actual.edge_machine, expected.edge_machine
    )


class TestEquivalence:
    def test_matches_from_scratch_after_random_delta_sequences(self):
        graph = make_dynamic()
        ingress = IncrementalIngress(graph, 8, seed=5)
        churn = ChurnGenerator(add_rate=0.05, remove_rate=0.05, seed=7)
        for _ in range(6):
            ingress.apply(churn.step(graph))
            assert_matches_from_scratch(ingress, graph)

    def test_matches_after_noop_and_overlapping_deltas(self):
        graph = make_dynamic(n=60, seed=1)
        ingress = IncrementalIngress(graph, 4, seed=2)
        edges = graph.edge_array()
        existing = tuple(edges[0])
        # Re-adding an existing edge, removing a missing one, and an
        # atomic rewire (remove + re-add elsewhere) in one delta.
        deltas = [
            GraphDelta(added=[existing]),
            GraphDelta(removed=[(existing[0], (existing[1] + 1) % 60)]),
            GraphDelta(removed=[existing], added=[(existing[0], 59)]),
            GraphDelta(),
        ]
        for delta in deltas:
            ingress.apply(delta)
            assert_matches_from_scratch(ingress, graph)

    def test_sync_reconciles_externally_applied_churn(self):
        graph = make_dynamic()
        ingress = IncrementalIngress(graph, 8, seed=0)
        churn = ChurnGenerator(seed=4)
        for _ in churn.stream(graph, steps=3, apply=True):
            pass
        update = ingress.sync()
        assert update.new_placements > 0
        assert_matches_from_scratch(ingress, graph)

    def test_repair_self_loops_hash_like_everything_else(self):
        """Snapshot-added dangling repairs are not in the live edge set;
        they must still place identically to the from-scratch hash."""
        graph = DynamicDiGraph(10, [(0, 1), (1, 2)])
        ingress = IncrementalIngress(graph, 4, seed=1)
        snapshot = graph.snapshot()  # adds self-loops for 2..9
        assert snapshot.num_edges > graph.num_edges
        assert_matches_from_scratch(ingress, graph)


class TestReuse:
    def test_small_deltas_reuse_at_least_80_percent(self):
        """The acceptance bar: incremental refresh reuses >= 80% of edge
        placements on small (1%-churn) deltas."""
        graph = make_dynamic(n=500, seed=9)
        ingress = IncrementalIngress(graph, 8, seed=0)
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=1)
        for _ in range(5):
            update = ingress.apply(churn.step(graph))
            assert update.reuse_ratio >= 0.8
        assert ingress.lifetime_reuse_ratio() >= 0.8

    def test_surviving_edges_keep_their_machine(self):
        graph = make_dynamic(n=200, seed=2)
        ingress = IncrementalIngress(graph, 6, seed=3)
        before = {
            tuple(edge): machine
            for edge, machine in zip(
                graph.edge_array().tolist(),
                ingress.partition().edge_machine.tolist(),
            )
        }
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.02, seed=5)
        ingress.apply(churn.step(graph))
        after = {
            tuple(edge): machine
            for edge, machine in zip(
                graph.edge_array().tolist(),
                ingress.partition().edge_machine.tolist(),
            )
        }
        survivors = set(before) & set(after)
        assert survivors
        for edge in survivors:
            assert before[edge] == after[edge]

    def test_two_ingresses_same_seed_agree(self):
        graph_a = make_dynamic(seed=6)
        graph_b = make_dynamic(seed=6)
        a = IncrementalIngress(graph_a, 8, seed=11)
        b = IncrementalIngress(graph_b, 8, seed=11)
        churn_a = ChurnGenerator(seed=8)
        churn_b = ChurnGenerator(seed=8)
        for _ in range(3):
            a.apply(churn_a.step(graph_a))
            b.apply(churn_b.step(graph_b))
        np.testing.assert_array_equal(
            a.partition().edge_machine, b.partition().edge_machine
        )

    def test_distinct_seeds_place_independently(self):
        graph = make_dynamic(seed=6)
        a = IncrementalIngress(graph, 8, seed=1)
        b = IncrementalIngress(graph, 8, seed=2)
        assert not np.array_equal(
            a.partition().edge_machine, b.partition().edge_machine
        )


class TestRebalanceFallback:
    def test_imbalance_past_threshold_triggers_full_repartition(self):
        graph = make_dynamic(n=200, seed=4)
        ingress = IncrementalIngress(
            graph, 8, seed=0, rebalance_threshold=1.0001
        )
        # Any realistic hash placement exceeds a 1.0001 max/mean bound.
        update = ingress.apply(GraphDelta(added=[(0, 199)]))
        assert update.full_repartition
        assert update.reuse_ratio == 0.0
        assert update.new_placements == update.num_edges
        assert ingress.full_repartitions == 1
        assert ingress.salt != ingress.seed
        assert_matches_from_scratch(ingress, graph)

    def test_disabled_threshold_never_repartitions(self):
        graph = make_dynamic(n=200, seed=4)
        ingress = IncrementalIngress(
            graph, 8, seed=0, rebalance_threshold=None
        )
        churn = ChurnGenerator(seed=3)
        for _ in range(3):
            ingress.apply(churn.step(graph))
        assert ingress.full_repartitions == 0
        assert ingress.salt == ingress.seed

    def test_threshold_validation(self):
        graph = make_dynamic(n=60, seed=1)
        with pytest.raises(ConfigError):
            IncrementalIngress(graph, 4, rebalance_threshold=1.0)
        with pytest.raises(ConfigError):
            IncrementalIngress(graph, 0)


class TestStableHashPartitioner:
    """The promoted cluster-layer primitive the ingress is built on."""

    def test_registered_with_the_factory(self):
        graph = twitter_like(n=300, seed=5)
        part = make_partitioner("stable-hash", 7).partition(graph, 6)
        expected = stable_hash_partition(graph, 6, seed=7)
        np.testing.assert_array_equal(
            part.edge_machine, expected.edge_machine
        )

    def test_key_level_helper_matches_graph_level(self):
        graph = twitter_like(n=300, seed=5)
        n = graph.num_vertices
        keys = graph.edge_sources().astype(np.int64) * n + graph.indices
        np.testing.assert_array_equal(
            stable_hash_machines(keys, 6, seed=7),
            stable_hash_partition(graph, 6, seed=7).edge_machine,
        )

    def test_none_seed_degrades_to_zero(self):
        keys = np.arange(100, dtype=np.int64)
        np.testing.assert_array_equal(
            stable_hash_machines(keys, 4, seed=None),
            stable_hash_machines(keys, 4, seed=0),
        )
