"""Packaging checks for the example scripts.

Each example must import cleanly against the installed package (no
stale API references) and expose a ``main()`` entry point guarded by
``__main__``.  Full executions are exercised manually / in EXPERIMENTS
runs — they are minutes of simulated-cluster work, not unit tests.
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(path.stem, None)
    return module


class TestExamples:
    def test_expected_examples_present(self):
        names = {path.stem for path in EXAMPLE_FILES}
        assert {
            "quickstart",
            "keyword_extraction",
            "influencer_analysis",
            "churn_prediction",
            "personalized_search",
            "dynamic_rank_tracking",
            "adaptive_topk",
            "fault_tolerant_ranking",
            "activity_stream",
        } <= names

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_imports_and_defines_main(self, path):
        module = _load(path)
        assert callable(getattr(module, "main", None)), (
            f"{path.name} must define main()"
        )

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_main_guard_present(self, path):
        """Importing an example must not execute the workload."""
        tree = ast.parse(path.read_text(encoding="utf-8"))
        guards = [
            node
            for node in tree.body
            if isinstance(node, ast.If)
            and isinstance(node.test, ast.Compare)
            and getattr(node.test.left, "id", "") == "__name__"
        ]
        assert guards, f"{path.name} lacks an if __name__ guard"

    @pytest.mark.parametrize(
        "path", EXAMPLE_FILES, ids=[p.stem for p in EXAMPLE_FILES]
    )
    def test_docstring_has_usage(self, path):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        docstring = ast.get_docstring(tree) or ""
        assert "Usage" in docstring, f"{path.name} docstring lacks Usage"
