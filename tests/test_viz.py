"""Unit tests for the ASCII chart subsystem."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.viz import (
    Canvas,
    LinearScale,
    LogScale,
    Series,
    bar_chart,
    figure_chart,
    line_chart,
    make_scale,
    rows_to_series,
    scatter_chart,
)


class TestLinearScale:
    def test_projects_endpoints(self):
        scale = LinearScale(0.0, 10.0)
        assert scale.project(np.array([0.0]))[0] == 0.0
        assert scale.project(np.array([10.0]))[0] == 1.0

    def test_projects_midpoint(self):
        scale = LinearScale(0.0, 4.0)
        assert scale.project(np.array([2.0]))[0] == pytest.approx(0.5)

    def test_degenerate_range_widens(self):
        scale = LinearScale(5.0, 5.0)
        frac = scale.project(np.array([5.0]))[0]
        assert 0.0 < frac < 1.0

    def test_ticks_are_nice(self):
        ticks = LinearScale(0.0, 10.0).ticks(5)
        assert 0.0 in ticks and 10.0 in ticks
        steps = np.diff(ticks)
        assert np.allclose(steps, steps[0])

    def test_rejects_inverted(self):
        with pytest.raises(ConfigError):
            LinearScale(3.0, 1.0)

    def test_rejects_nonfinite(self):
        with pytest.raises(ConfigError):
            LinearScale(0.0, float("inf"))

    def test_format_small_and_large(self):
        scale = LinearScale(0.0, 1.0)
        assert scale.format_tick(0) == "0"
        assert "e" in scale.format_tick(1e7)


class TestLogScale:
    def test_projects_decades(self):
        scale = LogScale(1.0, 100.0)
        assert scale.project(np.array([1.0]))[0] == pytest.approx(0.0)
        assert scale.project(np.array([10.0]))[0] == pytest.approx(0.5)
        assert scale.project(np.array([100.0]))[0] == pytest.approx(1.0)

    def test_ticks_are_decades(self):
        ticks = LogScale(1.0, 1000.0).ticks()
        assert all(np.log10(t).is_integer() for t in ticks)

    def test_rejects_nonpositive(self):
        with pytest.raises(ConfigError):
            LogScale(0.0, 10.0)

    def test_factory(self):
        assert isinstance(make_scale(1, 10, log=True), LogScale)
        assert isinstance(make_scale(0, 10), LinearScale)

    def test_format_decade(self):
        assert LogScale(1, 100).format_tick(100.0) == "1e2"


class TestCanvas:
    def test_put_and_render(self):
        canvas = Canvas(5, 2)
        canvas.put(0, 0, "a")
        canvas.put(4, 1, "b")
        assert canvas.render() == "a\n    b"

    def test_out_of_bounds_put_is_clipped(self):
        canvas = Canvas(3, 3)
        canvas.put(10, 10, "x")  # must not raise
        assert "x" not in canvas.render()

    def test_get_bounds_checked(self):
        with pytest.raises(ConfigError):
            Canvas(2, 2).get(5, 0)

    def test_text_clips(self):
        canvas = Canvas(4, 1)
        canvas.text(2, 0, "abcdef")
        assert canvas.render() == "  ab"

    def test_segment_endpoints(self):
        canvas = Canvas(10, 10)
        canvas.segment(0, 0, 9, 9, "*")
        assert canvas.get(0, 0) == "*"
        assert canvas.get(9, 9) == "*"
        assert canvas.get(5, 5) == "*"

    def test_rejects_bad_dimensions(self):
        with pytest.raises(ConfigError):
            Canvas(0, 5)

    def test_rejects_multichar_put(self):
        with pytest.raises(ConfigError):
            Canvas(2, 2).put(0, 0, "ab")


class TestSeries:
    def test_rejects_misaligned(self):
        with pytest.raises(ConfigError):
            Series("s", np.array([1.0, 2.0]), np.array([1.0]))


class TestCharts:
    def _series(self):
        xs = np.linspace(1, 10, 10)
        return [
            Series("rising", xs, xs * 2),
            Series("falling", xs, 30 - xs),
        ]

    def test_scatter_contains_markers_and_legend(self):
        text = scatter_chart(self._series(), title="demo")
        assert "demo" in text
        assert "* rising" in text
        assert "o falling" in text

    def test_line_chart_draws_connections(self):
        text = line_chart(
            [Series("d", np.array([1.0, 10.0]), np.array([1.0, 10.0]))]
        )
        assert "." in text  # interpolated segment characters

    def test_axis_labels_present(self):
        text = scatter_chart(
            self._series(), x_label="time", y_label="accuracy"
        )
        assert "[x: time]" in text
        assert "[y: accuracy]" in text

    def test_log_axes(self):
        xs = np.array([1.0, 100.0, 10_000.0])
        text = scatter_chart([Series("s", xs, xs)], log_x=True, log_y=True)
        assert "1e" in text

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            scatter_chart([])

    def test_rejects_tiny_canvas(self):
        with pytest.raises(ConfigError):
            scatter_chart(self._series(), width=10, height=3)

    def test_deterministic(self):
        assert scatter_chart(self._series()) == scatter_chart(self._series())


class TestBarChart:
    def test_longest_bar_is_max(self):
        text = bar_chart(["a", "bb"], [1.0, 4.0])
        lines = text.splitlines()
        assert lines[1].count("#") > lines[0].count("#")

    def test_title(self):
        assert bar_chart(["x"], [1.0], title="T").startswith("T")

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            bar_chart(["x"], [-1.0])

    def test_rejects_misaligned(self):
        with pytest.raises(ConfigError):
            bar_chart(["x", "y"], [1.0])

    def test_log_mode_requires_positive(self):
        with pytest.raises(ConfigError):
            bar_chart(["x", "y"], [0.0, 2.0], log=True)


class TestAdapters:
    def _rows(self):
        return [
            {"algorithm": "A", "t": 1.0, "acc": 0.9},
            {"algorithm": "A", "t": 2.0, "acc": 0.95},
            {"algorithm": "B", "t": 0.5, "acc": 0.7},
        ]

    def test_grouping(self):
        series = rows_to_series(self._rows(), x="t", y="acc")
        labels = {s.label for s in series}
        assert labels == {"A", "B"}
        a = next(s for s in series if s.label == "A")
        assert a.xs.size == 2

    def test_skips_rows_missing_columns(self):
        rows = self._rows() + [{"algorithm": "C"}]
        series = rows_to_series(rows, x="t", y="acc")
        assert {s.label for s in series} == {"A", "B"}

    def test_raises_when_nothing_matches(self):
        with pytest.raises(ConfigError):
            rows_to_series(self._rows(), x="nope", y="acc")

    def test_figure_chart_smoke(self):
        from repro.experiments import FigureResult
        from repro.experiments.harness import ExperimentRow

        rows = [
            ExperimentRow(
                workload="w",
                algorithm=f"alg{i}",
                num_machines=4,
                supersteps=3,
                total_time_s=float(i + 1),
                time_per_iteration_s=0.3,
                network_bytes=1000 * (i + 1),
                cpu_seconds=0.2,
                mass_captured={100: 0.8 + 0.05 * i},
            )
            for i in range(3)
        ]
        figure = FigureResult("9", "synthetic", rows=rows)
        text = figure_chart(figure, x="total_time_s", y="mass@100")
        assert "Figure 9" in text
        assert "alg0" in text

    def test_figure_chart_rejects_bad_kind(self):
        from repro.experiments import FigureResult

        with pytest.raises(ConfigError):
            figure_chart(FigureResult("9", "t"), x="a", y="b", kind="pie")
