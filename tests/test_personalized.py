"""Tests for the Personalized PageRank extension."""

import numpy as np
import pytest

from repro.core import (
    FrogWildConfig,
    run_personalized_frogwild,
    seed_distribution,
)
from repro.errors import ConfigError, EngineError
from repro.graph import cycle_graph, twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank


class TestSeedDistribution:
    def test_uniform_over_seeds(self):
        dist = seed_distribution(10, np.array([2, 5]))
        assert dist[2] == pytest.approx(0.5)
        assert dist[5] == pytest.approx(0.5)
        assert dist.sum() == pytest.approx(1.0)

    def test_weighted(self):
        dist = seed_distribution(5, np.array([0, 1]), np.array([3.0, 1.0]))
        assert dist[0] == pytest.approx(0.75)
        assert dist[1] == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigError):
            seed_distribution(5, np.array([], dtype=np.int64))
        with pytest.raises(ConfigError):
            seed_distribution(5, np.array([7]))
        with pytest.raises(ConfigError):
            seed_distribution(5, np.array([1, 1]))
        with pytest.raises(ConfigError):
            seed_distribution(5, np.array([0, 1]), np.array([1.0]))
        with pytest.raises(ConfigError):
            seed_distribution(5, np.array([0]), np.array([-1.0]))


class TestExactPersonalized:
    def test_mass_concentrates_near_seeds(self):
        graph = cycle_graph(30)
        personalization = seed_distribution(30, np.array([0]))
        ppr = exact_pagerank(graph, personalization=personalization)
        # On a directed cycle, PPR decays geometrically ahead of the seed.
        assert ppr[0] > ppr[1] > ppr[2]
        assert ppr[0] > 0.1
        assert ppr.sum() == pytest.approx(1.0)

    def test_uniform_personalization_equals_classic(self, small_twitter):
        n = small_twitter.num_vertices
        classic = exact_pagerank(small_twitter)
        uniform = exact_pagerank(
            small_twitter, personalization=np.full(n, 1.0 / n)
        )
        np.testing.assert_allclose(classic, uniform, atol=1e-10)

    def test_validation(self, small_twitter):
        with pytest.raises(ConfigError, match="shape"):
            exact_pagerank(small_twitter, personalization=np.ones(3))
        bad = np.zeros(small_twitter.num_vertices)
        bad[0] = 2.0
        with pytest.raises(ConfigError, match="probability"):
            exact_pagerank(small_twitter, personalization=bad)


class TestFrogWildPersonalized:
    @pytest.fixture(scope="class")
    def graph(self):
        return twitter_like(n=2000, seed=9)

    def test_matches_exact_ppr_topk(self, graph):
        seeds = np.array([5, 10, 15])
        truth = exact_pagerank(
            graph,
            personalization=seed_distribution(graph.num_vertices, seeds),
        )
        result = run_personalized_frogwild(
            graph,
            seeds,
            FrogWildConfig(num_frogs=20_000, iterations=8, seed=0),
            num_machines=4,
        )
        mass = normalized_mass_captured(result.estimate.vector(), truth, 20)
        assert mass > 0.9

    def test_differs_from_global_pagerank(self, graph):
        seeds = np.array([123])
        global_truth = exact_pagerank(graph)
        result = run_personalized_frogwild(
            graph,
            seeds,
            FrogWildConfig(num_frogs=10_000, iterations=8, seed=0),
            num_machines=4,
        )
        # The seed itself ranks far higher in PPR than globally.
        ppr_rank = int(
            np.flatnonzero(result.estimate.top_k(graph.num_vertices) == 123)[0]
        )
        global_rank = int(np.flatnonzero(np.argsort(-global_truth) == 123)[0])
        assert ppr_rank < global_rank

    def test_conserves_frogs(self, graph):
        result = run_personalized_frogwild(
            graph,
            np.array([0, 1]),
            FrogWildConfig(num_frogs=2_000, iterations=4, ps=0.5, seed=1),
            num_machines=4,
        )
        assert result.estimate.total_stopped == 2_000

    def test_bad_start_distribution_rejected(self, graph):
        from repro.core import FrogWildRunner
        from repro.engine import build_cluster

        state = build_cluster(graph, 2, seed=0)
        with pytest.raises(EngineError):
            FrogWildRunner(
                state, FrogWildConfig(), start_distribution=np.ones(3)
            )
        with pytest.raises(EngineError):
            FrogWildRunner(
                state,
                FrogWildConfig(),
                start_distribution=np.full(graph.num_vertices, 0.5),
            )
