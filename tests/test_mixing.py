"""Tests for the mixing-analysis module (theory behind Lemma 14)."""

import numpy as np
import pytest

from repro.errors import ConfigError, GraphError
from repro.graph import GraphBuilder, complete_graph, cycle_graph, twitter_like
from repro.pagerank import exact_pagerank
from repro.theory import (
    chi2_mixing_bound,
    chi2_mixing_curve,
    empirical_mixing_time,
    google_matrix,
    second_eigenvalue,
    total_variation,
    tv_mixing_curve,
    walk_distribution,
)


class TestGoogleMatrix:
    def test_columns_stochastic(self, small_twitter):
        graph = twitter_like(n=200, seed=1)
        q = google_matrix(graph)
        assert np.allclose(q.sum(axis=0), 1.0)

    def test_uniform_floor(self):
        q = google_matrix(cycle_graph(8), p_teleport=0.15)
        assert q.min() >= 0.15 / 8 - 1e-12

    def test_pagerank_is_fixed_point(self):
        graph = twitter_like(n=150, seed=2)
        q = google_matrix(graph)
        pi = exact_pagerank(graph)
        assert np.allclose(q @ pi, pi, atol=1e-9)

    def test_dangling_columns_repaired(self):
        graph = GraphBuilder(
            num_vertices=3, repair_dangling="none"
        ).add_edges([(0, 1), (1, 2)]).build()
        q = google_matrix(graph)
        assert np.allclose(q[:, 2], 1.0 / 3)

    def test_size_guard(self):
        with pytest.raises(GraphError):
            google_matrix(twitter_like(n=3000, seed=0))

    def test_rejects_bad_teleport(self):
        with pytest.raises(ConfigError):
            google_matrix(cycle_graph(4), p_teleport=0.0)


class TestSecondEigenvalue:
    def test_haveliwala_kamvar_bound(self):
        """|lambda_2(Q)| <= 1 - p_T, the fact Lemma 14 rests on."""
        for seed in (0, 1):
            graph = twitter_like(n=150, seed=seed)
            assert second_eigenvalue(graph, 0.15) <= 0.85 + 1e-9

    def test_complete_graph_gap(self):
        """K_n (no self-loops): P = (J - I)/(n-1) has lambda_2 = -1/(n-1),
        so lambda_2(Q) = (1 - p_T)/(n - 1) — a huge spectral gap."""
        value = second_eigenvalue(complete_graph(6), p_teleport=0.15)
        assert value == pytest.approx(0.85 / 5, abs=1e-9)

    def test_cycle_saturates_bound(self):
        """A directed cycle's P has eigenvalues on the unit circle, so
        lambda_2(Q) hits (1 - p_T) exactly."""
        value = second_eigenvalue(cycle_graph(10), p_teleport=0.15)
        assert value == pytest.approx(0.85, abs=1e-9)


class TestWalkDistribution:
    def test_zero_steps_is_start(self):
        graph = cycle_graph(6)
        assert np.allclose(walk_distribution(graph, 0), 1.0 / 6)

    def test_stays_on_simplex(self, small_twitter):
        pi_t = walk_distribution(small_twitter, 5)
        assert pi_t.min() >= 0
        assert pi_t.sum() == pytest.approx(1.0)

    def test_converges_to_pagerank(self):
        graph = twitter_like(n=300, seed=3)
        pi = exact_pagerank(graph)
        pi_t = walk_distribution(graph, 100)
        assert total_variation(pi_t, pi) < 1e-6

    def test_custom_start(self):
        graph = cycle_graph(5)
        start = np.zeros(5)
        start[2] = 1.0
        one_step = walk_distribution(graph, 1, start=start)
        # With p_T = 0.15: mass 0.85 moves to vertex 3, 0.15 spreads.
        assert one_step[3] == pytest.approx(0.85 + 0.15 / 5)

    def test_validation(self):
        graph = cycle_graph(5)
        with pytest.raises(ConfigError):
            walk_distribution(graph, -1)
        with pytest.raises(ConfigError):
            walk_distribution(graph, 1, start=np.ones(5))


class TestMixingCurves:
    def test_tv_curve_monotone_nonincreasing(self):
        graph = twitter_like(n=300, seed=4)
        curve = tv_mixing_curve(graph, 10)
        assert len(curve) == 11
        assert all(b <= a + 1e-12 for a, b in zip(curve, curve[1:]))

    def test_chi2_curve_below_lemma14_bound(self):
        """The empirical chi2 distance respects Lemma 14 at every t."""
        graph = twitter_like(n=300, seed=5)
        curve = chi2_mixing_curve(graph, 8)
        for t, value in enumerate(curve):
            assert value <= chi2_mixing_bound(0.15, t) + 1e-9

    def test_geometric_decay_rate(self):
        """chi2 contraction is at least (1 - p_T)^2 per step on average."""
        graph = twitter_like(n=300, seed=6)
        curve = chi2_mixing_curve(graph, 6)
        assert curve[6] <= curve[0] * (0.85**2) ** 6 + 1e-12

    def test_rejects_negative_horizon(self):
        with pytest.raises(ConfigError):
            tv_mixing_curve(cycle_graph(4), -1)


class TestEmpiricalMixingTime:
    def test_complete_graph_mixes_instantly(self):
        assert empirical_mixing_time(complete_graph(8), epsilon=0.01) <= 1

    def test_consistent_with_curve(self):
        graph = twitter_like(n=300, seed=7)
        t_mix = empirical_mixing_time(graph, epsilon=0.01)
        curve = tv_mixing_curve(graph, t_mix)
        assert curve[t_mix] <= 0.01
        if t_mix > 0:
            assert curve[t_mix - 1] > 0.01

    def test_paper_regime_few_iterations(self):
        """The paper stops at 3-5 supersteps; on power-law stand-ins the
        chain is within a few percent TV by then."""
        graph = twitter_like(n=500, seed=8)
        assert empirical_mixing_time(graph, epsilon=0.05) <= 6

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ConfigError):
            empirical_mixing_time(cycle_graph(4), epsilon=0.0)
