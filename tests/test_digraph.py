"""Unit tests for the CSR DiGraph."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import DiGraph, from_edges


class TestConstruction:
    def test_valid_csr(self):
        g = DiGraph(np.array([0, 2, 3, 3]), np.array([1, 2, 0]))
        assert g.num_vertices == 3
        assert g.num_edges == 3

    def test_empty_graph(self):
        g = DiGraph(np.array([0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 0
        assert g.num_edges == 0

    def test_vertices_without_edges(self):
        g = DiGraph(np.array([0, 0, 0, 0]), np.array([], dtype=np.int64))
        assert g.num_vertices == 3
        assert g.num_edges == 0

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(GraphError, match="indptr"):
            DiGraph(np.array([1, 2]), np.array([0]))

    def test_rejects_bad_indptr_end(self):
        with pytest.raises(GraphError, match="indptr"):
            DiGraph(np.array([0, 5]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(GraphError, match="non-decreasing"):
            DiGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_rejects_out_of_range_targets(self):
        with pytest.raises(GraphError, match="out of range"):
            DiGraph(np.array([0, 1]), np.array([5]))

    def test_rejects_2d_arrays(self):
        with pytest.raises(GraphError, match="one-dimensional"):
            DiGraph(np.zeros((2, 2)), np.array([0]))

    def test_rejects_empty_indptr(self):
        with pytest.raises(GraphError, match="at least one"):
            DiGraph(np.array([], dtype=np.int64), np.array([], dtype=np.int64))

    def test_len_is_vertex_count(self, diamond):
        assert len(diamond) == 4

    def test_equality(self, diamond):
        other = from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 0)])
        assert diamond == other

    def test_inequality(self, diamond, cycle10):
        assert diamond != cycle10

    def test_equality_non_graph(self, diamond):
        assert diamond != "not a graph"


class TestDegrees:
    def test_out_degree_scalar(self, diamond):
        assert diamond.out_degree(0) == 2
        assert diamond.out_degree(3) == 1

    def test_out_degree_vector(self, diamond):
        assert list(diamond.out_degree()) == [2, 1, 1, 1]

    def test_in_degree_scalar(self, diamond):
        assert diamond.in_degree(3) == 2
        assert diamond.in_degree(0) == 1

    def test_in_degree_vector(self, diamond):
        assert list(diamond.in_degree()) == [1, 1, 1, 2]

    def test_degree_sums_match_edge_count(self, small_twitter):
        assert int(np.sum(small_twitter.out_degree())) == small_twitter.num_edges
        assert int(np.sum(small_twitter.in_degree())) == small_twitter.num_edges

    def test_out_degree_vertex_out_of_range(self, diamond):
        with pytest.raises(GraphError, match="out of range"):
            diamond.out_degree(99)


class TestAdjacency:
    def test_successors(self, diamond):
        assert list(diamond.successors(0)) == [1, 2]

    def test_predecessors(self, diamond):
        assert sorted(diamond.predecessors(3).tolist()) == [1, 2]

    def test_has_edge(self, diamond):
        assert diamond.has_edge(0, 1)
        assert not diamond.has_edge(1, 0)

    def test_edges_iterator(self, diamond):
        assert sorted(diamond.edges()) == [
            (0, 1), (0, 2), (1, 3), (2, 3), (3, 0),
        ]

    def test_edge_sources_aligned_with_indices(self, small_twitter):
        src = small_twitter.edge_sources()
        assert src.shape == small_twitter.indices.shape
        # Every edge appears under its source's CSR slice.
        for v in (0, 10, 100):
            lo, hi = small_twitter.indptr[v], small_twitter.indptr[v + 1]
            assert np.all(src[lo:hi] == v)

    def test_edge_array_shape(self, diamond):
        arr = diamond.edge_array()
        assert arr.shape == (5, 2)

    def test_predecessors_inverse_of_successors(self, small_twitter):
        v = 7
        for u in small_twitter.successors(v):
            assert v in small_twitter.predecessors(int(u))


class TestDerived:
    def test_transition_matrix_column_stochastic(self, diamond):
        p = diamond.transition_matrix()
        np.testing.assert_allclose(p.sum(axis=0), np.ones(4))

    def test_transition_matrix_values(self, diamond):
        p = diamond.transition_matrix()
        assert p[1, 0] == pytest.approx(0.5)
        assert p[2, 0] == pytest.approx(0.5)
        assert p[0, 3] == pytest.approx(1.0)

    def test_transition_matrix_rejects_dangling(self):
        g = from_edges([(0, 1)], repair_dangling="none")
        with pytest.raises(GraphError, match="dangling"):
            g.transition_matrix()

    def test_reverse_flips_edges(self, diamond):
        rev = diamond.reverse()
        assert rev.has_edge(1, 0)
        assert not rev.has_edge(0, 1)
        assert rev.num_edges == diamond.num_edges

    def test_double_reverse_identity(self, small_twitter):
        assert small_twitter.reverse().reverse() == small_twitter

    def test_subgraph_edges_keep_all(self, diamond):
        kept = diamond.subgraph_edges(np.ones(5, dtype=bool))
        assert kept == diamond

    def test_subgraph_edges_keep_none(self, diamond):
        kept = diamond.subgraph_edges(np.zeros(5, dtype=bool))
        assert kept.num_edges == 0
        assert kept.num_vertices == diamond.num_vertices

    def test_subgraph_edges_mask_shape_checked(self, diamond):
        with pytest.raises(GraphError, match="keep mask"):
            diamond.subgraph_edges(np.ones(3, dtype=bool))

    def test_dangling_vertices(self):
        g = from_edges([(0, 1), (1, 2)], repair_dangling="none")
        assert list(g.dangling_vertices()) == [2]

    def test_no_dangling_after_default_repair(self, small_twitter):
        assert small_twitter.dangling_vertices().size == 0
