"""Tests for the paper's analytical bounds (Theorems 1-2, Lemmas, Prop 7).

Beyond API checks, these validate the *theory itself* empirically: the
bounds must hold on simulated walks, and the estimator must meet the
Theorem 1 guarantee.
"""

import math

import numpy as np
import pytest

from repro.core import FrogWildConfig, run_frogwild
from repro.errors import ConfigError
from repro.graph import star_graph
from repro.metrics import normalized_mass_captured, optimal_mass
from repro.pagerank import exact_pagerank
from repro.theory import (
    chi2_contrast,
    chi2_mixing_bound,
    empirical_intersection_probability,
    expected_max,
    fit_tail_exponent,
    intersection_probability_bound,
    l1_from_chi2,
    max_bound,
    max_bound_failure_probability,
    mixing_loss_bound,
    recommended_frogs,
    recommended_iterations,
    sample_powerlaw_simplex,
    sampling_loss_bound,
    theorem1_epsilon,
    theorem2_with_powerlaw,
    uniform_contrast_bound,
)


class TestMixingBound:
    def test_decreases_in_t(self):
        values = [mixing_loss_bound(0.15, t) for t in range(10)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_known_value(self):
        assert mixing_loss_bound(0.15, 0) == pytest.approx(
            math.sqrt(0.85 / 0.15)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            mixing_loss_bound(0.0, 3)
        with pytest.raises(ConfigError):
            mixing_loss_bound(0.15, -1)


class TestSamplingBound:
    def test_decreases_in_frogs(self):
        small = sampling_loss_bound(100, 0.1, 1000, 1.0, 0.0)
        large = sampling_loss_bound(100, 0.1, 100_000, 1.0, 0.0)
        assert large < small

    def test_full_sync_kills_correlation_term(self):
        with_corr = sampling_loss_bound(10, 0.1, 1000, 0.5, 0.1)
        without = sampling_loss_bound(10, 0.1, 1000, 1.0, 0.1)
        assert without < with_corr
        assert without == pytest.approx(
            sampling_loss_bound(10, 0.1, 1000, 1.0, 0.0)
        )

    def test_epsilon_is_sum(self):
        eps = theorem1_epsilon(10, 0.1, 1000, 0.8, 5, 0.01)
        assert eps == pytest.approx(
            mixing_loss_bound(0.15, 5)
            + sampling_loss_bound(10, 0.1, 1000, 0.8, 0.01)
        )

    def test_validation(self):
        with pytest.raises(ConfigError):
            sampling_loss_bound(0, 0.1, 10, 1.0, 0.0)
        with pytest.raises(ConfigError):
            sampling_loss_bound(5, 0.0, 10, 1.0, 0.0)
        with pytest.raises(ConfigError):
            sampling_loss_bound(5, 0.1, 10, 2.0, 0.0)


class TestIntersectionProbability:
    def test_bound_formula(self):
        assert intersection_probability_bound(
            100, 5, 0.1, 0.15
        ) == pytest.approx(min(1.0, 0.01 + 5 * 0.1 / 0.15))

    def test_empirical_below_bound_star(self):
        """Theorem 2 must hold on a graph with a strong hub."""
        graph = star_graph(50)
        pi = exact_pagerank(graph)
        t = 4
        bound = intersection_probability_bound(50, t, float(pi.max()))
        observed = empirical_intersection_probability(
            graph, t, trials=3000, seed=0
        )
        assert observed <= bound + 0.02

    def test_empirical_below_bound_powerlaw(self, small_twitter):
        pi = exact_pagerank(small_twitter)
        t = 4
        bound = intersection_probability_bound(
            small_twitter.num_vertices, t, float(pi.max())
        )
        observed = empirical_intersection_probability(
            small_twitter, t, trials=2000, seed=0
        )
        assert observed <= bound + 0.01

    def test_empirical_grows_with_t(self, small_twitter):
        short = empirical_intersection_probability(
            small_twitter, 1, trials=3000, seed=1
        )
        long = empirical_intersection_probability(
            small_twitter, 8, trials=3000, seed=1
        )
        assert long >= short


class TestRemark6:
    def test_recommended_iterations_scaling(self):
        # Smaller mu_k needs more iterations, logarithmically.
        t_small = recommended_iterations(0.01)
        t_large = recommended_iterations(0.5)
        assert t_small > t_large
        assert t_small < 200

    def test_recommended_iterations_meets_target(self):
        mu = 0.2
        t = recommended_iterations(mu, slack=0.5)
        assert mixing_loss_bound(0.15, t) <= 0.5 * mu
        if t > 0:
            assert mixing_loss_bound(0.15, t - 1) > 0.5 * mu

    def test_recommended_frogs_scaling(self):
        assert recommended_frogs(100, 0.1) > recommended_frogs(100, 0.5)
        # N = O(k / mu^2): quadrupling mu divides N by ~16.
        ratio = recommended_frogs(100, 0.1) / recommended_frogs(100, 0.4)
        assert ratio == pytest.approx(16.0, rel=0.01)

    def test_theorem1_guarantee_holds_empirically(self, small_twitter):
        """End-to-end: mass captured >= mu_k - epsilon (w.h.p.)."""
        truth = exact_pagerank(small_twitter)
        k, t, n_frogs, ps = 20, 8, 30_000, 1.0
        result = run_frogwild(
            small_twitter,
            FrogWildConfig(num_frogs=n_frogs, iterations=t, ps=ps, seed=0),
            num_machines=4,
        )
        mu_opt = optimal_mass(truth, k)
        captured = mu_opt * normalized_mass_captured(
            result.estimate.vector(), truth, k
        )
        p_meet = intersection_probability_bound(
            small_twitter.num_vertices, t, float(truth.max())
        )
        eps = theorem1_epsilon(k, 0.1, n_frogs, ps, t, p_meet)
        assert captured >= mu_opt - eps


class TestContrast:
    def test_chi2_zero_for_equal(self):
        d = np.array([0.25, 0.25, 0.5])
        assert chi2_contrast(d, d) == pytest.approx(0.0)

    def test_chi2_manual_value(self):
        alpha = np.array([0.5, 0.5])
        beta = np.array([0.25, 0.75])
        expected = 0.25**2 / 0.25 + 0.25**2 / 0.75
        assert chi2_contrast(alpha, beta) == pytest.approx(expected)

    def test_chi2_requires_positive_reference(self):
        with pytest.raises(ConfigError):
            chi2_contrast(np.array([1.0, 0.0]), np.array([1.0, 0.0]))

    def test_lemma13_bound_holds(self):
        """chi2(u; pi) <= (1-c)/c whenever min pi >= c/n."""
        rng = np.random.default_rng(0)
        n, c = 50, 0.15
        for _ in range(20):
            pi = rng.random(n) + c / n
            pi = pi / pi.sum()
            pi = np.maximum(pi, c / n)
            pi = pi / pi.sum()
            if pi.min() < c / n:  # renormalization can undershoot
                continue
            u = np.full(n, 1.0 / n)
            assert chi2_contrast(u, pi) <= uniform_contrast_bound(c) + 1e-9

    def test_mixing_bound_formula(self):
        assert chi2_mixing_bound(0.15, 3) == pytest.approx(
            (0.85 / 0.15) * 0.85**3
        )

    def test_l1_from_chi2(self):
        assert l1_from_chi2(0.25) == pytest.approx(0.5)
        with pytest.raises(ConfigError):
            l1_from_chi2(-1.0)

    def test_l1_bounded_by_sqrt_chi2_random(self, rng):
        for _ in range(20):
            alpha = rng.random(30)
            alpha /= alpha.sum()
            beta = rng.random(30) + 0.01
            beta /= beta.sum()
            l1 = np.abs(alpha - beta).sum()
            assert l1 <= l1_from_chi2(chi2_contrast(alpha, beta)) + 1e-9


class TestPowerLaw:
    def test_max_bound_value(self):
        assert max_bound(10_000, 0.5) == pytest.approx(0.01)

    def test_failure_probability_vanishes(self):
        small = max_bound_failure_probability(10**3)
        large = max_bound_failure_probability(10**9)
        assert large < small

    def test_failure_probability_clipped(self):
        assert max_bound_failure_probability(2, gamma=5.0) == 1.0

    def test_expected_max_growth(self):
        assert expected_max(10_000) > expected_max(100)

    def test_sample_simplex(self):
        pi = sample_powerlaw_simplex(1000, theta=2.2, seed=0)
        assert pi.sum() == pytest.approx(1.0)
        assert pi.min() > 0

    def test_fit_recovers_exponent(self):
        values = sample_powerlaw_simplex(200_000, theta=2.2, seed=1)
        fitted = fit_tail_exponent(values, tail_fraction=0.01)
        assert fitted == pytest.approx(2.2, abs=0.4)

    def test_theorem2_with_powerlaw(self):
        value = theorem2_with_powerlaw(10_000, 4)
        assert value == pytest.approx(
            min(1.0, 1e-4 + 4 * 0.01 / 0.15)
        )

    def test_proposition7_empirically(self):
        """||pi||_inf <= n^-gamma holds for most normalized draws, for
        gamma below (theta-2)/(theta-1) (see docstring of
        max_bound_failure_probability for the scaling caveat)."""
        n, gamma = 100_000, 0.1
        failures = 0
        trials = 30
        for seed in range(trials):
            pi = sample_powerlaw_simplex(n, theta=2.2, seed=seed)
            if pi.max() > max_bound(n, gamma):
                failures += 1
        assert failures == 0

    def test_normalized_max_scaling(self):
        """E[max] tracks p_T * n^{-(theta-2)/(theta-1)} for normalized
        draws — the scaling the reproduction note documents."""
        # The max has infinite variance at theta = 2.2, so only the
        # median over seeds is stable enough to assert on: it must
        # shrink as n grows (negative exponent), roughly like n^-0.17.
        maxima = {
            n: np.median(
                [
                    sample_powerlaw_simplex(n, theta=2.2, seed=s).max()
                    for s in range(16)
                ]
            )
            for n in (10_000, 160_000)
        }
        assert maxima[160_000] < maxima[10_000]
        observed_exponent = np.log(maxima[10_000] / maxima[160_000]) / np.log(16)
        assert 0.0 < observed_exponent < 0.6

    def test_validation(self):
        with pytest.raises(ConfigError):
            max_bound(0)
        with pytest.raises(ConfigError):
            expected_max(10, theta=1.0)
        with pytest.raises(ConfigError):
            sample_powerlaw_simplex(10, theta=0.5)
        with pytest.raises(ConfigError):
            fit_tail_exponent(np.ones(10), tail_fraction=0.0)
