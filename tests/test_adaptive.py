"""Tests for the adaptive frog-budget runner (Remark 6 stopping rule)."""

import numpy as np
import pytest

from repro.core import (
    AdaptiveConfig,
    FrogWildConfig,
    run_adaptive_frogwild,
    top_k_jaccard,
)
from repro.errors import ConfigError
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank


class TestTopKJaccard:
    def test_identical_sets(self):
        assert top_k_jaccard(np.array([1, 2, 3]), np.array([3, 2, 1])) == 1.0

    def test_disjoint_sets(self):
        assert top_k_jaccard(np.array([1, 2]), np.array([3, 4])) == 0.0

    def test_partial_overlap(self):
        value = top_k_jaccard(np.array([1, 2, 3]), np.array([2, 3, 4]))
        assert value == pytest.approx(0.5)

    def test_empty_sets(self):
        assert top_k_jaccard(np.array([]), np.array([])) == 1.0


class TestAdaptiveConfigValidation:
    def test_defaults_are_valid(self):
        AdaptiveConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"k": 0},
            {"pilot_frogs": 0},
            {"growth_factor": 1.0},
            {"max_frogs": 10, "pilot_frogs": 100},
            {"stability_threshold": 0.0},
            {"min_separation_z": -1.0},
            {"max_rounds": 0},
            {"delta": 0.0},
            {"slack": 1.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            AdaptiveConfig(**kwargs)


class TestAdaptiveRun:
    @pytest.fixture(scope="class")
    def outcome(self, request):
        graph = request.getfixturevalue("small_twitter")
        return run_adaptive_frogwild(
            graph,
            AdaptiveConfig(
                k=20,
                pilot_frogs=1_000,
                max_frogs=64_000,
                stability_threshold=0.8,
                min_separation_z=0.5,
            ),
            num_machines=4,
            seed=0,
        )

    def test_runs_multiple_rounds(self, outcome):
        assert len(outcome.rounds) >= 2

    def test_frogs_grow_geometrically(self, outcome):
        counts = [r.num_frogs for r in outcome.rounds]
        assert all(b > a for a, b in zip(counts, counts[1:]))

    def test_round_zero_is_pilot(self, outcome):
        assert outcome.rounds[0].round_index == 0
        assert outcome.rounds[0].num_frogs == 1_000

    def test_final_answer_is_accurate(self, outcome, small_twitter):
        truth = exact_pagerank(small_twitter)
        mass = normalized_mass_captured(
            outcome.estimate.vector(), truth, k=20
        )
        assert mass > 0.85

    def test_totals_sum_rounds(self, outcome):
        assert outcome.total_network_bytes() == sum(
            r.network_bytes for r in outcome.rounds
        )
        assert outcome.total_frogs() == sum(
            r.num_frogs for r in outcome.rounds
        )
        assert outcome.total_time_s() == pytest.approx(
            sum(r.total_time_s for r in outcome.rounds)
        )

    def test_recommendations_positive(self, outcome):
        assert outcome.recommended_frogs >= 1
        assert outcome.recommended_iterations >= 1

    def test_convergence_implies_stability(self, outcome):
        if outcome.converged:
            last = outcome.rounds[-1]
            assert last.jaccard_with_previous >= 0.8
            assert last.separation_z >= 0.5


class TestAdaptiveEdgeCases:
    def test_rejects_k_above_n(self, diamond):
        with pytest.raises(ConfigError):
            run_adaptive_frogwild(
                diamond, AdaptiveConfig(k=100), num_machines=2
            )

    def test_single_round_budget_cap(self, small_twitter):
        """With max_frogs == pilot_frogs the growth loop still runs but
        every round is capped; the loop exits on the cap."""
        outcome = run_adaptive_frogwild(
            small_twitter,
            AdaptiveConfig(
                k=10,
                pilot_frogs=500,
                max_frogs=500,
                max_rounds=4,
                stability_threshold=1.0,
                min_separation_z=100.0,  # unreachable: forces cap exit
            ),
            num_machines=4,
            seed=0,
        )
        assert not outcome.converged
        assert len(outcome.rounds) == 2  # pilot + one capped round

    def test_respects_base_config_ps(self, small_twitter):
        outcome = run_adaptive_frogwild(
            small_twitter,
            AdaptiveConfig(k=10, pilot_frogs=500, max_frogs=4_000),
            base_config=FrogWildConfig(ps=0.5, seed=0),
            num_machines=4,
            seed=0,
        )
        assert "ps=0.5" in outcome.result.report.algorithm

    def test_deterministic_given_seed(self, small_twitter):
        config = AdaptiveConfig(k=10, pilot_frogs=500, max_frogs=8_000)
        a = run_adaptive_frogwild(
            small_twitter, config, num_machines=4, seed=3
        )
        b = run_adaptive_frogwild(
            small_twitter, config, num_machines=4, seed=3
        )
        assert np.array_equal(a.estimate.counts, b.estimate.counts)
        assert len(a.rounds) == len(b.rounds)
