"""Tests for checkpoint/restore recovery vs uniform rebirth."""

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.engine import build_cluster, traffic_breakdown
from repro.errors import ConfigError
from repro.faults import (
    CheckpointConfig,
    CheckpointedFrogWildRunner,
    FaultSchedule,
    MachineCrash,
)
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

_CONFIG = FrogWildConfig(num_frogs=10_000, iterations=4, seed=0)


def _run(graph, schedule, interval=1, machines=4):
    state = build_cluster(graph, machines, seed=0)
    runner = CheckpointedFrogWildRunner(
        state, _CONFIG, schedule, CheckpointConfig(interval=interval)
    )
    result = runner.run()
    return runner, result


class TestConfig:
    def test_rejects_zero_interval(self):
        with pytest.raises(ConfigError):
            CheckpointConfig(interval=0)

    def test_default_interval(self):
        assert CheckpointConfig().interval == 1


class TestCheckpointCost:
    def test_checkpoints_taken_per_interval(self, small_twitter):
        runner, _ = _run(small_twitter, FaultSchedule(), interval=1)
        assert runner.checkpoints_taken == _CONFIG.iterations

    def test_sparser_interval_fewer_checkpoints(self, small_twitter):
        runner, _ = _run(small_twitter, FaultSchedule(), interval=2)
        assert runner.checkpoints_taken == 2  # steps 0 and 2

    def test_checkpoint_traffic_on_the_wire(self, small_twitter):
        runner, result = _run(small_twitter, FaultSchedule())
        breakdown = traffic_breakdown(result.state)
        assert breakdown.bytes_by_kind.get("checkpoint", 0) > 0

    def test_checkpointing_costs_more_than_plain_run(self, small_twitter):
        from repro.core import run_frogwild

        plain = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        _, checkpointed = _run(small_twitter, FaultSchedule())
        assert (
            checkpointed.report.network_bytes > plain.report.network_bytes
        )

    def test_single_machine_checkpoints_are_free(self, small_twitter):
        runner, result = _run(small_twitter, FaultSchedule(), machines=1)
        breakdown = traffic_breakdown(result.state)
        assert breakdown.bytes_by_kind.get("checkpoint", 0) == 0
        assert runner.checkpoints_taken == _CONFIG.iterations


class TestRecovery:
    def test_crash_restores_from_snapshot(self, small_twitter):
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=2, machine=0),)
        )
        runner, result = _run(small_twitter, schedule, interval=1)
        assert runner.fault_log.frogs_lost_to_crashes > 0
        assert runner.frogs_restored > 0

    def test_restoration_preserves_usable_accuracy(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=2, machine=1),)
        )
        _, result = _run(small_twitter, schedule, interval=1, machines=8)
        mass = normalized_mass_captured(result.estimate.vector(), truth, 20)
        assert mass > 0.8

    def test_stale_snapshot_duplicates_walkers(self, small_twitter):
        """Frogs that hopped off the dead machine's vertices since the
        checkpoint survive AND get restored: total count can exceed N."""
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=3, machine=0),)
        )
        runner, result = _run(small_twitter, schedule, interval=4)
        # Snapshot at step 0 is 4 steps stale at the crash: duplication
        # happens whenever the restored counters are non-empty.
        if runner.frogs_restored > runner.fault_log.frogs_lost_to_crashes:
            assert result.estimate.total_stopped > _CONFIG.num_frogs

    def test_deterministic(self, small_twitter):
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=2, machine=0),)
        )
        _, a = _run(small_twitter, schedule)
        _, b = _run(small_twitter, schedule)
        assert np.array_equal(a.estimate.counts, b.estimate.counts)
