"""Golden top-k regression tests against exact PageRank.

Seeded FrogWild and batched-FrogWild runs on small fixed graphs must
keep identifying the exact top-k within the tolerances the paper
justifies (Theorem 1 bounds the uncaptured mass; Figures 2/5 show >90%
of the top-100 mass captured at the paper's operating points).  The
thresholds here are deliberately *below* observed values by a safety
margin but far above chance, so a kernel refactor that silently
degrades accuracy — or breaks determinism — fails loudly.
"""

import numpy as np

from repro.core import (
    BatchQuery,
    FrogWildConfig,
    run_frogwild,
    run_frogwild_batch,
    run_personalized_frogwild_batch,
    seed_distribution,
)
from repro.graph import star_graph, twitter_like
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

GRAPH = twitter_like(n=1000, seed=21)
TRUTH = exact_pagerank(GRAPH)


def _overlap(estimated: np.ndarray, exact_ranking: np.ndarray, k: int) -> float:
    exact_top = set(np.argsort(-exact_ranking)[:k].tolist())
    return len(set(estimated.tolist()) & exact_top) / k


class TestSingleRunGolden:
    def test_top10_overlap_with_exact(self):
        result = run_frogwild(
            GRAPH,
            FrogWildConfig(num_frogs=20_000, iterations=6, seed=4),
            num_machines=4,
        )
        assert _overlap(result.estimate.top_k(10), TRUTH, 10) >= 0.8

    def test_mass_captured_at_paper_operating_point(self):
        """ps = 0.7, t = 4: the regime of Figures 2 and 4."""
        result = run_frogwild(
            GRAPH,
            FrogWildConfig(num_frogs=20_000, iterations=4, ps=0.7, seed=4),
            num_machines=8,
        )
        mass = normalized_mass_captured(result.estimate.vector(), TRUTH, 50)
        assert mass > 0.9

    def test_star_graph_hub_is_exact(self):
        graph = star_graph(40)
        result = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=4_000, iterations=4, seed=0),
            num_machines=4,
        )
        assert int(result.estimate.top_k(1)[0]) == 0

    def test_seeded_run_is_reproducible(self):
        config = FrogWildConfig(num_frogs=5_000, iterations=4, seed=123)
        first = run_frogwild(GRAPH, config, num_machines=4)
        second = run_frogwild(GRAPH, config, num_machines=4)
        np.testing.assert_array_equal(
            first.estimate.counts, second.estimate.counts
        )


class TestBatchedGolden:
    def test_batched_global_queries_hit_exact_topk(self):
        """Every population of a B=4 batch captures the exact top-k."""
        result = run_frogwild_batch(
            GRAPH,
            [BatchQuery(seed=s) for s in range(4)],
            FrogWildConfig(num_frogs=20_000, iterations=6, seed=0, ps=0.8),
            num_machines=4,
        )
        for lane in result.results:
            assert _overlap(lane.estimate.top_k(10), TRUTH, 10) >= 0.7
            mass = normalized_mass_captured(
                lane.estimate.vector(), TRUTH, 50
            )
            assert mass > 0.85

    def test_batched_personalized_matches_exact_ppr(self):
        """Each lane's top-k overlaps the exact PPR of its seed set."""
        seed_sets = [np.array([7]), np.array([11, 42]), np.array([100, 3])]
        result = run_personalized_frogwild_batch(
            GRAPH,
            seed_sets,
            FrogWildConfig(num_frogs=30_000, iterations=8, seed=1, ps=0.8),
            num_machines=4,
        )
        for seeds, lane in zip(seed_sets, result.results):
            personalization = seed_distribution(GRAPH.num_vertices, seeds)
            ppr_truth = exact_pagerank(GRAPH, personalization=personalization)
            assert _overlap(lane.estimate.top_k(10), ppr_truth, 10) >= 0.6
            mass = normalized_mass_captured(
                lane.estimate.vector(), ppr_truth, 20
            )
            assert mass > 0.8

    def test_batched_accuracy_not_below_sequential(self):
        """Batching must not trade accuracy: the mean captured mass of a
        batch tracks the sequential runs' within a small tolerance (it
        is exactly equal when seeds match, which lanes here do)."""
        config = FrogWildConfig(num_frogs=10_000, iterations=5, seed=6, ps=0.7)
        lane_seeds = [6, 7, 8]
        batched = run_frogwild_batch(
            GRAPH,
            [BatchQuery(seed=s) for s in lane_seeds],
            config,
            num_machines=4,
        )
        batched_mass = np.mean([
            normalized_mass_captured(lane.estimate.vector(), TRUTH, 50)
            for lane in batched.results
        ])
        sequential_mass = np.mean([
            normalized_mass_captured(
                run_frogwild(
                    GRAPH, config.with_updates(seed=s), num_machines=4
                ).estimate.vector(),
                TRUTH,
                50,
            )
            for s in lane_seeds
        ])
        assert batched_mass >= sequential_mass - 0.02
