"""Unit tests for the uniform-sparsification baseline (Figure 5)."""

import pytest

from repro.errors import ConfigError
from repro.pagerank import (
    exact_pagerank,
    sparsified_pagerank,
    sparsify_uniform,
)
from repro.metrics import normalized_mass_captured


class TestSparsify:
    def test_q1_returns_same_graph(self, small_twitter):
        assert sparsify_uniform(small_twitter, 1.0) is small_twitter

    def test_keeps_roughly_q_fraction(self, small_twitter):
        q = 0.5
        sparse = sparsify_uniform(small_twitter, q, seed=0)
        # Self-loop repair adds a few edges back, hence the loose band.
        ratio = sparse.num_edges / small_twitter.num_edges
        assert 0.45 < ratio < 0.60

    def test_same_vertex_set(self, small_twitter):
        sparse = sparsify_uniform(small_twitter, 0.3, seed=0)
        assert sparse.num_vertices == small_twitter.num_vertices

    def test_no_dangling_after_repair(self, small_twitter):
        sparse = sparsify_uniform(small_twitter, 0.05, seed=0)
        assert sparse.dangling_vertices().size == 0

    def test_kept_edges_subset_plus_self_loops(self, small_twitter):
        sparse = sparsify_uniform(small_twitter, 0.5, seed=0)
        original = set(small_twitter.edges())
        for u, v in sparse.edges():
            assert (u, v) in original or u == v

    def test_deterministic(self, small_twitter):
        a = sparsify_uniform(small_twitter, 0.5, seed=3)
        b = sparsify_uniform(small_twitter, 0.5, seed=3)
        assert a == b

    def test_rejects_bad_q(self, small_twitter):
        with pytest.raises(ConfigError):
            sparsify_uniform(small_twitter, 0.0)
        with pytest.raises(ConfigError):
            sparsify_uniform(small_twitter, 1.2)


class TestSparsifiedPageRank:
    def test_runs_and_reports(self, small_twitter):
        result = sparsified_pagerank(
            small_twitter, keep_probability=0.6, num_machines=4
        )
        assert result.report.supersteps == 2
        assert result.report.extra["keep_probability"] == 0.6
        assert result.report.network_bytes > 0

    def test_less_traffic_than_full_graph(self, small_twitter):
        from repro.pagerank import graphlab_pagerank

        full = graphlab_pagerank(small_twitter, num_machines=4, iterations=2)
        sparse = sparsified_pagerank(
            small_twitter, keep_probability=0.4, num_machines=4
        )
        assert sparse.report.network_bytes < full.report.network_bytes

    def test_accuracy_degrades_gracefully(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        heavy = sparsified_pagerank(small_twitter, 0.9, num_machines=4)
        light = sparsified_pagerank(small_twitter, 0.2, num_machines=4)
        mass_heavy = normalized_mass_captured(heavy.ranks, truth, 50)
        mass_light = normalized_mass_captured(light.ranks, truth, 50)
        assert mass_heavy > 0.9
        assert mass_light > 0.5
        assert mass_heavy >= mass_light
