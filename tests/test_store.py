"""The out-of-core graph tier: SegmentStore vs the in-RAM reference.

Four families of guarantees pin the store down:

* **delta parity**: ``SegmentStore.apply`` / ``add_edges`` /
  ``remove_edges`` mirror :class:`~repro.dynamic.DynamicDiGraph`'s
  mutation semantics exactly — same counts, same version bumps (none on
  empty batches), same errors — so the two tiers stay interchangeable
  behind the :class:`~repro.store.GraphStore` protocol;
* **window-pruning sufficiency** (property-based, via hypothesis): a
  pruned scan over any window equals the reference
  :func:`~repro.store.scan_keys` over the full key set, for random
  delta sequences, segment sizes, and (mis)aligned machine placements,
  before and after compaction;
* **compaction/manifest discipline**: intervals stay sorted, disjoint
  per machine and covering; crash debris is sweepable; reopen round-trips;
* **tile planning**: :func:`~repro.core.kernels.plan_store_tiles`
  equals :func:`~repro.core.kernels.plan_tiles` fed the same weights.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels.layout import plan_store_tiles, plan_tiles
from repro.dynamic import DynamicDiGraph, GraphDelta
from repro.errors import ConfigError, GraphError
from repro.graph import DiGraph, from_edges, twitter_like
from repro.store import (
    GraphStore,
    SegmentStore,
    Window,
    as_graph_store,
    edges_to_keys,
    keys_to_edges,
    scan_keys,
)

GRAPH = twitter_like(n=300, seed=3)


def _random_edges(rng, n, count):
    edges = rng.integers(0, n, size=(count, 2), dtype=np.int64)
    return edges[edges[:, 0] != edges[:, 1]]


def _store(tmp_path, graph=GRAPH, **kwargs):
    kwargs.setdefault("num_machines", 4)
    kwargs.setdefault("segment_edges", 256)
    return SegmentStore.create(tmp_path / "seg", source=graph, **kwargs)


class TestProtocol:
    def test_digraph_and_dynamic_satisfy_protocol(self):
        assert isinstance(GRAPH, GraphStore)
        assert isinstance(DynamicDiGraph.from_digraph(GRAPH), GraphStore)

    def test_segment_store_satisfies_protocol(self, tmp_path):
        store = _store(tmp_path)
        assert isinstance(store, GraphStore)
        assert store.out_of_core
        assert not getattr(GRAPH, "out_of_core", False)

    def test_as_graph_store_rejects_non_stores(self):
        with pytest.raises(ConfigError):
            as_graph_store(object())

    def test_key_codec_roundtrip(self, rng):
        edges = _random_edges(rng, 50, 200)
        keys = edges_to_keys(edges, 50)
        back = keys_to_edges(keys, 50)
        assert np.array_equal(
            np.unique(keys), edges_to_keys(back, 50)
        )


class TestCreateAndScan:
    def test_bulk_load_matches_source(self, tmp_path):
        store = _store(tmp_path)
        assert store.num_vertices == GRAPH.num_vertices
        assert store.num_edges == GRAPH.num_edges
        assert np.array_equal(store.edge_keys(), GRAPH.edge_keys())

    def test_snapshot_is_bitwise_equal(self, tmp_path):
        store = _store(tmp_path)
        snap = store.snapshot()
        assert np.array_equal(
            snap.csr_components()["indptr"],
            GRAPH.csr_components()["indptr"],
        )
        assert np.array_equal(
            snap.csr_components()["indices"],
            GRAPH.csr_components()["indices"],
        )

    def test_aligned_scan_prunes_and_matches_reference(self, tmp_path):
        store = _store(tmp_path)
        n = store.num_vertices
        full = store.edge_keys()
        window = Window(50, 200, machine=2, num_machines=4, salt=0)
        got = store.scan(window)
        assert np.array_equal(got, scan_keys(full, n, window))
        stats = store.scan_stats
        assert stats.segments_pruned > 0
        assert stats.segments_scanned < stats.segments_considered

    def test_misaligned_scan_falls_back_to_hash_filter(self, tmp_path):
        store = _store(tmp_path)
        n = store.num_vertices
        full = store.edge_keys()
        # Different machine count / salt than the store's placement:
        # segment machine labels are useless, interval pruning isn't.
        window = Window(0, n, machine=1, num_machines=3, salt=9)
        assert np.array_equal(
            store.scan(window), scan_keys(full, n, window)
        )

    def test_empty_and_degenerate_windows(self, tmp_path):
        store = _store(tmp_path)
        n = store.num_vertices
        assert store.scan(Window(10, 10)).size == 0
        assert store.scan(Window(n, n)).size == 0
        assert np.array_equal(store.scan(Window(0, n)), store.edge_keys())

    def test_create_requires_dimensions(self, tmp_path):
        with pytest.raises(ConfigError):
            SegmentStore.create(tmp_path / "x")


class TestDeltaParity:
    """SegmentStore.apply mirrors DynamicDiGraph.apply bit for bit."""

    def _pair(self, tmp_path):
        return (
            DynamicDiGraph.from_digraph(GRAPH),
            _store(tmp_path),
        )

    def test_apply_counts_versions_and_keys_track_ram(
        self, tmp_path, rng
    ):
        dyn, store = self._pair(tmp_path)
        n = GRAPH.num_vertices
        for _ in range(6):
            added = _random_edges(rng, n, 40)
            existing = keys_to_edges(dyn.edge_keys(), n)
            picks = rng.choice(
                existing.shape[0], size=25, replace=False
            )
            delta = GraphDelta(added=added, removed=existing[picks])
            assert dyn.apply(delta) == store.apply(delta)
            assert dyn.version == store.version
            assert dyn.num_edges == store.num_edges
            assert np.array_equal(dyn.edge_keys(), store.edge_keys())

    def test_empty_batches_do_not_bump_version(self, tmp_path):
        dyn, store = self._pair(tmp_path)
        empty = np.empty((0, 2), dtype=np.int64)
        for target in (dyn, store):
            before = target.version
            assert target.add_edges(empty) == 0
            assert target.remove_edges(empty) == 0
            assert target.version == before

    def test_duplicate_adds_and_missing_removes(self, tmp_path, rng):
        dyn, store = self._pair(tmp_path)
        n = GRAPH.num_vertices
        existing = keys_to_edges(dyn.edge_keys(), n)[:10]
        missing = existing[:, ::-1].copy()
        missing = missing[
            ~np.isin(
                edges_to_keys(missing, n), dyn.edge_keys(),
            )
        ]
        for target in (dyn, store):
            assert target.add_edges(existing) == 0  # already present
            assert target.remove_edges(missing) == 0  # never present
        assert dyn.version == store.version

    def test_readd_resurrects_removed_edge(self, tmp_path):
        dyn, store = self._pair(tmp_path)
        n = GRAPH.num_vertices
        edge = keys_to_edges(dyn.edge_keys()[:1], n)
        for target in (dyn, store):
            assert target.remove_edges(edge) == 1
            assert target.add_edges(edge) == 1
        assert np.array_equal(dyn.edge_keys(), store.edge_keys())

    def test_out_of_range_endpoints_raise(self, tmp_path):
        dyn, store = self._pair(tmp_path)
        bad = np.array([[0, GRAPH.num_vertices]], dtype=np.int64)
        for target in (dyn, store):
            with pytest.raises(GraphError):
                target.add_edges(bad)
        malformed = np.zeros((2, 3), dtype=np.int64)
        for target in (dyn, store):
            with pytest.raises(GraphError):
                target.add_edges(malformed)


class TestCompaction:
    def test_compact_folds_delta_and_preserves_keys(
        self, tmp_path, rng
    ):
        store = _store(tmp_path)
        n = store.num_vertices
        store.add_edges(_random_edges(rng, n, 300))
        existing = keys_to_edges(store.edge_keys(), n)
        store.remove_edges(existing[::7])
        before = store.edge_keys().copy()
        version = store.version
        stats = store.compact()
        assert stats.folded_keys > 0
        assert store.pending_delta == 0
        assert store.version == version  # same edge set, same version
        assert np.array_equal(store.edge_keys(), before)
        store.check_intervals()

    def test_compact_rewrites_only_dirty_machines(self, tmp_path):
        store = _store(tmp_path)
        n = store.num_vertices
        # One edge targets exactly one machine's key space.
        key = store.edge_keys()[:1]
        store.remove_edges(keys_to_edges(key, n))
        stats = store.compact()
        assert stats.machines_rewritten == 1

    def test_maybe_compact_respects_threshold(self, tmp_path, rng):
        store = _store(tmp_path)
        store.add_edges(_random_edges(rng, store.num_vertices, 20))
        assert store.maybe_compact(threshold=10_000) is None
        assert store.maybe_compact(threshold=4) is not None
        assert store.pending_delta == 0

    def test_reopen_after_compaction(self, tmp_path, rng):
        store = _store(tmp_path)
        store.add_edges(_random_edges(rng, store.num_vertices, 150))
        store.compact()
        keys = store.edge_keys().copy()
        reopened = SegmentStore(tmp_path / "seg")
        assert reopened.version == store.version
        assert np.array_equal(reopened.edge_keys(), keys)
        reopened.check_intervals()

    def test_uncompacted_delta_is_not_persisted(self, tmp_path, rng):
        store = _store(tmp_path)
        store.add_edges(_random_edges(rng, store.num_vertices, 50))
        assert SegmentStore(tmp_path / "seg").pending_delta == 0

    def test_orphan_sweep(self, tmp_path):
        store = _store(tmp_path)
        owned = tmp_path / "seg" / store.segment_files()[0]
        orphan = tmp_path / "seg" / "seg-99999999-m0.npy"
        orphan.write_bytes(owned.read_bytes())
        assert store.sweep_orphans() == ["seg-99999999-m0.npy"]
        assert not orphan.exists()
        assert store.list_segment_files() == store.segment_files()

    def test_check_intervals_rejects_corrupt_manifest(self, tmp_path):
        store = _store(tmp_path)
        meta = store._segments[0]
        corrupted = type(meta)(
            machine=meta.machine,
            key_lo=meta.key_hi + 1,  # interval no longer covers keys
            key_hi=meta.key_hi + 2,
            count=meta.count,
            file=meta.file,
        )
        store._segments[0] = corrupted
        with pytest.raises(GraphError):
            store.check_intervals()


@st.composite
def _delta_scenarios(draw):
    n = draw(st.integers(min_value=8, max_value=64))
    rng = np.random.default_rng(draw(st.integers(0, 2**31 - 1)))
    base = _random_edges(rng, n, draw(st.integers(0, 120)))
    steps = draw(st.integers(min_value=0, max_value=4))
    machines = draw(st.integers(min_value=1, max_value=5))
    salt = draw(st.integers(min_value=0, max_value=3))
    segment_edges = draw(st.sampled_from([4, 16, 64, 1024]))
    lo = draw(st.integers(0, n))
    hi = draw(st.integers(0, n))
    lo, hi = min(lo, hi), max(lo, hi)
    q_machines = draw(st.integers(min_value=1, max_value=5))
    q_machine = draw(st.integers(0, q_machines - 1))
    q_salt = draw(st.integers(min_value=0, max_value=3))
    return (
        n, rng, base, steps, machines, salt, segment_edges,
        Window(lo, hi, machine=q_machine, num_machines=q_machines,
               salt=q_salt),
    )


class TestWindowPruningProperty:
    """Pruned scan == full reference scan, uncompacted deltas included."""

    @settings(max_examples=40, deadline=None)
    @given(scenario=_delta_scenarios())
    def test_pruned_scan_equals_reference(self, scenario):
        (n, rng, base, steps, machines, salt, segment_edges,
         window) = scenario
        with tempfile.TemporaryDirectory() as tmp:
            self._check(
                Path(tmp), n, rng, base, steps, machines, salt,
                segment_edges, window,
            )

    def _check(
        self, tmp_path, n, rng, base, steps, machines, salt,
        segment_edges, window,
    ):
        store = SegmentStore.create(
            tmp_path / "prop",
            source=base if base.size else None,
            num_vertices=n,
            num_machines=machines,
            salt=salt,
            segment_edges=segment_edges,
        )
        for step in range(steps):
            added = _random_edges(rng, n, int(rng.integers(0, 30)))
            keys = store.edge_keys()
            removed = (
                keys_to_edges(
                    rng.choice(
                        keys, size=min(8, keys.size), replace=False
                    ),
                    n,
                )
                if keys.size
                else np.empty((0, 2), dtype=np.int64)
            )
            store.apply(GraphDelta(added=added, removed=removed))
            full = store.edge_keys()
            assert np.array_equal(
                store.scan(window), scan_keys(full, n, window)
            )
            # Also an aligned window (the fast pruning path).
            aligned = Window(
                window.vertex_lo, window.vertex_hi,
                machine=min(window.machine or 0, machines - 1),
                num_machines=machines, salt=salt,
            )
            assert np.array_equal(
                store.scan(aligned), scan_keys(full, n, aligned)
            )
        store.compact()
        store.check_intervals()
        full = store.edge_keys()
        assert np.array_equal(
            store.scan(window), scan_keys(full, n, window)
        )


class TestStoreTiles:
    def test_plan_store_tiles_equals_plan_tiles(self, tmp_path):
        store = _store(tmp_path)
        n = store.num_vertices
        keys = store.edge_keys()
        weights = np.bincount(keys // n, minlength=n) * 16
        for budget in (64, 1024, 16 * GRAPH.num_edges + 1):
            expected = plan_tiles(weights, budget)
            got = plan_store_tiles(
                store, budget, chunk_vertices=37
            )
            assert np.array_equal(got, expected), budget

    def test_plan_store_tiles_windowed(self, tmp_path):
        store = _store(tmp_path)
        n = store.num_vertices
        window = Window(40, 210)
        keys = scan_keys(store.edge_keys(), n, window)
        weights = np.bincount(
            keys // n - 40, minlength=210 - 40
        ) * 16
        expected = 40 + plan_tiles(weights, 512)
        got = plan_store_tiles(
            store, 512, window=window, chunk_vertices=11
        )
        assert np.array_equal(got, expected)

    def test_plan_store_tiles_on_ram_store(self):
        weights = np.bincount(
            GRAPH.edge_keys() // GRAPH.num_vertices,
            minlength=GRAPH.num_vertices,
        ) * 16
        assert np.array_equal(
            plan_store_tiles(GRAPH, 2048),
            plan_tiles(weights, 2048),
        )


class TestDeprecatedReaches:
    def test_edge_array_warns_once_per_call(self):
        dyn = DynamicDiGraph.from_digraph(from_edges([(0, 1), (1, 2)]))
        with pytest.deprecated_call():
            edges = dyn.edge_array()
        # from_edges pins dangling vertex 2 with a self-loop: 3 edges.
        assert edges.shape == (3, 2)

    def test_csr_arrays_warns_and_matches_components(self):
        graph = from_edges([(0, 1), (1, 2), (2, 0)])
        with pytest.deprecated_call():
            legacy = graph.csr_arrays()
        current = graph.csr_components()
        assert np.array_equal(legacy["indptr"], current["indptr"])
        assert np.array_equal(legacy["indices"], current["indices"])

    def test_digraph_scan_matches_reference(self, rng):
        window = Window(100, 220, machine=1, num_machines=3, salt=2)
        assert np.array_equal(
            GRAPH.scan(window),
            scan_keys(GRAPH.edge_keys(), GRAPH.num_vertices, window),
        )
