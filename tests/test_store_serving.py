"""Serving through the out-of-core tier: parity, spill, live churn.

The acceptance bar for the storage seam is *bitwise* equality: a
service constructed over a :class:`~repro.store.SegmentStore` must
answer every query with exactly the vertices and scores the in-RAM
construction produces, across all three execution backends — the store
changes where bytes live, never what the kernels compute.  On top of
that: the spill/reuse round-trip rebuilds structurally equal tables
from mapped files, the store's version counter invalidates the service
cache on churn, and :class:`~repro.live.LiveRankingService` can run a
segment store as its churn source with compaction riding the refresh
pipeline.
"""

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.dynamic import ChurnGenerator, DynamicDiGraph, GraphDelta
from repro.errors import ConfigError
from repro.graph import twitter_like
from repro.live import LiveRankingService
from repro.serving import RankingQuery, RankingService
from repro.store import (
    SegmentStore,
    load_serving_tables,
    spill_serving_tables,
)

GRAPH = twitter_like(n=300, seed=11)
CONFIG = FrogWildConfig(num_frogs=800, iterations=4, ps=1.0, seed=5)
QUERIES = [
    RankingQuery(seeds=(3, 40), k=10),
    RankingQuery(seeds=(7, 120, 200), k=10),
]


def _answers(service):
    try:
        return [
            (list(a.vertices), list(a.scores))
            for a in service.query_batch(QUERIES)
        ]
    finally:
        service.close()


@pytest.fixture
def store(tmp_path):
    return SegmentStore.create(
        tmp_path / "seg", source=GRAPH, num_machines=4, segment_edges=512
    )


class TestBackendParity:
    def test_local_backend_bitwise(self, store):
        ram = _answers(RankingService(
            GRAPH, CONFIG, num_machines=4, seed=2
        ))
        ooc = _answers(RankingService(
            config=CONFIG, num_machines=4, seed=2, store=store
        ))
        assert ram == ooc

    def test_sharded_backend_bitwise(self, store):
        ram = _answers(RankingService(
            GRAPH, CONFIG, num_machines=4, num_shards=2, seed=2
        ))
        ooc = _answers(RankingService(
            config=CONFIG, num_machines=4, num_shards=2, seed=2,
            store=store,
        ))
        assert ram == ooc

    def test_process_backend_bitwise(self, store):
        ram = _answers(RankingService(
            GRAPH, CONFIG, num_machines=4, num_shards=2, seed=2,
            backend="process",
        ))
        ooc = _answers(RankingService(
            config=CONFIG, num_machines=4, num_shards=2, seed=2,
            backend="process", store=store,
        ))
        assert ram == ooc

    def test_ram_store_is_a_graph_source(self):
        ram = _answers(RankingService(
            GRAPH, CONFIG, num_machines=4, seed=2
        ))
        via_store = _answers(RankingService(
            config=CONFIG, num_machines=4, seed=2, store=GRAPH
        ))
        assert ram == via_store

    def test_needs_graph_or_store(self):
        with pytest.raises(ConfigError):
            RankingService(config=CONFIG)


class TestSpillRoundTrip:
    def test_tables_reload_structurally_equal(self, tmp_path):
        from repro.cluster import ReplicationTable, StableHashVertexCut

        replication = ReplicationTable(
            GRAPH,
            StableHashVertexCut(seed=3).partition(GRAPH, 4),
            seed=3,
        )
        directory = spill_serving_tables(
            tmp_path / "spill", GRAPH, [replication]
        )
        graph, (loaded,) = load_serving_tables(directory)
        assert np.array_equal(
            graph.csr_components()["indices"],
            GRAPH.csr_components()["indices"],
        )
        assert loaded.structurally_equal(replication)
        # Mapped, not materialized: the loaded CSR is a read-only view
        # over the spill files.
        assert not graph.csr_components()["indices"].flags.writeable

    def test_spill_reuse_skips_rebuild(self, tmp_path, store):
        service = RankingService(
            config=CONFIG, num_machines=4, seed=2, store=store
        )
        service.close()
        spill_dirs = list((store.directory / "serving").iterdir())
        assert len(spill_dirs) == 1
        again = RankingService(
            config=CONFIG, num_machines=4, seed=2, store=store
        )
        again.close()
        assert list((store.directory / "serving").iterdir()) == spill_dirs

    def test_store_version_bump_forces_new_spill(self, tmp_path, store):
        RankingService(
            config=CONFIG, num_machines=4, seed=2, store=store
        ).close()
        store.add_edges(np.array([[5, 250]], dtype=np.int64))
        RankingService(
            config=CONFIG, num_machines=4, seed=2, store=store
        ).close()
        assert len(list((store.directory / "serving").iterdir())) == 2


class TestCacheInvalidation:
    def test_store_version_is_the_default_generation(self, store):
        service = RankingService(
            config=CONFIG, num_machines=4, seed=2, store=store
        )
        try:
            first = service.query(seeds=(3, 40), k=5)
            replay = service.query(seeds=(3, 40), k=5)
            assert replay.cached
            store.add_edges(np.array([[9, 290]], dtype=np.int64))
            after = service.query(seeds=(3, 40), k=5)
            assert not after.cached
            assert first.vertices is not None
        finally:
            service.close()


class TestLiveStoreSeam:
    def test_live_service_runs_store_source_with_compaction(
        self, tmp_path
    ):
        store = SegmentStore.create(
            tmp_path / "live", source=GRAPH, num_machines=4,
            segment_edges=512,
        )
        twin = DynamicDiGraph.from_digraph(GRAPH)
        ram = LiveRankingService(
            twin, CONFIG, num_machines=4, seed=3
        )
        ooc = LiveRankingService(
            config=CONFIG, num_machines=4, seed=3, store=store,
            compact_threshold=16,
        )
        churn = ChurnGenerator(add_rate=0.02, remove_rate=0.01, seed=8)
        try:
            for _ in range(3):
                delta = churn.step(twin)
                ram.refresh(delta)
                ooc.refresh(delta)
                a = ram.query(seeds=(3, 40), k=8)
                b = ooc.query(seeds=(3, 40), k=8)
                assert list(a.vertices) == list(b.vertices)
                assert list(a.scores) == list(b.scores)
                assert ram.source.version == ooc.source.version
                assert np.array_equal(
                    ram.source.edge_keys(), ooc.source.edge_keys()
                )
            stats = ooc.live_stats()
            assert stats["store_compactions"] >= 1
            store.check_intervals()
            assert store.sweep_orphans() == []
        finally:
            ram.stop()
            ooc.stop()

    def test_graph_and_store_are_mutually_exclusive(self, tmp_path):
        store = SegmentStore.create(
            tmp_path / "x", source=GRAPH, num_machines=2
        )
        with pytest.raises(ConfigError):
            LiveRankingService(
                DynamicDiGraph.from_digraph(GRAPH), CONFIG, store=store
            )
        with pytest.raises(ConfigError):
            LiveRankingService(config=CONFIG)

    def test_refresh_applies_delta_to_store(self, tmp_path):
        store = SegmentStore.create(
            tmp_path / "y", source=GRAPH, num_machines=2
        )
        service = LiveRankingService(
            config=CONFIG, num_machines=2, seed=0, store=store
        )
        try:
            before = store.num_edges
            update = service.refresh(GraphDelta(
                added=np.array([[1, 299]], dtype=np.int64)
            ))
            assert store.num_edges == before + update.edges_added
            assert service.current_epoch.epoch_id == store.version
        finally:
            service.stop()
