"""Unit tests for GraphBuilder and from_edges."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder, from_edges


class TestAddEdges:
    def test_single_edge(self):
        g = GraphBuilder().add_edge(0, 1).build()
        assert g.has_edge(0, 1)

    def test_batch_array(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        g = GraphBuilder().add_edges(edges).build()
        assert g.num_edges == 3

    def test_batch_iterable(self):
        g = GraphBuilder().add_edges((u, u + 1) for u in range(5)).build()
        assert g.num_vertices == 6

    def test_chaining(self):
        g = GraphBuilder().add_edge(0, 1).add_edge(1, 0).build()
        assert g.num_edges == 2

    def test_empty_batch_is_noop(self):
        builder = GraphBuilder()
        builder.add_edges([])
        assert builder.num_pending_edges == 0

    def test_pending_count(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1), (0, 1)])
        assert builder.num_pending_edges == 2

    def test_rejects_negative_ids(self):
        with pytest.raises(GraphError, match="non-negative"):
            GraphBuilder().add_edges([(-1, 0)])

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphError, match=r"\(k, 2\)"):
            GraphBuilder().add_edges(np.array([[0, 1, 2]]))

    def test_rejects_vertex_above_fixed_n(self):
        builder = GraphBuilder(num_vertices=2)
        builder.add_edge(0, 5)
        with pytest.raises(GraphError, match="num_vertices"):
            builder.build()

    def test_rejects_negative_num_vertices(self):
        with pytest.raises(GraphError, match="non-negative"):
            GraphBuilder(num_vertices=-1)


class TestDedupAndOrder:
    def test_duplicates_removed(self):
        g = from_edges([(0, 1), (0, 1), (0, 1), (1, 0)])
        assert g.num_edges == 2

    def test_successors_sorted(self):
        g = from_edges([(0, 3), (0, 1), (0, 2), (1, 0), (2, 0), (3, 0)])
        assert list(g.successors(0)) == [1, 2, 3]

    def test_order_of_insertion_irrelevant(self):
        a = from_edges([(0, 1), (1, 2), (2, 0)])
        b = from_edges([(2, 0), (0, 1), (1, 2)])
        assert a == b


class TestDanglingRepair:
    def test_self_loop_repair(self):
        g = from_edges([(0, 1)], repair_dangling="self-loop")
        assert g.has_edge(1, 1)
        assert g.dangling_vertices().size == 0

    def test_self_loop_only_on_dangling(self):
        g = from_edges([(0, 1), (1, 0)], repair_dangling="self-loop")
        assert not g.has_edge(0, 0)
        assert not g.has_edge(1, 1)

    def test_none_keeps_dangling(self):
        g = from_edges([(0, 1)], repair_dangling="none")
        assert list(g.dangling_vertices()) == [1]

    def test_drop_removes_dangling(self):
        # 2 is dangling; dropping it leaves 0 <-> 1.
        g = from_edges([(0, 1), (1, 0), (0, 2)], repair_dangling="drop")
        assert g.num_vertices == 2
        assert g.num_edges == 2

    def test_drop_cascades(self):
        # Dropping 3 makes 2 dangling, which makes 1 dangling.
        g = from_edges(
            [(0, 1), (1, 2), (2, 3), (1, 0)], repair_dangling="drop"
        )
        assert g.num_vertices == 2
        assert sorted(g.edges()) == [(0, 1), (1, 0)]

    def test_drop_entire_graph(self):
        g = from_edges([(0, 1), (1, 2)], repair_dangling="drop")
        assert g.num_vertices == 0

    def test_unknown_repair_rejected(self):
        with pytest.raises(GraphError, match="repair_dangling"):
            GraphBuilder(repair_dangling="magic")

    def test_fixed_n_adds_isolated_with_self_loops(self):
        g = from_edges([(0, 1)], num_vertices=5, repair_dangling="self-loop")
        assert g.num_vertices == 5
        for v in range(1, 5):
            assert g.has_edge(v, v)


class TestEmpty:
    def test_build_empty(self):
        g = GraphBuilder().build()
        assert g.num_vertices == 0

    def test_build_fixed_n_no_edges(self):
        g = GraphBuilder(num_vertices=3, repair_dangling="self-loop").build()
        assert g.num_vertices == 3
        assert g.num_edges == 3  # three self loops
