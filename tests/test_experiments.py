"""Unit tests for workloads, harness, sweeps and reporting."""

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentHarness,
    format_rows,
    format_table,
    format_value,
    livejournal_workload,
    pareto_front,
    sweep_frogwild,
    twitter_workload,
)


@pytest.fixture(scope="module")
def tiny_workload():
    return twitter_workload(n=1200, default_frogs=1500, default_machines=4)


@pytest.fixture(scope="module")
def harness(tiny_workload):
    return ExperimentHarness(tiny_workload, seed=0)


class TestWorkloads:
    def test_twitter_defaults(self):
        w = twitter_workload(n=800)
        assert w.name == "twitter"
        assert w.graph.num_vertices == 800
        assert w.default_iterations == 4

    def test_graph_cached_per_size(self):
        a = twitter_workload(n=900)
        b = twitter_workload(n=900)
        assert a.graph is b.graph

    def test_truth_lazy_and_cached(self, tiny_workload):
        truth = tiny_workload.truth
        assert truth.sum() == pytest.approx(1.0)
        assert tiny_workload.truth is truth

    def test_frogs_scaled(self):
        w = livejournal_workload(n=500, default_frogs=1000)
        assert w.frogs_scaled(800_000) == 1000
        assert w.frogs_scaled(400_000) == 500
        assert w.frogs_scaled(1_400_000) == 1750


class TestHarness:
    def test_partition_cached_per_size(self, harness):
        a = harness.partition_for(4)
        b = harness.partition_for(4)
        assert a is b
        c = harness.partition_for(2)
        assert c is not a

    def test_frogwild_row(self, harness):
        row = harness.run_frogwild(ks=(10, 50))
        assert row.workload == "twitter"
        assert row.algorithm.startswith("FrogWild")
        assert set(row.mass_captured) == {10, 50}
        assert 0.0 <= row.mass_captured[10] <= 1.0
        assert row.network_bytes > 0
        assert row.params["num_frogs"] == 1500

    def test_frogwild_overrides(self, harness):
        row = harness.run_frogwild(ps=0.3, iterations=2, num_frogs=500)
        assert row.params["ps"] == 0.3
        assert row.supersteps == 2
        assert row.params["num_frogs"] == 500

    def test_graphlab_rows(self, harness):
        exact = harness.run_graphlab(tolerance=1e-6)
        one = harness.run_graphlab(iterations=1)
        assert exact.algorithm == "GraphLab PR exact"
        assert one.algorithm == "GraphLab PR 1 iters"
        assert exact.supersteps > one.supersteps
        assert exact.network_bytes > one.network_bytes

    def test_sparsified_row(self, harness):
        row = harness.run_sparsified(0.5)
        assert "q=0.5" in row.algorithm
        assert row.params["q"] == 0.5

    def test_sparsified_validates_q(self, harness):
        with pytest.raises(ExperimentError):
            harness.run_sparsified(0.0)

    def test_row_as_dict(self, harness):
        row = harness.run_frogwild(ks=(10,))
        d = row.as_dict()
        assert d["workload"] == "twitter"
        assert "mass@10" in d
        assert d["machines"] == 4

    def test_same_partition_for_all_algorithms(self, harness):
        """Both algorithms must see identical ingress (fair comparison)."""
        row_a = harness.run_frogwild()
        row_b = harness.run_frogwild()
        assert row_a.network_bytes == row_b.network_bytes


class TestSweep:
    def test_grid_cartesian(self, harness):
        rows = sweep_frogwild(
            harness, ps=[1.0, 0.5], iterations=[2, 3], ks=(10,)
        )
        assert len(rows) == 4
        combos = {(r.params["ps"], r.params["iterations"]) for r in rows}
        assert combos == {(1.0, 2), (1.0, 3), (0.5, 2), (0.5, 3)}

    def test_rejects_unknown_parameter(self, harness):
        with pytest.raises(ExperimentError, match="sweep"):
            sweep_frogwild(harness, bogus=[1, 2])

    def test_pareto_front(self, harness):
        rows = sweep_frogwild(harness, ps=[1.0, 0.1], ks=(100,))
        front = pareto_front(rows, k=100)
        assert 1 <= len(front) <= len(rows)
        # Front is sorted by cost and strictly improving in accuracy.
        costs = [r.total_time_s for r in front]
        assert costs == sorted(costs)

    def test_pareto_requires_metric(self, harness):
        rows = sweep_frogwild(harness, ps=[1.0], ks=(10,))
        with pytest.raises(ExperimentError, match="mass@100"):
            pareto_front(rows, k=100)


class TestReporting:
    def test_format_value(self):
        assert format_value(3) == "3"
        assert format_value(2_500_000) == "2.500e+06"
        assert format_value(0.25) == "0.2500"
        assert format_value(1e-9) == "1.000e-09"
        assert format_value(0) == "0"
        assert format_value("x") == "x"
        assert format_value(123.456) == "123.5"

    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = format_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([])

    def test_format_rows_accepts_experiment_rows(self, harness):
        row = harness.run_frogwild(ks=(10,))
        text = format_rows([row])
        assert "FrogWild" in text

    def test_format_table_union_columns(self):
        rows = [{"a": 1}, {"b": 2}]
        text = format_table(rows)
        assert "a" in text and "b" in text
