"""Integration tests: every paper figure reproduces with the right shape.

These run the real figure functions on miniature workloads so the full
suite stays fast; the benchmarks run them at the calibrated scale.
"""

import pytest

from repro.experiments import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    livejournal_workload,
    twitter_workload,
)


@pytest.fixture(scope="module")
def tw():
    return twitter_workload(n=1500, default_frogs=2000, default_machines=4)


@pytest.fixture(scope="module")
def lj():
    return livejournal_workload(n=1200, default_frogs=2000, default_machines=4)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self, tw):
        return figure1(
            tw, machine_counts=(2, 4), ps_values=(1.0, 0.1), seed=0
        )

    def test_row_grid(self, result):
        # Per machine count: exact + 2 fixed GL + 2 FrogWild.
        assert len(result.rows) == 2 * 5

    def test_frogwild_less_network_than_exact(self, result):
        for machines in (2, 4):
            rows = [r for r in result.rows if r.num_machines == machines]
            exact = next(r for r in rows if r.algorithm == "GraphLab PR exact")
            for fw in (r for r in rows if r.algorithm.startswith("FrogWild")):
                assert fw.network_bytes < exact.network_bytes

    def test_frogwild_faster_total_than_exact(self, result):
        rows = [r for r in result.rows if r.num_machines == 4]
        exact = next(r for r in rows if r.algorithm == "GraphLab PR exact")
        for fw in (r for r in rows if r.algorithm.startswith("FrogWild")):
            assert fw.total_time_s < exact.total_time_s

    def test_lower_ps_less_network(self, result):
        rows = [r for r in result.rows if r.num_machines == 4]
        full = next(r for r in rows if r.algorithm == "FrogWild ps=1")
        tenth = next(r for r in rows if r.algorithm == "FrogWild ps=0.1")
        assert tenth.network_bytes < full.network_bytes

    def test_to_text_renders(self, result):
        text = result.to_text()
        assert "Figure 1" in text
        assert "GraphLab PR exact" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self, tw):
        return figure2(
            tw, ks=(10, 30), ps_values=(1.0, 0.4), num_machines=4, seed=0
        )

    def test_all_ks_reported(self, result):
        for row in result.rows:
            assert set(row.mass_captured) == {10, 30}
            assert set(row.exact_identification) == {10, 30}

    def test_accuracy_in_range(self, result):
        for row in result.rows:
            for value in row.mass_captured.values():
                assert 0.0 <= value <= 1.0

    def test_frogwild_full_sync_competitive(self, result):
        """FrogWild ps=1 should at least approach GL PR 1 iter."""
        gl1 = next(
            r for r in result.rows if r.algorithm == "GraphLab PR 1 iters"
        )
        fw = next(r for r in result.rows if r.algorithm == "FrogWild ps=1")
        assert fw.mass_captured[30] > gl1.mass_captured[30] - 0.1


class TestFigure3And4:
    @pytest.fixture(scope="class")
    def result(self, tw):
        return figure3(
            tw,
            num_machines=4,
            iteration_values=(3, 4),
            ps_values=(1.0, 0.1),
            k=30,
            seed=0,
        )

    def test_grid_size(self, result):
        # exact + GL{1,2} + 2 iters x 2 ps.
        assert len(result.rows) == 3 + 4

    def test_exact_is_most_accurate_and_slowest(self, result):
        exact = next(r for r in result.rows if "exact" in r.algorithm)
        assert exact.mass_captured[30] == pytest.approx(1.0, abs=1e-9)
        assert exact.total_time_s == max(r.total_time_s for r in result.rows)

    def test_figure4_reuses_series(self, tw):
        fig4 = figure4(tw, num_machines=4, seed=0)
        assert fig4.figure_id == "4"
        assert "network_bytes" in fig4.notes
        assert len(fig4.rows) > 0


class TestFigure5:
    @pytest.fixture(scope="class")
    def result(self, tw):
        return figure5(
            tw,
            num_machines=4,
            keep_probabilities=(0.5, 1.0),
            ps_values=(0.5, 1.0),
            k=30,
            seed=0,
        )

    def test_both_families_present(self, result):
        sparse = result.series("Sparsified")
        frog = result.series("FrogWild")
        assert len(sparse) == 2
        assert len(frog) == 2

    def test_frogwild_faster_at_comparable_accuracy(self, result):
        """The paper's claim: FrogWild beats sparsified PR on time."""
        best_frog = max(result.series("FrogWild"),
                        key=lambda r: r.mass_captured[30])
        for row in result.series("Sparsified"):
            assert best_frog.total_time_s < row.total_time_s * 1.5


class TestFigure6:
    @pytest.fixture(scope="class")
    def result(self, lj):
        return figure6(
            lj,
            paper_frog_counts=(400_000, 800_000),
            iteration_values=(2, 4),
            ps_values=(1.0,),
            k=30,
            seed=0,
        )

    def test_contains_baselines_and_sweeps(self, result):
        names = [r.algorithm for r in result.rows]
        assert "GraphLab PR exact" in names
        frog_rows = result.series("FrogWild")
        assert len(frog_rows) == 2 + 2  # frog sweep + iteration sweep

    def test_more_frogs_more_network(self, result):
        frogs = [
            r
            for r in result.series("FrogWild")
            if r.params["iterations"] == 4
        ]
        by_frogs = sorted(frogs, key=lambda r: r.params["num_frogs"])
        assert by_frogs[0].network_bytes < by_frogs[-1].network_bytes


class TestFigure7:
    def test_runs_on_livejournal(self, lj):
        result = figure7(
            lj,
            num_machines=4,
            iteration_values=(4,),
            ps_values=(1.0,),
            k=30,
            seed=0,
        )
        assert result.figure_id == "7"
        assert any("FrogWild" in r.algorithm for r in result.rows)


class TestFigure8:
    @pytest.fixture(scope="class")
    def result(self, lj):
        return figure8(
            lj, paper_frog_counts=(400_000, 800_000, 1_400_000), seed=0
        )

    def test_network_monotone_in_frogs(self, result):
        ordered = sorted(result.rows, key=lambda r: r.params["num_frogs"])
        nbytes = [r.network_bytes for r in ordered]
        assert nbytes == sorted(nbytes)

    def test_roughly_linear(self, result):
        ordered = sorted(result.rows, key=lambda r: r.params["num_frogs"])
        ratio_frogs = (
            ordered[-1].params["num_frogs"] / ordered[0].params["num_frogs"]
        )
        ratio_bytes = ordered[-1].network_bytes / ordered[0].network_bytes
        # Linear within a factor-2 band (combining reduces large counts).
        assert ratio_bytes > ratio_frogs / 2.5
        assert ratio_bytes < ratio_frogs * 2.5
