"""Unit tests for Machine, MachineGroup and NetworkFabric."""

import numpy as np
import pytest

from repro.cluster import (
    Machine,
    MachineGroup,
    MessageSizeModel,
    NetworkFabric,
)


class TestMachine:
    def test_charge_accumulates(self):
        m = Machine(0)
        m.charge(10)
        m.charge(5, phase="scatter")
        assert m.cpu_ops == 15
        assert m.ops_by_phase["compute"] == 10
        assert m.ops_by_phase["scatter"] == 5

    def test_charge_rejects_negative(self):
        with pytest.raises(ValueError):
            Machine(0).charge(-1)

    def test_reset(self):
        m = Machine(0)
        m.charge(10)
        m.reset()
        assert m.cpu_ops == 0
        assert not m.ops_by_phase


class TestMachineGroup:
    def test_len_and_indexing(self):
        group = MachineGroup(4)
        assert len(group) == 4
        assert group[2].machine_id == 2

    def test_totals(self):
        group = MachineGroup(3)
        group[0].charge(5)
        group[2].charge(11)
        assert group.total_cpu_ops() == 16
        assert group.max_cpu_ops() == 11

    def test_reset(self):
        group = MachineGroup(2)
        group[0].charge(1)
        group.reset()
        assert group.total_cpu_ops() == 0

    def test_rejects_empty_cluster(self):
        with pytest.raises(ValueError):
            MachineGroup(0)


class TestMessageSizeModel:
    def test_record_bytes(self):
        model = MessageSizeModel(
            vertex_id_bytes=8, payload_bytes=8, record_overhead_bytes=4
        )
        assert model.record_bytes() == 20

    def test_batch_includes_header(self):
        model = MessageSizeModel(message_header_bytes=32)
        assert model.batch_bytes(3) == 32 + 3 * model.record_bytes()

    def test_empty_batch_free(self):
        assert MessageSizeModel().batch_bytes(0) == 0


class TestNetworkFabric:
    def test_remote_send_counted(self):
        fabric = NetworkFabric(3)
        nbytes = fabric.send(0, 1, 5, kind="sync")
        assert nbytes == fabric.size_model.batch_bytes(5)
        assert fabric.total_bytes() == nbytes
        assert fabric.bytes_between(0, 1) == nbytes

    def test_local_send_free(self):
        fabric = NetworkFabric(3)
        assert fabric.send(1, 1, 100, kind="sync") == 0
        assert fabric.total_bytes() == 0

    def test_empty_send_free(self):
        fabric = NetworkFabric(3)
        assert fabric.send(0, 1, 0, kind="sync") == 0

    def test_kind_breakdown(self):
        fabric = NetworkFabric(2)
        fabric.send(0, 1, 1, kind="sync")
        fabric.send(0, 1, 2, kind="scatter")
        fabric.send(1, 0, 3, kind="sync")
        snap = fabric.snapshot()
        assert snap.messages_by_kind == {"sync": 2, "scatter": 1}
        assert snap.bytes_for("sync") == (
            fabric.size_model.batch_bytes(1) + fabric.size_model.batch_bytes(3)
        )
        assert snap.total_messages == 3

    def test_per_machine_totals(self):
        fabric = NetworkFabric(3)
        fabric.send(0, 1, 1, kind="x")
        fabric.send(0, 2, 1, kind="x")
        fabric.send(2, 0, 1, kind="x")
        one = fabric.size_model.batch_bytes(1)
        assert list(fabric.bytes_sent_per_machine()) == [2 * one, 0, one]
        assert list(fabric.bytes_received_per_machine()) == [one, one, one]

    def test_step_traffic_and_barrier_reset(self):
        fabric = NetworkFabric(2)
        fabric.send(0, 1, 4, kind="x")
        sent, received = fabric.step_traffic()
        assert sent[0] > 0 and received[1] > 0
        fabric.end_superstep()
        sent, received = fabric.step_traffic()
        assert sent.sum() == 0 and received.sum() == 0
        # Cumulative totals survive the barrier.
        assert fabric.total_bytes() > 0

    def test_broadcast(self):
        fabric = NetworkFabric(4)
        total = fabric.broadcast(0, np.array([1, 2, 3]), 2, kind="sync")
        assert total == 3 * fabric.size_model.batch_bytes(2)

    def test_reset(self):
        fabric = NetworkFabric(2)
        fabric.send(0, 1, 1, kind="x")
        fabric.reset()
        assert fabric.total_bytes() == 0
        assert fabric.snapshot().total_messages == 0

    def test_rejects_bad_machine(self):
        fabric = NetworkFabric(2)
        with pytest.raises(ValueError):
            fabric.send(0, 5, 1, kind="x")

    def test_rejects_negative_records(self):
        fabric = NetworkFabric(2)
        with pytest.raises(ValueError):
            fabric.send(0, 1, -1, kind="x")


class TestLocalTrafficCounters:
    """Regression: src == dst sends must be tallied, just off the wire.

    ``send`` used to early-return before touching any counter, silently
    contradicting its docstring; ``send_matrix`` likewise zeroed the
    diagonal without recording it.  Local deliveries stay zero-byte and
    excluded from the per-kind wire tallies, but they are now visible
    via ``local_messages``/``local_records`` in both paths.
    """

    def test_local_send_tracked_off_wire(self):
        fabric = NetworkFabric(3)
        assert fabric.send(1, 1, 100, kind="sync") == 0
        assert fabric.send(2, 2, 7, kind="gather") == 0
        # Wire tallies untouched...
        assert fabric.total_bytes() == 0
        snap = fabric.snapshot()
        assert snap.total_messages == 0
        assert snap.messages_by_kind == {}
        # ...but local counters record both deliveries.
        assert fabric.local_messages == 2
        assert fabric.local_records == 107
        assert snap.local_messages == 2
        assert snap.local_records == 107

    def test_empty_local_send_not_counted(self):
        fabric = NetworkFabric(2)
        assert fabric.send(0, 0, 0, kind="sync") == 0
        assert fabric.local_messages == 0
        assert fabric.local_records == 0

    def test_send_matrix_diagonal_matches_send(self):
        """Vectorized and scalar paths agree on every counter."""
        records = np.array([[5, 2, 0], [0, 3, 4], [1, 0, 6]])
        matrix_fabric = NetworkFabric(3)
        total, messages = matrix_fabric.send_matrix(records, kind="sync")
        loop_fabric = NetworkFabric(3)
        loop_total = sum(
            loop_fabric.send(s, d, int(records[s, d]), kind="sync")
            for s in range(3)
            for d in range(3)
        )
        assert total == loop_total
        assert matrix_fabric.local_messages == loop_fabric.local_messages == 3
        assert matrix_fabric.local_records == loop_fabric.local_records == 14
        assert matrix_fabric.total_bytes() == loop_fabric.total_bytes()
        assert messages == 3

    def test_reset_clears_local_counters(self):
        fabric = NetworkFabric(2)
        fabric.send(0, 0, 5, kind="sync")
        fabric.reset()
        assert fabric.local_messages == 0
        assert fabric.local_records == 0
