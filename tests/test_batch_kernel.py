"""Lane-major fused batch kernel: equivalence, shared sync, wire dedupe.

Four families of guarantees pin the fused kernel down:

* **kernel equivalence** — the fused lane-major kernel is bit-identical
  (estimates, per-lane attributed reports, physical report) to the
  ``"lane-loop"`` reference implementation for every supported
  configuration, and a B=1 fused batch stays bit-identical to the
  single-query :class:`~repro.core.FrogWildRunner` (the existing
  regression tests in ``tests/test_batched_frogwild.py`` run on the
  fused default and pin that second leg);
* **shared sync** (``sync_mode="shared"``) — one physical sync record
  per (vertex, mirror) per barrier *independent of B* (exact, proved on
  identical-frontier batches), per-lane attribution sums exactly to the
  physical count, and the bought correlation is quantified: cross-lane
  estimator correlation rises well above per-lane mode but stays far
  from 1 (the walks themselves must never be shared — cf. Lemma 18's
  pairwise-correlation argument, which the per-query variance story
  relies on);
* **wire dedupe** (``wire_dedupe=True``) — accounting-only: estimates
  are bit-identical with the flag on or off, physical frog records
  shrink to the cross-lane union, and largest-remainder attribution
  sums exactly to the physical count;
* **per-ingress caching** — kernel tables and the mirror bitmap build
  once per ingress, and fault injection (``disable_machine``) can never
  corrupt the shared cache.
"""

import numpy as np
import pytest

from repro.core import (
    BatchQuery,
    FrogWildConfig,
    run_frogwild_batch,
)
from repro.engine import MirrorSynchronizer, apportion_records, build_cluster
from repro.errors import ConfigError, EngineError
from repro.graph import twitter_like

GRAPH = twitter_like(n=600, seed=13)


def _run(queries, kernel="fused", machines=4, **config_kwargs):
    defaults = dict(num_frogs=1500, iterations=4, seed=7)
    defaults.update(config_kwargs)
    config = FrogWildConfig(**defaults)
    return run_frogwild_batch(
        GRAPH,
        queries,
        config,
        state=build_cluster(GRAPH, machines, seed=config.seed),
        kernel=kernel,
    )


class TestKernelEquivalence:
    """Fused output is pinned bit-for-bit to the lane-loop reference."""

    CONFIGS = [
        dict(),
        dict(ps=0.6),
        dict(ps=0.0),
        dict(ps=0.3, erasure_model="independent"),
        dict(ps=0.8, scatter_mode="binomial"),
        dict(ps=0.4, scatter_mode="binomial", erasure_model="independent"),
    ]

    @pytest.mark.parametrize("config_kwargs", CONFIGS)
    def test_fused_matches_lane_loop_golden(self, config_kwargs):
        queries = [
            BatchQuery(seed=4),
            BatchQuery(seed=5, num_frogs=700),
            BatchQuery(seed=6, num_frogs=2200),
        ]
        fused = _run(queries, kernel="fused", **config_kwargs)
        golden = _run(queries, kernel="lane-loop", **config_kwargs)
        for lane_fused, lane_golden in zip(fused.results, golden.results):
            np.testing.assert_array_equal(
                lane_fused.estimate.counts, lane_golden.estimate.counts
            )
            assert (
                lane_fused.report.network_bytes
                == lane_golden.report.network_bytes
            )
            assert (
                lane_fused.report.cpu_seconds == lane_golden.report.cpu_seconds
            )
            assert (
                lane_fused.report.supersteps == lane_golden.report.supersteps
            )
        assert fused.report.network_bytes == golden.report.network_bytes
        assert fused.report.cpu_seconds == golden.report.cpu_seconds
        assert fused.report.total_time_s == golden.report.total_time_s

    def test_mixed_per_lane_ps_matches_lane_loop(self):
        queries = [BatchQuery(seed=s, ps=0.2 + 0.2 * s) for s in range(4)]
        fused = _run(queries, kernel="fused", ps=0.5)
        golden = _run(queries, kernel="lane-loop", ps=0.5)
        for lane_fused, lane_golden in zip(fused.results, golden.results):
            np.testing.assert_array_equal(
                lane_fused.estimate.counts, lane_golden.estimate.counts
            )
            assert (
                lane_fused.report.network_bytes
                == lane_golden.report.network_bytes
            )

    def test_early_lane_death_matches_lane_loop(self):
        queries = [BatchQuery(num_frogs=2, seed=s) for s in range(3)] + [
            BatchQuery(num_frogs=3000, seed=9)
        ]
        fused = _run(queries, kernel="fused", iterations=40)
        golden = _run(queries, kernel="lane-loop", iterations=40)
        for lane_fused, lane_golden in zip(fused.results, golden.results):
            np.testing.assert_array_equal(
                lane_fused.estimate.counts, lane_golden.estimate.counts
            )
            assert (
                lane_fused.report.supersteps == lane_golden.report.supersteps
            )
            assert (
                lane_fused.report.total_time_s
                == lane_golden.report.total_time_s
            )

    @pytest.mark.parametrize("kernel", ["fused", "lane-loop"])
    def test_dangling_vertices_idle_instead_of_crashing(self, kernel):
        """A frog stranded on a dangling vertex (no out-groups) has
        nothing the at-least-one repair can enable: it must idle in
        place (conserving the population) instead of mis-indexing into
        a neighboring row's group block — in every kernel, matching
        the single-query runner."""
        from repro.core import run_frogwild
        from repro.graph import from_edges

        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3), (4, 0),
             (0, 4), (4, 3)],
            repair_dangling="none",
        )
        config = FrogWildConfig(
            num_frogs=300, iterations=6, ps=0.2, seed=5
        )
        result = run_frogwild_batch(
            graph,
            [BatchQuery(seed=5 + s) for s in range(3)],
            config,
            state=build_cluster(graph, 3, seed=5),
            kernel=kernel,
        )
        for lane in result.results:
            assert lane.estimate.total_stopped == 300
        single = run_frogwild(
            graph, config, state=build_cluster(graph, 3, seed=5)
        )
        assert single.estimate.total_stopped == 300
        np.testing.assert_array_equal(
            single.estimate.counts, result.results[0].estimate.counts
        )

    def test_dangling_vertices_idle_in_shared_sync_mode(self):
        from repro.graph import from_edges

        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (0, 3), (1, 3), (2, 3), (4, 0),
             (0, 4), (4, 3)],
            repair_dangling="none",
        )
        result = run_frogwild_batch(
            graph,
            [BatchQuery(seed=s) for s in range(3)],
            FrogWildConfig(
                num_frogs=300, iterations=6, ps=0.2, seed=5,
                sync_mode="shared", wire_dedupe=True,
            ),
            state=build_cluster(graph, 3, seed=5),
        )
        for lane in result.results:
            assert lane.estimate.total_stopped == 300

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigError):
            _run([BatchQuery()], kernel="simd")

    def test_lane_loop_rejects_fused_only_modes(self):
        with pytest.raises(ConfigError):
            _run([BatchQuery()], kernel="lane-loop", sync_mode="shared")
        with pytest.raises(ConfigError):
            _run([BatchQuery()], kernel="lane-loop", wire_dedupe=True)


class TestSharedSync:
    def test_one_record_per_vertex_mirror_independent_of_batch_size(self):
        """Identical-seed lanes walk identical frontiers, so the union
        frontier — and with it the physical sync and repair traffic —
        is *exactly* the B=1 frontier: shared mode must bill the same
        record totals at any batch size."""
        totals = {}
        for batch_size in (1, 4, 8):
            result = _run(
                [BatchQuery(seed=3) for _ in range(batch_size)],
                ps=0.7,
                sync_mode="shared",
            )
            extra = result.report.extra
            totals[batch_size] = (
                extra["sync_records"], extra["repair_records"]
            )
        assert totals[1] == totals[4] == totals[8]
        assert totals[1][0] > 0

    def test_shared_sync_cuts_physical_records_for_real_batches(self):
        queries = [BatchQuery(seed=s) for s in range(8)]
        per_lane = _run(queries, ps=0.7, sync_mode="per-lane")
        shared = _run(queries, ps=0.7, sync_mode="shared")
        assert (
            shared.report.extra["sync_records"]
            < per_lane.report.extra["sync_records"] / 2
        )
        # Frog traffic is untouched by the sync mode's record sharing
        # (walk randomness stays per-lane), so wire savings are sync-side.
        assert shared.report.network_bytes < per_lane.report.network_bytes

    def test_attribution_sums_to_physical_records(self):
        result = _run(
            [BatchQuery(seed=s) for s in range(5)],
            ps=0.6,
            sync_mode="shared",
        )
        attributed = sum(
            lane.ledger.network_records for lane in result.results
        )
        physical = sum(result.report.extra[key] for key in (
            "sync_records", "repair_records", "frog_records"
        ))
        assert attributed == physical
        # CPU attribution partitions the shared execution exactly too.
        total_cpu = sum(lane.report.cpu_seconds for lane in result.results)
        assert total_cpu == pytest.approx(
            result.report.cpu_seconds, abs=1e-12
        )

    def test_conservation_and_validity(self):
        result = _run(
            [BatchQuery(seed=s) for s in range(4)],
            ps=0.4,
            sync_mode="shared",
        )
        for lane in result.results:
            assert lane.estimate.total_stopped == 1500
            vector = lane.estimate.vector()
            assert vector.min() >= 0.0
            assert vector.sum() <= 1.0 + 1e-12

    def test_per_query_ps_override_rejected(self):
        with pytest.raises(ConfigError):
            _run(
                [BatchQuery(seed=1), BatchQuery(seed=2, ps=0.3)],
                ps=0.7,
                sync_mode="shared",
            )

    def test_correlation_bound(self):
        """Quantify the correlation shared sync buys (cf. Lemma 18).

        Sharing the sync coins correlates the populations' *erasure*
        processes, so their estimator errors co-fluctuate: cross-lane
        error correlation must rise clearly above per-lane mode.  It
        must also stay far from 1 — the hop randomness is still
        per-lane, and a kernel bug that shared it would push the
        correlation toward identity.  Marginals stay untouched: the
        per-mode mean estimates agree closely.
        """
        graph = twitter_like(n=400, seed=3)
        reps = 20

        def estimates(mode):
            rows = []
            for rep in range(reps):
                config = FrogWildConfig(
                    num_frogs=1200,
                    iterations=3,
                    ps=0.25,
                    seed=3000 + rep,
                    sync_mode=mode,
                )
                result = run_frogwild_batch(
                    graph,
                    [BatchQuery(seed=1000 + rep), BatchQuery(seed=2000 + rep)],
                    config,
                    state=build_cluster(graph, 4, seed=0),
                )
                rows.append(
                    [lane.estimate.vector() for lane in result.results]
                )
            return np.array(rows)

        def mean_cross_lane_correlation(stack):
            errors = stack - stack.mean(axis=0, keepdims=True)
            correlations = []
            for rep in range(reps):
                left, right = errors[rep, 0], errors[rep, 1]
                denom = np.linalg.norm(left) * np.linalg.norm(right)
                correlations.append(
                    float(left @ right / denom) if denom else 0.0
                )
            return float(np.mean(correlations))

        per_lane = estimates("per-lane")
        shared = estimates("shared")
        corr_per_lane = mean_cross_lane_correlation(per_lane)
        corr_shared = mean_cross_lane_correlation(shared)
        assert corr_shared > corr_per_lane + 0.15
        assert corr_shared < 0.8
        assert abs(corr_per_lane) < 0.2
        mean_gap = np.abs(
            per_lane.mean(axis=(0, 1)) - shared.mean(axis=(0, 1))
        ).sum()
        assert mean_gap < 0.2


class TestWireDedupe:
    def test_accounting_only_estimates_bit_identical(self):
        queries = [BatchQuery(seed=s) for s in range(6)]
        plain = _run(queries, ps=0.8)
        deduped = _run(queries, ps=0.8, wire_dedupe=True)
        for lane_plain, lane_deduped in zip(plain.results, deduped.results):
            np.testing.assert_array_equal(
                lane_plain.estimate.counts, lane_deduped.estimate.counts
            )
        assert (
            deduped.report.extra["frog_records"]
            < plain.report.extra["frog_records"]
        )
        assert deduped.report.network_bytes < plain.report.network_bytes

    def test_identical_lanes_collapse_to_single_lane_records(self):
        single = _run([BatchQuery(seed=3)], ps=0.9, wire_dedupe=True)
        batch = _run(
            [BatchQuery(seed=3) for _ in range(8)], ps=0.9, wire_dedupe=True
        )
        assert (
            batch.report.extra["frog_records"]
            == single.report.extra["frog_records"]
        )

    @pytest.mark.parametrize("seed", [0, 11, 23])
    @pytest.mark.parametrize("scatter_mode", ["multinomial", "binomial"])
    def test_attribution_sums_to_physical(self, seed, scatter_mode):
        result = _run(
            [BatchQuery(seed=seed + lane) for lane in range(5)],
            seed=seed,
            ps=0.8,
            scatter_mode=scatter_mode,
            wire_dedupe=True,
        )
        attributed = sum(
            lane.ledger.network_records for lane in result.results
        )
        physical = sum(result.report.extra[key] for key in (
            "sync_records", "repair_records", "frog_records"
        ))
        assert attributed == physical
        assert result.report.network_bytes <= (
            result.attributed_network_bytes()
        )

    def test_combines_with_shared_sync(self):
        result = _run(
            [BatchQuery(seed=s) for s in range(4)],
            ps=0.7,
            sync_mode="shared",
            wire_dedupe=True,
        )
        attributed = sum(
            lane.ledger.network_records for lane in result.results
        )
        physical = sum(result.report.extra[key] for key in (
            "sync_records", "repair_records", "frog_records"
        ))
        assert attributed == physical
        for lane in result.results:
            assert lane.estimate.total_stopped == 1500


class TestIngressCaching:
    def test_kernel_tables_built_once_per_ingress(self):
        state = build_cluster(GRAPH, 4, seed=0)
        builds = []
        first = state.ingress_cache("probe", lambda: builds.append(1) or "x")
        second = state.ingress_cache("probe", lambda: builds.append(1) or "y")
        assert first == second == "x"
        assert builds == [1]
        # A fresh accounting state over the same ingress shares the memo.
        sibling = build_cluster(
            GRAPH, 4, seed=0, replication=state.replication
        )
        assert sibling.ingress_cache("probe", lambda: "z") == "x"

    def test_batched_runs_share_kernel_tables(self):
        from repro.core.batched import BatchedFrogWildRunner

        state = build_cluster(GRAPH, 4, seed=0)
        config = FrogWildConfig(num_frogs=200, iterations=2, seed=1)
        runner_a = BatchedFrogWildRunner(state, config, [BatchQuery()])
        sibling = build_cluster(
            GRAPH, 4, seed=0, replication=state.replication
        )
        runner_b = BatchedFrogWildRunner(sibling, config, [BatchQuery()])
        assert runner_a.tables is runner_b.tables

    def test_disable_machine_never_corrupts_shared_mirror_cache(self):
        state = build_cluster(GRAPH, 4, seed=0)
        shared = MirrorSynchronizer.shared_mirror_matrix(state)
        baseline = shared.copy()
        sync = MirrorSynchronizer(
            state,
            1.0,
            np.random.default_rng(0),
            mirror_matrix=shared,
            copy_on_disable=True,
        )
        sync.disable_machine(2)
        np.testing.assert_array_equal(
            MirrorSynchronizer.shared_mirror_matrix(state), baseline
        )
        # The disabling synchronizer itself sees the crash.
        vertices = np.arange(10)
        fresh, _ = sync.draw_fresh(vertices)
        assert not fresh[:, 2][
            state.replication.masters[vertices] != 2
        ].any()


class TestApportionRecords:
    def test_exact_sum_and_proportionality(self):
        physical = np.array([[0, 10], [3, 0]])
        demand = np.array(
            [
                [[0, 6], [1, 0]],
                [[0, 3], [1, 0]],
                [[0, 3], [1, 0]],
            ]
        )
        shares = apportion_records(physical, demand)
        np.testing.assert_array_equal(shares.sum(axis=0), physical)
        assert (shares <= demand).all()
        assert shares[0, 0, 1] == 5  # 10 * 6/12

    def test_deterministic_tie_break_prefers_lower_lane(self):
        physical = np.array([1])
        demand = np.array([[1], [1]])
        shares = apportion_records(physical, demand)
        np.testing.assert_array_equal(shares, [[1], [0]])

    def test_rejects_unbacked_physical_records(self):
        with pytest.raises(EngineError):
            apportion_records(np.array([2]), np.array([[0], [0]]))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(EngineError):
            apportion_records(np.array([1, 2]), np.array([[1], [1]]))
