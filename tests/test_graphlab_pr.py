"""Unit tests for the GraphLab PageRank baseline program."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import cycle_graph
from repro.pagerank import GraphLabPageRank, exact_pagerank, graphlab_pagerank


class TestFixedIterations:
    def test_superstep_count(self, small_twitter):
        result = graphlab_pagerank(small_twitter, num_machines=4, iterations=3)
        assert result.report.supersteps == 3

    def test_one_iteration_closed_form(self, small_twitter):
        """After one synchronous iteration from uniform:
        rank = pT/n + (1-pT) * sum_in 1/(n * d_out)."""
        n = small_twitter.num_vertices
        result = graphlab_pagerank(small_twitter, num_machines=4, iterations=1)
        out_deg = np.asarray(small_twitter.out_degree(), dtype=np.float64)
        expected = np.full(n, 0.15 / n)
        contrib = 1.0 / (n * out_deg)
        for u, v in small_twitter.edges():
            expected[v] += 0.85 * contrib[u]
        np.testing.assert_allclose(result.ranks, expected, rtol=1e-10)

    def test_two_iterations_better_than_one(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        one = graphlab_pagerank(small_twitter, num_machines=4, iterations=1)
        two = graphlab_pagerank(small_twitter, num_machines=4, iterations=2)
        err1 = np.abs(one.distribution() - truth).sum()
        err2 = np.abs(two.distribution() - truth).sum()
        assert err2 < err1


class TestDynamicConvergence:
    def test_converges_to_truth(self, small_twitter):
        truth = exact_pagerank(small_twitter)
        result = graphlab_pagerank(
            small_twitter, num_machines=4, tolerance=1e-9
        )
        np.testing.assert_allclose(result.ranks, truth, atol=1e-6)

    def test_tighter_tolerance_more_supersteps(self, small_twitter):
        loose = graphlab_pagerank(small_twitter, num_machines=4, tolerance=1e-2)
        tight = graphlab_pagerank(small_twitter, num_machines=4, tolerance=1e-8)
        assert tight.report.supersteps > loose.report.supersteps

    def test_uniform_graph_converges_immediately(self):
        # On a cycle the uniform start is the fixed point.
        result = graphlab_pagerank(cycle_graph(12), num_machines=2)
        assert result.report.supersteps <= 2
        np.testing.assert_allclose(result.ranks, 1 / 12, atol=1e-9)


class TestResultApi:
    def test_distribution_normalized(self, small_twitter):
        result = graphlab_pagerank(small_twitter, num_machines=4, iterations=2)
        assert result.distribution().sum() == pytest.approx(1.0)

    def test_top_k(self, small_twitter):
        result = graphlab_pagerank(small_twitter, num_machines=4, iterations=2)
        top = result.top_k(5)
        assert top.size == 5
        ranks = result.ranks[top]
        assert np.all(np.diff(ranks) <= 0)

    def test_algorithm_label(self, small_twitter):
        fixed = graphlab_pagerank(small_twitter, num_machines=2, iterations=2)
        assert "2 iters" in fixed.report.algorithm
        dynamic = graphlab_pagerank(small_twitter, num_machines=2)
        assert "tol" in dynamic.report.algorithm


class TestTraffic:
    def test_exact_far_more_traffic_than_one_iter(self, small_twitter):
        one = graphlab_pagerank(small_twitter, num_machines=4, iterations=1)
        exact = graphlab_pagerank(
            small_twitter, num_machines=4, tolerance=1e-9
        )
        assert exact.report.network_bytes > 5 * one.report.network_bytes

    def test_traffic_scales_with_iterations(self, small_twitter):
        one = graphlab_pagerank(small_twitter, num_machines=4, iterations=1)
        three = graphlab_pagerank(small_twitter, num_machines=4, iterations=3)
        ratio = three.report.network_bytes / one.report.network_bytes
        assert 2.0 < ratio < 4.0


class TestResiduals:
    def test_residuals_decrease_geometrically(self, small_twitter):
        result = graphlab_pagerank(
            small_twitter, num_machines=4, tolerance=1e-8
        )
        # Recover the program's residual trail via the report extra and
        # a fresh run with the program object.
        assert result.report.extra["final_residual"] < 1e-6

    def test_residual_trail_monotone(self, small_twitter):
        from repro.engine import BSPEngine, build_cluster

        program = GraphLabPageRank(tolerance=1e-8)
        state = build_cluster(small_twitter, 4, seed=0)
        BSPEngine(state, program).run(max_supersteps=50)
        residuals = program.residuals
        assert len(residuals) >= 5
        # After the first couple of steps the contraction factor is
        # bounded by (1 - p_T) = 0.85.
        for before, after in zip(residuals[2:], residuals[3:]):
            assert after <= before * 0.9 + 1e-15


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ConfigError):
            GraphLabPageRank(p_teleport=0.0)
        with pytest.raises(ConfigError):
            GraphLabPageRank(tolerance=0.0)
        with pytest.raises(ConfigError):
            GraphLabPageRank(iterations=0)
