"""Tests for the gossip demonstration of the ps patch's generality."""

import pytest

from repro.core.gossip import run_gossip
from repro.errors import ConfigError
from repro.graph import complete_graph, cycle_graph, twitter_like


class TestSpreading:
    def test_rumor_covers_connected_graph(self):
        from repro.graph import largest_scc

        graph = largest_scc(twitter_like(n=800, seed=1))
        result = run_gossip(
            graph, source=0, target_fraction=0.9, num_machines=4, seed=0
        )
        assert result.informed_fraction >= 0.9
        assert result.informed[0]

    def test_logarithmic_ish_rounds_on_complete_graph(self):
        graph = complete_graph(128)
        result = run_gossip(graph, source=0, num_machines=4, seed=0)
        # Push gossip informs ~everyone in O(log n) rounds.
        assert result.rounds < 30

    def test_cycle_spreads_linearly(self):
        graph = cycle_graph(50)
        result = run_gossip(
            graph, source=0, num_machines=2, max_rounds=60, seed=0
        )
        # One new vertex per round on a directed cycle.
        assert result.rounds >= 49

    def test_max_rounds_caps(self):
        graph = cycle_graph(100)
        result = run_gossip(graph, source=0, max_rounds=10, num_machines=2)
        assert result.rounds == 10
        assert result.informed_fraction < 0.5


class TestPsTradeoff:
    @pytest.fixture(scope="class")
    def graph(self):
        from repro.graph import largest_scc

        return largest_scc(twitter_like(n=1000, seed=2))

    def test_lower_ps_less_sync_traffic_per_round(self, graph):
        full = run_gossip(
            graph, ps=1.0, target_fraction=0.9, num_machines=4, seed=0
        )
        partial = run_gossip(
            graph, ps=0.2, target_fraction=0.9, num_machines=4, seed=0
        )
        per_round_full = full.report.network_bytes / full.rounds
        per_round_partial = partial.report.network_bytes / partial.rounds
        assert per_round_partial < per_round_full

    def test_rumor_still_spreads_at_low_ps(self, graph):
        result = run_gossip(
            graph,
            ps=0.1,
            target_fraction=0.9,
            max_rounds=400,
            num_machines=4,
            seed=0,
        )
        assert result.informed_fraction >= 0.9

    def test_report_fields(self, graph):
        result = run_gossip(graph, ps=0.5, num_machines=4, seed=0)
        assert result.report.algorithm == "gossip(ps=0.5)"
        assert result.report.extra["informed_fraction"] == (
            result.informed_fraction
        )
        assert result.report.supersteps == result.rounds


class TestValidation:
    def test_bad_source(self):
        with pytest.raises(ConfigError):
            run_gossip(cycle_graph(5), source=99)

    def test_bad_target_fraction(self):
        with pytest.raises(ConfigError):
            run_gossip(cycle_graph(5), target_fraction=0.0)

    def test_bad_max_rounds(self):
        with pytest.raises(ConfigError):
            run_gossip(cycle_graph(5), max_rounds=0)
