"""Unit tests for the traffic subsystem's building blocks.

Arrival processes (determinism, thinning correctness), the double-Zipf
workload, the admission controller and its degradation ladder, the
streaming reservoir and the query tracer.  End-to-end overload behavior
against a real service lives in ``test_traffic_service.py``.
"""

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.errors import ConfigError
from repro.theory.bounds import (
    intersection_probability_bound,
    theorem1_epsilon,
)
from repro.traffic import (
    AdmissionController,
    BurstArrivals,
    DegradationLadder,
    DegradeRung,
    DiurnalArrivals,
    PoissonArrivals,
    QueryTrace,
    QueryTracer,
    StreamingReservoir,
    TrafficReport,
    TrafficWorkload,
    UserPopulation,
)


class TestArrivals:
    def test_poisson_is_deterministic_and_sorted(self):
        a = PoissonArrivals(rate_qps=50.0, seed=4)
        b = PoissonArrivals(rate_qps=50.0, seed=4)
        ta, tb = a.times(10.0), b.times(10.0)
        assert np.array_equal(ta, tb)
        assert np.all(np.diff(ta) > 0)
        assert ta.min() >= 0.0 and ta.max() < 10.0

    def test_poisson_count_matches_rate(self):
        arrivals = PoissonArrivals(rate_qps=100.0, seed=0)
        count = len(arrivals.times(20.0))
        # 2000 expected, sd ~45; 5 sigma keeps this deterministic-safe.
        assert abs(count - 2000) < 225
        assert arrivals.expected_count(20.0) == pytest.approx(2000.0)

    def test_different_seeds_differ(self):
        a = PoissonArrivals(rate_qps=50.0, seed=1).times(5.0)
        b = PoissonArrivals(rate_qps=50.0, seed=2).times(5.0)
        assert not np.array_equal(a, b)

    def test_burst_concentrates_arrivals_in_window(self):
        arrivals = BurstArrivals(
            base_qps=2.0, burst_qps=200.0, burst_start_s=4.0,
            burst_duration_s=2.0, seed=3,
        )
        times = arrivals.times(10.0)
        inside = np.sum((times >= 4.0) & (times < 6.0))
        outside = len(times) - inside
        # ~400 inside vs ~16 outside.
        assert inside > 10 * outside
        assert arrivals.in_burst(5.0) and not arrivals.in_burst(7.0)
        assert arrivals.rate(5.0) == 200.0 and arrivals.rate(1.0) == 2.0

    def test_diurnal_rate_envelope(self):
        arrivals = DiurnalArrivals(
            trough_qps=10.0, peak_qps=90.0, period_s=60.0, seed=0
        )
        rates = [arrivals.rate(t) for t in np.linspace(0, 60, 241)]
        assert min(rates) >= 10.0 - 1e-9
        assert max(rates) <= 90.0 + 1e-9
        assert arrivals.peak_rate == 90.0
        # Thinning never exceeds the announced peak: all kept points
        # fall in the window and the realized count tracks the mean.
        times = arrivals.times(60.0)
        expected = arrivals.expected_count(60.0)
        assert abs(len(times) - expected) < 5 * np.sqrt(expected)

    def test_validation(self):
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_qps=0.0)
        with pytest.raises(ConfigError):
            DiurnalArrivals(trough_qps=5.0, peak_qps=4.0, period_s=10.0)
        with pytest.raises(ConfigError):
            BurstArrivals(
                base_qps=1.0, burst_qps=0.5,
                burst_start_s=0.0, burst_duration_s=1.0,
            )
        with pytest.raises(ConfigError):
            PoissonArrivals(rate_qps=1.0).times(0.0)


class TestWorkload:
    def test_users_issue_persistent_queries(self):
        pop = UserPopulation(
            num_users=50, num_vertices=200, seeds_per_user=3, seed=5
        )
        q1, q2 = pop.query_for(7), pop.query_for(7)
        assert q1 == q2
        assert len(q1.seeds) == 3
        assert all(0 <= s < 200 for s in q1.seeds)
        assert pop.distinct_queries() <= 50

    def test_events_are_deterministic_and_ordered(self):
        pop = UserPopulation(num_users=30, num_vertices=100, seed=1)
        arrivals = PoissonArrivals(rate_qps=40.0, seed=2)
        workload = TrafficWorkload(pop, arrivals, seed=3)
        e1 = workload.events(5.0)
        e2 = workload.events(5.0)
        assert [(e.time_s, e.user_id) for e in e1] == [
            (e.time_s, e.user_id) for e in e2
        ]
        times = [e.time_s for e in e1]
        assert times == sorted(times)
        for event in e1:
            assert event.query == pop.query_for(event.user_id)

    def test_zipf_user_law_is_head_heavy(self):
        pop = UserPopulation(num_users=100, num_vertices=100, seed=0)
        workload = TrafficWorkload(
            pop, PoissonArrivals(rate_qps=200.0, seed=0),
            user_exponent=1.2, seed=0,
        )
        users = [e.user_id for e in workload.events(10.0)]
        head = sum(1 for u in users if u < 10)
        # Zipf(1.2) over 100 users puts well over a third of the
        # traffic on the top decile; uniform would give ~10%.
        assert head / len(users) > 0.3

    def test_validation(self):
        with pytest.raises(ConfigError):
            UserPopulation(num_users=0, num_vertices=10)
        with pytest.raises(ConfigError):
            UserPopulation(num_users=5, num_vertices=10, seeds_per_user=11)
        pop = UserPopulation(num_users=5, num_vertices=10)
        with pytest.raises(ConfigError):
            pop.query_for(5)
        with pytest.raises(ConfigError):
            TrafficWorkload(
                pop, PoissonArrivals(rate_qps=1.0), user_exponent=0.0
            )


class TestDegradationLadder:
    def test_levels_engage_at_trigger_fractions(self):
        ladder = DegradationLadder()
        assert ladder.level_for(0, 16) == 0
        assert ladder.level_for(7, 16) == 0
        assert ladder.level_for(8, 16) == 1
        assert ladder.level_for(11, 16) == 1
        assert ladder.level_for(12, 16) == 2
        assert ladder.level_for(15, 16) == 2

    def test_validation(self):
        with pytest.raises(ConfigError):
            DegradeRung(frog_fraction=0.0)
        with pytest.raises(ConfigError):
            DegradationLadder(
                rungs=(DegradeRung(0.5),), trigger_fractions=(0.5, 0.7)
            )
        with pytest.raises(ConfigError):
            DegradationLadder(
                rungs=(DegradeRung(0.5), DegradeRung(0.25)),
                trigger_fractions=(0.7, 0.5),
            )
        with pytest.raises(ConfigError):
            # Rungs must get cheaper down the ladder.
            DegradationLadder(
                rungs=(DegradeRung(0.25), DegradeRung(0.5)),
                trigger_fractions=(0.5, 0.75),
            )


class TestAdmissionController:
    def test_decide_admits_degrades_sheds(self):
        ctl = AdmissionController(max_pending=16)
        assert ctl.decide(0).action == "admit"
        degrade = ctl.decide(8)
        assert degrade.action == "degrade" and degrade.level == 1
        assert ctl.decide(12).level == 2
        shed = ctl.decide(16)
        assert shed.action == "shed"
        assert shed.depth == 16 and shed.limit == 16
        stats = ctl.stats.as_dict()
        assert stats["offered"] == 4
        assert stats["admitted"] == 1
        assert stats["degraded"] == 2
        assert stats["shed"] == 1
        assert stats["shed_rate"] == pytest.approx(0.25)
        assert stats["degraded_level1"] == 1
        assert stats["degraded_level2"] == 1

    def test_degraded_config_shrinks_monotonically(self):
        ctl = AdmissionController(max_pending=16)
        config = FrogWildConfig(num_frogs=2000, iterations=5, seed=0)
        level1 = ctl.degraded_config(config, 1)
        level2 = ctl.degraded_config(config, 2)
        assert level1.num_frogs == 1000 and level1.iterations == 3
        assert level2.num_frogs == 500 and level2.iterations == 2
        # Everything else is preserved — config purity for batching.
        assert level1.ps == config.ps and level1.seed == config.seed
        with pytest.raises(ConfigError):
            ctl.degraded_config(config, 3)

    def test_degraded_config_is_identity_when_nothing_changes(self):
        ctl = AdmissionController(
            max_pending=8,
            ladder=DegradationLadder(
                rungs=(DegradeRung(frog_fraction=1.0),),
                trigger_fractions=(0.5,),
            ),
        )
        config = FrogWildConfig(num_frogs=100, iterations=2, seed=0)
        assert ctl.degraded_config(config, 1) is config

    def test_error_bound_matches_theorem1(self):
        ctl = AdmissionController(max_pending=16, delta=0.1, pi_max=0.01)
        config = FrogWildConfig(num_frogs=500, iterations=2, seed=0)
        expected = theorem1_epsilon(
            k=10,
            delta=0.1,
            num_frogs=500,
            ps=config.ps,
            t=2,
            p_intersect=intersection_probability_bound(
                1000, 2, 0.01, config.p_teleport
            ),
            p_teleport=config.p_teleport,
        )
        assert ctl.error_bound(config, 10, 1000) == pytest.approx(expected)
        # Fewer frogs -> weaker promise: the bound must grow.
        cheaper = config.with_updates(num_frogs=125)
        assert ctl.error_bound(cheaper, 10, 1000) > expected


class TestStreamingReservoir:
    def test_exact_until_capacity(self):
        res = StreamingReservoir(capacity=100, seed=0)
        values = np.arange(50, dtype=float)
        for v in values:
            res.add(v)
        assert res.count == 50
        assert res.mean() == pytest.approx(values.mean())
        assert res.quantile(0.5) == pytest.approx(np.quantile(values, 0.5))
        assert res.min == 0.0 and res.max == 49.0

    def test_bounded_memory_with_exact_moments(self):
        res = StreamingReservoir(capacity=64, seed=0)
        for v in range(10_000):
            res.add(float(v))
        assert len(res._sample) == 64
        assert res.count == 10_000
        assert res.mean() == pytest.approx(4999.5)
        assert res.max == 9999.0
        # The sampled median of 0..9999 lands near the true median.
        assert abs(res.quantile(0.5) - 4999.5) < 2000

    def test_as_dict_keys(self):
        res = StreamingReservoir(seed=0)
        res.add(1.0)
        row = res.as_dict("latency_")
        assert set(row) == {
            "latency_count", "latency_mean", "latency_p50",
            "latency_p95", "latency_p99", "latency_max",
        }


class TestQueryTracer:
    def test_lifecycle_routes_by_status(self):
        tracer = QueryTracer()
        served = tracer.begin((1, 2), 10, now=0.0)
        served.status = "served"
        served.dispatch_s = 0.5
        served.resolve_s = 1.0
        served.batch_size = 4
        tracer.complete(served)
        shed = tracer.begin((3,), 10, now=0.2)
        shed.status = "shed"
        shed.shed_depth = 16
        tracer.complete(shed)
        summary = tracer.summary()
        assert summary["offered"] == 2
        assert summary["served"] == 1
        assert summary["shed"] == 1
        assert summary["shed_rate"] == pytest.approx(0.5)
        assert summary["latency_max"] == pytest.approx(1.0)
        assert summary["queue_delay_max"] == pytest.approx(0.5)
        assert summary["batch_occupancy_mean"] == pytest.approx(4.0)
        assert [t.status for t in tracer.recent()] == ["served", "shed"]

    def test_degraded_answers_feed_max_error_bound(self):
        tracer = QueryTracer()
        trace = tracer.begin((1,), 10, now=0.0)
        trace.status = "served"
        trace.degrade_level = 2
        trace.error_bound = 0.42
        tracer.complete(trace)
        summary = tracer.summary()
        assert summary["degraded"] == 1
        assert summary["degraded_with_bound"] == 1
        assert summary["max_error_bound"] == pytest.approx(0.42)

    def test_pending_trace_cannot_complete(self):
        tracer = QueryTracer()
        trace = tracer.begin((1,), 10, now=0.0)
        with pytest.raises(ConfigError):
            tracer.complete(trace)

    def test_recent_ring_is_bounded(self):
        tracer = QueryTracer(recent_capacity=8)
        for i in range(20):
            trace = tracer.begin((i + 1,), 10, now=float(i))
            trace.status = "shed"
            tracer.complete(trace)
        assert len(tracer.recent()) == 8
        assert tracer.recent(3)[-1].seeds == (20,)


class TestTrafficReport:
    def test_as_dict_flattens_with_prefixes(self):
        report = TrafficReport(
            duration_s=10.0,
            arrivals=100,
            queue_depth_max=7,
            queue_depth_mean=2.5,
            utilization=0.6,
            busy_s=6.0,
            traffic={"shed_rate": 0.1},
            admission={"shed": 10.0},
            service={"batches_run": 20.0},
            scheduler={"fill_dispatches": 5.0},
            cache={"hits": 30.0},
        )
        row = report.as_dict()
        assert row["offered_rate_qps"] == pytest.approx(10.0)
        assert row["shed_rate"] == 0.1
        assert row["admission_shed"] == 10.0
        assert row["service_batches_run"] == 20.0
        assert row["scheduler_fill_dispatches"] == 5.0
        assert row["cache_hits"] == 30.0


def test_trace_dataclass_round_trip():
    trace = QueryTrace(
        query_id=1, seeds=(4, 5), k=10, enqueue_s=1.0,
        status="served", dispatch_s=2.0, resolve_s=3.5,
    )
    assert trace.queue_delay_s == pytest.approx(1.0)
    assert trace.latency_s == pytest.approx(2.5)
    assert not trace.degraded
    row = trace.as_dict()
    assert row["latency_s"] == pytest.approx(2.5)
    assert row["seeds"] == [4, 5]
