"""Coverage for BulkVertexProgram defaults and ApplyResult semantics."""

import numpy as np
import pytest

from repro.engine import ApplyResult, BSPEngine, BulkVertexProgram, build_cluster
from repro.graph import from_edges


class MinimalProgram(BulkVertexProgram):
    """Implements only the abstract hooks; inherits every default."""

    name = "minimal"

    def initial_data(self, state):
        return np.ones(state.num_vertices)

    def apply_bulk(self, active, gather_sums, data, state, step):
        return ApplyResult(new_values=gather_sums, done=True)


@pytest.fixture
def tiny_state():
    graph = from_edges([(0, 1), (1, 2), (2, 0), (0, 2)])
    return build_cluster(graph, num_machines=2, seed=0)


class TestDefaults:
    def test_default_initial_active_is_everything(self, tiny_state):
        program = MinimalProgram()
        active = program.initial_active(tiny_state)
        assert active.all()
        assert active.size == tiny_state.num_vertices

    def test_default_gather_is_random_surfer_share(self, tiny_state):
        program = MinimalProgram()
        data = np.array([3.0, 4.0, 5.0])
        sources = np.array([0, 1, 2])
        contributions = program.gather_contribution(
            sources, data, tiny_state
        )
        out_deg = np.asarray(tiny_state.graph.out_degree(), dtype=float)
        np.testing.assert_allclose(contributions, data / out_deg)

    def test_default_apply_ops(self):
        assert MinimalProgram().apply_ops_per_vertex() == 1

    def test_runs_one_superstep_when_done(self, tiny_state):
        engine = BSPEngine(tiny_state, MinimalProgram())
        report = engine.run(max_supersteps=50)
        assert report.supersteps == 1
        assert report.algorithm == "minimal"


class TestApplyResultSemantics:
    def test_changed_mask_limits_sync(self, tiny_state):
        class PartialChange(MinimalProgram):
            def apply_bulk(self, active, gather_sums, data, state, step):
                changed = np.zeros(active.size, dtype=bool)
                return ApplyResult(
                    new_values=data[active],
                    changed_mask=changed,
                    done=True,
                )

        engine = BSPEngine(tiny_state, PartialChange())
        engine.run()
        # Nothing changed: no sync traffic at all.
        assert tiny_state.fabric.snapshot().bytes_for("sync") == 0

    def test_no_signal_ends_run(self, tiny_state):
        class NoSignal(MinimalProgram):
            def apply_bulk(self, active, gather_sums, data, state, step):
                return ApplyResult(new_values=data[active])

        engine = BSPEngine(tiny_state, NoSignal())
        report = engine.run(max_supersteps=10)
        assert report.supersteps == 1
