"""Unit tests for edge-list and NPZ graph I/O."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    load_npz,
    read_edge_list,
    save_npz,
    write_edge_list,
)


@pytest.fixture
def ring(tmp_path):
    return from_edges([(0, 1), (1, 2), (2, 0)])


class TestEdgeList:
    def test_round_trip(self, ring, tmp_path):
        path = tmp_path / "ring.txt"
        write_edge_list(ring, path)
        loaded = read_edge_list(path)
        assert loaded == ring

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# a comment\n0 1\n# another\n1 0\n")
        g = read_edge_list(path)
        assert g.num_edges == 2

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n\n1 0\n")
        assert read_edge_list(path).num_edges == 2

    def test_tabs_and_spaces(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0\t1\n1  0\n")
        assert read_edge_list(path).num_edges == 2

    def test_noncontiguous_ids_compacted(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("100 205\n205 100\n")
        g, mapping = read_edge_list(path, return_mapping=True)
        assert g.num_vertices == 2
        assert list(mapping) == [100, 205]
        assert g.has_edge(0, 1)

    def test_repair_forwarded(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, repair_dangling="none")
        assert g.dangling_vertices().size == 1

    def test_header_written(self, ring, tmp_path):
        path = tmp_path / "ring.txt"
        write_edge_list(ring, path, header="test graph")
        text = path.read_text()
        assert text.startswith("# test graph")
        assert "# Nodes: 3 Edges: 3" in text

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError, match="expected"):
            read_edge_list(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError, match="non-integer"):
            read_edge_list(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError, match="no edges"):
            read_edge_list(path)


class TestNpz:
    def test_round_trip(self, ring, tmp_path):
        path = tmp_path / "ring.npz"
        save_npz(ring, path)
        assert load_npz(path) == ring

    def test_round_trip_larger(self, small_twitter, tmp_path):
        path = tmp_path / "tw.npz"
        save_npz(small_twitter, path)
        assert load_npz(path) == small_twitter

    def test_bad_snapshot_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, wrong=np.arange(3))
        with pytest.raises(GraphFormatError, match="snapshot"):
            load_npz(path)
