"""The shared service flags: one spelling across every bench command.

``add_service_args`` installs ``--machines`` / ``--kernel`` /
``--backend`` / ``--store`` / ``--store-dir`` identically on
serve-bench, live-bench, traffic-bench and chaos-bench, and
``service_from_args`` / ``store_from_args`` resolve them identically.
The golden ``--help`` snapshots under ``tests/data/`` pin the exact
flag surface (rendered at COLUMNS=80) so a drive-by flag edit on one
command can't silently fork the CLI contract.

Regenerate after an intentional change with::

    for c in serve-bench live-bench traffic-bench chaos-bench; do
      COLUMNS=80 python -m repro $c --help > tests/data/help_$c.txt
    done
"""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import build_parser, store_from_args
from repro.graph import twitter_like

BENCHES = ["serve-bench", "live-bench", "traffic-bench", "chaos-bench"]
DATA = Path(__file__).parent / "data"
SHARED_FLAGS = ("--machines", "--kernel", "--backend", "--store",
                "--store-dir")


class TestGoldenHelp:
    @pytest.mark.parametrize("command", BENCHES)
    def test_help_matches_snapshot(self, command):
        result = subprocess.run(
            [sys.executable, "-m", "repro", command, "--help"],
            capture_output=True,
            text=True,
            env={"COLUMNS": "80", "PYTHONPATH": "src",
                 "PATH": "/usr/bin:/bin"},
            cwd=Path(__file__).parent.parent,
        )
        assert result.returncode == 0, result.stderr
        golden = (DATA / f"help_{command}.txt").read_text()
        assert result.stdout == golden

    @pytest.mark.parametrize("command", BENCHES)
    def test_shared_flags_present_everywhere(self, command):
        golden = (DATA / f"help_{command}.txt").read_text()
        for flag in SHARED_FLAGS:
            assert flag in golden, (command, flag)

    def test_shared_flag_help_is_identical_across_commands(self):
        parser = build_parser()
        subparsers = next(
            a for a in parser._actions
            if isinstance(a, type(parser._subparsers._group_actions[0]))
        )
        texts = {}
        for command in BENCHES:
            sub = subparsers.choices[command]
            for action in sub._actions:
                for flag in SHARED_FLAGS:
                    if flag in action.option_strings:
                        texts.setdefault(flag, set()).add(
                            (action.help, tuple(action.choices or ()))
                        )
        for flag, variants in texts.items():
            assert len(variants) == 1, (flag, variants)


class TestStoreFromArgs:
    def test_ram_default_resolves_to_none(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.store == "ram"
        assert store_from_args(args, None) is None

    def test_segment_store_created_then_reopened(self, tmp_path):
        graph = twitter_like(n=120, seed=2)
        directory = tmp_path / "cli-seg"
        args = build_parser().parse_args([
            "serve-bench", "--store", "segment",
            "--store-dir", str(directory), "--machines", "4",
        ])
        created = store_from_args(args, graph)
        assert created.num_edges == graph.num_edges
        reopened = store_from_args(args, graph)
        assert reopened.directory == created.directory
        assert reopened.version == created.version

    def test_defaults_differ_only_where_documented(self):
        parser = build_parser()
        serve = parser.parse_args(["serve-bench"])
        live = parser.parse_args(["live-bench"])
        chaos = parser.parse_args(["chaos-bench"])
        # Fleet sizes are per-command; tier/selection defaults are not.
        assert serve.machines == 16 and live.machines == 8
        for args in (serve, live, chaos):
            assert args.kernel == "fused"
            assert args.store == "ram"
        assert serve.backend == "auto"
        assert chaos.backend == "process"
