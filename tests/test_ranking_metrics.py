"""Tests for NDCG and rank-biased overlap."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.metrics import ndcg_at_k, rank_biased_overlap


def _scores(n, seed=0):
    rng = np.random.default_rng(seed)
    values = rng.pareto(2.2, size=n) + 1e-9
    return values / values.sum()


class TestNdcg:
    def test_perfect_estimate(self):
        truth = _scores(50)
        assert ndcg_at_k(truth, truth, 10) == pytest.approx(1.0)

    def test_scaled_estimate_is_perfect(self):
        truth = _scores(50)
        assert ndcg_at_k(truth * 3.0, truth, 10) == pytest.approx(1.0)

    def test_reversed_estimate_is_poor(self):
        truth = np.sort(_scores(100))[::-1].copy()  # truth rank = index
        reverse = truth[::-1].copy()
        assert ndcg_at_k(reverse, truth, 10) < 0.2

    def test_bounded_by_one(self):
        truth = _scores(80, seed=1)
        estimate = _scores(80, seed=2)
        value = ndcg_at_k(estimate, truth, 20)
        assert 0.0 <= value <= 1.0

    def test_near_miss_better_than_far_miss(self):
        """Swapping ranks 1 and 2 hurts less than swapping 1 and 50."""
        truth = np.sort(_scores(50))[::-1].copy()
        near = truth.copy()
        near[[0, 1]] = near[[1, 0]]
        far = truth.copy()
        far[[0, 49]] = far[[49, 0]]
        assert ndcg_at_k(near, truth, 10) > ndcg_at_k(far, truth, 10)

    def test_k_larger_than_n_clamped(self):
        truth = _scores(5)
        assert ndcg_at_k(truth, truth, 100) == pytest.approx(1.0)

    def test_zero_truth_returns_one(self):
        zero = np.zeros(5)
        assert ndcg_at_k(np.arange(5.0), zero, 3) == 1.0

    def test_validation(self):
        truth = _scores(10)
        with pytest.raises(ConfigError):
            ndcg_at_k(truth, truth, 0)
        with pytest.raises(ConfigError):
            ndcg_at_k(truth[:5], truth, 3)
        with pytest.raises(ConfigError):
            ndcg_at_k(truth, -truth, 3)


class TestRbo:
    def test_identical_rankings(self):
        truth = _scores(40)
        assert rank_biased_overlap(truth, truth) == pytest.approx(1.0)

    def test_disjoint_prefixes_score_low(self):
        # Estimate ranks exactly backwards on distinct values.
        truth = np.arange(1.0, 41.0)
        estimate = truth[::-1].copy()
        assert rank_biased_overlap(estimate, truth, p=0.5) < 0.3

    def test_bounded(self):
        a, b = _scores(60, 1), _scores(60, 2)
        assert 0.0 <= rank_biased_overlap(a, b) <= 1.0

    def test_small_p_focuses_on_head(self):
        """With agreement only at the head, small p scores higher."""
        truth = np.sort(_scores(60))[::-1].copy()
        estimate = truth.copy()
        estimate[10:] = estimate[10:][::-1]  # scramble everything below 10
        head_focused = rank_biased_overlap(estimate, truth, p=0.5)
        deep = rank_biased_overlap(estimate, truth, p=0.99)
        assert head_focused > deep

    def test_depth_truncation(self):
        truth = _scores(100, 3)
        estimate = _scores(100, 4)
        full = rank_biased_overlap(estimate, truth)
        shallow = rank_biased_overlap(estimate, truth, depth=10)
        assert 0.0 <= shallow <= 1.0
        assert 0.0 <= full <= 1.0

    def test_validation(self):
        truth = _scores(10)
        with pytest.raises(ConfigError):
            rank_biased_overlap(truth, truth, p=1.0)
        with pytest.raises(ConfigError):
            rank_biased_overlap(truth[:4], truth)
        with pytest.raises(ConfigError):
            rank_biased_overlap(truth, truth, depth=0)
        with pytest.raises(ConfigError):
            rank_biased_overlap(np.array([]), np.array([]))

    def test_estimator_quality_monotone_in_frogs(self, small_twitter):
        """More frogs -> higher RBO against exact PageRank."""
        from repro.core import FrogWildConfig, run_frogwild
        from repro.pagerank import exact_pagerank

        truth = exact_pagerank(small_twitter)
        values = {}
        for frogs in (500, 16_000):
            result = run_frogwild(
                small_twitter,
                FrogWildConfig(num_frogs=frogs, iterations=4, seed=0),
                num_machines=4,
            )
            values[frogs] = rank_biased_overlap(
                result.estimate.vector(), truth, p=0.9, depth=50
            )
        assert values[16_000] > values[500]
