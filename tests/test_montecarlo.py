"""Unit tests for the Monte-Carlo PageRank baseline and walk simulator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import cycle_graph, star_graph
from repro.pagerank import (
    exact_pagerank,
    monte_carlo_pagerank,
    simulate_walkers,
)


class TestSimulateWalkers:
    def test_geometric_death_positions(self, small_twitter, rng):
        start = rng.integers(0, small_twitter.num_vertices, size=500)
        finals = simulate_walkers(small_twitter, start, rng=rng)
        assert finals.shape == start.shape
        assert finals.min() >= 0
        assert finals.max() < small_twitter.num_vertices

    def test_max_steps_zero_keeps_start(self, small_twitter, rng):
        start = np.arange(10, dtype=np.int64)
        finals = simulate_walkers(small_twitter, start, max_steps=0, rng=rng)
        np.testing.assert_array_equal(finals, start)

    def test_teleport_restarts_need_max_steps(self, small_twitter, rng):
        with pytest.raises(ConfigError, match="max_steps"):
            simulate_walkers(
                small_twitter, np.array([0]), teleport_restarts=True, rng=rng
            )

    def test_teleport_restart_chain_matches_pi(self, rng):
        """Walking Q for many steps samples from pi (Definition 1)."""
        graph = star_graph(10)
        pi = exact_pagerank(graph)
        start = rng.integers(0, 10, size=20_000)
        finals = simulate_walkers(
            graph, start, max_steps=30, rng=rng, teleport_restarts=True
        )
        freq = np.bincount(finals, minlength=10) / finals.size
        np.testing.assert_allclose(freq, pi, atol=0.02)

    def test_bad_teleport_probability(self, small_twitter):
        with pytest.raises(ConfigError):
            simulate_walkers(small_twitter, np.array([0]), p_teleport=0.0)


class TestMonteCarloPageRank:
    def test_close_to_exact_on_star(self):
        graph = star_graph(12)
        pi = exact_pagerank(graph)
        estimate = monte_carlo_pagerank(graph, walkers_per_vertex=50, seed=0)
        np.testing.assert_allclose(estimate, pi, atol=0.02)

    def test_close_to_exact_on_cycle(self):
        graph = cycle_graph(20)
        estimate = monte_carlo_pagerank(graph, walkers_per_vertex=50, seed=0)
        np.testing.assert_allclose(estimate, 1 / 20, atol=0.02)

    def test_normalized(self, small_twitter):
        estimate = monte_carlo_pagerank(small_twitter, seed=0)
        assert estimate.sum() == pytest.approx(1.0)

    def test_more_walkers_lower_error(self, small_twitter):
        pi = exact_pagerank(small_twitter)
        rough = monte_carlo_pagerank(small_twitter, walkers_per_vertex=1, seed=0)
        fine = monte_carlo_pagerank(small_twitter, walkers_per_vertex=20, seed=0)
        assert np.abs(fine - pi).sum() < np.abs(rough - pi).sum()

    def test_rejects_bad_walker_count(self, small_twitter):
        with pytest.raises(ConfigError):
            monte_carlo_pagerank(small_twitter, walkers_per_vertex=0)
