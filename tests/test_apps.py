"""Unit tests for the application scenarios (paper Section 1)."""

import numpy as np
import pytest

from repro.apps import (
    build_cooccurrence_graph,
    campaign_reach,
    extract_keywords,
    find_influencers,
    generate_call_graph,
    generate_social_network,
    mixture_graph,
    prediction_precision,
    rank_key_users,
    tokenize,
)
from repro.errors import ConfigError

SAMPLE_TEXT = """
Graph engines process massive graphs. A graph engine partitions the
graph across machines, and the engine synchronizes vertex replicas.
PageRank ranks vertices of the graph; approximate PageRank finds the
heavy vertices quickly. Random walks approximate PageRank well when
walks mix quickly. FrogWild runs random walks on graph engines with
partial synchronization, saving network traffic while ranking the
graph vertices accurately.
"""


class TestTokenize:
    def test_lowercases_and_filters(self):
        words = tokenize("The Quick Brown fox (and) a dog!")
        assert words == ["quick", "brown", "fox", "dog"]

    def test_min_length(self):
        assert tokenize("ab abc abcd", min_length=4) == ["abcd"]

    def test_stopwords_removed(self):
        assert "the" not in tokenize("the cat and the hat")

    def test_bad_min_length(self):
        with pytest.raises(ConfigError):
            tokenize("text", min_length=0)


class TestCooccurrenceGraph:
    def test_window_pairs(self):
        graph, vocab = build_cooccurrence_graph(
            ["alpha", "beta", "gamma"], window=1
        )
        assert vocab == ["alpha", "beta", "gamma"]
        a, b, g = 0, 1, 2
        assert graph.has_edge(a, b) and graph.has_edge(b, a)
        assert graph.has_edge(b, g) and graph.has_edge(g, b)
        assert not graph.has_edge(a, g)

    def test_wider_window(self):
        graph, _ = build_cooccurrence_graph(
            ["alpha", "beta", "gamma"], window=2
        )
        assert graph.has_edge(0, 2)

    def test_min_count_filters(self):
        words = ["rare"] + ["common"] * 5 + ["frequent"] * 5
        graph, vocab = build_cooccurrence_graph(words, min_count=2)
        assert "rare" not in vocab

    def test_needs_two_words(self):
        with pytest.raises(ConfigError):
            build_cooccurrence_graph(["solo", "solo"])

    def test_bad_window(self):
        with pytest.raises(ConfigError):
            build_cooccurrence_graph(["a1", "b2"], window=0)


class TestKeywordExtraction:
    def test_finds_central_words(self):
        keywords = extract_keywords(SAMPLE_TEXT, k=5, method="exact")
        words = [kw.word for kw in keywords]
        assert "graph" in words
        assert "pagerank" in words

    def test_frogwild_agrees_with_exact(self):
        exact = {kw.word for kw in extract_keywords(SAMPLE_TEXT, k=5, method="exact")}
        approx = {
            kw.word for kw in extract_keywords(SAMPLE_TEXT, k=5, method="frogwild")
        }
        assert len(exact & approx) >= 3

    def test_scores_descending(self):
        keywords = extract_keywords(SAMPLE_TEXT, k=6, method="frogwild")
        scores = [kw.score for kw in keywords]
        assert scores == sorted(scores, reverse=True)

    def test_unknown_method(self):
        with pytest.raises(ConfigError):
            extract_keywords(SAMPLE_TEXT, method="magic")


class TestTelecom:
    @pytest.fixture(scope="class")
    def call_graph(self):
        return generate_call_graph(num_customers=800, num_calls=8000, seed=0)

    def test_generator_shape(self, call_graph):
        assert call_graph.num_vertices == 800
        assert call_graph.num_edges > 1000

    def test_generator_validation(self):
        with pytest.raises(ConfigError):
            generate_call_graph(num_customers=1)
        with pytest.raises(ConfigError):
            generate_call_graph(num_calls=0)
        with pytest.raises(ConfigError):
            generate_call_graph(popularity_mix=2.0)

    def test_find_influencers(self, call_graph):
        report = find_influencers(call_graph, k=20)
        assert report.influencers.shape == (20,)
        assert np.all(np.diff(report.scores) <= 0)
        assert report.network_bytes >= 0
        assert len(report.top(5)) == 5

    def test_influencers_beat_random_on_reach(self, call_graph):
        report = find_influencers(call_graph, k=20)
        rng = np.random.default_rng(0)
        random_seeds = rng.choice(800, size=20, replace=False)
        top_reach = campaign_reach(call_graph, report.influencers)
        random_reach = campaign_reach(call_graph, random_seeds)
        assert top_reach > random_reach

    def test_reach_bounds(self, call_graph):
        assert campaign_reach(call_graph, np.array([0]), hops=0) == pytest.approx(
            1 / 800
        )
        with pytest.raises(ConfigError):
            campaign_reach(call_graph, np.array([0]), hops=-1)

    def test_k_validated(self, call_graph):
        with pytest.raises(ConfigError):
            find_influencers(call_graph, k=0)


class TestOsn:
    @pytest.fixture(scope="class")
    def network(self):
        return generate_social_network(num_users=600, interactions=5000, seed=0)

    def test_generator_shapes(self, network):
        assert network.num_users == 600
        assert network.activity.num_vertices == 600
        assert network.engagement.shape == (600,)
        assert network.engagement.max() == pytest.approx(1.0)

    def test_mixture_graph_density(self, network):
        mixed = mixture_graph(network, activity_weight=0.5, seed=0)
        assert mixed.num_vertices == 600
        assert mixed.num_edges > 0

    def test_mixture_weight_bounds(self, network):
        with pytest.raises(ConfigError):
            mixture_graph(network, activity_weight=1.5)

    def test_key_users_predict_activity(self, network):
        predicted = rank_key_users(network, k=60, seed=0)
        actual = network.future_active_users(fraction=0.1, seed=1)
        precision = prediction_precision(predicted, actual)
        # Baseline precision of a random guess is 0.1; require 2x that.
        assert precision > 0.2

    def test_activity_mixture_beats_pure_connectivity(self, network):
        actual = network.future_active_users(fraction=0.1, seed=1)
        with_activity = rank_key_users(
            network, k=60, activity_weight=0.9, seed=0
        )
        without = rank_key_users(network, k=60, activity_weight=0.0, seed=0)
        assert prediction_precision(with_activity, actual) >= (
            prediction_precision(without, actual)
        )

    def test_precision_validation(self):
        with pytest.raises(ConfigError):
            prediction_precision(np.array([]), np.array([1]))

    def test_generator_validation(self):
        with pytest.raises(ConfigError):
            generate_social_network(num_users=5)
        with pytest.raises(ConfigError):
            generate_social_network(num_users=100).future_active_users(0.0)
