"""Live ranking service: golden accuracy per epoch, epoch-swap
integrity, exact cache invalidation on refresh.

The golden test drives a ChurnGenerator stream and holds the service to
the same tolerances as ``test_golden_topk`` / ``test_sharded_service``
at *every* epoch; the swap tests pin the epoch invariant (a batch pins
its epoch once, a publish never tears or drops in-flight queries) with
the virtual-clock scheduler — no sleeps, no background threads.
"""

import numpy as np
import pytest

from repro.core import FrogWildConfig, seed_distribution
from repro.dynamic import ChurnGenerator, DynamicDiGraph, GraphDelta
from repro.engine import RunReport
from repro.errors import ConfigError
from repro.graph import twitter_like
from repro.live import Epoch, EpochManager, LiveRankingService
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank
from repro.serving import (
    BatchOutcome,
    QueryOutcome,
    RankingQuery,
    VirtualClock,
)

FAST = FrogWildConfig(num_frogs=600, iterations=3, seed=0)


def _overlap(estimated: np.ndarray, ranking: np.ndarray, k: int) -> float:
    exact_top = set(np.argsort(-ranking)[:k].tolist())
    return len(set(estimated.tolist()) & exact_top) / k


def make_live(n=400, graph_seed=3, **kwargs):
    dynamic = DynamicDiGraph.from_digraph(
        twitter_like(n=n, seed=graph_seed)
    )
    defaults = dict(config=FAST, num_machines=4, seed=0)
    defaults.update(kwargs)
    return dynamic, LiveRankingService(dynamic, **defaults)


class TestGoldenUnderChurn:
    """Acceptance: golden-tolerance top-k at every epoch of a churn
    stream — the thresholds of TestBatchedGolden / TestShardedGolden."""

    GRAPH_SEED = 21  # the golden regression graph
    CONFIG = FrogWildConfig(num_frogs=30_000, iterations=8, seed=1, ps=0.8)
    SEED_SETS = [np.array([7]), np.array([11, 42]), np.array([100, 3])]

    def test_every_epoch_stays_within_golden_tolerance(self):
        dynamic = DynamicDiGraph.from_digraph(
            twitter_like(n=1000, seed=self.GRAPH_SEED)
        )
        service = LiveRankingService(
            dynamic, config=self.CONFIG, num_machines=8, seed=0
        )
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=5)
        queries = [
            RankingQuery(seeds=tuple(seeds.tolist()), k=10)
            for seeds in self.SEED_SETS
        ]
        for tick in range(3):
            if tick > 0:
                update = service.refresh(churn.step(dynamic))
                assert update.reuse_ratio >= 0.8
            snapshot = service.current_epoch.graph
            answers = service.query_batch(queries)
            for seeds, answer in zip(self.SEED_SETS, answers):
                assert not answer.cached
                assert answer.report.extra["epoch"] == float(
                    service.current_epoch.epoch_id
                )
                personalization = seed_distribution(
                    snapshot.num_vertices, seeds
                )
                truth = exact_pagerank(
                    snapshot, personalization=personalization
                )
                # Same tolerance as the batched/sharded golden checks.
                assert _overlap(answer.vertices, truth, 10) >= 0.6

    def test_mass_captured_every_epoch(self):
        """Mass tolerance per epoch via the backend's own lanes."""
        dynamic = DynamicDiGraph.from_digraph(
            twitter_like(n=1000, seed=self.GRAPH_SEED)
        )
        service = LiveRankingService(
            dynamic, config=self.CONFIG, num_machines=8, seed=0
        )
        churn = ChurnGenerator(add_rate=0.01, remove_rate=0.01, seed=5)
        queries = [
            RankingQuery(seeds=tuple(seeds.tolist()), k=10)
            for seeds in self.SEED_SETS
        ]
        for tick in range(2):
            if tick > 0:
                service.refresh(churn.step(dynamic))
            snapshot = service.current_epoch.graph
            outcome = service.backend.run_batch(self.CONFIG, queries)
            for seeds, lane in zip(self.SEED_SETS, outcome.lanes):
                personalization = seed_distribution(
                    snapshot.num_vertices, seeds
                )
                truth = exact_pagerank(
                    snapshot, personalization=personalization
                )
                assert _overlap(lane.estimate.top_k(10), truth, 10) >= 0.6
                assert normalized_mass_captured(
                    lane.estimate.vector(), truth, 20
                ) > 0.8


class TestEpochSwapIntegrity:
    """Acceptance: an epoch swap never drops or mixes an in-flight
    query across epochs (virtual-clock scheduler)."""

    def test_pending_queries_survive_a_swap_and_share_one_epoch(self):
        clock = VirtualClock()
        dynamic, service = make_live(clock=clock, max_delay_s=5.0)
        futures = [service.submit([vertex]) for vertex in range(3)]
        assert not any(future.done() for future in futures)

        # Swap epochs while the queries sit in the scheduler queue.
        update = service.refresh(
            GraphDelta(added=[(0, 399), (1, 398)], removed=[])
        )
        clock.advance(5.0)
        assert service.pump() == 1

        answers = [future.result() for future in futures]
        stamps = {answer.report.extra["epoch"] for answer in answers}
        assert stamps == {float(update.epoch)}  # one epoch, all lanes
        sequences = {
            answer.report.extra["epoch_sequence"] for answer in answers
        }
        assert sequences == {1.0}
        assert service.epochs.queries_per_epoch == {1: 3}

    def test_batches_before_and_after_swap_pin_their_own_epochs(self):
        dynamic, service = make_live()
        first = service.query([5])
        epoch_before = service.current_epoch.epoch_id
        assert first.report.extra["epoch"] == float(epoch_before)

        churn = ChurnGenerator(seed=2)
        update = service.refresh(churn.step(dynamic))
        assert update.epoch > epoch_before
        second = service.query([5])
        assert not second.cached  # generation moved: re-executed
        assert second.report.extra["epoch"] == float(update.epoch)
        assert service.epochs.batches_per_epoch == {0: 1, 1: 1}

    def test_publish_mid_batch_never_tears_the_pinned_epoch(self):
        """A publish that lands while a batch is executing must not
        affect it: run_batch pins the epoch once, at entry."""
        graph = twitter_like(n=60, seed=1)

        def stub_report():
            return RunReport(
                algorithm="stub", num_machines=1, supersteps=0,
                total_time_s=0.0, time_per_iteration_s=0.0,
                network_bytes=0, cpu_seconds=0.0,
            )

        class StubBackend:
            num_shards = 1

            def __init__(self, label, manager_box, next_epoch_box):
                self.label = label
                self.manager_box = manager_box
                self.next_epoch_box = next_epoch_box

            def run_batch(self, config, queries):
                # Reentrant publish *mid-execution* of this batch.
                if self.next_epoch_box:
                    self.manager_box[0].publish(self.next_epoch_box.pop())
                report = stub_report()
                report.extra["backend"] = self.label
                return BatchOutcome(
                    lanes=tuple(
                        QueryOutcome(estimate=None, report=report)
                        for _ in queries
                    ),
                    shared_network_bytes=0,
                    simulated_time_s=0.0,
                )

        manager_box: list = []
        next_epoch_box: list = []
        old_backend = StubBackend(1.0, manager_box, next_epoch_box)
        new_backend = StubBackend(2.0, manager_box, [])
        manager = EpochManager(
            Epoch(epoch_id=0, sequence=0, graph=graph, backend=old_backend)
        )
        manager_box.append(manager)
        next_epoch_box.append(
            Epoch(epoch_id=1, sequence=1, graph=graph, backend=new_backend)
        )

        outcome = manager.run_batch(FAST, [RankingQuery(seeds=(1,))])
        lane = outcome.lanes[0]
        # The batch ran and was stamped on the epoch pinned at entry,
        # even though epoch 1 was published mid-run...
        assert lane.report.extra["backend"] == 1.0
        assert lane.report.extra["epoch"] == 0.0
        assert manager.batches_per_epoch == {0: 1}
        # ...and the next batch picks up the new epoch.
        follow_up = manager.run_batch(FAST, [RankingQuery(seeds=(2,))])
        assert follow_up.lanes[0].report.extra["backend"] == 2.0
        assert follow_up.lanes[0].report.extra["epoch"] == 1.0

    def test_publish_validation(self):
        graph = twitter_like(n=60, seed=1)
        manager = EpochManager(
            Epoch(epoch_id=5, sequence=0, graph=graph, backend=None)
        )
        smaller = twitter_like(n=50, seed=1)
        with pytest.raises(ConfigError):
            manager.publish(
                Epoch(epoch_id=6, sequence=1, graph=smaller, backend=None)
            )
        with pytest.raises(ConfigError):  # id regression
            manager.publish(
                Epoch(epoch_id=4, sequence=1, graph=graph, backend=None)
            )
        with pytest.raises(ConfigError):  # sequence skip
            manager.publish(
                Epoch(epoch_id=6, sequence=2, graph=graph, backend=None)
            )


class TestCacheGenerationInterplay:
    def test_cache_hits_within_an_epoch_invalidate_on_refresh(self):
        dynamic, service = make_live()
        cold = service.query([7])
        warm = service.query([7])
        assert not cold.cached and warm.cached

        churn = ChurnGenerator(seed=1)
        service.refresh(churn.step(dynamic))
        after = service.query([7])
        assert not after.cached
        again = service.query([7])
        assert again.cached

    def test_refresh_without_churn_keeps_the_cache_valid(self):
        """Generation is the epoch id (the graph version at snapshot):
        republishing an unchanged graph invalidates nothing."""
        dynamic, service = make_live()
        service.query([3])
        update = service.refresh()  # no delta, no external churn
        assert update.edges_added == update.edges_removed == 0
        assert service.query([3]).cached

    def test_unrefreshed_external_churn_does_not_invalidate(self):
        """The service serves epochs, not the raw mutable graph: cached
        answers stay consistent with the *served* snapshot until a
        refresh actually publishes the churned graph."""
        dynamic, service = make_live()
        service.query([3])
        dynamic.add_edges([(0, 399)])  # external churn, no refresh
        assert service.query([3]).cached
        service.refresh()
        assert not service.query([3]).cached


class TestLiveServiceShapes:
    def test_static_graph_is_wrapped(self):
        graph = twitter_like(n=200, seed=2)
        service = LiveRankingService(
            graph, config=FAST, num_machines=4, seed=0
        )
        assert isinstance(service.source, DynamicDiGraph)
        assert service.source.num_edges == graph.num_edges
        assert service.query([1]).vertices.size > 0

    def test_sharded_live_service_refreshes_every_shard_ingress(self):
        dynamic, service = make_live(num_shards=2, num_machines=8)
        assert service.num_shards == 2
        assert len(service.ingresses) == 2
        answers = service.query_batch(
            [RankingQuery(seeds=(v,)) for v in range(3)]
        )
        assert len(answers) == 3
        assert sorted(service.stats.shard_breakdown()) == [0, 1]

        churn = ChurnGenerator(seed=6)
        update = service.refresh(churn.step(dynamic))
        assert update.reuse_ratio >= 0.8
        # Per-shard placements each match a from-scratch stable hash
        # of the published snapshot under their own salt.
        from repro.dynamic import stable_hash_partition

        snapshot = service.current_epoch.graph
        for ingress in service.ingresses:
            np.testing.assert_array_equal(
                ingress.partition_for(snapshot).edge_machine,
                stable_hash_partition(
                    snapshot, ingress.num_machines, seed=ingress.salt
                ).edge_machine,
            )
        assert not service.query_batch(
            [RankingQuery(seeds=(0,))]
        )[0].cached

    def test_shard_count_validation(self):
        with pytest.raises(ConfigError):
            make_live(num_shards=9, num_machines=4)

    def test_attach_drives_one_refresh_per_delta(self):
        dynamic, service = make_live()
        churn = ChurnGenerator(seed=3)
        updates = service.attach(churn, ticks=3)
        assert [u.sequence for u in updates] == [1, 2, 3]
        assert service.live_stats()["epochs_published"] == 4.0
        deltas = [churn.step(dynamic) for _ in range(2)]
        more = service.attach(iter(deltas))
        assert [u.sequence for u in more] == [4, 5]
        with pytest.raises(ConfigError):
            service.attach(churn)  # generator without a tick count

    def test_attach_with_ticks_never_overpulls_the_iterator(self):
        """A truncated attach must not consume (and drop) the delta
        after the cut — apply-on-generate streams would otherwise leave
        the source graph one unpublished delta ahead."""
        dynamic, service = make_live()
        pulled = []

        def stream():
            for index in range(10):
                pulled.append(index)
                yield GraphDelta(added=[(index, index + 1)])

        updates = service.attach(stream(), ticks=3)
        assert len(updates) == 3
        assert pulled == [0, 1, 2]
        # Served epoch and source graph agree: nothing dropped.
        assert service.current_epoch.epoch_id == service.source.version

    def test_refresh_history_and_live_stats(self):
        dynamic, service = make_live()
        churn = ChurnGenerator(seed=7)
        service.attach(churn, ticks=2)
        assert len(service.refresh_history) == 2
        stats = service.live_stats()
        assert stats["refreshes"] == 2.0
        assert stats["lifetime_reuse_ratio"] >= 0.8
        assert stats["served_edges"] == stats["source_edges"]


class TestParallelPatchEquivalence:
    """Per-shard replication patches fanned out to the process pool
    must be structurally identical to the serial patch path — the
    deterministic-noise invariant that lets workers patch their own
    shard's table on their own core."""

    CHURN = dict(add_rate=0.0005, remove_rate=0.0005, seed=11)
    STEPS = 3

    def run_refreshes(self, execution):
        dynamic = DynamicDiGraph.from_digraph(twitter_like(n=300, seed=5))
        service = LiveRankingService(
            dynamic,
            config=FAST,
            num_machines=8,
            num_shards=4,
            seed=3,
            execution=execution,
        )
        churn = ChurnGenerator(**self.CHURN)
        tables, patches = [], []
        try:
            for _ in range(self.STEPS):
                service.refresh(churn.step(dynamic))
                tables.append(
                    [r.table for r in service.replicators]
                )
                patches.append(list(service._last_patches))
        finally:
            service.close()
        return tables, patches

    def test_process_patches_match_serial_structurally(self):
        serial_tables, serial_patches = self.run_refreshes("simulated")
        pool_tables, pool_patches = self.run_refreshes("process")
        # The scenario must actually exercise the patch path, not
        # collapse to full rebuilds.
        assert any(
            not patch.full_rebuild
            for step in serial_patches
            for patch in step
        )
        for step, (serial, pooled) in enumerate(
            zip(serial_tables, pool_tables)
        ):
            for shard, (ours, theirs) in enumerate(zip(serial, pooled)):
                assert ours.structurally_equal(theirs), (
                    f"step {step} shard {shard} diverged"
                )
        # Patch accounting agrees too: same diff, same plan.
        for serial_step, pool_step in zip(serial_patches, pool_patches):
            for ours, theirs in zip(serial_step, pool_step):
                assert ours.full_rebuild == theirs.full_rebuild
                assert ours.vertices_patched == theirs.vertices_patched
                assert ours.edges_regrouped == theirs.edges_regrouped
