"""Tests for the ranking service: cache, coalescing, cost accounting."""

import numpy as np
import pytest

from repro.core import FrogWildConfig
from repro.errors import ConfigError
from repro.serving import (
    QueryCoalescer,
    RankingQuery,
    RankingService,
    TTLCache,
)


class FakeClock:
    """Deterministic, manually advanced cache clock."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


@pytest.fixture(scope="module")
def graph():
    from repro.graph import twitter_like

    return twitter_like(n=800, seed=9)


def make_service(graph, **kwargs):
    defaults = dict(
        config=FrogWildConfig(num_frogs=1200, iterations=4, seed=0),
        num_machines=4,
        max_batch_size=4,
    )
    defaults.update(kwargs)
    return RankingService(graph, **defaults)


class TestTTLCache:
    def test_hit_miss_and_lru_touch(self):
        cache = TTLCache(capacity=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touches "a": "b" becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert cache.stats.hits == 3 and cache.stats.misses == 2

    def test_ttl_expiry(self):
        clock = FakeClock()
        cache = TTLCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("key", "value")
        clock.advance(9.0)
        assert cache.get("key") == "value"
        clock.advance(2.0)
        assert cache.get("key") is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_put_refreshes_age_and_recency(self):
        clock = FakeClock()
        cache = TTLCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("key", "old")
        clock.advance(8.0)
        cache.put("key", "new")
        clock.advance(8.0)
        assert cache.get("key") == "new"

    def test_validation(self):
        with pytest.raises(ConfigError):
            TTLCache(capacity=0)
        with pytest.raises(ConfigError):
            TTLCache(ttl_s=0.0)

    def test_len_counts_only_live_entries(self):
        """Regression: ``len`` used to report expired entries as live."""
        clock = FakeClock()
        cache = TTLCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("a", 1)
        clock.advance(6.0)
        cache.put("b", 2)
        assert len(cache) == 2
        clock.advance(6.0)  # "a" dead at t=12, "b" live until t=16
        assert len(cache) == 1
        assert cache.stats.expirations == 1
        clock.advance(6.0)
        assert len(cache) == 0
        assert cache.stats.expirations == 2

    def test_put_purges_expired_before_evicting_live_lru(self):
        """Regression: a full-looking cache of dead entries must not
        evict a live LRU entry to make room."""
        clock = FakeClock()
        cache = TTLCache(capacity=2, ttl_s=10.0, clock=clock)
        cache.put("dead", 1)
        clock.advance(11.0)
        cache.put("live", 2)
        cache.put("new", 3)  # capacity 2: room exists once "dead" purges
        assert cache.get("live") == 2
        assert cache.get("new") == 3
        assert cache.stats.evictions == 0
        assert cache.stats.expirations == 1

    def test_overwrite_of_expired_counts_as_expiration(self):
        """Regression: refreshing a dead key is an expiration + insert,
        not a silent live overwrite."""
        clock = FakeClock()
        cache = TTLCache(capacity=8, ttl_s=10.0, clock=clock)
        cache.put("key", "old")
        clock.advance(11.0)
        cache.put("key", "new")
        assert cache.stats.expirations == 1
        assert cache.get("key") == "new"
        # A *live* overwrite is neither an expiration nor an eviction.
        cache.put("key", "newer")
        assert cache.stats.expirations == 1
        assert cache.stats.evictions == 0


class TestCoalescer:
    def test_mixed_configs_never_share_a_batch(self):
        default = FrogWildConfig(seed=0)
        fast = FrogWildConfig(num_frogs=100, iterations=2, seed=0)
        coalescer = QueryCoalescer(max_batch_size=8)
        for vertex in range(3):
            coalescer.add(RankingQuery(seeds=(vertex,)), default)
        coalescer.add(RankingQuery(seeds=(9,), config=fast), default)
        coalescer.add(RankingQuery(seeds=(10,), config=fast), default)
        batches = coalescer.drain()
        assert len(batches) == 2
        by_config = {config: queries for config, queries in batches}
        assert len(by_config[default]) == 3
        assert len(by_config[fast]) == 2
        assert coalescer.pending_count() == 0

    def test_batches_respect_max_size_fifo(self):
        default = FrogWildConfig(seed=0)
        coalescer = QueryCoalescer(max_batch_size=4)
        for vertex in range(10):
            coalescer.add(RankingQuery(seeds=(vertex,)), default)
        batches = coalescer.drain()
        assert [len(queries) for _, queries in batches] == [4, 4, 2]
        order = [q.seeds[0] for _, queries in batches for q in queries]
        assert order == list(range(10))

    def test_query_validation(self):
        with pytest.raises(ConfigError):
            RankingQuery(seeds=())
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(1,), k=0)
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(1, 2), weights=(1.0,))
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(3, 3))
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(-1,))

    def test_degenerate_weights_fail_at_construction(self):
        """A bad restart law must never reach dispatch: zero-mass or
        negative weights fail when the query is built (mirroring
        seed_distribution), so a batch cannot blow up mid-traversal on
        behalf of one malformed batchmate."""
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(3,), weights=(0.0,))
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(3, 4), weights=(1.0, -0.5))
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(3,), weights=(float("nan"),))
        with pytest.raises(ConfigError):
            RankingQuery(seeds=(3, 4), weights=(float("inf"), 1.0))
        # A valid skewed law still constructs.
        assert RankingQuery(seeds=(3, 4), weights=(0.0, 2.0)).weights == (
            0.0, 2.0,
        )

    def test_cache_key_ignores_k_but_not_config(self):
        default = FrogWildConfig(seed=0)
        other = FrogWildConfig(num_frogs=123, seed=0)
        q10 = RankingQuery(seeds=(1, 2), k=10)
        q50 = RankingQuery(seeds=(1, 2), k=50)
        assert q10.cache_key(default) == q50.cache_key(default)
        assert q10.cache_key(default) != q10.cache_key(other)


class TestRankingService:
    def test_miss_then_hit_returns_identical_answer(self, graph):
        service = make_service(graph)
        first = service.query([5, 9], k=6)
        second = service.query([5, 9], k=6)
        assert not first.cached and second.cached
        np.testing.assert_array_equal(first.vertices, second.vertices)
        np.testing.assert_array_equal(first.scores, second.scores)
        stats = service.cache_stats()
        assert stats["hits"] == 1.0 and stats["misses"] == 1.0

    def test_k_is_a_prefix_of_the_cached_estimate(self, graph):
        service = make_service(graph)
        wide = service.query([7], k=20)
        narrow = service.query([7], k=5)
        assert narrow.cached
        np.testing.assert_array_equal(wide.vertices[:5], narrow.vertices)

    def test_ttl_expiry_forces_reexecution(self, graph):
        clock = FakeClock()
        service = make_service(graph, cache_ttl_s=60.0, clock=clock)
        service.query([3])
        clock.advance(120.0)
        answer = service.query([3])
        assert not answer.cached
        assert service.stats.queries_executed == 2

    def test_lru_eviction_bounds_cache(self, graph):
        service = make_service(graph, cache_capacity=2)
        for vertex in (1, 2, 3):
            service.query([vertex])
        # vertex 1 was evicted; 3 is fresh.
        assert service.query([3]).cached
        assert not service.query([1]).cached
        assert service.cache_stats()["evictions"] >= 1.0

    def test_coalescing_splits_mixed_configs(self, graph):
        service = make_service(graph)
        fast = FrogWildConfig(num_frogs=400, iterations=2, seed=0)
        queries = [RankingQuery(seeds=(v,)) for v in range(3)]
        queries.append(RankingQuery(seeds=(3,), config=fast))
        answers = service.query_batch(queries)
        assert service.stats.batches_run == 2
        assert sorted(service.stats.batch_sizes) == [1, 3]
        assert answers[3].report.extra["num_frogs"] == 400.0
        for answer in answers[:3]:
            assert answer.batch_size == 3

    def test_batches_respect_max_batch_size(self, graph):
        service = make_service(graph, max_batch_size=3)
        answers = service.query_batch(
            [RankingQuery(seeds=(v,)) for v in range(7)]
        )
        assert service.stats.batch_sizes == [3, 3, 1]
        assert all(answer is not None for answer in answers)

    def test_duplicate_queries_collapse_into_one_population(self, graph):
        service = make_service(graph)
        answers = service.query_batch(
            [RankingQuery(seeds=(5,)), RankingQuery(seeds=(5,), k=3)]
        )
        assert service.stats.queries_executed == 1
        assert service.stats.queries_served == 2
        np.testing.assert_array_equal(
            answers[0].vertices[:3], answers[1].vertices
        )

    def test_cost_accounting_sums_across_batch(self, graph):
        service = make_service(graph)
        answers = service.query_batch(
            [RankingQuery(seeds=(v,)) for v in range(4)]
        )
        attributed = sum(answer.network_bytes for answer in answers)
        assert attributed == service.stats.attributed_network_bytes
        # Shared wire bytes never exceed the standalone-priced total.
        assert service.stats.shared_network_bytes <= attributed
        assert 0.0 < service.stats.amortization_ratio() <= 1.0
        total_cpu = sum(answer.cpu_seconds for answer in answers)
        assert total_cpu > 0.0

    def test_answers_in_query_order_with_personalized_mass(self, graph):
        service = make_service(
            graph,
            config=FrogWildConfig(num_frogs=4000, iterations=6, seed=0),
        )
        answers = service.query_batch(
            [RankingQuery(seeds=(2,), k=5), RankingQuery(seeds=(600,), k=5)]
        )
        assert answers[0].query.seeds == (2,)
        assert answers[1].query.seeds == (600,)
        # Frogs restart on the query's seeds, so the seed itself ranks.
        assert 2 in answers[0].vertices.tolist()
        assert 600 in answers[1].vertices.tolist()

    def test_malformed_query_fails_atomically(self, graph):
        """One out-of-range query rejects the whole call *before* any
        execution — its batchmates' work is never half-done."""
        service = make_service(graph)
        with pytest.raises(ConfigError):
            service.query_batch(
                [
                    RankingQuery(seeds=(1,)),
                    RankingQuery(seeds=(graph.num_vertices + 5,)),
                ]
            )
        assert service.stats.queries_executed == 0
        assert service.stats.batches_run == 0
        assert service.coalescer.pending_count() == 0
        # The valid query was neither cached nor lost; a retry executes.
        answer = service.query([1])
        assert not answer.cached

    def test_cache_disabled_service_always_executes(self, graph):
        service = make_service(graph, cache_capacity=0)
        service.query([4])
        answer = service.query([4])
        assert not answer.cached
        assert service.stats.queries_executed == 2
        assert service.cache_stats() == {}

    def test_deterministic_across_service_instances(self, graph):
        first = make_service(graph).query([8, 13], k=7)
        second = make_service(graph).query([8, 13], k=7)
        np.testing.assert_array_equal(first.vertices, second.vertices)
        np.testing.assert_array_equal(first.scores, second.scores)


class TestBackendContract:
    def test_lane_count_mismatch_fails_loudly_and_cleans_up(self, graph):
        """A backend that answers the wrong number of lanes must fail
        the call (and its futures) rather than silently truncating —
        and must not poison the in-flight dedup table."""
        from repro.errors import EngineError
        from repro.serving import BatchOutcome

        class TruncatingBackend:
            num_shards = 1

            def run_batch(self, config, queries):
                return BatchOutcome(
                    lanes=(), shared_network_bytes=0, simulated_time_s=0.0
                )

        service = make_service(graph, backend=TruncatingBackend())
        with pytest.raises(EngineError):
            service.query_batch([RankingQuery(seeds=(1,))])
        assert service._inflight == {}
        # The service recovers once a working backend is swapped in.
        from repro.serving import LocalBackend

        service.backend = LocalBackend(graph, num_machines=4, seed=0)
        assert service.query([1]).vertices.size > 0


class TestAtomicFailure:
    def test_fill_dispatch_error_abandons_the_calls_other_lanes(self, graph):
        """If a filled batch's dispatch raises mid-query_batch, the
        call's other already-enqueued lanes are abandoned (futures
        failed, coalescer and in-flight table clean) — no ghost work
        rides a later caller's flush."""
        from repro.serving import LocalBackend

        real = LocalBackend(graph, num_machines=4, seed=0)

        class Exploding:
            num_shards = 1

            def __init__(self):
                self.armed = True

            def run_batch(self, config, queries):
                if self.armed:
                    raise RuntimeError("backend down")
                return real.run_batch(config, queries)

        backend = Exploding()
        other = FrogWildConfig(num_frogs=300, iterations=2, seed=0)
        service = make_service(graph, backend=backend, max_batch_size=2)
        queries = [
            RankingQuery(seeds=(1,), config=other),  # partial group
            RankingQuery(seeds=(2,)),
            RankingQuery(seeds=(3,)),  # fills the default group -> boom
        ]
        with pytest.raises(RuntimeError, match="backend down"):
            service.query_batch(queries)
        assert service.coalescer.pending_count() == 0
        assert service._inflight == {}
        # Recovery: the same queries execute cleanly once the backend heals.
        backend.armed = False
        answers = service.query_batch(queries)
        assert [a.query.seeds[0] for a in answers] == [1, 2, 3]


class TestGenerationInvalidation:
    """Graph-generation counters as the cache's invalidation clock."""

    def test_version_bump_invalidates_cached_rankings(self, graph):
        from repro.dynamic import DynamicDiGraph

        dynamic = DynamicDiGraph.from_digraph(graph)
        service = make_service(graph, generation=lambda: dynamic.version)
        first = service.query([5])
        assert not first.cached
        assert service.query([5]).cached
        # Churn: the tracked graph moves, cached rankings must not serve.
        dynamic.add_edges([(1, 2)])
        stale = service.query([5])
        assert not stale.cached
        assert service.stats.queries_executed == 2
        # The new generation caches independently.
        assert service.query([5]).cached

    def test_stable_generation_keeps_cache_hot(self, graph):
        service = make_service(graph, generation=lambda: 7)
        service.query([4])
        assert service.query([4]).cached
        assert service.stats.queries_executed == 1

    def test_no_generation_means_plain_keys(self, graph):
        service = make_service(graph)
        query = RankingQuery(seeds=(3,))
        assert service._cache_key(query) == query.cache_key(
            service.default_config
        )

    def test_dynamic_graph_defaults_the_generation_provider(self, graph):
        """A DynamicDiGraph-backed service gets churn invalidation by
        default: no manual generation= plumbing required."""
        from repro.dynamic import DynamicDiGraph

        dynamic = DynamicDiGraph.from_digraph(graph)
        service = make_service(dynamic)
        assert service.generation is not None
        assert service.graph.num_vertices == graph.num_vertices
        service.query([5])
        assert service.query([5]).cached
        dynamic.add_edges([(1, 2)])
        assert not service.query([5]).cached
        assert service.stats.queries_executed == 2

    def test_explicit_generation_wins_over_the_dynamic_default(self, graph):
        from repro.dynamic import DynamicDiGraph

        dynamic = DynamicDiGraph.from_digraph(graph)
        service = make_service(dynamic, generation=lambda: 42)
        service.query([4])
        dynamic.add_edges([(1, 2)])  # pinned generation: still cached
        assert service.query([4]).cached


class TestShardAutotuning:
    """choose_num_shards and the num_shards=None constructor paths."""

    def test_bounds(self):
        from repro.serving import choose_num_shards

        # Fleet bound: shards need >= 2 machines each by default.
        assert choose_num_shards(16, replication=16, num_frogs=10**6) == 8
        assert choose_num_shards(3, replication=16, num_frogs=10**6) == 1
        # Replication bound caps full ingress copies.
        assert choose_num_shards(32, replication=4, num_frogs=10**6) == 4
        # Frog bound: tiny budgets do not fan out at all.
        assert choose_num_shards(16, replication=8, num_frogs=1_000) == 1
        assert choose_num_shards(16, replication=8, num_frogs=4_000) == 2
        # No hint: frogs do not constrain.
        assert choose_num_shards(16, replication=2) == 2
        with pytest.raises(ConfigError):
            choose_num_shards(0)
        with pytest.raises(ConfigError):
            choose_num_shards(8, replication=0)

    def test_sharded_backend_autotunes_when_unset(self, graph):
        from repro.serving import ShardedBackend, choose_num_shards

        backend = ShardedBackend(
            graph, num_shards=None, num_machines=16, num_frogs=100_000
        )
        assert backend.num_shards == choose_num_shards(
            16, num_frogs=100_000
        )
        small = ShardedBackend(
            graph, num_shards=None, num_machines=16, num_frogs=500
        )
        assert small.num_shards == 1

    def test_service_num_shards_none_uses_the_config_budget(self, graph):
        big = make_service(
            graph,
            config=FrogWildConfig(num_frogs=8_000, iterations=3, seed=0),
            num_machines=8,
            num_shards=None,
        )
        assert big.num_shards == 4  # 8000 frogs fund four sub-clusters
        tiny = make_service(graph, num_shards=None, num_machines=8)
        assert tiny.num_shards == 1  # 1200-frog default stays local
        # An autotune that resolves to one shard gets the LocalBackend
        # path — identical to an explicit num_shards=1 service.
        from repro.serving import LocalBackend

        assert isinstance(tiny.backend, LocalBackend)
        explicit = make_service(graph, num_shards=1, num_machines=8)
        np.testing.assert_array_equal(
            tiny.query([3]).vertices, explicit.query([3]).vertices
        )
        answer = big.query([3])
        assert answer.vertices.size > 0


class TestServiceStatsGuards:
    def test_zero_traversal_stats_are_well_defined(self, graph):
        """A service that has executed nothing reports neutral numbers
        from every stats accessor — no division by zero."""
        service = make_service(graph)
        stats = service.stats
        assert stats.amortization_ratio() == 1.0
        assert stats.mean_batch_size() == 0.0
        assert stats.shard_breakdown() == {}
        row = stats.as_dict()
        assert row["amortization_ratio"] == 1.0
        assert row["mean_batch_size"] == 0.0
        assert not any(key.startswith("shard") for key in row)

    def test_cache_only_service_keeps_neutral_ratio(self, graph):
        service = make_service(graph)
        service.query([2])
        service.query([2])  # pure cache hit: no new traversal
        row = service.stats.as_dict()
        assert row["queries_served"] == 2.0
        assert row["queries_executed"] == 1.0
        assert 0.0 < row["amortization_ratio"] <= 1.0
        assert row["mean_batch_size"] == 1.0

    def test_unsharded_as_dict_has_no_shard_keys(self, graph):
        service = make_service(graph)
        service.query([1])
        assert not any(
            key.startswith("shard") for key in service.stats.as_dict()
        )
