"""Unit tests for the exact power-iteration solver (ground truth)."""

import networkx as nx
import numpy as np
import pytest

from repro.errors import ConfigError
from repro.graph import complete_graph, cycle_graph, from_edges, star_graph
from repro.pagerank import exact_pagerank, pagerank_operator


class TestClosedForms:
    def test_cycle_uniform(self):
        pi = exact_pagerank(cycle_graph(10))
        np.testing.assert_allclose(pi, 0.1, atol=1e-9)

    def test_complete_uniform(self):
        pi = exact_pagerank(complete_graph(7))
        np.testing.assert_allclose(pi, 1 / 7, atol=1e-9)

    def test_star_closed_form(self):
        """Hub of a star: pi_0 = (1+p)/ (3+p) 2/(…) — check via balance.

        For the star, every spoke has pi_s and the hub pi_0 satisfies
        pi_0 = p/n + (1-p) * (n-1) * pi_s  and
        pi_s = p/n + (1-p) * pi_0/(n-1).
        """
        n, p = 9, 0.15
        pi = exact_pagerank(star_graph(n), p_teleport=p)
        hub, spoke = pi[0], pi[1]
        assert hub == pytest.approx(p / n + (1 - p) * (n - 1) * spoke, abs=1e-9)
        assert spoke == pytest.approx(p / n + (1 - p) * hub / (n - 1), abs=1e-9)
        np.testing.assert_allclose(pi[1:], spoke, atol=1e-12)

    def test_sums_to_one(self, small_twitter):
        pi = exact_pagerank(small_twitter)
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)
        assert pi.min() >= 0.15 / small_twitter.num_vertices * 0.999


class TestAgainstNetworkx:
    def test_matches_networkx(self, small_twitter):
        pi = exact_pagerank(small_twitter, p_teleport=0.15, tolerance=1e-12)
        nxg = nx.DiGraph(list(small_twitter.edges()))
        nxg.add_nodes_from(range(small_twitter.num_vertices))
        nx_pi = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        expected = np.array(
            [nx_pi[v] for v in range(small_twitter.num_vertices)]
        )
        np.testing.assert_allclose(pi, expected, atol=1e-8)

    def test_matches_networkx_with_dangling(self):
        graph = from_edges(
            [(0, 1), (1, 2), (2, 0), (0, 3)], repair_dangling="none"
        )
        pi = exact_pagerank(graph, tolerance=1e-12)
        nxg = nx.DiGraph([(0, 1), (1, 2), (2, 0), (0, 3)])
        nx_pi = nx.pagerank(nxg, alpha=0.85, tol=1e-12)
        expected = np.array([nx_pi[v] for v in range(4)])
        np.testing.assert_allclose(pi, expected, atol=1e-8)


class TestOperator:
    def test_operator_is_column_stochastic_action(self, diamond):
        op = pagerank_operator(diamond)
        x = np.full(4, 0.25)
        y = op @ x
        assert y.sum() == pytest.approx(1.0)

    def test_operator_matches_dense(self, diamond):
        op = pagerank_operator(diamond)
        dense = diamond.transition_matrix()
        x = np.random.default_rng(0).random(4)
        np.testing.assert_allclose(op @ x, dense @ x)


class TestDiagnostics:
    def test_return_info(self, small_twitter):
        result = exact_pagerank(small_twitter, return_info=True)
        assert result.converged
        assert result.iterations > 1
        assert result.residual < 1e-12
        assert result.vector.sum() == pytest.approx(1.0)

    def test_nonconvergence_raises_without_info(self, small_twitter):
        with pytest.raises(ConfigError, match="converge"):
            exact_pagerank(small_twitter, max_iterations=2)

    def test_nonconvergence_reported_with_info(self, small_twitter):
        result = exact_pagerank(
            small_twitter, max_iterations=2, return_info=True
        )
        assert not result.converged
        assert result.iterations == 2


class TestValidation:
    def test_bad_teleport(self, diamond):
        with pytest.raises(ConfigError):
            exact_pagerank(diamond, p_teleport=0.0)

    def test_bad_tolerance(self, diamond):
        with pytest.raises(ConfigError):
            exact_pagerank(diamond, tolerance=0.0)
