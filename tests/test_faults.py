"""Tests for fault schedules, the faulty runner and the straggler model."""

import numpy as np
import pytest

from repro.cluster import CostModel
from repro.core import FrogWildConfig, run_frogwild
from repro.errors import ConfigError
from repro.faults import (
    FaultSchedule,
    MachineCrash,
    MessageDrop,
    StragglerCostModel,
    run_frogwild_with_faults,
)
from repro.metrics import normalized_mass_captured
from repro.pagerank import exact_pagerank

_CONFIG = FrogWildConfig(num_frogs=10_000, iterations=4, seed=0)


class TestScheduleValidation:
    def test_empty_schedule(self):
        schedule = FaultSchedule()
        assert schedule.is_empty
        assert schedule.crashes_at(0) == []

    def test_rejects_negative_step(self):
        with pytest.raises(ConfigError):
            MachineCrash(step=-1, machine=0)

    def test_rejects_negative_machine(self):
        with pytest.raises(ConfigError):
            MachineCrash(step=0, machine=-2)

    def test_rejects_duplicate_crash(self):
        with pytest.raises(ConfigError):
            FaultSchedule(
                crashes=(
                    MachineCrash(step=1, machine=0),
                    MachineCrash(step=1, machine=0),
                )
            )

    def test_rejects_bad_drop_probability(self):
        with pytest.raises(ConfigError):
            MessageDrop(probability=1.5)

    def test_crashes_at_filters_by_step(self):
        schedule = FaultSchedule(
            crashes=(
                MachineCrash(step=1, machine=0),
                MachineCrash(step=2, machine=1),
            )
        )
        assert len(schedule.crashes_at(1)) == 1
        assert schedule.crashes_at(1)[0].machine == 0

    def test_zero_drop_is_empty(self):
        assert FaultSchedule(message_drop=MessageDrop(0.0)).is_empty


class TestFaultyRunner:
    def test_empty_schedule_matches_stock_runner(self, small_twitter):
        """Fault plumbing with no faults must be bit-identical."""
        stock = run_frogwild(small_twitter, _CONFIG, num_machines=4)
        faulty, log = run_frogwild_with_faults(
            small_twitter, FaultSchedule(), _CONFIG, num_machines=4
        )
        assert np.array_equal(
            stock.estimate.counts, faulty.estimate.counts
        )
        assert log.net_frogs_lost == 0

    def test_crash_without_rebirth_loses_frogs(self, small_twitter):
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=1, machine=0, rebirth=False),)
        )
        result, log = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=4
        )
        assert log.frogs_lost_to_crashes > 0
        assert log.frogs_reborn == 0
        assert (
            result.estimate.total_stopped
            == _CONFIG.num_frogs - log.frogs_lost_to_crashes
        )

    def test_crash_with_rebirth_conserves_frogs(self, small_twitter):
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=1, machine=0, rebirth=True),)
        )
        result, log = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=4
        )
        assert log.frogs_reborn == log.frogs_lost_to_crashes > 0
        assert result.estimate.total_stopped == _CONFIG.num_frogs

    def test_crash_rejects_unknown_machine(self, small_twitter):
        schedule = FaultSchedule(crashes=(MachineCrash(step=0, machine=99),))
        with pytest.raises(ConfigError):
            run_frogwild_with_faults(
                small_twitter, schedule, _CONFIG, num_machines=4
            )

    def test_message_drop_loses_frogs(self, small_twitter):
        schedule = FaultSchedule(message_drop=MessageDrop(0.2))
        result, log = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=4
        )
        assert log.frogs_dropped_in_flight > 0
        assert (
            result.estimate.total_stopped
            == _CONFIG.num_frogs - log.frogs_dropped_in_flight
        )

    def test_graceful_degradation_under_crash(self, small_twitter):
        """One crashed machine out of 8 must not destroy top-k accuracy."""
        truth = exact_pagerank(small_twitter)
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=1, machine=3, rebirth=True),)
        )
        result, _ = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=8
        )
        mass = normalized_mass_captured(result.estimate.vector(), truth, 20)
        assert mass > 0.8

    def test_graceful_degradation_under_drops(self, small_twitter):
        """10% in-flight loss costs far less than 10% of accuracy."""
        truth = exact_pagerank(small_twitter)
        schedule = FaultSchedule(message_drop=MessageDrop(0.1))
        result, _ = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=8
        )
        mass = normalized_mass_captured(result.estimate.vector(), truth, 20)
        assert mass > 0.8

    def test_multiple_crashes(self, small_twitter):
        schedule = FaultSchedule(
            crashes=(
                MachineCrash(step=1, machine=0),
                MachineCrash(step=2, machine=1),
            )
        )
        _, log = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=4
        )
        assert log.crashed_machines == [0, 1]

    def test_deterministic(self, small_twitter):
        schedule = FaultSchedule(
            crashes=(MachineCrash(step=1, machine=2),),
            message_drop=MessageDrop(0.05),
        )
        a, log_a = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=4
        )
        b, log_b = run_frogwild_with_faults(
            small_twitter, schedule, _CONFIG, num_machines=4
        )
        assert np.array_equal(a.estimate.counts, b.estimate.counts)
        assert log_a.frogs_dropped_in_flight == log_b.frogs_dropped_in_flight


class TestStragglerCostModel:
    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            StragglerCostModel(slowdowns=())

    def test_rejects_speedups(self):
        with pytest.raises(ConfigError):
            StragglerCostModel(slowdowns=(0.5, 1.0))

    def test_rejects_mismatched_cluster(self):
        model = StragglerCostModel(slowdowns=(1.0, 1.0))
        with pytest.raises(ConfigError):
            model.superstep_time(
                np.zeros(3), np.zeros(3), np.zeros(3)
            )

    def test_uniform_ones_matches_base_model(self):
        base = CostModel()
        straggler = StragglerCostModel(slowdowns=(1.0,) * 4)
        sent = np.array([100.0, 5000.0, 200.0, 10.0])
        ops = np.array([10.0, 20.0, 500.0, 1.0])
        a = base.superstep_time(sent, sent, ops, num_messages=3)
        b = straggler.superstep_time(sent, sent, ops, num_messages=3)
        assert a.total_s == pytest.approx(b.total_s)

    def test_straggler_dominates_superstep(self):
        """A slow machine with little work can still set the pace."""
        model = StragglerCostModel(slowdowns=(1.0, 10.0))
        sent = np.array([1000.0, 500.0])
        ops = np.array([1000.0, 500.0])
        cost = model.superstep_time(sent, sent, ops)
        # Machine 1's scaled 5000 bytes beats machine 0's 1000.
        expected_comm = 5000.0 / model.bandwidth_bytes_per_s
        assert cost.comm_s == pytest.approx(expected_comm)

    def test_slows_down_frogwild_run(self, small_twitter):
        healthy = run_frogwild(
            small_twitter, _CONFIG, num_machines=4,
            cost_model=StragglerCostModel(slowdowns=(1.0,) * 4),
        )
        degraded = run_frogwild(
            small_twitter, _CONFIG, num_machines=4,
            cost_model=StragglerCostModel(slowdowns=(1.0, 1.0, 1.0, 8.0)),
        )
        assert degraded.report.total_time_s > healthy.report.total_time_s
        # Accuracy is untouched: stragglers cost time, not correctness.
        assert np.array_equal(
            healthy.estimate.counts, degraded.estimate.counts
        )
