"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_figure_args(self):
        args = build_parser().parse_args(["figure", "2", "--twitter-n", "500"])
        assert args.command == "figure"
        assert args.number == "2"
        assert args.twitter_n == 500

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.algorithm == "frogwild"
        assert args.ps == 1.0
        assert args.machines == 16

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "9"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestInfoCommand:
    def test_synthetic_workload(self, capsys):
        assert main(["info", "--workload", "twitter", "--n", "400"]) == 0
        out = capsys.readouterr().out
        assert "num_vertices" in out
        assert "400" in out

    def test_edge_list_file(self, capsys, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n1 2\n2 0\n")
        assert main(["info", "--edge-list", str(path)]) == 0
        assert "num_vertices" in capsys.readouterr().out


class TestRunCommand:
    def test_frogwild_run(self, capsys):
        code = main([
            "run", "--workload", "twitter", "--n", "500",
            "--frogs", "800", "--iterations", "3", "--top-k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "frogwild" in out
        assert "top-5 vertices" in out

    def test_accuracy_flag(self, capsys):
        main([
            "run", "--workload", "twitter", "--n", "500",
            "--frogs", "800", "--accuracy", "--top-k", "10",
        ])
        out = capsys.readouterr().out
        assert "mass captured" in out

    def test_graphlab_run(self, capsys):
        code = main([
            "run", "--workload", "twitter", "--n", "500",
            "--algorithm", "graphlab", "--iterations", "2",
        ])
        assert code == 0
        assert "graphlab_pr" in capsys.readouterr().out

    def test_graphlab_exact_run(self, capsys):
        code = main([
            "run", "--workload", "twitter", "--n", "500",
            "--algorithm", "graphlab-exact",
        ])
        assert code == 0
        assert "tol" in capsys.readouterr().out


class TestFigureCommand:
    def test_tiny_figure8(self, capsys):
        code = main(["figure", "8", "--livejournal-n", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 8" in out
        assert "network_bytes" in out


class TestNewRunModes:
    def test_async_run(self, capsys):
        code = main([
            "run", "--workload", "twitter", "--n", "400",
            "--algorithm", "async",
        ])
        assert code == 0
        assert "async_pr" in capsys.readouterr().out

    def test_partitioner_flag(self, capsys):
        code = main([
            "run", "--workload", "twitter", "--n", "400",
            "--frogs", "500", "--partitioner", "hdrf", "--machines", "4",
        ])
        assert code == 0

    def test_bad_partitioner_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--partitioner", "magic"])


class TestFigureExtras:
    def test_render_and_save(self, capsys, tmp_path):
        json_path = tmp_path / "fig.json"
        csv_path = tmp_path / "fig.csv"
        code = main([
            "figure", "8", "--livejournal-n", "600",
            "--render-x", "num_frogs", "--render-y", "network_bytes",
            "--kind", "line",
            "--save-json", str(json_path),
            "--save-csv", str(csv_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[x: num_frogs]" in out
        assert json_path.exists()
        assert csv_path.exists()

    def test_saved_json_loads_back(self, capsys, tmp_path):
        from repro.experiments import load_figure_json

        json_path = tmp_path / "fig.json"
        main([
            "figure", "8", "--livejournal-n", "600",
            "--save-json", str(json_path),
        ])
        figure = load_figure_json(json_path)
        assert figure.figure_id == "8"
        assert figure.rows


class TestChartCommand:
    def test_chart_from_saved_json(self, capsys, tmp_path):
        json_path = tmp_path / "fig.json"
        main([
            "figure", "8", "--livejournal-n", "600",
            "--save-json", str(json_path),
        ])
        capsys.readouterr()
        code = main([
            "chart", str(json_path),
            "--x", "num_frogs", "--y", "network_bytes", "--kind", "line",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "[x: num_frogs]" in out
        assert "Figure 8" in out


class TestAdaptiveCommand:
    def test_adaptive_run(self, capsys):
        code = main([
            "adaptive", "--n", "500", "--k", "10",
            "--pilot-frogs", "300", "--max-frogs", "2400",
            "--machines", "4",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "adaptive top-10 schedule" in out
        assert "Remark 6 target frogs" in out


class TestTrackCommand:
    def test_track_run(self, capsys):
        code = main([
            "track", "--n", "500", "--k", "5", "--ticks", "2",
            "--machines", "4", "--frogs", "1000",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "tracking under churn" in out
        assert "list stability" in out


class TestFaultsCommand:
    def test_faults_run(self, capsys):
        code = main([
            "faults", "--n", "500", "--crash", "0", "--drop", "0.1",
            "--machines", "4", "--frogs", "1000", "--top-k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "crashed machines      : [0]" in out
        assert "mass captured" in out

    def test_no_faults_run(self, capsys):
        code = main([
            "faults", "--n", "500", "--machines", "4", "--frogs", "800",
        ])
        assert code == 0
        assert "none" in capsys.readouterr().out


class TestPprCommand:
    def test_ppr_run(self, capsys):
        code = main([
            "ppr", "7", "42",
            "--workload", "twitter", "--n", "500",
            "--frogs", "2000", "--top-k", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "personalized PageRank for seeds [7, 42]" in out
        assert "#  1" in out or "# 1" in out

    def test_ppr_parser(self):
        args = build_parser().parse_args(["ppr", "3", "--ps", "0.5"])
        assert args.seeds == [3]
        assert args.ps == 0.5
