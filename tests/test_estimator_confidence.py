"""Tests for the estimator's confidence utilities."""

import numpy as np
import pytest

from repro.core import FrogWildConfig, PageRankEstimate, run_frogwild
from repro.errors import ConfigError
from repro.graph import star_graph


class TestStandardErrors:
    def test_binomial_formula(self):
        est = PageRankEstimate(np.array([50, 50]), num_frogs=100)
        se = est.standard_errors()
        np.testing.assert_allclose(se, np.sqrt(0.25 / 100))

    def test_zero_for_empty_vertices_at_large_n(self):
        est = PageRankEstimate(np.array([100, 0]), num_frogs=100)
        se = est.standard_errors()
        assert se[0] == 0.0  # p = 1 -> no variance
        assert se[1] == 0.0  # p = 0 -> no variance

    def test_shrinks_with_more_frogs(self):
        small = PageRankEstimate(np.array([5, 5]), num_frogs=10)
        large = PageRankEstimate(np.array([500, 500]), num_frogs=1000)
        assert large.standard_errors()[0] < small.standard_errors()[0]


class TestSeparationZ:
    def test_clear_separation(self):
        est = PageRankEstimate(np.array([900, 90, 10]), num_frogs=1000)
        assert est.separation_z(1) > 10

    def test_tied_boundary_is_zero(self):
        est = PageRankEstimate(np.array([500, 250, 250]), num_frogs=1000)
        assert est.separation_z(2) == pytest.approx(0.0, abs=1e-9)

    def test_k_covering_all_is_infinite(self):
        est = PageRankEstimate(np.array([1, 1]), num_frogs=2)
        assert est.separation_z(2) == float("inf")

    def test_validation(self):
        est = PageRankEstimate(np.array([1, 1]), num_frogs=2)
        with pytest.raises(ConfigError):
            est.separation_z(0)

    def test_real_run_hub_clearly_separated(self):
        graph = star_graph(30)
        result = run_frogwild(
            graph,
            FrogWildConfig(num_frogs=5000, iterations=6, seed=0),
            num_machines=2,
        )
        # The hub holds ~half the mass; rank-1 separation is enormous.
        assert result.estimate.separation_z(1) > 5
