"""Dynamic graphs: churn generation and continuous top-k tracking.

Implements the paper's motivating OSN scenario (Section 1): the graph
changes constantly and the top-k PageRank list must be kept fresh with
a fast approximation rather than recomputed exactly.
"""

from .churn import ChurnGenerator
from .graph import DynamicDiGraph, GraphDelta
from .tracker import PageRankTracker, TrackerUpdate, stable_hash_partition
from .window import ActivityWindow

__all__ = [
    "DynamicDiGraph",
    "GraphDelta",
    "ChurnGenerator",
    "ActivityWindow",
    "PageRankTracker",
    "TrackerUpdate",
    "stable_hash_partition",
]
