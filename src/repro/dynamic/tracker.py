"""Continuous top-k PageRank tracking over a churning graph.

The paper's OSN pitch (Section 1): key users are few, the activity
graph changes constantly, and what matters is keeping the *top-k list*
fresh — not the full PageRank vector.  :class:`PageRankTracker` runs
FrogWild after every churn batch and reports, per update, the new list,
its overlap with the previous one, and the full network/time cost.

Two system points make the per-update cost realistic:

* **Stable hash ingress** — re-partitioning the whole graph per update
  would swamp the savings, so edges are placed by a deterministic hash
  of their endpoints: an edge that survives churn keeps its machine,
  and the per-update ingress cost is proportional to the *new* edges
  only.  The tracker accounts that cost separately (the paper excludes
  ingress from measurements; we report it so the dynamic story is
  honest).
* **Fresh run per snapshot** — frogs are cheap; restarting them beats
  any attempt to patch stale counters, and matches the paper's
  "recalculate constantly with a fast approximation" framing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import (
    CostModel,
    EdgePartition,
    MessageSizeModel,
    stable_hash_machines,
)
from ..core import FrogWildConfig, FrogWildRunner, top_k_jaccard
from ..engine import build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from ..metrics import normalized_mass_captured
from ..pagerank import exact_pagerank
from .graph import DynamicDiGraph, GraphDelta

__all__ = ["TrackerUpdate", "PageRankTracker", "stable_hash_partition"]


def stable_hash_partition(
    graph: DiGraph, num_machines: int, seed: int = 0
) -> EdgePartition:
    """Vertex-cut placement by endpoint-pair hash.

    Thin wrapper over :func:`~repro.cluster.stable_hash_machines` (the
    primitive now lives in the cluster layer, also registered with
    :func:`~repro.cluster.make_partitioner` as ``"stable-hash"``).
    Deterministic in ``(source, target, seed)``: the same edge always
    lands on the same machine, across snapshots, insertions and
    deletions — the property incremental ingress needs.  Unlike the
    registered partitioner this wrapper accepts edgeless graphs (a
    churned-to-empty snapshot still has a well-defined, empty ingress).
    """
    if num_machines < 1:
        raise ConfigError("num_machines must be positive")
    n = graph.num_vertices
    keys = graph.edge_sources().astype(np.int64) * n + graph.indices
    return EdgePartition(
        stable_hash_machines(keys, num_machines, seed), num_machines
    )


@dataclass(frozen=True)
class TrackerUpdate:
    """Cost and answer-quality record of one tracker refresh."""

    step: int
    num_edges: int
    edges_added: int
    edges_removed: int
    top_k: np.ndarray
    jaccard_vs_previous: float
    network_bytes: int
    total_time_s: float
    new_edge_placements: int
    mass_vs_exact: float | None = None


class PageRankTracker:
    """Keeps a fresh FrogWild top-k over a :class:`DynamicDiGraph`.

    Parameters
    ----------
    graph:
        The live graph; the tracker applies deltas to it.
    k:
        Size of the tracked top-k list.
    config:
        FrogWild parameters for every refresh.
    num_machines:
        Simulated cluster size.
    validate:
        When true, each refresh also solves exact PageRank on the
        snapshot and records the normalized captured mass — expensive,
        meant for experiments that grade tracking quality.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        k: int = 100,
        config: FrogWildConfig | None = None,
        num_machines: int = 16,
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int = 0,
        validate: bool = False,
    ) -> None:
        if k < 1:
            raise ConfigError("k must be positive")
        if k > graph.num_vertices:
            raise ConfigError(
                f"k={k} exceeds the vertex count {graph.num_vertices}"
            )
        self.graph = graph
        self.k = k
        self.config = config or FrogWildConfig(seed=seed)
        self.num_machines = num_machines
        self.cost_model = cost_model
        self.size_model = size_model
        self.seed = seed
        self.validate = validate
        self.history: list[TrackerUpdate] = []
        self._step = 0
        self._known_keys = np.empty(0, dtype=np.int64)
        self._current_top: np.ndarray | None = None
        self._refresh(edges_added=graph.num_edges, edges_removed=0)

    # ------------------------------------------------------------------
    @property
    def current_top_k(self) -> np.ndarray:
        """Latest top-k vertex ids (most recent refresh)."""
        assert self._current_top is not None
        return self._current_top

    def update(self, delta: GraphDelta) -> TrackerUpdate:
        """Apply one churn batch and refresh the ranking."""
        added, removed = self.graph.apply(delta)
        return self._refresh(edges_added=added, edges_removed=removed)

    # ------------------------------------------------------------------
    def _refresh(self, edges_added: int, edges_removed: int) -> TrackerUpdate:
        snapshot = self.graph.snapshot()
        n = snapshot.num_vertices
        keys = snapshot.edge_sources() * n + snapshot.indices

        # Incremental ingress: only edges unseen so far need placement.
        fresh = ~np.isin(keys, self._known_keys)
        new_placements = int(fresh.sum())
        self._known_keys = keys

        partition = stable_hash_partition(
            snapshot, self.num_machines, seed=self.seed
        )
        state = build_cluster(
            snapshot,
            self.num_machines,
            cost_model=self.cost_model,
            size_model=self.size_model,
            seed=self.seed,
            partition=partition,
        )
        run_config = self.config.with_updates(
            seed=None if self.config.seed is None
            else self.config.seed + self._step
        )
        result = FrogWildRunner(state, run_config).run()

        top = result.estimate.top_k(self.k)
        jaccard = (
            top_k_jaccard(self._current_top, top)
            if self._current_top is not None
            else 1.0
        )
        mass = None
        if self.validate:
            truth = exact_pagerank(snapshot)
            mass = normalized_mass_captured(
                result.estimate.vector(), truth, self.k
            )

        update = TrackerUpdate(
            step=self._step,
            num_edges=self.graph.num_edges,
            edges_added=edges_added,
            edges_removed=edges_removed,
            top_k=top,
            jaccard_vs_previous=jaccard,
            network_bytes=result.report.network_bytes,
            total_time_s=result.report.total_time_s,
            new_edge_placements=new_placements,
            mass_vs_exact=mass,
        )
        self.history.append(update)
        self._current_top = top
        self._step += 1
        return update

    # ------------------------------------------------------------------
    def total_network_bytes(self) -> int:
        """Cumulative refresh traffic over the tracker's lifetime."""
        return sum(u.network_bytes for u in self.history)

    def total_time_s(self) -> float:
        return sum(u.total_time_s for u in self.history)

    def churn_stability(self) -> float:
        """Mean consecutive-list Jaccard over all updates after the
        first — how steady the reported top-k is under churn."""
        if len(self.history) < 2:
            return 1.0
        return float(
            np.mean([u.jaccard_vs_previous for u in self.history[1:]])
        )
