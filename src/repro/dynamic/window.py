"""Sliding-window activity graph.

The paper's OSN application rests on reference [19], which ranks users
on a *mixture of connectivity and activity graphs* — and the activity
graph is "highly dynamic": an edge exists while the interaction it
represents is recent.  :class:`ActivityWindow` models exactly that: a
stream of timestamped interactions, an edge alive while at least one
interaction between its endpoints is younger than the horizon.

The window emits :class:`~repro.dynamic.GraphDelta` batches describing
presence *transitions* (edge appeared / last interaction expired); the
consumer owns the graph and applies them, so a
:class:`~repro.dynamic.PageRankTracker` consumes the stream directly::

    window = ActivityWindow(num_vertices=n, horizon=3600.0)
    live = DynamicDiGraph(n)
    tracker = PageRankTracker(live, ...)
    for timestamp, batch in feed:
        tracker.update(window.observe(batch, timestamp))
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..errors import ConfigError, GraphError
from .graph import DynamicDiGraph, GraphDelta, _as_edge_array

__all__ = ["ActivityWindow"]


class ActivityWindow:
    """Multiset of timestamped interactions with a sliding horizon.

    Parameters
    ----------
    num_vertices:
        Fixed user universe.
    horizon:
        Age (in the caller's time unit) past which an interaction no
        longer supports its edge.
    """

    def __init__(self, num_vertices: int, horizon: float) -> None:
        if num_vertices < 1:
            raise GraphError("num_vertices must be positive")
        if horizon <= 0:
            raise ConfigError("horizon must be positive")
        self._n = int(num_vertices)
        self.horizon = float(horizon)
        # Interaction multiset: edge key -> live interaction count.
        self._counts: dict[int, int] = {}
        # FIFO of (timestamp, keys array) batches awaiting expiry.
        self._events: deque[tuple[float, np.ndarray]] = deque()
        self._clock = -np.inf

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_live_interactions(self) -> int:
        """Interactions currently inside the horizon (with multiplicity)."""
        return sum(self._counts.values())

    @property
    def clock(self) -> float:
        """Timestamp of the latest observation."""
        return self._clock

    # ------------------------------------------------------------------
    def observe(
        self,
        edges: np.ndarray | list[tuple[int, int]],
        timestamp: float,
    ) -> GraphDelta:
        """Ingest one interaction batch and advance time.

        Evicts every interaction older than ``timestamp - horizon``,
        then records the batch.  Returns the presence-transition delta
        for the caller to apply (e.g. via ``PageRankTracker.update``);
        the window itself only tracks interaction counts.
        """
        if timestamp < self._clock:
            raise ConfigError(
                f"timestamps must be non-decreasing "
                f"(got {timestamp} after {self._clock})"
            )
        self._clock = timestamp

        appeared = self._ingest(edges, timestamp)
        expired = self._evict(timestamp - self.horizon)
        # An edge refreshed in this very batch must not expire.
        expired -= appeared
        still_present = {
            key for key in expired if self._counts.get(key, 0) > 0
        }
        expired -= still_present

        return GraphDelta(
            added=self._keys_to_edges(appeared),
            removed=self._keys_to_edges(expired),
        )

    def current_edges(self) -> np.ndarray:
        """Edges currently alive in the window, as ``(m, 2)`` rows."""
        return self._keys_to_edges(set(self._counts))

    def to_dynamic_graph(self) -> DynamicDiGraph:
        """Materialize the window's present edge set (e.g. to seed a
        tracker that joins an already-running stream)."""
        return DynamicDiGraph(self._n, self.current_edges())

    # ------------------------------------------------------------------
    def _ingest(self, edges, timestamp: float) -> set[int]:
        arr = _as_edge_array(edges)
        if arr.size and arr.max() >= self._n:
            raise GraphError("edge endpoint out of range")
        keys = arr[:, 0] * self._n + arr[:, 1] if arr.size else np.empty(
            0, dtype=np.int64
        )
        appeared: set[int] = set()
        for key in keys.tolist():
            before = self._counts.get(key, 0)
            self._counts[key] = before + 1
            if before == 0:
                appeared.add(key)
        if keys.size:
            self._events.append((timestamp, keys))
        return appeared

    def _evict(self, cutoff: float) -> set[int]:
        """Drop interactions with ``timestamp <= cutoff``; returns keys
        whose live count reached zero."""
        expired: set[int] = set()
        while self._events and self._events[0][0] <= cutoff:
            _, keys = self._events.popleft()
            for key in keys.tolist():
                remaining = self._counts[key] - 1
                if remaining == 0:
                    del self._counts[key]
                    expired.add(key)
                else:
                    self._counts[key] = remaining
        return expired

    def _keys_to_edges(self, keys: set[int]) -> np.ndarray:
        if not keys:
            return np.empty((0, 2), dtype=np.int64)
        arr = np.fromiter(keys, dtype=np.int64, count=len(keys))
        return np.column_stack([arr // self._n, arr % self._n])
