"""Edge-churn workload generator for dynamic-graph experiments.

Models the activity dynamics of the paper's OSN scenario (Section 1,
third application; reference [19] uses a *mixture of connectivity and
activity graphs*, the latter "highly dynamic"):

* **additions** follow preferential attachment on in-degree — activity
  concentrates on already-popular users, preserving the power-law shape
  that makes top-k recovery meaningful;
* **removals** hit uniformly random existing edges — interactions expire
  regardless of endpoint popularity.

Rates are per-step fractions of the current edge count, so the graph
stays in a statistically steady state under equal rates.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from ..errors import ConfigError
from .graph import DynamicDiGraph, GraphDelta

__all__ = ["ChurnGenerator"]


class ChurnGenerator:
    """Produces a stream of :class:`GraphDelta` batches for a graph.

    Parameters
    ----------
    add_rate:
        Edges added per step, as a fraction of the current edge count.
    remove_rate:
        Edges removed per step, as a fraction of the current edge count.
    attachment_bias:
        Mixing weight for preferential attachment of added edges'
        *targets*: 1.0 = pure in-degree-proportional, 0.0 = uniform.
    seed:
        Generator seed (a distinct stream from every engine component).
    """

    def __init__(
        self,
        add_rate: float = 0.01,
        remove_rate: float = 0.01,
        attachment_bias: float = 0.8,
        seed: int | None = 0,
    ) -> None:
        if add_rate < 0 or remove_rate < 0:
            raise ConfigError("churn rates must be non-negative")
        if add_rate == 0 and remove_rate == 0:
            raise ConfigError("at least one churn rate must be positive")
        if not 0.0 <= attachment_bias <= 1.0:
            raise ConfigError("attachment_bias must lie in [0, 1]")
        self.add_rate = add_rate
        self.remove_rate = remove_rate
        self.attachment_bias = attachment_bias
        self.rng = np.random.default_rng(
            seed if seed is None else [107, seed]
        )

    # ------------------------------------------------------------------
    def step(self, graph: DynamicDiGraph) -> GraphDelta:
        """One churn batch against the graph's *current* state."""
        m = graph.num_edges
        num_add = int(round(self.add_rate * m))
        num_remove = int(round(self.remove_rate * m))

        removed = self._pick_removals(graph, num_remove)
        added = self._pick_additions(graph, num_add)
        return GraphDelta(added=added, removed=removed)

    def stream(
        self, graph: DynamicDiGraph, steps: int, apply: bool = True
    ) -> Iterator[GraphDelta]:
        """Yield ``steps`` deltas; with ``apply`` (default) each delta is
        applied to the graph before the next one is generated, so the
        stream models a live feed rather than a fork."""
        if steps < 0:
            raise ConfigError("steps must be non-negative")
        for _ in range(steps):
            delta = self.step(graph)
            if apply:
                graph.apply(delta)
            yield delta

    # ------------------------------------------------------------------
    def _pick_removals(self, graph: DynamicDiGraph, count: int) -> np.ndarray:
        if count == 0 or graph.num_edges == 0:
            return np.empty((0, 2), dtype=np.int64)
        keys = graph.edge_keys()
        count = min(count, int(keys.size))
        picks = self.rng.choice(keys.size, size=count, replace=False)
        from ..store import keys_to_edges

        return keys_to_edges(keys[picks], graph.num_vertices)

    def _pick_additions(self, graph: DynamicDiGraph, count: int) -> np.ndarray:
        if count == 0:
            return np.empty((0, 2), dtype=np.int64)
        n = graph.num_vertices
        sources = self.rng.integers(0, n, size=count)

        # Preferential attachment by in-degree with a uniform floor.
        in_degree = np.bincount(
            graph.edge_keys() % n, minlength=n
        ).astype(np.float64)
        weights = self.attachment_bias * in_degree
        weights += (1.0 - self.attachment_bias) * max(in_degree.sum() / n, 1.0)
        total = weights.sum()
        if total <= 0:
            targets = self.rng.integers(0, n, size=count)
        else:
            targets = self.rng.choice(n, size=count, p=weights / total)

        # Avoid self-loops by redrawing collisions uniformly.
        loops = sources == targets
        if loops.any():
            targets[loops] = (targets[loops] + 1 + self.rng.integers(
                0, n - 1, size=int(loops.sum())
            )) % n
        return np.column_stack([sources, targets])
