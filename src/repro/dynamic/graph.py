"""Mutable directed graph for churn experiments.

The paper's introduction motivates FrogWild with *dynamic* graphs: OSN
connectivity/activity graphs change constantly, so PageRank "should be
recalculated constantly" and a fast approximation beats an exact solve
every tick.  :class:`DynamicDiGraph` is the substrate for that scenario:
an edge set over a fixed vertex universe supporting batched insertions
and deletions, a monotone version counter, and cheap snapshotting to the
immutable CSR :class:`~repro.graph.DiGraph` every solver consumes.

Edges are stored as a sorted array of ``source * n + target`` keys, so
snapshots are O(m) with no Python-level per-edge work.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import GraphError
from ..graph import DiGraph
from ..graph.builder import from_edges
from ..graph.digraph import _deprecated

__all__ = ["DynamicDiGraph", "GraphDelta"]


class GraphDelta:
    """One batch of edge changes: insertions and deletions.

    Both arrays are ``(k, 2)`` of ``(source, target)`` rows.  A delta is
    immutable; appliers report how many of its edges actually changed
    the graph (duplicates/missing edges are counted as no-ops).
    """

    __slots__ = ("added", "removed")

    def __init__(
        self,
        added: Iterable[tuple[int, int]] | np.ndarray = (),
        removed: Iterable[tuple[int, int]] | np.ndarray = (),
    ) -> None:
        self.added = _as_edge_array(added)
        self.removed = _as_edge_array(removed)

    @property
    def num_added(self) -> int:
        return int(self.added.shape[0])

    @property
    def num_removed(self) -> int:
        return int(self.removed.shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GraphDelta(+{self.num_added}, -{self.num_removed})"


def _as_edge_array(edges) -> np.ndarray:
    arr = np.asarray(
        edges if isinstance(edges, np.ndarray) else list(edges),
        dtype=np.int64,
    )
    if arr.size == 0:
        return np.empty((0, 2), dtype=np.int64)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise GraphError(f"edges must be (k, 2) pairs, got shape {arr.shape}")
    if arr.min() < 0:
        raise GraphError("vertex ids must be non-negative")
    return arr


class DynamicDiGraph:
    """Updatable edge set over vertices ``0 .. n-1``.

    Parameters
    ----------
    num_vertices:
        Fixed vertex universe (OSN user base); edges may come and go,
        vertices do not.
    edges:
        Initial edge list (deduplicated).
    """

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]] | np.ndarray = (),
    ) -> None:
        if num_vertices < 1:
            raise GraphError("num_vertices must be positive")
        self._n = int(num_vertices)
        arr = _as_edge_array(edges)
        if arr.size and arr.max() >= self._n:
            raise GraphError("edge endpoint out of range")
        self._keys = np.unique(arr[:, 0] * self._n + arr[:, 1])
        self._version = 0

    @classmethod
    def from_digraph(cls, graph: DiGraph) -> "DynamicDiGraph":
        """Seed the dynamic graph with a static snapshot's edges."""
        return cls(graph.num_vertices, graph._edge_array())

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        return int(self._keys.size)

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutating call."""
        return self._version

    def has_edge(self, source: int, target: int) -> bool:
        self._check_vertex(source)
        self._check_vertex(target)
        key = source * self._n + target
        # Single read of the key array: mutators replace it wholesale
        # (never in place), so one load is a consistent snapshot even
        # when a background refresh applies deltas concurrently.
        keys = self._keys
        pos = np.searchsorted(keys, key)
        return bool(pos < keys.size and keys[pos] == key)

    def edge_keys(self) -> np.ndarray:
        """Current edges as sorted ``source * n + target`` keys.

        The canonical :class:`~repro.store.GraphStore` read — and the
        graph's own internal representation, so this is free.  Reads
        the key array exactly once (mutators replace it wholesale, they
        never write in place), so the result is a consistent snapshot
        even under concurrent :meth:`apply` from another thread.
        Callers must treat the array as read-only.
        """
        return self._keys

    def scan(self, window) -> np.ndarray:
        """Window-filtered edge keys (see :class:`repro.store.Window`)."""
        from ..store.base import scan_keys

        return scan_keys(self._keys, self._n, window)

    def _edge_array(self) -> np.ndarray:
        """Current edges as ``(m, 2)`` rows (internal, consistent)."""
        keys = self._keys
        return np.column_stack([keys // self._n, keys % self._n])

    def edge_array(self) -> np.ndarray:
        """Deprecated: current edges as ``(m, 2)`` rows.

        Use :meth:`edge_keys` (the canonical store read) or
        ``repro.store.keys_to_edges(graph.edge_keys(), n)``.
        """
        _deprecated(
            "DynamicDiGraph.edge_array()",
            "DynamicDiGraph.edge_keys() / repro.store.keys_to_edges()",
        )
        return self._edge_array()

    def out_degree(self) -> np.ndarray:
        """Current out-degree vector."""
        return np.bincount(self._keys // self._n, minlength=self._n)

    # ------------------------------------------------------------------
    def add_edges(self, edges) -> int:
        """Insert edges; returns how many were actually new."""
        arr = _as_edge_array(edges)
        if arr.size == 0:
            return 0
        if arr.max() >= self._n:
            raise GraphError("edge endpoint out of range")
        keys = np.unique(arr[:, 0] * self._n + arr[:, 1])
        fresh = keys[~np.isin(keys, self._keys, assume_unique=True)]
        if fresh.size:
            self._keys = np.sort(np.concatenate([self._keys, fresh]))
        self._version += 1
        return int(fresh.size)

    def remove_edges(self, edges) -> int:
        """Delete edges; returns how many actually existed."""
        arr = _as_edge_array(edges)
        if arr.size == 0:
            return 0
        if arr.max() >= self._n:
            raise GraphError("edge endpoint out of range")
        keys = np.unique(arr[:, 0] * self._n + arr[:, 1])
        present = np.isin(self._keys, keys, assume_unique=True)
        removed = int(present.sum())
        if removed:
            self._keys = self._keys[~present]
        self._version += 1
        return removed

    def apply(self, delta: GraphDelta) -> tuple[int, int]:
        """Apply one delta; returns (edges added, edges removed).

        Removals run first so a delta may atomically rewire (remove an
        edge and re-add it elsewhere) without order surprises.
        """
        removed = self.remove_edges(delta.removed)
        added = self.add_edges(delta.added)
        return added, removed

    # ------------------------------------------------------------------
    def snapshot(self, repair_dangling: str = "self-loop") -> DiGraph:
        """Freeze the current edge set into an immutable CSR graph.

        ``repair_dangling`` follows :class:`~repro.graph.GraphBuilder`
        semantics — the default self-loop repair keeps the snapshot
        walkable even when churn strands vertices without successors.
        """
        return from_edges(
            self._edge_array(),
            num_vertices=self._n,
            repair_dangling=repair_dangling,
        )

    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range [0, {self._n})")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicDiGraph(n={self._n}, m={self.num_edges}, "
            f"version={self._version})"
        )
