"""Checkpoint/restore recovery — the alternative rebirth makes moot.

Synchronous graph engines recover from machine failures by restoring a
consistent snapshot (PowerGraph inherits the classic Chandy-Lamport
style checkpointing).  FrogWild's walkers are anonymous and uniformly
born, so the paper's implicit recovery story is far cheaper: just
rebirth the lost walkers uniformly.  This module implements the classic
alternative so the two can be compared head to head:

* every ``interval`` supersteps each machine replicates the frog
  counters of its mastered vertices to a buddy machine (one record per
  frog-holding vertex, kind ``"checkpoint"`` on the wire);
* on a crash with checkpoint recovery, the dead machine's frogs are
  restored *from the last checkpoint* — positions that are up to
  ``interval`` steps stale — rather than lost or reborn.

The bench (`bench_faults.py` / `bench_checkpoint.py`) shows the
trade-off: checkpointing pays a continuous traffic tax for accuracy
that uniform rebirth delivers for free, precisely because a frog's
identity carries no information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FrogWildConfig
from ..engine import ClusterState
from ..errors import ConfigError
from .runner import FaultyFrogWildRunner
from .schedule import FaultSchedule

__all__ = ["CheckpointConfig", "CheckpointedFrogWildRunner"]


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpointing policy.

    Attributes
    ----------
    interval:
        Supersteps between checkpoints; the snapshot at step 0 (initial
        placement) is always taken.
    """

    interval: int = 1

    def __post_init__(self) -> None:
        if self.interval < 1:
            raise ConfigError("checkpoint interval must be positive")


class CheckpointedFrogWildRunner(FaultyFrogWildRunner):
    """Faulty runner whose crashes restore from checkpoints.

    Crashes in the schedule are honoured with checkpoint recovery
    regardless of their ``rebirth`` flag: the dead machine's mastered
    vertices get their frog counters *as of the last checkpoint* back.
    Frogs that hopped OFF those vertices since the checkpoint survive
    on their new vertices, so restored walkers are duplicated relative
    to a loss-free run — the standard stale-snapshot artifact, counted
    in :attr:`frogs_restored`.
    """

    def __init__(
        self,
        state: ClusterState,
        config: FrogWildConfig,
        schedule: FaultSchedule,
        checkpoint: CheckpointConfig | None = None,
        start_distribution: np.ndarray | None = None,
    ) -> None:
        super().__init__(state, config, schedule, start_distribution)
        self.checkpoint = checkpoint or CheckpointConfig()
        self._snapshot: np.ndarray | None = None
        #: Frogs recovered from snapshots across all crashes.
        self.frogs_restored = 0
        #: Checkpoints taken (for cost reporting).
        self.checkpoints_taken = 0

    # ------------------------------------------------------------------
    def _begin_superstep(
        self, step: int, frogs: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        if step % self.checkpoint.interval == 0:
            self._take_checkpoint(frogs)

        crashes = self.schedule.crashes_at(step)
        if not crashes:
            return frogs
        frogs = frogs.copy()
        for crash in crashes:
            machine = crash.machine
            self.fault_log.crashed_machines.append(machine)
            self.synchronizer.disable_machine(machine)
            mastered = self.state.replication.masters_on(machine)
            lost = int(frogs[mastered].sum())
            self.fault_log.frogs_lost_to_crashes += lost
            if self._snapshot is None:
                frogs[mastered] = 0
                continue
            restored = self._snapshot[mastered]
            frogs[mastered] = restored
            self.frogs_restored += int(restored.sum())
        return frogs

    # ------------------------------------------------------------------
    def _take_checkpoint(self, frogs: np.ndarray) -> None:
        """Replicate each machine's mastered frog counters to a buddy."""
        state = self.state
        self._snapshot = frogs.copy()
        self.checkpoints_taken += 1
        num_machines = state.num_machines
        if num_machines < 2:
            return  # local snapshot only: nothing crosses the wire
        masters = state.replication.masters
        holding = frogs > 0
        if not holding.any():
            return
        records = np.bincount(
            masters[holding], minlength=num_machines
        ).astype(np.int64)
        matrix = np.zeros((num_machines, num_machines), dtype=np.int64)
        buddies = (np.arange(num_machines) + 1) % num_machines
        matrix[np.arange(num_machines), buddies] = records
        state.send_pair_matrix(matrix, kind="checkpoint")
        state.charge_many(records, phase="checkpoint")
