"""Straggler-aware cost model.

BSP is only as fast as its slowest machine: the barrier waits for
everyone.  :class:`StragglerCostModel` gives each machine an individual
slowdown factor applied to both its communication and compute time, so
a single dragging node visibly inflates every superstep — the classic
argument for randomized/partial synchronization, which reduces how much
work the straggler is handed in the first place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import CostModel, SuperstepCost
from ..errors import ConfigError

__all__ = ["StragglerCostModel"]


@dataclass(frozen=True, eq=False)
class StragglerCostModel(CostModel):
    """Cost model with per-machine slowdown multipliers.

    ``slowdowns[i] = 2.0`` means machine ``i`` moves bytes and executes
    ops at half speed.  Factors must be >= 1 (healthy machines are 1.0);
    the vector length fixes the cluster size this model may be used
    with.
    """

    slowdowns: tuple[float, ...] = (1.0,)

    def __post_init__(self) -> None:
        if not self.slowdowns:
            raise ConfigError("slowdowns must not be empty")
        if any(s < 1.0 for s in self.slowdowns):
            raise ConfigError("slowdown factors must be >= 1")

    @property
    def num_machines(self) -> int:
        return len(self.slowdowns)

    def superstep_time(
        self,
        bytes_sent: np.ndarray,
        bytes_received: np.ndarray,
        cpu_ops: np.ndarray,
        num_messages: int = 0,
    ) -> SuperstepCost:
        sent = np.asarray(bytes_sent, dtype=np.float64)
        received = np.asarray(bytes_received, dtype=np.float64)
        ops = np.asarray(cpu_ops, dtype=np.float64)
        factors = np.asarray(self.slowdowns, dtype=np.float64)
        if sent.shape != factors.shape:
            raise ConfigError(
                f"cost model sized for {factors.size} machines, "
                f"got traffic vectors of shape {sent.shape}"
            )
        per_machine_comm = np.maximum(sent, received) * factors
        comm_time = float(per_machine_comm.max(initial=0.0))
        comm_time /= self.bandwidth_bytes_per_s
        comm_time += num_messages * self.per_message_overhead_s
        per_machine_compute = ops * factors
        compute_time = (
            float(per_machine_compute.max(initial=0.0)) / self.cpu_ops_per_s
        )
        return SuperstepCost(
            barrier_s=self.barrier_latency_s,
            comm_s=comm_time,
            compute_s=compute_time,
        )
