"""Fault injection: crashes, lossy transport and stragglers.

Demonstrates the robustness corollary of the paper's design: anonymous
uniformly-born walkers make FrogWild degrade gracefully under exactly
the failures that force synchronous PageRank to checkpoint or restart.
"""

from .checkpoint import CheckpointConfig, CheckpointedFrogWildRunner
from .costmodel import StragglerCostModel
from .runner import FaultLog, FaultyFrogWildRunner, run_frogwild_with_faults
from .schedule import FAULT_KINDS, FaultSchedule, MachineCrash, MessageDrop

__all__ = [
    "FAULT_KINDS",
    "MachineCrash",
    "MessageDrop",
    "FaultSchedule",
    "FaultLog",
    "FaultyFrogWildRunner",
    "run_frogwild_with_faults",
    "CheckpointConfig",
    "CheckpointedFrogWildRunner",
    "StragglerCostModel",
]
