"""Fault schedules: what breaks, when, and how.

Three failure modes cover what a BSP graph engine actually suffers:

* :class:`MachineCrash` — a machine dies at a given superstep.  The
  frogs resident on its mastered vertices are lost (optionally reborn
  uniformly, modelling a checkpoint-free restart of the walkers), and
  its mirrors drop out of synchronization for the rest of the run.
  Vertex *identities* survive — the replication layer re-hosts masters
  instantly, as PowerGraph's fault recovery would after replay.
* :class:`MessageDrop` — each boundary-crossing frog delivery is lost
  independently with a fixed probability (lossy transport / overflowing
  receive buffers).  Bytes are still charged: the message was sent.
* Stragglers are a *cost* phenomenon, not a correctness one — see
  :class:`repro.faults.StragglerCostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["FAULT_KINDS", "MachineCrash", "MessageDrop", "FaultSchedule"]

#: The one fault vocabulary shared by the *simulated* layer (this
#: module, interpreted by ``run_frogwild_with_faults``) and the *real*
#: layer (:class:`repro.traffic.ChaosSchedule`, which kills actual OS
#: worker processes).  ``kill`` — a machine/worker dies outright;
#: ``hang`` — it goes silent for a while (simulated only as a cost
#: phenomenon, see :class:`~repro.faults.StragglerCostModel`);
#: ``delay`` — its replies stall (latency-only); ``drop`` — individual
#: deliveries are lost.  Every simulated event maps into this taxonomy
#: via its ``chaos_kind`` property, which is what lets
#: ``ChaosSchedule.from_fault_schedule`` replay a simulated scenario
#: against real processes and vice versa.
FAULT_KINDS = ("kill", "hang", "delay", "drop")


@dataclass(frozen=True)
class MachineCrash:
    """One machine failing at the start of one superstep.

    Attributes
    ----------
    step:
        Superstep index (0-based) at which the crash takes effect.
    machine:
        The failing machine id.
    rebirth:
        When true (default), the lost frogs are reborn on uniformly
        random vertices — the cheap recovery FrogWild affords because
        walkers are anonymous and the birth law is uniform anyway.
        When false, the frogs are simply gone (the estimator keeps
        dividing by the original N, so mass is visibly missing).
    """

    step: int
    machine: int
    rebirth: bool = True

    def __post_init__(self) -> None:
        if self.step < 0:
            raise ConfigError("crash step must be non-negative")
        if self.machine < 0:
            raise ConfigError("machine id must be non-negative")

    @property
    def chaos_kind(self) -> str:
        """This event's name in the shared :data:`FAULT_KINDS` taxonomy."""
        return "kill"


@dataclass(frozen=True)
class MessageDrop:
    """Independent per-delivery loss on machine-crossing frog records."""

    probability: float

    @property
    def chaos_kind(self) -> str:
        """This event's name in the shared :data:`FAULT_KINDS` taxonomy."""
        return "drop"

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError(
                f"drop probability must lie in [0, 1], "
                f"got {self.probability}"
            )


@dataclass(frozen=True)
class FaultSchedule:
    """Everything that goes wrong during one run."""

    crashes: tuple[MachineCrash, ...] = ()
    message_drop: MessageDrop | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", tuple(self.crashes))
        seen: set[tuple[int, int]] = set()
        for crash in self.crashes:
            key = (crash.step, crash.machine)
            if key in seen:
                raise ConfigError(
                    f"duplicate crash of machine {crash.machine} "
                    f"at step {crash.step}"
                )
            seen.add(key)

    def crashes_at(self, step: int) -> list[MachineCrash]:
        """Crashes scheduled to fire at the given superstep."""
        return [c for c in self.crashes if c.step == step]

    @property
    def is_empty(self) -> bool:
        return not self.crashes and (
            self.message_drop is None or self.message_drop.probability == 0.0
        )
