"""FrogWild under injected faults.

:class:`FaultyFrogWildRunner` extends the stock runner through its two
subclass hooks:

* ``_begin_superstep`` fires scheduled :class:`~repro.faults.MachineCrash`
  events — frogs mastered on the dead machine are lost (and optionally
  reborn uniformly), and the machine's mirrors leave the sync pool for
  good;
* ``_post_scatter`` applies :class:`~repro.faults.MessageDrop` — each
  machine-crossing frog delivery is lost independently, *after* its
  bytes were charged (the message really was sent).

The headline property this module exists to demonstrate: because frogs
are anonymous, uniformly born, and individually meaningless, FrogWild
degrades *gracefully* — a crash that wipes 1/M of the walkers costs
roughly a 1/M accuracy dent (rebirth even less), while an exact
synchronous PageRank would have to restart or replay the lost partition
before its answer means anything.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel
from ..core import FrogWildConfig
from ..core.frogwild import FrogWildResult, FrogWildRunner
from ..engine import ClusterState, build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from .schedule import FaultSchedule

__all__ = ["FaultLog", "FaultyFrogWildRunner", "run_frogwild_with_faults"]


@dataclass
class FaultLog:
    """What the injected faults actually did to the run."""

    crashed_machines: list[int] = field(default_factory=list)
    frogs_lost_to_crashes: int = 0
    frogs_reborn: int = 0
    frogs_dropped_in_flight: int = 0

    @property
    def net_frogs_lost(self) -> int:
        """Walkers permanently removed from the run."""
        return (
            self.frogs_lost_to_crashes
            - self.frogs_reborn
            + self.frogs_dropped_in_flight
        )


class FaultyFrogWildRunner(FrogWildRunner):
    """The stock runner plus a fault schedule."""

    def __init__(
        self,
        state: ClusterState,
        config: FrogWildConfig,
        schedule: FaultSchedule,
        start_distribution: np.ndarray | None = None,
    ) -> None:
        super().__init__(state, config, start_distribution)
        for crash in schedule.crashes:
            if crash.machine >= state.num_machines:
                raise ConfigError(
                    f"crash targets machine {crash.machine} but the "
                    f"cluster has {state.num_machines}"
                )
        self.schedule = schedule
        self.fault_log = FaultLog()
        # Fault randomness must not perturb the walk randomness, so a
        # run with an empty schedule is bit-identical to the stock
        # runner: distinct stream.
        self._fault_rng = np.random.default_rng(
            config.seed if config.seed is None else [108, config.seed]
        )

    # ------------------------------------------------------------------
    def _begin_superstep(
        self, step: int, frogs: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        crashes = self.schedule.crashes_at(step)
        if not crashes:
            return frogs
        frogs = frogs.copy()
        n = frogs.size
        for crash in crashes:
            machine = crash.machine
            self.fault_log.crashed_machines.append(machine)
            self.synchronizer.disable_machine(machine)
            mastered = self.state.replication.masters_on(machine)
            lost = int(frogs[mastered].sum())
            frogs[mastered] = 0
            self.fault_log.frogs_lost_to_crashes += lost
            if crash.rebirth and lost:
                rebirth_positions = self._fault_rng.integers(
                    0, n, size=lost
                )
                frogs += np.bincount(rebirth_positions, minlength=n)
                self.fault_log.frogs_reborn += lost
        return frogs

    def _post_scatter(
        self, dest: np.ndarray, host: np.ndarray, next_frogs: np.ndarray
    ) -> None:
        drop = self.schedule.message_drop
        if drop is None or drop.probability == 0.0 or dest.size == 0:
            return
        remote = host != self._masters[dest]
        coins = self._fault_rng.random(dest.size) < drop.probability
        lost = remote & coins
        if lost.any():
            np.subtract.at(next_frogs, dest[lost], 1)
            self.fault_log.frogs_dropped_in_flight += int(lost.sum())


def run_frogwild_with_faults(
    graph: DiGraph,
    schedule: FaultSchedule,
    config: FrogWildConfig | None = None,
    num_machines: int = 16,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    state: ClusterState | None = None,
) -> tuple[FrogWildResult, FaultLog]:
    """Run FrogWild end to end under a fault schedule.

    Mirrors :func:`repro.core.run_frogwild`, returning the usual result
    plus the :class:`FaultLog` of what the schedule inflicted.
    """
    config = config or FrogWildConfig()
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=config.seed,
            partition=partition,
        )
    runner = FaultyFrogWildRunner(state, config, schedule)
    result = runner.run()
    return result, runner.fault_log
