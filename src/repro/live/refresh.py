"""Background refresh: build epochs off the query path.

A synchronous :meth:`~repro.live.LiveRankingService.refresh` runs the
whole pipeline — apply deltas, reconcile placements, patch replication
tables, snapshot, build the backend, publish — on the caller's thread.
That is fine for a driver loop, but in a serving deployment the caller
is the ingest path, and every millisecond it spends building the next
epoch is a millisecond of queries racing a busy CPU.  The paper's
low-latency story (cheap approximate answers under constant change)
wants the opposite split: *queries* pay only the atomic epoch swap;
*builds* happen elsewhere.

:class:`BackgroundRefresher` is that elsewhere.  Deltas are submitted
(each returning a :class:`RefreshTicket`), a worker thread drains the
queue, and each drain runs one build covering everything queued —
**coalescing**: when deltas arrive faster than builds complete, several
deltas share one epoch rather than queueing one epoch each, so the
refresher's lag is bounded by one build time instead of growing without
bound.  The built epoch is double-buffered: the current epoch serves
every query untouched until the one moment
:meth:`~repro.live.EpochManager.publish` swaps the reference — the only
step that ever happens on the path queries contend on.

Determinism for tests: the worker thread is optional.  Construct the
refresher (or :meth:`LiveRankingService.start_refresher` with
``thread=False``), submit deltas, and call :meth:`run_pending` to
execute exactly one build inline — same pipeline, no races.  The
``on_built`` hook fires after the next epoch is fully built but before
it is published, which is exactly where a tear test wants to dispatch
queries (they must run, and be stamped, wholly on the old epoch).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from ..dynamic import GraphDelta
from ..errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .service import LiveRankingService, RefreshUpdate

__all__ = ["RefreshTicket", "RefresherStats", "BackgroundRefresher"]


class RefreshTicket:
    """Handle to one submitted delta's eventual refresh outcome.

    Resolves to the :class:`~repro.live.RefreshUpdate` of the epoch
    build that covered the delta; coalesced deltas share one update
    (its ``coalesced_deltas`` field says how many).
    """

    def __init__(self, delta: GraphDelta | None) -> None:
        self.delta = delta
        self._event = threading.Event()
        self._update: "RefreshUpdate | None" = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> "RefreshUpdate":
        """Block until the covering epoch is published (or timeout)."""
        if not self._event.wait(timeout):
            raise TimeoutError("refresh not published yet")
        if self._error is not None:
            raise self._error
        return self._update  # type: ignore[return-value]

    def _resolve(self, update: "RefreshUpdate") -> None:
        self._update = update
        self._event.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()


@dataclass
class RefresherStats:
    """Lifetime counters of one :class:`BackgroundRefresher`."""

    builds: int = 0
    deltas_submitted: int = 0
    deltas_coalesced: int = 0
    max_coalesced: int = 0
    build_times_s: list[float] = field(default_factory=list)
    publish_times_s: list[float] = field(default_factory=list)

    def mean_build_s(self) -> float:
        if not self.build_times_s:
            return 0.0
        return sum(self.build_times_s) / len(self.build_times_s)

    def publish_p50_s(self) -> float:
        """Median time the query path was exposed to a swap."""
        if not self.publish_times_s:
            return 0.0
        ordered = sorted(self.publish_times_s)
        return ordered[len(ordered) // 2]

    def as_dict(self) -> dict[str, float]:
        return {
            "builds": float(self.builds),
            "deltas_submitted": float(self.deltas_submitted),
            "deltas_coalesced": float(self.deltas_coalesced),
            "max_coalesced": float(self.max_coalesced),
            "mean_build_s": self.mean_build_s(),
            "publish_p50_s": self.publish_p50_s(),
        }


class BackgroundRefresher:
    """Runs the refresh pipeline off the query path, coalescing deltas.

    Parameters
    ----------
    service:
        The :class:`~repro.live.LiveRankingService` whose source graph,
        ingresses, replication tables and epoch manager the builds
        drive.  The service's ``refresh_policy`` governs coalescing and
        queue backpressure.
    on_built:
        Optional hook called (with the service) after an epoch is fully
        built but *before* it is published — the seam tear tests use to
        dispatch queries mid-refresh.
    """

    def __init__(
        self,
        service: "LiveRankingService",
        on_built: Callable[["LiveRankingService"], None] | None = None,
    ) -> None:
        self.service = service
        self.on_built = on_built
        self.stats = RefresherStats()
        #: Last exception a worker-thread build raised; the failing
        #: build's tickets already carry it.
        self.last_error: BaseException | None = None
        self._cond = threading.Condition()
        self._pending: list[RefreshTicket] = []
        self._thread: threading.Thread | None = None
        self._stop_event: threading.Event | None = None
        self._stopped = False

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, delta: GraphDelta | None = None) -> RefreshTicket:
        """Queue one delta (or a bare republish) for the next build."""
        ticket = RefreshTicket(delta)
        max_pending = self.service.refresh_policy.max_pending
        with self._cond:
            if self._stopped:
                # Fail fast: after stop() no worker will ever drain the
                # queue, so enqueueing would hang the ticket forever and
                # silently drop the delta.
                raise ConfigError(
                    "refresher is stopped; start() it again before "
                    "submitting refreshes"
                )
            if max_pending is not None:
                while len(self._pending) >= max_pending:
                    if self._thread is None:
                        raise ConfigError(
                            f"refresh queue is full ({max_pending} pending) "
                            "and no worker thread is draining it; start() "
                            "the refresher or run_pending() manually"
                        )
                    self._cond.wait()
            self._pending.append(ticket)
            self.stats.deltas_submitted += 1
            self._cond.notify_all()
        return ticket

    def pending_count(self) -> int:
        with self._cond:
            return len(self._pending)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------
    def run_pending(self) -> "RefreshUpdate | None":
        """Execute one build covering the queued deltas, inline.

        Returns the published :class:`~repro.live.RefreshUpdate`, or
        ``None`` when nothing was queued.  This is the deterministic
        drive for tests and the worker loop's body; with coalescing
        disabled it covers exactly one queued delta per call.
        """
        with self._cond:
            if not self._pending:
                return None
            if self.service.refresh_policy.coalesce:
                batch, self._pending = self._pending, []
            else:
                batch = [self._pending.pop(0)]
            self._cond.notify_all()
        return self._build(batch)

    def _build(self, batch: list[RefreshTicket]) -> "RefreshUpdate":
        deltas = [ticket.delta for ticket in batch if ticket.delta is not None]
        try:
            update = self.service._refresh_pipeline(
                deltas,
                background=True,
                coalesced=len(batch),
                on_built=self.on_built,
            )
        except BaseException as error:
            for ticket in batch:
                ticket._fail(error)
            raise
        with self._cond:
            self.stats.builds += 1
            if len(batch) > 1:
                self.stats.deltas_coalesced += len(batch) - 1
            self.stats.max_coalesced = max(self.stats.max_coalesced, len(batch))
            self.stats.build_times_s.append(update.build_time_s)
            self.stats.publish_times_s.append(update.publish_s)
        for ticket in batch:
            ticket._resolve(update)
        return update

    # ------------------------------------------------------------------
    # Worker-thread lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "BackgroundRefresher":
        """Run the build loop in a daemon thread (idempotent)."""
        with self._cond:
            self._stopped = False
            if self._thread is not None:
                return self
            stop_event = threading.Event()
            self._stop_event = stop_event
            self._thread = threading.Thread(
                target=self._loop,
                args=(stop_event,),
                name="live-background-refresher",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self, flush: bool = True) -> None:
        """Stop the worker; drain (default) or abandon queued deltas.

        With ``flush=False`` still-queued tickets fail with
        :class:`~repro.errors.ConfigError` — their deltas were never
        applied, so the source graph is exactly as if they were never
        submitted.
        """
        with self._cond:
            self._stopped = True
            thread = self._thread
            stop_event = self._stop_event
            self._thread = None
            self._stop_event = None
            if stop_event is not None:
                stop_event.set()
            self._cond.notify_all()
        if thread is not None:
            thread.join()
        if flush:
            while self.run_pending() is not None:
                pass
        else:
            with self._cond:
                abandoned, self._pending = self._pending, []
                self._cond.notify_all()
            for ticket in abandoned:
                ticket._fail(ConfigError("refresher stopped before build"))

    @property
    def running(self) -> bool:
        return self._thread is not None

    def _loop(self, stop_event: threading.Event) -> None:
        while True:
            with self._cond:
                while not self._pending and not stop_event.is_set():
                    self._cond.wait()
                if stop_event.is_set():
                    # stop() drains or abandons what is left.
                    return
            # A failing build must not kill the loop: its tickets
            # already carry the error, and later submissions still
            # deserve builds.
            try:
                self.run_pending()
            except BaseException as error:
                self.last_error = error

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BackgroundRefresher(builds={self.stats.builds}, "
            f"pending={self.pending_count()}, running={self.running})"
        )
