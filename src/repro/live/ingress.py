"""Incremental edge-placement maintenance for a churning graph.

The paper excludes ingress from its measurements because PowerGraph
pays it once; a *live* serving stack cannot — every refresh of the
served snapshot needs the new edge set placed across machines.
Re-partitioning from scratch per refresh would swamp the savings of a
fast approximation, so :class:`IncrementalIngress` maintains the
placement *incrementally*: edges are placed by the deterministic
endpoint-pair hash of :func:`~repro.cluster.stable_hash_machines`, so
an edge that survives churn keeps its machine and a refresh only pays
for the edges that actually changed.  The class tracks exactly how
much it reused (the honesty metric the serving benchmarks assert on).

Determinism gives a strong invariant, pinned by the test suite: after
*any* sequence of deltas, the maintained placement is identical to a
from-scratch :func:`~repro.dynamic.stable_hash_partition` of the
current edge set under the ingress's current salt.

Hash placement is uniform but not adaptive: adversarial or heavily
skewed churn can drift the per-machine load.  When
:meth:`EdgePartition.load_imbalance` exceeds ``rebalance_threshold``
the ingress falls back to a **full repartition**: it re-salts the hash
(a fresh deterministic stream) and replaces every placement, paying
full ingress cost once to restore statistical balance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import EdgePartition, stable_hash_machines
from ..dynamic import DynamicDiGraph, GraphDelta
from ..errors import ConfigError
from ..graph import DiGraph

__all__ = ["IngressUpdate", "IncrementalIngress"]


@dataclass(frozen=True)
class IngressUpdate:
    """Placement-maintenance record of one reconciliation step."""

    step: int
    num_edges: int
    new_placements: int
    removed_placements: int
    reused_placements: int
    reuse_ratio: float
    load_imbalance: float
    full_repartition: bool
    salt: int


class IncrementalIngress:
    """Maintains a per-machine edge placement for a live graph.

    Parameters
    ----------
    graph:
        The live :class:`~repro.dynamic.DynamicDiGraph` whose edges are
        being placed.  The ingress reads the graph's current edge set on
        every :meth:`sync`; it never mutates the graph except through
        :meth:`apply`.
    num_machines:
        Target (sub-)cluster size.
    seed:
        Base hash salt; distinct seeds yield independent placements
        (sharded deployments run one ingress per shard under distinct
        seeds).
    rebalance_threshold:
        Max/mean edge-load ratio beyond which the ingress re-salts and
        fully repartitions.  ``None`` disables the fallback.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        num_machines: int,
        seed: int | None = 0,
        rebalance_threshold: float | None = 2.0,
    ) -> None:
        if num_machines < 1:
            raise ConfigError("num_machines must be positive")
        if rebalance_threshold is not None and rebalance_threshold <= 1.0:
            raise ConfigError(
                "rebalance_threshold must exceed 1.0 (perfect balance) "
                "or be None to disable the fallback"
            )
        self.graph = graph
        self.num_machines = num_machines
        self.seed = 0 if seed is None else int(seed)
        self.rebalance_threshold = rebalance_threshold
        self.full_repartitions = 0
        self.updates: list[IngressUpdate] = []
        self._step = 0
        self._keys = self._graph_keys()
        self._machines = stable_hash_machines(
            self._keys, num_machines, self.salt
        )

    # ------------------------------------------------------------------
    @property
    def salt(self) -> int:
        """Current hash salt; bumps deterministically per repartition."""
        return self.seed + 1_000_003 * self.full_repartitions

    @property
    def num_edges(self) -> int:
        return int(self._keys.size)

    def _graph_keys(self) -> np.ndarray:
        """The graph's current edge keys, sorted ascending."""
        edges = self.graph.edge_array()
        return edges[:, 0] * self.graph.num_vertices + edges[:, 1]

    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> IngressUpdate:
        """Apply one delta to the graph, then reconcile the placement."""
        self.graph.apply(delta)
        return self.sync()

    def sync(self) -> IngressUpdate:
        """Reconcile the placement with the graph's current edge set.

        Only touched edges move: surviving edges keep their machine (a
        pure array intersection), fresh edges are hashed in, vanished
        edges are dropped.  If the resulting load imbalance exceeds the
        threshold, fall back to a full re-salted repartition.
        """
        keys = self._graph_keys()
        survived = np.isin(keys, self._keys, assume_unique=True)
        fresh = keys[~survived]
        machines = np.empty(keys.size, dtype=np.int32)
        if survived.any():
            positions = np.searchsorted(self._keys, keys[survived])
            machines[survived] = self._machines[positions]
        machines[~survived] = stable_hash_machines(
            fresh, self.num_machines, self.salt
        )
        reused = int(survived.sum())
        removed = int(self._keys.size) - reused
        self._keys = keys
        self._machines = machines

        imbalance = self.load_imbalance()
        full = (
            self.rebalance_threshold is not None
            and keys.size > 0
            and imbalance > self.rebalance_threshold
        )
        if full:
            self._full_repartition()
            imbalance = self.load_imbalance()

        update = IngressUpdate(
            step=self._step,
            num_edges=int(keys.size),
            new_placements=int(keys.size) if full else int(fresh.size),
            removed_placements=removed,
            reused_placements=0 if full else reused,
            reuse_ratio=(
                0.0 if full else reused / keys.size if keys.size else 1.0
            ),
            load_imbalance=imbalance,
            full_repartition=full,
            salt=self.salt,
        )
        self.updates.append(update)
        self._step += 1
        return update

    def _full_repartition(self) -> None:
        """Re-salt the hash and replace every placement."""
        self.full_repartitions += 1
        self._machines = stable_hash_machines(
            self._keys, self.num_machines, self.salt
        )

    # ------------------------------------------------------------------
    def partition(self) -> EdgePartition:
        """The maintained placement over the live edge set (key order)."""
        return EdgePartition(self._machines.copy(), self.num_machines)

    def partition_for(self, snapshot: DiGraph) -> EdgePartition:
        """Placement aligned with ``snapshot``'s CSR edge order.

        Snapshot edges that exist in the live graph reuse their
        maintained machine; edges the snapshot added on its own (the
        dangling-vertex self-loop repairs of
        :meth:`~repro.dynamic.DynamicDiGraph.snapshot`) hash to the same
        deterministic placement, so the result is byte-identical to a
        from-scratch stable-hash partition of the snapshot.
        """
        n = snapshot.num_vertices
        if n != self.graph.num_vertices:
            raise ConfigError(
                "snapshot vertex count does not match the live graph"
            )
        keys = snapshot.edge_sources().astype(np.int64) * n + snapshot.indices
        machines = np.empty(keys.size, dtype=np.int32)
        positions = np.searchsorted(self._keys, keys)
        positions = np.minimum(positions, max(self._keys.size - 1, 0))
        known = (
            (self._keys[positions] == keys)
            if self._keys.size
            else np.zeros(keys.size, dtype=bool)
        )
        machines[known] = self._machines[positions[known]]
        machines[~known] = stable_hash_machines(
            keys[~known], self.num_machines, self.salt
        )
        return EdgePartition(machines, self.num_machines)

    # ------------------------------------------------------------------
    def load_imbalance(self) -> float:
        """Max / mean per-machine edge load of the current placement."""
        return EdgePartition(
            self._machines, self.num_machines
        ).load_imbalance()

    def lifetime_reuse_ratio(self) -> float:
        """Reused placements over total placements across all syncs."""
        placed = sum(
            u.reused_placements + u.new_placements for u in self.updates
        )
        if placed == 0:
            return 1.0
        return sum(u.reused_placements for u in self.updates) / placed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalIngress(m={self.num_edges}, "
            f"machines={self.num_machines}, salt={self.salt}, "
            f"repartitions={self.full_repartitions})"
        )
