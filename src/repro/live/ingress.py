"""Incremental edge-placement maintenance for a churning graph.

The paper excludes ingress from its measurements because PowerGraph
pays it once; a *live* serving stack cannot — every refresh of the
served snapshot needs the new edge set placed across machines.
Re-partitioning from scratch per refresh would swamp the savings of a
fast approximation, so :class:`IncrementalIngress` maintains the
placement *incrementally*: edges are placed by the deterministic
endpoint-pair hash of :func:`~repro.cluster.stable_hash_machines`, so
an edge that survives churn keeps its machine and a refresh only pays
for the edges that actually changed.  The class tracks exactly how
much it reused (the honesty metric the serving benchmarks assert on).

Determinism gives a strong invariant, pinned by the test suite: after
*any* sequence of deltas, the maintained placement is identical to a
from-scratch :func:`~repro.dynamic.stable_hash_partition` of the
current edge set under the ingress's current salt.

Hash placement is uniform but not adaptive: adversarial or heavily
skewed churn can drift the per-machine load.  When
:meth:`EdgePartition.load_imbalance` exceeds ``rebalance_threshold``
the ingress falls back to a **full repartition**: it re-salts the hash
(a fresh deterministic stream) and replaces every placement, paying
full ingress cost once to restore statistical balance.

Placement is only half the refresh cost: each machine also keeps the
*derived* master/mirror and machine-grouped adjacency structures
(:class:`~repro.cluster.ReplicationTable`).  :class:`IncrementalReplication`
maintains those the same way — delta by delta from the placement diff,
re-sorting only the edges of vertices whose incident edge set or
machine assignment changed and splicing everything else — with the same
style of pinned invariant: the maintained table is structurally
equivalent to a from-scratch build of the current snapshot.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..cluster import (
    EdgePartition,
    ReplicationTable,
    placement_diff,
    stable_hash_machines,
)
from ..core import RefreshPolicy
from ..core.frogwild import prime_ingress_caches
from ..dynamic import DynamicDiGraph, GraphDelta
from ..errors import ConfigError
from ..graph import DiGraph

__all__ = [
    "IngressUpdate",
    "IncrementalIngress",
    "ReplicationPatch",
    "IncrementalReplication",
]


@dataclass(frozen=True)
class IngressUpdate:
    """Placement-maintenance record of one reconciliation step."""

    step: int
    num_edges: int
    new_placements: int
    removed_placements: int
    reused_placements: int
    reuse_ratio: float
    load_imbalance: float
    full_repartition: bool
    salt: int


class IncrementalIngress:
    """Maintains a per-machine edge placement for a live graph.

    Parameters
    ----------
    graph:
        The live graph store whose edges are being placed — any
        :class:`~repro.store.GraphStore` (a
        :class:`~repro.dynamic.DynamicDiGraph`, a disk-backed
        :class:`~repro.store.SegmentStore`, ...).  The ingress reads
        the store's current edge set on every :meth:`sync`; it never
        mutates the store except through :meth:`apply`.
    num_machines:
        Target (sub-)cluster size.
    seed:
        Base hash salt; distinct seeds yield independent placements
        (sharded deployments run one ingress per shard under distinct
        seeds).
    rebalance_threshold:
        Max/mean edge-load ratio beyond which the ingress re-salts and
        fully repartitions.  ``None`` disables the fallback.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        num_machines: int,
        seed: int | None = 0,
        rebalance_threshold: float | None = 2.0,
    ) -> None:
        if num_machines < 1:
            raise ConfigError("num_machines must be positive")
        if rebalance_threshold is not None and rebalance_threshold <= 1.0:
            raise ConfigError(
                "rebalance_threshold must exceed 1.0 (perfect balance) "
                "or be None to disable the fallback"
            )
        from ..store import as_graph_store

        self.graph = as_graph_store(graph)
        self.num_machines = num_machines
        self.seed = 0 if seed is None else int(seed)
        self.rebalance_threshold = rebalance_threshold
        self.full_repartitions = 0
        self.updates: list[IngressUpdate] = []
        self._step = 0
        self._keys = self._graph_keys()
        self._machines = stable_hash_machines(
            self._keys, num_machines, self.salt
        )

    # ------------------------------------------------------------------
    @property
    def salt(self) -> int:
        """Current hash salt; bumps deterministically per repartition."""
        return self.seed + 1_000_003 * self.full_repartitions

    @property
    def num_edges(self) -> int:
        return int(self._keys.size)

    def _graph_keys(self) -> np.ndarray:
        """The store's current edge keys, sorted ascending."""
        return np.asarray(self.graph.edge_keys(), dtype=np.int64)

    def machine_keys(self, machine: int) -> np.ndarray:
        """One machine's placed edge keys via a window-pruned scan.

        The window carries this ingress's exact ``(num_machines,
        salt)`` placement, so a :class:`~repro.store.SegmentStore`
        whose layout matches answers from that machine's segments alone
        — the shard-local read path that never streams another shard's
        edges.  Exactness is the store contract; equality with the
        maintained placement additionally requires that no edge
        predates the current salt (i.e. after any full repartition the
        next :meth:`sync` has run), which holds for every caller inside
        the refresh pipeline.
        """
        from ..store import Window

        return self.graph.scan(
            Window(
                0,
                self.graph.num_vertices,
                machine=int(machine),
                num_machines=self.num_machines,
                salt=self.salt,
            )
        )

    # ------------------------------------------------------------------
    def apply(self, delta: GraphDelta) -> IngressUpdate:
        """Apply one delta to the graph, then reconcile the placement."""
        self.graph.apply(delta)
        return self.sync()

    def sync(self) -> IngressUpdate:
        """Reconcile the placement with the graph's current edge set.

        Only touched edges move: surviving edges keep their machine (a
        pure array intersection), fresh edges are hashed in, vanished
        edges are dropped.  If the resulting load imbalance exceeds the
        threshold, fall back to a full re-salted repartition.
        """
        keys = self._graph_keys()
        survived = np.isin(keys, self._keys, assume_unique=True)
        fresh = keys[~survived]
        machines = np.empty(keys.size, dtype=np.int32)
        if survived.any():
            positions = np.searchsorted(self._keys, keys[survived])
            machines[survived] = self._machines[positions]
        machines[~survived] = stable_hash_machines(
            fresh, self.num_machines, self.salt
        )
        reused = int(survived.sum())
        removed = int(self._keys.size) - reused
        self._keys = keys
        self._machines = machines

        imbalance = self.load_imbalance()
        full = (
            self.rebalance_threshold is not None
            and keys.size > 0
            and imbalance > self.rebalance_threshold
        )
        if full:
            self._full_repartition()
            imbalance = self.load_imbalance()

        update = IngressUpdate(
            step=self._step,
            num_edges=int(keys.size),
            new_placements=int(keys.size) if full else int(fresh.size),
            removed_placements=removed,
            reused_placements=0 if full else reused,
            reuse_ratio=(
                0.0 if full else reused / keys.size if keys.size else 1.0
            ),
            load_imbalance=imbalance,
            full_repartition=full,
            salt=self.salt,
        )
        self.updates.append(update)
        self._step += 1
        return update

    def _full_repartition(self) -> None:
        """Re-salt the hash and replace every placement."""
        self.full_repartitions += 1
        self._machines = stable_hash_machines(
            self._keys, self.num_machines, self.salt
        )

    # ------------------------------------------------------------------
    def partition(self) -> EdgePartition:
        """The maintained placement over the live edge set (key order)."""
        return EdgePartition(self._machines.copy(), self.num_machines)

    def partition_for(self, snapshot: DiGraph) -> EdgePartition:
        """Placement aligned with ``snapshot``'s CSR edge order.

        Snapshot edges that exist in the live graph reuse their
        maintained machine; edges the snapshot added on its own (the
        dangling-vertex self-loop repairs of
        :meth:`~repro.dynamic.DynamicDiGraph.snapshot`) hash to the same
        deterministic placement, so the result is byte-identical to a
        from-scratch stable-hash partition of the snapshot.
        """
        n = snapshot.num_vertices
        if n != self.graph.num_vertices:
            raise ConfigError(
                "snapshot vertex count does not match the live graph"
            )
        keys = snapshot.edge_sources().astype(np.int64) * n + snapshot.indices
        machines = np.empty(keys.size, dtype=np.int32)
        positions = np.searchsorted(self._keys, keys)
        positions = np.minimum(positions, max(self._keys.size - 1, 0))
        known = (
            (self._keys[positions] == keys)
            if self._keys.size
            else np.zeros(keys.size, dtype=bool)
        )
        machines[known] = self._machines[positions[known]]
        machines[~known] = stable_hash_machines(
            keys[~known], self.num_machines, self.salt
        )
        return EdgePartition(machines, self.num_machines)

    # ------------------------------------------------------------------
    def load_imbalance(self) -> float:
        """Max / mean per-machine edge load of the current placement."""
        return EdgePartition(
            self._machines, self.num_machines
        ).load_imbalance()

    def lifetime_reuse_ratio(self) -> float:
        """Reused placements over total placements across all syncs."""
        placed = sum(
            u.reused_placements + u.new_placements for u in self.updates
        )
        if placed == 0:
            return 1.0
        return sum(u.reused_placements for u in self.updates) / placed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalIngress(m={self.num_edges}, "
            f"machines={self.num_machines}, salt={self.salt}, "
            f"repartitions={self.full_repartitions})"
        )


@dataclass(frozen=True)
class RefreshPlan:
    """Everything one :meth:`IncrementalReplication.refresh` decided.

    The plan/apply split exists so the patch *computation* can run
    somewhere else — e.g. on the shard's own worker process through
    :meth:`~repro.serving.ProcessPoolBackend.patch_tables` — while the
    bookkeeping (placement diff, rebuild gating, history) stays with
    the replicator.  ``full`` plans always apply locally (a rebuild is
    a from-scratch construction, not a patch).
    """

    #: Sorted edge keys (``src * n + dst``) of the target snapshot.
    keys: np.ndarray
    #: Maintained placement of the target snapshot.
    partition: EdgePartition
    #: Vertices whose replica row / master / adjacency must be redone.
    changed: np.ndarray
    #: Edges changed between the previous and target placements.
    edges_changed: int
    #: Incident-edge regroup work a patch would do (both directions).
    edges_regrouped: int
    #: Whether churn exceeded the policy gate — rebuild, don't patch.
    full: bool
    #: ``time.perf_counter()`` at planning time (patch_time_s anchor).
    start: float


@dataclass(frozen=True)
class ReplicationPatch:
    """Table-maintenance record of one :meth:`IncrementalReplication.refresh`.

    ``vertices_patched`` and ``edges_regrouped`` are the *structure
    rebuild* cost of the step: how many vertices had their replica row,
    master choice and adjacency groups recomputed, and how many edges
    were re-sorted to do it.  The serving benchmarks hold them to the
    incremental contract — O(churned vertices + their incident edges),
    never O(graph) — whenever ``full_rebuild`` is False.
    """

    step: int
    num_edges: int
    edges_changed: int
    vertices_patched: int
    edges_regrouped: int
    full_rebuild: bool
    patch_time_s: float


class IncrementalReplication:
    """Maintains one (sub-)cluster's :class:`ReplicationTable` under churn.

    Wraps an :class:`IncrementalIngress` and keeps the *derived*
    structures — replica bitmap, master choices, machine-grouped
    adjacency, and the per-ingress kernel-table cache — in lockstep with
    the maintained placement, snapshot by snapshot.  Each
    :meth:`refresh` diffs the new snapshot's placement against the
    previous one (:func:`~repro.cluster.placement_diff`), patches only
    the vertices the diff touches
    (:meth:`~repro.cluster.ReplicationTable.patched`), and pre-seeds the
    new table's ingress cache (kernel tables + mirror bitmap) so the
    first batch of the next epoch starts warm.

    The pinned invariant, tested after arbitrary delta sequences: the
    maintained table is structurally equivalent
    (:meth:`~repro.cluster.ReplicationTable.structurally_equal`) to
    ``ReplicationTable(snapshot, ingress.partition_for(snapshot), seed)``
    built from scratch.  Master equivalence relies on the deterministic
    noise stream of
    :meth:`~repro.cluster.ReplicationTable.master_noise`, so it holds
    for integer seeds; with ``seed=None`` the maintained masters remain
    a valid uniform choice but are not reproducible by a rebuild.

    Tables are never mutated in place: a refresh produces a *new* table
    (sharing spliced arrays' contents, not their buffers), so epochs
    still serving the previous table are unaffected — the property the
    background refresh pipeline depends on.
    """

    def __init__(
        self,
        ingress: IncrementalIngress,
        snapshot: DiGraph,
        seed: int | None = 0,
        policy: RefreshPolicy | None = None,
    ) -> None:
        self.ingress = ingress
        self.seed = seed
        self.policy = policy or RefreshPolicy()
        self.history: list[ReplicationPatch] = []
        self.full_rebuilds = 0
        self._step = 0
        self._noise = ReplicationTable.master_noise(
            snapshot.num_vertices, ingress.num_machines, seed
        )
        self.table = self._rebuild(snapshot)

    # ------------------------------------------------------------------
    def _snapshot_placement(
        self, snapshot: DiGraph
    ) -> tuple[np.ndarray, EdgePartition]:
        n = snapshot.num_vertices
        keys = snapshot.edge_sources().astype(np.int64) * n + snapshot.indices
        return keys, self.ingress.partition_for(snapshot)

    def _rebuild(self, snapshot: DiGraph) -> ReplicationTable:
        keys, partition = self._snapshot_placement(snapshot)
        table = ReplicationTable(snapshot, partition, seed=self.seed)
        prime_ingress_caches(table, snapshot)
        self._snap_keys = keys
        self._snap_machines = partition.edge_machine
        return table

    # ------------------------------------------------------------------
    def plan_refresh(self, snapshot: DiGraph) -> RefreshPlan:
        """Diff ``snapshot`` against the maintained placement.

        Pure planning — nothing is mutated.  The returned
        :class:`RefreshPlan` says whether a patch suffices (and for
        which vertices) or churn crossed the
        ``policy.full_rebuild_fraction`` gate; feed it to
        :meth:`apply_plan`, optionally with a table somebody else
        already patched from it.
        """
        start = time.perf_counter()
        n = snapshot.num_vertices
        if n != self.table.graph.num_vertices:
            raise ConfigError(
                "snapshot vertex count does not match the maintained table"
            )
        keys, partition = self._snapshot_placement(snapshot)
        diff = placement_diff(
            self._snap_keys, self._snap_machines, keys, partition.edge_machine
        )
        changed = diff.changed_vertices(n)
        touched = np.zeros(n, dtype=bool)
        touched[changed] = True
        src = snapshot.edge_sources()
        dst = snapshot.indices
        # Projected regroup work: the incident edges of every touched
        # vertex, once per grouping direction.  On power-law graphs a
        # few churned hub edges can touch hubs owning most of the edge
        # set, so the rebuild fallback gates on this — the actual work a
        # patch would do — not on the changed-key count; 2m is what a
        # from-scratch build regroups.
        edges_regrouped = int(touched[src].sum() + touched[dst].sum())
        full = edges_regrouped > self.policy.full_rebuild_fraction * 2 * max(
            keys.size, 1
        )
        return RefreshPlan(
            keys=keys,
            partition=partition,
            changed=changed,
            edges_changed=diff.num_changed,
            edges_regrouped=edges_regrouped,
            full=full,
            start=start,
        )

    def apply_plan(
        self,
        snapshot: DiGraph,
        plan: RefreshPlan,
        table: ReplicationTable | None = None,
    ) -> ReplicationPatch:
        """Adopt ``snapshot`` per ``plan`` and record the patch.

        With ``table=None`` the patch is computed here (the serial
        path).  A caller that already computed the patched table
        elsewhere — a shard worker holding the same structurally-equal
        old table, the cached noise and the plan's inputs — passes it
        in and only the bookkeeping runs; remotely patched tables skip
        :func:`prime_ingress_caches` because the processes that will
        execute on them prime their own mapped copies at attach time.
        ``full`` plans ignore ``table`` and rebuild from scratch.
        """
        n = snapshot.num_vertices
        if plan.full:
            self.table = self._rebuild(snapshot)
            self.full_rebuilds += 1
            vertices_patched = n
            edges_regrouped = 2 * int(plan.keys.size)
        else:
            vertices_patched = int(plan.changed.size)
            edges_regrouped = plan.edges_regrouped
            if table is None:
                table = self.table.patched(
                    snapshot, plan.partition, plan.changed, self._noise
                )
                prime_ingress_caches(table, snapshot)
            self.table = table
            self._snap_keys = plan.keys
            self._snap_machines = plan.partition.edge_machine
        patch = ReplicationPatch(
            step=self._step,
            num_edges=int(plan.keys.size),
            edges_changed=plan.edges_changed,
            vertices_patched=vertices_patched,
            edges_regrouped=edges_regrouped,
            full_rebuild=plan.full,
            patch_time_s=time.perf_counter() - plan.start,
        )
        self.history.append(patch)
        self._step += 1
        return patch

    def refresh(self, snapshot: DiGraph) -> ReplicationPatch:
        """Bring the table to ``snapshot``; patch, or rebuild if churn
        exceeds ``policy.full_rebuild_fraction`` of the edge set."""
        return self.apply_plan(snapshot, self.plan_refresh(snapshot))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IncrementalReplication(m={self.table.graph.num_edges}, "
            f"machines={self.ingress.num_machines}, "
            f"patches={len(self.history)}, rebuilds={self.full_rebuilds})"
        )
