"""Versioned, atomically swappable backend state.

A refresh must never tear a query: a batch that started executing on
the graph's epoch N has to finish on epoch N even if epoch N+1 is
published mid-run, and a batch dispatched after the publish must run
wholly on N+1.  :class:`EpochManager` realizes that invariant as an
:class:`~repro.serving.ExecutionBackend` *proxy*:

* every :meth:`EpochManager.run_batch` call **pins** the current epoch
  exactly once, at entry, and executes the entire batch on that epoch's
  backend;
* :meth:`EpochManager.publish` swaps the current-epoch reference under
  a lock and returns; it never blocks on, aborts, or mutates a pinned
  in-flight batch.

Because a query occupies exactly one lane of exactly one batch (the
service's coalescer guarantees it), per-batch epoch purity implies
per-query epoch purity: no query is ever answered by a mix of two graph
versions, and none is dropped by a swap — futures pending in the
scheduler simply dispatch on whatever epoch is current when their batch
leaves the queue.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Sequence

from ..core import FrogWildConfig
from ..errors import ConfigError
from ..graph import DiGraph
from ..serving import BatchOutcome, ExecutionBackend, RankingQuery

__all__ = ["Epoch", "EpochManager"]


@dataclass(frozen=True)
class Epoch:
    """One immutable served-graph version.

    ``epoch_id`` is the :class:`~repro.dynamic.DynamicDiGraph` version
    counter captured at snapshot time (the value mixed into cache keys);
    ``sequence`` is the publish ordinal (0 for the construction epoch).
    """

    epoch_id: int
    sequence: int
    graph: DiGraph
    backend: ExecutionBackend

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges


class EpochManager:
    """Atomically swappable :class:`~repro.serving.ExecutionBackend`.

    Implements the backend protocol itself, so a
    :class:`~repro.serving.RankingService` can hold one manager for its
    whole lifetime while the epochs underneath it come and go.  Also
    exposes :meth:`generation` — the current epoch id — which the
    service picks up automatically as its cache-generation provider, so
    cached rankings invalidate exactly when a new epoch is published.
    """

    def __init__(self, epoch: Epoch) -> None:
        self._lock = threading.Lock()
        self._current = epoch
        self.epochs_published = 1
        #: Batches and queries executed per epoch sequence number.
        self.batches_per_epoch: dict[int, int] = {}
        self.queries_per_epoch: dict[int, int] = {}
        #: Batches answered from a partial shard merge (fail-soft
        #: process pools under ``on_shard_failure="partial"``), per
        #: epoch sequence number.
        self.partial_batches_per_epoch: dict[int, int] = {}
        self._inflight_batches = 0
        #: Publishes that landed while at least one batch was pinned to
        #: the previous epoch — the exact situation the swap-only
        #: publish path exists for (a background build finishing while
        #: queries execute).  Those batches finish on their pinned epoch.
        self.publishes_mid_flight = 0

    @property
    def inflight_batches(self) -> int:
        """Batches currently executing on some pinned epoch."""
        with self._lock:
            return self._inflight_batches

    # ------------------------------------------------------------------
    @property
    def current(self) -> Epoch:
        with self._lock:
            return self._current

    @property
    def num_shards(self) -> int:
        return self.current.backend.num_shards

    def generation(self) -> int:
        """Cache-generation provider: the current epoch id."""
        return self.current.epoch_id

    # ------------------------------------------------------------------
    def publish(self, epoch: Epoch) -> Epoch:
        """Swap in a new epoch atomically; returns the one it replaced.

        In-flight batches pinned to the previous epoch are unaffected —
        they hold their own reference and finish on it.
        """
        with self._lock:
            previous = self._current
            if epoch.graph.num_vertices != previous.graph.num_vertices:
                raise ConfigError(
                    "epochs must share one vertex universe: got "
                    f"{epoch.graph.num_vertices} vertices, serving "
                    f"{previous.graph.num_vertices}"
                )
            if epoch.epoch_id < previous.epoch_id:
                raise ConfigError(
                    f"epoch id regressed: {epoch.epoch_id} < "
                    f"{previous.epoch_id} (graph versions are monotone)"
                )
            if epoch.sequence != previous.sequence + 1:
                raise ConfigError(
                    f"epoch sequence must advance by one: got "
                    f"{epoch.sequence} after {previous.sequence}"
                )
            self._current = epoch
            self.epochs_published += 1
            if self._inflight_batches > 0:
                self.publishes_mid_flight += 1
        return previous

    # ------------------------------------------------------------------
    def run_batch(
        self, config: FrogWildConfig, queries: Sequence[RankingQuery]
    ) -> BatchOutcome:
        """Execute one batch wholly on the epoch current at entry.

        The epoch is pinned exactly once; a concurrent publish only
        affects batches dispatched after it.  Every answered lane is
        stamped with the epoch it ran on (``report.extra["epoch"]``)
        so provenance survives into cached answers.
        """
        with self._lock:
            epoch = self._current
            self._inflight_batches += 1
        try:
            outcome = epoch.backend.run_batch(config, queries)
        finally:
            with self._lock:
                self._inflight_batches -= 1
        degraded = tuple(getattr(outcome, "degraded_shards", ()) or ())
        for lane in outcome.lanes:
            lane.report.extra["epoch"] = float(epoch.epoch_id)
            lane.report.extra["epoch_sequence"] = float(epoch.sequence)
            if degraded:
                # Fail-soft partial merge: record how many shards this
                # lane's answer is missing, next to the epoch it ran on
                # — provenance for degraded answers survives caching
                # exactly like epoch provenance does.
                lane.report.extra["degraded_shards"] = float(
                    len(degraded)
                )
        with self._lock:
            self.batches_per_epoch[epoch.sequence] = (
                self.batches_per_epoch.get(epoch.sequence, 0) + 1
            )
            self.queries_per_epoch[epoch.sequence] = (
                self.queries_per_epoch.get(epoch.sequence, 0) + len(queries)
            )
            if degraded:
                self.partial_batches_per_epoch[epoch.sequence] = (
                    self.partial_batches_per_epoch.get(epoch.sequence, 0)
                    + 1
                )
        return outcome

    def close(self) -> None:
        """Release the current epoch's backend, if it is releasable.

        The process-pool execution path reuses one
        :class:`~repro.serving.ProcessPoolBackend` across epochs
        (refreshes remap its workers in place), so closing the current
        epoch's backend closes every worker this manager ever served
        with.  Backends without a ``close`` are unaffected.
        """
        closer = getattr(self.current.backend, "close", None)
        if callable(closer):
            closer()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        epoch = self.current
        return (
            f"EpochManager(epoch={epoch.epoch_id}, "
            f"sequence={epoch.sequence}, published={self.epochs_published})"
        )
