"""Live-graph refresh: serve a churning graph without tearing queries.

The serving stack (:mod:`repro.serving`) ranks a frozen snapshot; the
dynamic stack (:mod:`repro.dynamic`) churns a mutable edge set.  This
package is the bridge — the paper's OSN pitch taken to its serving
conclusion: the graph changes constantly, so the *served* graph must
follow, incrementally, while user traffic keeps flowing.  Three pieces:

* :class:`IncrementalIngress` — maintains the per-machine edge
  placement of a :class:`~repro.dynamic.DynamicDiGraph` delta by delta
  using the deterministic stable hash
  (:func:`~repro.cluster.stable_hash_machines`): surviving edges keep
  their machine, so a refresh pays ingress only for what changed, with
  a tracked reuse ratio and a full re-salted repartition fallback when
  load imbalance drifts past a threshold.
* :class:`IncrementalReplication` — the same discipline for each
  machine's *derived* structures: the master/mirror and grouped
  adjacency tables (:class:`~repro.cluster.ReplicationTable`) are
  patched from the placement diff, re-sorting only the vertices a delta
  touched and splicing the rest, with the per-ingress kernel-table
  cache pre-seeded so a fresh epoch serves its first batch warm.
* :class:`EpochManager` — versioned, atomically swappable backend
  state behind the :class:`~repro.serving.ExecutionBackend` seam.
* :class:`BackgroundRefresher` — runs the whole build pipeline on a
  worker thread, double-buffering the next epoch and coalescing deltas
  that arrive faster than builds complete; the query path pays only the
  atomic swap.
* :class:`LiveRankingService` — a :class:`~repro.serving.RankingService`
  wired to all of it: :meth:`~LiveRankingService.refresh` applies a
  delta, reconciles placements, patches tables, snapshots, and
  publishes the next epoch, whose id doubles as the cache generation so
  stale top-k entries invalidate exactly on refresh;
  :meth:`~LiveRankingService.refresh_async` does the same off-thread.

**The epoch-swap invariant.**  Every batch pins its epoch exactly once,
at dispatch (:meth:`EpochManager.run_batch` reads the current epoch a
single time and executes the whole batch on that epoch's backend).
:meth:`EpochManager.publish` swaps the current-epoch reference
atomically and never touches a pinned batch — in-flight lanes finish on
epoch N while batches dispatched after the publish run wholly on N+1.
A query occupies exactly one lane of exactly one batch, so no query is
ever dropped by a swap or answered by a mix of two graph versions.
"""

from .epoch import Epoch, EpochManager
from .ingress import (
    IncrementalIngress,
    IncrementalReplication,
    IngressUpdate,
    RefreshPlan,
    ReplicationPatch,
)
from .refresh import BackgroundRefresher, RefresherStats, RefreshTicket
from .service import LiveRankingService, RefreshUpdate

__all__ = [
    "Epoch",
    "EpochManager",
    "IncrementalIngress",
    "IncrementalReplication",
    "IngressUpdate",
    "RefreshPlan",
    "ReplicationPatch",
    "BackgroundRefresher",
    "RefresherStats",
    "RefreshTicket",
    "LiveRankingService",
    "RefreshUpdate",
]
