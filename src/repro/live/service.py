"""The live ranking service: serve a churning graph, refresh in place.

:class:`LiveRankingService` is a :class:`~repro.serving.RankingService`
whose backend follows the graph.  It owns three live-layer pieces:

* a :class:`~repro.dynamic.DynamicDiGraph` **source** — the mutable
  edge set churn is applied to;
* one :class:`~repro.live.IncrementalIngress` per (sub-)cluster —
  stable-hash placements maintained delta by delta, so a refresh pays
  ingress only for the edges that changed;
* an :class:`~repro.live.EpochManager` — the atomically swappable
  backend proxy, whose current epoch id doubles as the service's cache
  generation so stale top-k entries invalidate exactly on refresh.

:meth:`LiveRankingService.refresh` is the whole lifecycle: apply the
delta (if given), reconcile placements, snapshot, rebuild the backend
on the reused ingress, publish the next epoch.  In-flight batches
finish on the epoch they pinned; queries queued in the scheduler
dispatch on whichever epoch is current when their batch leaves.

Simulation honesty note: what is maintained incrementally is the
*placement* — the machine assignment whose (re)shipment is the ingress
wire cost a real deployment pays per refresh, reported as
``new_placements`` per update.  The in-memory grouped-adjacency tables
(:class:`~repro.cluster.ReplicationTable`) are rebuilt per epoch; that
is each machine's local index build, which the paper also excludes
from measurement.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..cluster import CostModel, MessageSizeModel, ReplicationTable
from ..core import FrogWildConfig
from ..dynamic import ChurnGenerator, DynamicDiGraph, GraphDelta
from ..errors import ConfigError
from ..graph import DiGraph
from ..serving import (
    ExecutionBackend,
    LocalBackend,
    RankingService,
    ShardedBackend,
    choose_num_shards,
)
from .epoch import Epoch, EpochManager
from .ingress import IncrementalIngress, IngressUpdate

__all__ = ["RefreshUpdate", "LiveRankingService"]


@dataclass(frozen=True)
class RefreshUpdate:
    """Record of one refresh: churn applied, ingress reused, epoch out."""

    epoch: int
    sequence: int
    num_edges: int
    edges_added: int
    edges_removed: int
    new_placements: int
    reused_placements: int
    reuse_ratio: float
    load_imbalance: float
    full_repartitions: int
    in_flight_batches: int
    refresh_time_s: float


class LiveRankingService(RankingService):
    """Serves personalized top-k over a graph that keeps changing.

    Parameters mirror :class:`~repro.serving.RankingService` where they
    overlap; the live-specific ones:

    graph:
        A :class:`~repro.dynamic.DynamicDiGraph` (or a static
        :class:`~repro.graph.DiGraph`, which is wrapped).  The service
        applies deltas to it through :meth:`refresh` / :meth:`attach`.
    num_shards:
        As in the base service; ``None`` autotunes via
        :func:`~repro.serving.choose_num_shards`.  Sharded layouts run
        one :class:`IncrementalIngress` per shard under distinct salts.
    rebalance_threshold:
        Per-ingress load-imbalance bound beyond which a refresh falls
        back to a full re-salted repartition (``None`` disables).
    """

    def __init__(
        self,
        graph: DynamicDiGraph | DiGraph,
        config: FrogWildConfig | None = None,
        num_machines: int = 16,
        num_shards: int | None = 1,
        max_batch_size: int = 16,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        clock: Callable[[], float] | None = None,
        max_delay_s: float | None = None,
        rebalance_threshold: float | None = 2.0,
    ) -> None:
        if not isinstance(graph, DynamicDiGraph):
            graph = DynamicDiGraph.from_digraph(graph)
        self.source = graph
        self.rebalance_threshold = rebalance_threshold
        self.refresh_history: list[RefreshUpdate] = []
        effective = config or FrogWildConfig(seed=seed)
        if num_shards is None:
            num_shards = choose_num_shards(
                num_machines, num_frogs=effective.num_frogs
            )
        if num_shards > 1:
            if num_shards > num_machines:
                raise ConfigError(
                    f"cannot split a {num_machines}-machine fleet into "
                    f"{num_shards} shards"
                )
            machines_per_ingress = num_machines // num_shards
            ingress_seeds = [
                ShardedBackend._shard_seed(seed, shard)
                for shard in range(num_shards)
            ]
        else:
            machines_per_ingress = num_machines
            ingress_seeds = [seed]
        self._live_shards = num_shards
        self._machines_per_ingress = machines_per_ingress
        self.ingresses = [
            IncrementalIngress(
                graph,
                machines_per_ingress,
                seed=ingress_seed,
                rebalance_threshold=rebalance_threshold,
            )
            for ingress_seed in ingress_seeds
        ]
        self._cost_model = cost_model
        self._size_model = size_model
        self._seed = seed

        snapshot = graph.snapshot()
        self.epochs = EpochManager(
            Epoch(
                epoch_id=graph.version,
                sequence=0,
                graph=snapshot,
                backend=self._build_backend(snapshot),
            )
        )
        super().__init__(
            snapshot,
            config=config,
            num_machines=num_machines,
            max_batch_size=max_batch_size,
            cache_capacity=cache_capacity,
            cache_ttl_s=cache_ttl_s,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            clock=clock,
            backend=self.epochs,
            max_delay_s=max_delay_s,
            # generation defaults to self.epochs.generation (the current
            # epoch id) via the backend hook, so cached rankings
            # invalidate exactly when refresh() publishes.
        )

    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> Epoch:
        return self.epochs.current

    def _build_backend(self, snapshot: DiGraph) -> ExecutionBackend:
        """One epoch's execution backend over the maintained ingress."""
        if self._live_shards > 1:
            return ShardedBackend(
                snapshot,
                num_shards=self._live_shards,
                machines_per_shard=self._machines_per_ingress,
                cost_model=self._cost_model,
                size_model=self._size_model,
                seed=self._seed,
                replications=[
                    ReplicationTable(
                        snapshot,
                        ingress.partition_for(snapshot),
                        seed=self._seed,
                    )
                    for ingress in self.ingresses
                ],
            )
        return LocalBackend(
            snapshot,
            num_machines=self._machines_per_ingress,
            cost_model=self._cost_model,
            size_model=self._size_model,
            seed=self._seed,
            replication=ReplicationTable(
                snapshot,
                self.ingresses[0].partition_for(snapshot),
                seed=self._seed,
            ),
        )

    # ------------------------------------------------------------------
    def refresh(self, delta: GraphDelta | None = None) -> RefreshUpdate:
        """Apply churn (optional), reconcile ingress, publish an epoch.

        With ``delta=None`` the source graph is assumed to have been
        churned externally (e.g. by
        :meth:`~repro.dynamic.ChurnGenerator.stream` with ``apply=True``)
        and the refresh just reconciles and republishes.
        """
        start = time.perf_counter()
        edges_added = edges_removed = 0
        if delta is not None:
            edges_added, edges_removed = self.source.apply(delta)
        updates = [ingress.sync() for ingress in self.ingresses]
        snapshot = self.source.snapshot()
        backend = self._build_backend(snapshot)
        previous = self.epochs.current
        in_flight = self.scheduler.active_dispatches
        self.epochs.publish(
            Epoch(
                epoch_id=self.source.version,
                sequence=previous.sequence + 1,
                graph=snapshot,
                backend=backend,
            )
        )
        self.graph = snapshot
        update = self._summarize(
            updates,
            edges_added=edges_added,
            edges_removed=edges_removed,
            in_flight=in_flight,
            elapsed=time.perf_counter() - start,
        )
        self.refresh_history.append(update)
        return update

    def _summarize(
        self,
        updates: list[IngressUpdate],
        edges_added: int,
        edges_removed: int,
        in_flight: int,
        elapsed: float,
    ) -> RefreshUpdate:
        placed = sum(
            u.reused_placements + u.new_placements for u in updates
        )
        reused = sum(u.reused_placements for u in updates)
        epoch = self.epochs.current
        return RefreshUpdate(
            epoch=epoch.epoch_id,
            sequence=epoch.sequence,
            num_edges=self.source.num_edges,
            edges_added=edges_added,
            edges_removed=edges_removed,
            new_placements=sum(u.new_placements for u in updates),
            reused_placements=reused,
            reuse_ratio=reused / placed if placed else 1.0,
            load_imbalance=max(u.load_imbalance for u in updates),
            full_repartitions=sum(u.full_repartition for u in updates),
            in_flight_batches=in_flight,
            refresh_time_s=elapsed,
        )

    def attach(
        self,
        churn: ChurnGenerator | Iterable[GraphDelta],
        ticks: int | None = None,
    ) -> list[RefreshUpdate]:
        """Drive churn through the service: one refresh per delta.

        ``churn`` is either a :class:`~repro.dynamic.ChurnGenerator`
        (requires ``ticks``) or any iterable of deltas (``ticks``
        optionally truncates it).
        """
        if isinstance(churn, ChurnGenerator):
            if ticks is None:
                raise ConfigError(
                    "attach(ChurnGenerator) needs an explicit tick count"
                )
            deltas: Iterable[GraphDelta] = (
                churn.step(self.source) for _ in range(ticks)
            )
        else:
            deltas = churn
        if ticks is not None:
            # islice never over-pulls: a generator with apply-on-step
            # side effects must not produce a delta that is then
            # silently dropped unrefreshed.
            deltas = itertools.islice(deltas, ticks)
        return [self.refresh(delta) for delta in deltas]

    # ------------------------------------------------------------------
    def live_stats(self) -> dict[str, float]:
        """Live-layer counters alongside the base service stats."""
        return {
            "epoch": float(self.epochs.current.epoch_id),
            "epochs_published": float(self.epochs.epochs_published),
            "refreshes": float(len(self.refresh_history)),
            "lifetime_reuse_ratio": (
                sum(i.lifetime_reuse_ratio() for i in self.ingresses)
                / len(self.ingresses)
            ),
            "full_repartitions": float(
                sum(i.full_repartitions for i in self.ingresses)
            ),
            "served_edges": float(self.epochs.current.num_edges),
            "source_edges": float(self.source.num_edges),
        }
