"""The live ranking service: serve a churning graph, refresh in place.

:class:`LiveRankingService` is a :class:`~repro.serving.RankingService`
whose backend follows the graph.  It owns three live-layer pieces:

* a :class:`~repro.dynamic.DynamicDiGraph` **source** — the mutable
  edge set churn is applied to;
* one :class:`~repro.live.IncrementalIngress` per (sub-)cluster —
  stable-hash placements maintained delta by delta, so a refresh pays
  ingress only for the edges that changed;
* an :class:`~repro.live.EpochManager` — the atomically swappable
  backend proxy, whose current epoch id doubles as the service's cache
  generation so stale top-k entries invalidate exactly on refresh.

:meth:`LiveRankingService.refresh` is the whole lifecycle: apply the
delta (if given), reconcile placements, patch the replication tables,
snapshot, build the backend on the reused structures, publish the next
epoch.  In-flight batches finish on the epoch they pinned; queries
queued in the scheduler dispatch on whichever epoch is current when
their batch leaves.

Both halves of refresh cost are maintained incrementally: the
*placement* (the machine assignment whose (re)shipment is the ingress
wire cost a real deployment pays per refresh, reported as
``new_placements``) by :class:`~repro.live.IncrementalIngress`, and
each machine's local index — the grouped-adjacency
:class:`~repro.cluster.ReplicationTable` — by
:class:`~repro.live.IncrementalReplication`, which patches only the
vertices a delta touched (``vertices_patched``/``edges_regrouped`` per
update) instead of rebuilding per epoch.

The pipeline itself can leave the caller's thread entirely:
:meth:`LiveRankingService.refresh_async` hands the delta to a
:class:`~repro.live.BackgroundRefresher`, which double-buffers the next
epoch on a worker thread and coalesces deltas that arrive faster than
builds complete; the query path pays only the atomic epoch swap.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable

from ..cluster import CostModel, MessageSizeModel
from ..core import FrogWildConfig, RefreshPolicy
from ..dynamic import ChurnGenerator, DynamicDiGraph, GraphDelta
from ..errors import ConfigError
from ..graph import DiGraph
from ..serving import (
    ExecutionBackend,
    LocalBackend,
    RankingService,
    ShardedBackend,
    choose_num_shards,
)
from .epoch import Epoch, EpochManager
from .ingress import (
    IncrementalIngress,
    IncrementalReplication,
    IngressUpdate,
    ReplicationPatch,
)
from .refresh import BackgroundRefresher, RefreshTicket

__all__ = ["RefreshUpdate", "LiveRankingService"]


@dataclass(frozen=True)
class RefreshUpdate:
    """Record of one refresh: churn applied, ingress reused, epoch out.

    ``vertices_patched``/``edges_regrouped`` are the replication-table
    maintenance cost (summed over shards): how many vertices had their
    replica/master/grouping structures rebuilt and how many edges were
    re-sorted to do it — O(churn), not O(graph), unless
    ``table_rebuilds`` says a shard fell back to a from-scratch build.
    ``build_time_s`` covers apply → reconcile → table patch → snapshot →
    backend build; ``publish_s`` is the atomic swap alone — the only
    part the query path ever waits on.  ``coalesced_deltas`` counts the
    submitted deltas this epoch covered (> 1 when a background build
    absorbed a backlog); ``background`` says which pipeline ran it.
    """

    epoch: int
    sequence: int
    num_edges: int
    edges_added: int
    edges_removed: int
    new_placements: int
    reused_placements: int
    reuse_ratio: float
    load_imbalance: float
    full_repartitions: int
    in_flight_batches: int
    refresh_time_s: float
    vertices_patched: int = 0
    edges_regrouped: int = 0
    table_rebuilds: int = 0
    build_time_s: float = 0.0
    publish_s: float = 0.0
    coalesced_deltas: int = 1
    background: bool = False


class LiveRankingService(RankingService):
    """Serves personalized top-k over a graph that keeps changing.

    Parameters mirror :class:`~repro.serving.RankingService` where they
    overlap; the live-specific ones:

    graph:
        A :class:`~repro.dynamic.DynamicDiGraph` (or a static
        :class:`~repro.graph.DiGraph`, which is wrapped).  The service
        applies deltas to it through :meth:`refresh` / :meth:`attach`.
    kernel:
        Batch-kernel tier handed to every epoch's backend
        (``"fused"`` / ``"lane-loop"`` / ``"compiled"``).
    store:
        Mutually exclusive with ``graph``: serve a live
        :class:`~repro.store.GraphStore` as the churn source instead.
        With a :class:`~repro.store.SegmentStore` the base edge set
        stays on disk, deltas land in its in-RAM delta layer, every
        ingress reconciles through the store's key reads, and the
        refresh pipeline folds the delta layer back into segment files
        whenever it reaches ``compact_threshold`` keys — periodic
        compaction driven off the query path (the
        :class:`~repro.live.BackgroundRefresher` runs it on its worker
        thread under ``refresh_async``).  Scope note: the *served*
        epoch structures (snapshot + replication tables) stay in RAM —
        the live tier trades residency for patchability; fully
        out-of-core serving is the static
        ``RankingService(store=...)`` path.
    compact_threshold:
        Delta-layer size (in keys) at which a refresh compacts the
        store; only meaningful with a compactable ``store``.
    num_shards:
        As in the base service; ``None`` autotunes via
        :func:`~repro.serving.choose_num_shards`.  Sharded layouts run
        one :class:`IncrementalIngress` per shard under distinct salts.
    rebalance_threshold:
        Per-ingress load-imbalance bound beyond which a refresh falls
        back to a full re-salted repartition (``None`` disables).
    refresh_policy:
        :class:`~repro.core.RefreshPolicy` governing table-patch
        fallback, background coalescing and queue backpressure.
    execution:
        ``"simulated"`` (default) builds a fresh in-process
        Local/Sharded backend per epoch; ``"process"`` builds one
        :class:`~repro.serving.ProcessPoolBackend` at construction and
        *remaps* it on every refresh — each publish exports the patched
        tables into fresh epoch-tagged shared-memory arenas, every
        worker process attaches them, and only then is the previous
        epoch's memory retired.  Use :meth:`close` to tear the workers
        down.
    on_shard_failure:
        Fail-soft policy for ``execution="process"`` (``"fail"``,
        ``"partial"`` or ``"retry"``; see
        :class:`~repro.serving.ProcessPoolBackend`).  Under
        ``"partial"`` a batch that loses a worker mid-flight still
        answers from the surviving shards, the epoch's lane reports
        carry a ``degraded_shards`` stamp, and the supervisor respawns
        the worker against the *current* epoch's arenas.  Ignored for
        simulated execution.
    """

    def __init__(
        self,
        graph: DynamicDiGraph | DiGraph | None = None,
        config: FrogWildConfig | None = None,
        num_machines: int = 16,
        num_shards: int | None = 1,
        max_batch_size: int = 16,
        cache_capacity: int = 256,
        cache_ttl_s: float | None = None,
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int | None = 0,
        clock: Callable[[], float] | None = None,
        max_delay_s: float | None = None,
        rebalance_threshold: float | None = 2.0,
        refresh_policy: RefreshPolicy | None = None,
        execution: str = "simulated",
        on_shard_failure: str = "fail",
        kernel: str = "fused",
        store=None,
        compact_threshold: int = 4096,
    ) -> None:
        if execution not in ("simulated", "process"):
            raise ConfigError(
                f"unknown execution mode {execution!r}: expected "
                "'simulated' or 'process'"
            )
        if on_shard_failure not in ("fail", "partial", "retry"):
            raise ConfigError(
                f"unknown on_shard_failure {on_shard_failure!r}: "
                "expected 'fail', 'partial' or 'retry'"
            )
        self.on_shard_failure = on_shard_failure
        self._kernel = kernel
        self.compact_threshold = compact_threshold
        self.compactions = 0
        if store is not None:
            from ..store import as_graph_store

            if graph is not None:
                raise ConfigError(
                    "pass either graph= or store=, not both: the live "
                    "source must be a single mutable edge set"
                )
            # The store IS the churn source: deltas apply to it, every
            # ingress reconciles through its key reads, snapshots
            # freeze its merged view.
            graph = as_graph_store(store)
        elif graph is None:
            raise ConfigError("LiveRankingService needs a graph or a store")
        self.live_store = store
        if isinstance(graph, DiGraph):
            graph = DynamicDiGraph.from_digraph(graph)
        self.source = graph
        self.execution = execution
        self._process_backend = None
        self.rebalance_threshold = rebalance_threshold
        self.refresh_policy = refresh_policy or RefreshPolicy()
        self.refresh_history: list[RefreshUpdate] = []
        # Serializes the whole build pipeline (graph mutation, ingress
        # reconcile, table patch, snapshot, publish) between synchronous
        # refresh() callers and the background refresher's worker.  The
        # query path never takes it.
        self._refresh_lock = threading.Lock()
        self.refresher: BackgroundRefresher | None = None
        self.replicators: list[IncrementalReplication] | None = None
        self._last_patches: list[ReplicationPatch] = []
        effective = config or FrogWildConfig(seed=seed)
        if num_shards is None:
            num_shards = choose_num_shards(
                num_machines, num_frogs=effective.num_frogs
            )
        if num_shards > 1:
            if num_shards > num_machines:
                raise ConfigError(
                    f"cannot split a {num_machines}-machine fleet into "
                    f"{num_shards} shards"
                )
            machines_per_ingress = num_machines // num_shards
            ingress_seeds = [
                ShardedBackend._shard_seed(seed, shard)
                for shard in range(num_shards)
            ]
        else:
            machines_per_ingress = num_machines
            ingress_seeds = [seed]
        self._live_shards = num_shards
        self._machines_per_ingress = machines_per_ingress
        self.ingresses = [
            IncrementalIngress(
                graph,
                machines_per_ingress,
                seed=ingress_seed,
                rebalance_threshold=rebalance_threshold,
            )
            for ingress_seed in ingress_seeds
        ]
        self._cost_model = cost_model
        self._size_model = size_model
        self._seed = seed

        snapshot = graph.snapshot()
        self.epochs = EpochManager(
            Epoch(
                epoch_id=graph.version,
                sequence=0,
                graph=snapshot,
                backend=self._build_backend(snapshot),
            )
        )
        super().__init__(
            snapshot,
            config=config,
            num_machines=num_machines,
            max_batch_size=max_batch_size,
            cache_capacity=cache_capacity,
            cache_ttl_s=cache_ttl_s,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            clock=clock,
            backend=self.epochs,
            max_delay_s=max_delay_s,
            # generation defaults to self.epochs.generation (the current
            # epoch id) via the backend hook, so cached rankings
            # invalidate exactly when refresh() publishes.
        )

    # ------------------------------------------------------------------
    @property
    def current_epoch(self) -> Epoch:
        return self.epochs.current

    def _build_backend(self, snapshot: DiGraph) -> ExecutionBackend:
        """One epoch's execution backend over the maintained structures.

        First call builds the per-shard replication tables from scratch
        (construction ingress, paid once); every later call *patches*
        them to the new snapshot via :class:`IncrementalReplication` —
        the patch records land in ``self._last_patches`` for the
        refresh summary.  Under process execution the per-shard patch
        computations fan out to the shard workers
        (:meth:`~repro.serving.ProcessPoolBackend.patch_tables`): each
        worker patches its own shard's table on its own core, and the
        replicators just adopt the results — structurally equal to the
        serial path by the deterministic-noise invariant, which is why
        the fan-out requires an integer seed.
        """
        if self.replicators is None:
            self.replicators = [
                IncrementalReplication(
                    ingress,
                    snapshot,
                    seed=self._seed,
                    policy=self.refresh_policy,
                )
                for ingress in self.ingresses
            ]
            self._last_patches = []
        else:
            plans = [
                replicator.plan_refresh(snapshot)
                for replicator in self.replicators
            ]
            patched = self._patch_remote(snapshot, plans)
            self._last_patches = [
                replicator.apply_plan(snapshot, plan, table=table)
                for replicator, plan, table in zip(
                    self.replicators, plans, patched
                )
            ]
        tables = [replicator.table for replicator in self.replicators]
        if self.execution == "process":
            from ..serving import ProcessPoolBackend

            if self._process_backend is None:
                self._process_backend = ProcessPoolBackend(
                    snapshot,
                    num_shards=self._live_shards,
                    machines_per_shard=self._machines_per_ingress,
                    cost_model=self._cost_model,
                    size_model=self._size_model,
                    seed=self._seed,
                    replications=tables,
                    kernel=self._kernel,
                    on_shard_failure=self.on_shard_failure,
                )
            else:
                # Epoch-tagged remap: workers attach the new arenas
                # before the old epoch's segments are retired; the
                # backend's internal epoch counter advances on its own
                # (graph versions may repeat on a no-op refresh).
                self._process_backend.refresh(snapshot, tables)
            return self._process_backend
        if self._live_shards > 1:
            return ShardedBackend(
                snapshot,
                num_shards=self._live_shards,
                machines_per_shard=self._machines_per_ingress,
                cost_model=self._cost_model,
                size_model=self._size_model,
                seed=self._seed,
                replications=tables,
                kernel=self._kernel,
            )
        return LocalBackend(
            snapshot,
            num_machines=self._machines_per_ingress,
            cost_model=self._cost_model,
            size_model=self._size_model,
            seed=self._seed,
            replication=tables[0],
            kernel=self._kernel,
        )

    def _patch_remote(self, snapshot: DiGraph, plans: list) -> list:
        """Per-shard patched tables from the worker pool, or ``None``\\ s.

        The fan-out only pays off (and only preserves the structural
        invariant) when there are live shard workers holding the
        current tables, more than one shard to parallelize over, and a
        deterministic noise seed; otherwise every slot is ``None`` and
        :meth:`IncrementalReplication.apply_plan` computes serially.
        """
        if (
            self.execution != "process"
            or self._process_backend is None
            or self._seed is None
            or self._live_shards <= 1
        ):
            return [None] * len(plans)
        return self._process_backend.patch_tables(snapshot, plans)

    # ------------------------------------------------------------------
    def refresh(self, delta: GraphDelta | None = None) -> RefreshUpdate:
        """Apply churn (optional), reconcile ingress, publish an epoch.

        With ``delta=None`` the source graph is assumed to have been
        churned externally (e.g. by
        :meth:`~repro.dynamic.ChurnGenerator.stream` with ``apply=True``)
        and the refresh just reconciles and republishes.  Synchronous:
        the epoch is published when this returns.  See
        :meth:`refresh_async` for the off-thread variant.
        """
        return self._refresh_pipeline(
            [] if delta is None else [delta], background=False, coalesced=1
        )

    def _refresh_pipeline(
        self,
        deltas: list[GraphDelta],
        background: bool,
        coalesced: int,
        on_built: Callable[["LiveRankingService"], None] | None = None,
    ) -> RefreshUpdate:
        """The full refresh: apply → reconcile → patch → build → publish.

        One build may cover several deltas (background coalescing); the
        published epoch reflects all of them.  Everything up to and
        including the backend build happens before the current epoch is
        touched — the next epoch is double-buffered — and the publish at
        the end is nothing but the atomic swap.
        """
        with self._refresh_lock:
            start = time.perf_counter()
            edges_added = edges_removed = 0
            for delta in deltas:
                added, removed = self.source.apply(delta)
                edges_added += added
                edges_removed += removed
            updates = [ingress.sync() for ingress in self.ingresses]
            snapshot = self.source.snapshot()
            backend = self._build_backend(snapshot)
            maybe_compact = getattr(self.source, "maybe_compact", None)
            if maybe_compact is not None:
                # Fold the store's delta layer back into segment files
                # here, on the refresh path (the background worker's
                # thread under refresh_async) — never on a query path.
                # The snapshot above already froze the merged view, so
                # compaction is invisible to the epoch being published.
                if maybe_compact(self.compact_threshold) is not None:
                    self.compactions += 1
            build_time = time.perf_counter() - start
            if on_built is not None:
                on_built(self)
            previous = self.epochs.current
            in_flight = self.scheduler.active_dispatches
            publish_start = time.perf_counter()
            self.epochs.publish(
                Epoch(
                    epoch_id=self.source.version,
                    sequence=previous.sequence + 1,
                    graph=snapshot,
                    backend=backend,
                )
            )
            publish_s = time.perf_counter() - publish_start
            self.graph = snapshot
            update = self._summarize(
                updates,
                edges_added=edges_added,
                edges_removed=edges_removed,
                in_flight=in_flight,
                elapsed=time.perf_counter() - start,
                build_time_s=build_time,
                publish_s=publish_s,
                coalesced=coalesced,
                background=background,
            )
            self.refresh_history.append(update)
            return update

    def _summarize(
        self,
        updates: list[IngressUpdate],
        edges_added: int,
        edges_removed: int,
        in_flight: int,
        elapsed: float,
        build_time_s: float = 0.0,
        publish_s: float = 0.0,
        coalesced: int = 1,
        background: bool = False,
    ) -> RefreshUpdate:
        placed = sum(
            u.reused_placements + u.new_placements for u in updates
        )
        reused = sum(u.reused_placements for u in updates)
        patches = self._last_patches
        epoch = self.epochs.current
        return RefreshUpdate(
            epoch=epoch.epoch_id,
            sequence=epoch.sequence,
            num_edges=self.source.num_edges,
            edges_added=edges_added,
            edges_removed=edges_removed,
            new_placements=sum(u.new_placements for u in updates),
            reused_placements=reused,
            reuse_ratio=reused / placed if placed else 1.0,
            load_imbalance=max(u.load_imbalance for u in updates),
            full_repartitions=sum(u.full_repartition for u in updates),
            in_flight_batches=in_flight,
            refresh_time_s=elapsed,
            vertices_patched=sum(p.vertices_patched for p in patches),
            edges_regrouped=sum(p.edges_regrouped for p in patches),
            table_rebuilds=sum(p.full_rebuild for p in patches),
            build_time_s=build_time_s,
            publish_s=publish_s,
            coalesced_deltas=coalesced,
            background=background,
        )

    # ------------------------------------------------------------------
    # Background refresh
    # ------------------------------------------------------------------
    def start_refresher(
        self,
        on_built: Callable[["LiveRankingService"], None] | None = None,
        thread: bool = True,
    ) -> BackgroundRefresher:
        """Create (and by default start) the background refresh worker.

        ``thread=False`` creates the refresher without a worker — the
        deterministic mode: submit via :meth:`refresh_async`, then drive
        builds explicitly with
        :meth:`~repro.live.BackgroundRefresher.run_pending`.
        """
        # Lazy init under the refresh lock: concurrent first callers
        # (multi-producer ingest) must agree on one refresher, or an
        # orphaned worker thread would escape stop()'s drain.
        with self._refresh_lock:
            if self.refresher is None:
                self.refresher = BackgroundRefresher(self, on_built=on_built)
            elif on_built is not None:
                self.refresher.on_built = on_built
            refresher = self.refresher
        if thread:
            refresher.start()
        return refresher

    def refresh_async(self, delta: GraphDelta | None = None) -> RefreshTicket:
        """Queue a delta for an off-query-path epoch build.

        Returns immediately with a :class:`~repro.live.RefreshTicket`
        that resolves to the covering :class:`RefreshUpdate` once the
        epoch is published.  Starts the worker thread on first use
        unless a refresher was already created (e.g. the deterministic
        ``start_refresher(thread=False)`` mode).  Deltas submitted
        faster than builds complete are coalesced into one epoch
        (``refresh_policy.coalesce``).
        """
        if self.refresher is None:
            self.start_refresher()
        return self.refresher.submit(delta)

    def attach(
        self,
        churn: ChurnGenerator | Iterable[GraphDelta],
        ticks: int | None = None,
        background: bool = False,
    ) -> list[RefreshUpdate] | list[RefreshTicket]:
        """Drive churn through the service: one refresh per delta.

        ``churn`` is either a :class:`~repro.dynamic.ChurnGenerator`
        (requires ``ticks``) or any iterable of deltas (``ticks``
        optionally truncates it).  With ``background=True`` every delta
        is submitted through :meth:`refresh_async` instead of built
        inline: the return value is one ticket per delta (tickets of
        coalesced deltas resolve to the same update), and the caller
        decides when to wait.
        """
        if isinstance(churn, ChurnGenerator):
            if ticks is None:
                raise ConfigError(
                    "attach(ChurnGenerator) needs an explicit tick count"
                )
            deltas: Iterable[GraphDelta] = (
                churn.step(self.source) for _ in range(ticks)
            )
        else:
            deltas = churn
        if ticks is not None:
            # islice never over-pulls: a generator with apply-on-step
            # side effects must not produce a delta that is then
            # silently dropped unrefreshed.
            deltas = itertools.islice(deltas, ticks)
        if background:
            return [self.refresh_async(delta) for delta in deltas]
        return [self.refresh(delta) for delta in deltas]

    def stop(self) -> None:
        """Stop the refresher worker (draining it) and the scheduler."""
        if self.refresher is not None:
            self.refresher.stop(flush=True)
        super().stop()

    # ------------------------------------------------------------------
    def live_stats(self) -> dict[str, float]:
        """Live-layer counters alongside the base service stats."""
        replicators = self.replicators or []
        stats = {
            "epoch": float(self.epochs.current.epoch_id),
            "epochs_published": float(self.epochs.epochs_published),
            "publishes_mid_flight": float(self.epochs.publishes_mid_flight),
            "refreshes": float(len(self.refresh_history)),
            "lifetime_reuse_ratio": (
                sum(i.lifetime_reuse_ratio() for i in self.ingresses)
                / len(self.ingresses)
            ),
            "full_repartitions": float(
                sum(i.full_repartitions for i in self.ingresses)
            ),
            "table_patches": float(
                sum(len(r.history) for r in replicators)
            ),
            "table_rebuilds": float(
                sum(r.full_rebuilds for r in replicators)
            ),
            "vertices_patched": float(
                sum(p.vertices_patched for r in replicators for p in r.history)
            ),
            "served_edges": float(self.epochs.current.num_edges),
            "source_edges": float(self.source.num_edges),
        }
        if self.live_store is not None:
            stats["store_compactions"] = float(self.compactions)
            stats["store_pending_delta"] = float(
                getattr(self.source, "pending_delta", 0)
            )
        if self.refresher is not None:
            for key, value in self.refresher.stats.as_dict().items():
                stats[f"refresher_{key}"] = value
        return stats
