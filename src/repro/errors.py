"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or graph operations."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph representation fails."""


class PartitionError(ReproError):
    """Raised when a vertex-cut partitioning is invalid or inconsistent."""


class EngineError(ReproError):
    """Raised for misuse of the BSP engine or vertex-program API."""


class ConfigError(ReproError):
    """Raised when an algorithm configuration fails validation."""


class ExperimentError(ReproError):
    """Raised when an experiment description cannot be executed."""


class OverloadError(ReproError):
    """Raised when admission control sheds a query instead of queueing it.

    Carries the queue ``depth`` observed at the admission decision and
    the ``limit`` it exceeded, so callers (and retry layers) can reason
    about how overloaded the service was instead of parsing a message.
    """

    def __init__(self, message: str, depth: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.depth = depth
        self.limit = limit
