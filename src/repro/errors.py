"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type to handle any
library-level failure while letting programming errors propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or graph operations."""


class GraphFormatError(GraphError):
    """Raised when parsing an on-disk graph representation fails."""


class PartitionError(ReproError):
    """Raised when a vertex-cut partitioning is invalid or inconsistent."""


class EngineError(ReproError):
    """Raised for misuse of the BSP engine or vertex-program API."""


class ConfigError(ReproError):
    """Raised when an algorithm configuration fails validation."""


class ExperimentError(ReproError):
    """Raised when an experiment description cannot be executed."""


class WorkerCrashError(EngineError):
    """Raised when one shard worker process fails at the OS level.

    Covers the three ways a real worker stops answering: the process
    died (SIGKILL, OOM, segfault), it went silent past the backend's
    per-operation deadline, or its pipes broke.  Carries the ``shard``
    id, the ``epoch`` the worker was serving and a short machine-
    readable ``cause`` (``"died"``, ``"timeout"``, ``"pipe"``,
    ``"respawn"``) so supervisors and retry layers can branch without
    parsing the message.
    """

    def __init__(
        self,
        message: str,
        shard: int = -1,
        epoch: int = -1,
        cause: str = "died",
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.epoch = epoch
        self.cause = cause


class ShardFailure(EngineError):
    """Raised when a batch loses one or more shards' frog slices.

    The fail-soft process backend raises this under
    ``on_shard_failure="fail"`` (or when *every* shard is lost) after
    the pool has already been restored — the error reports the loss,
    it never implies a wedged backend.  ``shard``/``epoch``/``cause``
    describe the first failure; ``lost_frogs`` is the total frog share
    the batch would have run on the dead shards.
    """

    def __init__(
        self,
        message: str,
        shard: int = -1,
        epoch: int = -1,
        cause: str = "died",
        lost_frogs: int = 0,
    ) -> None:
        super().__init__(message)
        self.shard = shard
        self.epoch = epoch
        self.cause = cause
        self.lost_frogs = lost_frogs


class OverloadError(ReproError):
    """Raised when admission control sheds a query instead of queueing it.

    Carries the queue ``depth`` observed at the admission decision and
    the ``limit`` it exceeded, so callers (and retry layers) can reason
    about how overloaded the service was instead of parsing a message.
    """

    def __init__(self, message: str, depth: int = 0, limit: int = 0) -> None:
        super().__init__(message)
        self.depth = depth
        self.limit = limit
