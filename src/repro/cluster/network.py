"""Network fabric: byte-exact accounting of inter-machine traffic.

The paper's headline result (Figure 1c: a 1000x reduction in "network
sent" bytes versus exact GraphLab PageRank) is an accounting statement,
so the simulator counts every byte crossing a machine boundary:

* **sync** records — a master pushing vertex data to one mirror,
* **gather** records — a mirror pushing a partial gather sum to the master,
* **scatter** records — combined ``(vertex, count)`` frog messages or
  PageRank signal messages,
* **control** — per-superstep barrier chatter.

Message sizes follow :class:`MessageSizeModel`, whose defaults mirror the
wire cost of PowerGraph's serialized vertex-data updates (ids, payload
and a small framing header).  Local (same-machine) deliveries are free,
as in the real system.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

__all__ = ["MessageSizeModel", "NetworkFabric", "TrafficSnapshot"]


@dataclass(frozen=True)
class MessageSizeModel:
    """Bytes on the wire per record kind.

    Defaults: an 8-byte vertex id plus an 8-byte payload (a double for
    PageRank / a frog count) plus framing per record, and a fixed
    per-message header amortized over batched records.
    """

    vertex_id_bytes: int = 8
    payload_bytes: int = 8
    record_overhead_bytes: int = 4
    message_header_bytes: int = 32

    def record_bytes(self) -> int:
        """Wire size of one batched record."""
        return self.vertex_id_bytes + self.payload_bytes + self.record_overhead_bytes

    def batch_bytes(self, num_records: int) -> int:
        """Wire size of one message carrying ``num_records`` records."""
        if num_records <= 0:
            return 0
        return self.message_header_bytes + num_records * self.record_bytes()


@dataclass(frozen=True)
class TrafficSnapshot:
    """Immutable view of cumulative traffic at a point in time."""

    total_bytes: int
    total_messages: int
    bytes_by_kind: dict[str, int]
    messages_by_kind: dict[str, int]
    # Same-machine deliveries: free, off the wire tallies above.
    local_messages: int = 0
    local_records: int = 0

    def bytes_for(self, kind: str) -> int:
        return self.bytes_by_kind.get(kind, 0)


class NetworkFabric:
    """Counts traffic between the ``num_machines`` simulated machines."""

    def __init__(
        self,
        num_machines: int,
        size_model: MessageSizeModel | None = None,
    ) -> None:
        if num_machines < 1:
            raise ValueError("fabric needs at least one machine")
        self.num_machines = num_machines
        self.size_model = size_model or MessageSizeModel()
        # Dense per-pair byte matrix: row = sender, col = receiver.
        self._bytes_matrix = np.zeros((num_machines, num_machines), dtype=np.int64)
        self._bytes_by_kind: dict[str, int] = defaultdict(int)
        self._messages_by_kind: dict[str, int] = defaultdict(int)
        # Per-superstep accumulation, reset by the engine at barriers.
        self._step_sent = np.zeros(num_machines, dtype=np.int64)
        self._step_received = np.zeros(num_machines, dtype=np.int64)
        # Local (same-machine) deliveries: free and excluded from every
        # wire tally, but observable — operators sizing a partition
        # want to see how much traffic the vertex-cut kept local.
        self.local_messages = 0
        self.local_records = 0

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def send(
        self, src: int, dst: int, num_records: int, kind: str
    ) -> int:
        """Record one message of ``num_records`` records; returns bytes.

        Same-machine traffic is free (no serialization in PowerGraph for
        local mirrors) and is **excluded from the wire tallies** —
        ``bytes_by_kind``/``messages_by_kind`` count only messages that
        crossed a machine boundary, which is what every downstream
        ledger reconciliation prices.  Local deliveries are tracked
        separately in :attr:`local_messages`/:attr:`local_records`
        (:meth:`send_matrix` diagonal entries count there too).
        """
        self._check_machine(src)
        self._check_machine(dst)
        if num_records < 0:
            raise ValueError("num_records must be non-negative")
        if num_records == 0:
            return 0
        if src == dst:
            self.local_messages += 1
            self.local_records += num_records
            return 0
        nbytes = self.size_model.batch_bytes(num_records)
        self._bytes_matrix[src, dst] += nbytes
        self._bytes_by_kind[kind] += nbytes
        self._messages_by_kind[kind] += 1
        self._step_sent[src] += nbytes
        self._step_received[dst] += nbytes
        return nbytes

    def send_matrix(self, records: np.ndarray, kind: str) -> tuple[int, int]:
        """Record one batched message per nonzero (src, dst) pair at once.

        ``records[s, d]`` is the record count machine ``s`` sends to
        ``d``; diagonal entries are local deliveries — free, excluded
        from the wire tallies, and counted into
        :attr:`local_messages`/:attr:`local_records` exactly as
        :meth:`send` counts a ``src == dst`` call.  This
        is the vectorized equivalent of calling :meth:`send` per pair —
        byte-for-byte the same accounting, without the Python loop the
        batched runner used to pay per superstep flush.  Returns
        ``(total_bytes, num_messages)`` so callers tracking message
        counts need not rescan the matrix.
        """
        records = np.asarray(records)
        if records.shape != (self.num_machines, self.num_machines):
            raise ValueError(
                f"record matrix must be ({self.num_machines}, "
                f"{self.num_machines}), got {records.shape}"
            )
        if (records < 0).any():
            raise ValueError("num_records must be non-negative")
        off_diagonal = records.astype(np.int64, copy=True)
        diagonal = np.diagonal(off_diagonal)
        self.local_messages += int(np.count_nonzero(diagonal))
        self.local_records += int(diagonal.sum())
        np.fill_diagonal(off_diagonal, 0)
        messages = int(np.count_nonzero(off_diagonal))
        if messages == 0:
            return 0, 0
        size = self.size_model
        nbytes = np.where(
            off_diagonal > 0,
            size.message_header_bytes + off_diagonal * size.record_bytes(),
            0,
        )
        self._bytes_matrix += nbytes
        total = int(nbytes.sum())
        self._bytes_by_kind[kind] += total
        self._messages_by_kind[kind] += messages
        self._step_sent += nbytes.sum(axis=1)
        self._step_received += nbytes.sum(axis=0)
        return total, messages

    def broadcast(self, src: int, dsts: np.ndarray, num_records: int, kind: str) -> int:
        """Send the same ``num_records``-record message to many machines."""
        total = 0
        for dst in np.asarray(dsts).ravel():
            total += self.send(src, int(dst), num_records, kind)
        return total

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """All bytes sent since construction (or the last reset)."""
        return int(self._bytes_matrix.sum())

    def bytes_between(self, src: int, dst: int) -> int:
        self._check_machine(src)
        self._check_machine(dst)
        return int(self._bytes_matrix[src, dst])

    def bytes_sent_per_machine(self) -> np.ndarray:
        return self._bytes_matrix.sum(axis=1)

    def bytes_received_per_machine(self) -> np.ndarray:
        return self._bytes_matrix.sum(axis=0)

    def snapshot(self) -> TrafficSnapshot:
        return TrafficSnapshot(
            total_bytes=self.total_bytes(),
            total_messages=sum(self._messages_by_kind.values()),
            bytes_by_kind=dict(self._bytes_by_kind),
            messages_by_kind=dict(self._messages_by_kind),
            local_messages=self.local_messages,
            local_records=self.local_records,
        )

    # ------------------------------------------------------------------
    # Superstep bookkeeping (used by the cost model)
    # ------------------------------------------------------------------
    def step_traffic(self) -> tuple[np.ndarray, np.ndarray]:
        """(bytes sent, bytes received) per machine since the last barrier."""
        return self._step_sent.copy(), self._step_received.copy()

    def end_superstep(self) -> None:
        """Reset the per-superstep accumulators (called at each barrier)."""
        self._step_sent[:] = 0
        self._step_received[:] = 0

    def reset(self) -> None:
        """Zero all counters."""
        self._bytes_matrix[:] = 0
        self._bytes_by_kind.clear()
        self._messages_by_kind.clear()
        self.local_messages = 0
        self.local_records = 0
        self.end_superstep()

    def _check_machine(self, machine: int) -> None:
        if not 0 <= machine < self.num_machines:
            raise ValueError(
                f"machine {machine} out of range [0, {self.num_machines})"
            )
