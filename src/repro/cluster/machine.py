"""Simulated cluster machines.

A :class:`Machine` is a pure accounting object: it tracks how much CPU
work (abstract "ops") the engine charged to it, broken down by phase.
The cost model converts ops to simulated seconds; Figure 1(d) of the
paper ("Total CPU usage") is reproduced from exactly these counters.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

__all__ = ["Machine", "MachineGroup"]


@dataclass
class Machine:
    """One simulated cluster node."""

    machine_id: int
    cpu_ops: int = 0
    ops_by_phase: dict[str, int] = field(default_factory=lambda: defaultdict(int))

    def charge(self, ops: int, phase: str = "compute") -> None:
        """Charge ``ops`` units of CPU work to this machine."""
        if ops < 0:
            raise ValueError("cannot charge negative ops")
        self.cpu_ops += ops
        self.ops_by_phase[phase] += ops

    def reset(self) -> None:
        """Zero all counters (used between experiment repetitions)."""
        self.cpu_ops = 0
        self.ops_by_phase.clear()


class MachineGroup:
    """The fixed set of machines making up a simulated cluster."""

    def __init__(self, num_machines: int) -> None:
        if num_machines < 1:
            raise ValueError("a cluster needs at least one machine")
        self._machines = [Machine(i) for i in range(num_machines)]

    def __len__(self) -> int:
        return len(self._machines)

    def __getitem__(self, machine_id: int) -> Machine:
        return self._machines[machine_id]

    def __iter__(self):
        return iter(self._machines)

    @property
    def num_machines(self) -> int:
        return len(self._machines)

    def total_cpu_ops(self) -> int:
        """Sum of charged ops across the cluster."""
        return sum(m.cpu_ops for m in self._machines)

    def max_cpu_ops(self) -> int:
        """Ops on the busiest machine (the straggler bound)."""
        return max(m.cpu_ops for m in self._machines)

    def reset(self) -> None:
        for machine in self._machines:
            machine.reset()
