"""Vertex-cut graph partitioning (PowerGraph-style ingress).

PowerGraph assigns *edges* to machines; a vertex is replicated on every
machine that hosts at least one of its incident edges.  One replica is
the *master*, the rest are read-only *mirrors* kept consistent by the
synchronization barrier — the traffic FrogWild's ``ps`` patch attacks.

Four ingress strategies are implemented:

* :class:`RandomVertexCut` — each edge is hashed to a uniformly random
  machine.  Simple, perfectly balanced, highest replication factor.
* :class:`ObliviousVertexCut` — PowerGraph's default greedy heuristic:
  place each edge on a machine that already hosts both endpoints if one
  exists, else one that hosts either endpoint, else the least-loaded
  machine; ties break toward lower load.
* :class:`GridVertexCut` — PowerGraph's constrained "grid" ingress:
  machines form a rows x cols grid, each vertex hashes to a home cell,
  and an edge may only land in the intersection of its endpoints'
  row+column constraint sets.  Caps the replication factor of any vertex
  at ``rows + cols - 1`` regardless of degree.
* :class:`HdrfVertexCut` — High-Degree-Replicated-First streaming
  heuristic (Petroni et al., CIKM 2015): like oblivious, but degree-aware
  — when an edge joins a high-degree and a low-degree endpoint it is
  placed with the *low*-degree one, concentrating the (inevitable)
  replication on hubs.  Power-law graphs get markedly lower replication
  factors, which directly shrinks the sync traffic FrogWild's ``ps``
  patch attacks.
* :class:`StableHashVertexCut` — placement by a deterministic hash of
  the edge's endpoint pair (SplitMix64-mixed).  Statistically equivalent
  to :class:`RandomVertexCut` but *stable across snapshots*: the same
  edge lands on the same machine no matter which other edges exist, so
  a churning graph only pays ingress for edges that actually changed.
  This is the placement primitive behind
  :class:`~repro.dynamic.PageRankTracker` and the incremental refresh
  subsystem in :mod:`repro.live`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from ..graph import DiGraph

__all__ = [
    "EdgePartition",
    "PlacementDiff",
    "Partitioner",
    "RandomVertexCut",
    "ObliviousVertexCut",
    "GridVertexCut",
    "HdrfVertexCut",
    "StableHashVertexCut",
    "stable_hash_machines",
    "placement_diff",
    "make_partitioner",
    "grid_shape",
]


@dataclass(frozen=True)
class EdgePartition:
    """Result of a vertex-cut ingress.

    Attributes
    ----------
    edge_machine:
        Machine hosting each edge, aligned with the graph's CSR edge
        order, shape ``(m,)``.
    num_machines:
        Cluster size this partition targets.
    """

    edge_machine: np.ndarray
    num_machines: int

    def __post_init__(self) -> None:
        edge_machine = np.asarray(self.edge_machine, dtype=np.int32)
        object.__setattr__(self, "edge_machine", edge_machine)
        if edge_machine.size and (
            edge_machine.min() < 0 or edge_machine.max() >= self.num_machines
        ):
            raise PartitionError("edge_machine entries out of range")

    def edges_per_machine(self) -> np.ndarray:
        """Edge-count load vector, shape ``(num_machines,)``."""
        return np.bincount(self.edge_machine, minlength=self.num_machines)

    def load_imbalance(self) -> float:
        """Max / mean edge load (1.0 = perfectly balanced)."""
        loads = self.edges_per_machine()
        mean = loads.mean()
        if mean == 0:
            return 1.0
        return float(loads.max() / mean)


@dataclass(frozen=True)
class PlacementDiff:
    """Key-level difference between two edge placements.

    All three arrays hold canonical ``source * n + target`` edge keys:
    ``added`` exist only in the new placement, ``removed`` only in the
    old one, and ``moved`` survive in both but changed machine (which,
    under the stable endpoint-pair hash, happens only when the salt
    changed — i.e. after a full re-salted repartition).  The union of
    the three is exactly the set of edges whose hosting changed; their
    endpoints are the only vertices whose replica set, master choice or
    machine-grouped adjacency can differ between the placements — the
    bound the incremental replication patcher is held to.
    """

    added: np.ndarray
    removed: np.ndarray
    moved: np.ndarray

    @property
    def num_changed(self) -> int:
        """Total edges whose hosting differs between the placements."""
        return int(self.added.size + self.removed.size + self.moved.size)

    def changed_vertices(self, num_vertices: int) -> np.ndarray:
        """Sorted unique endpoints of every changed edge key."""
        keys = np.concatenate([self.added, self.removed, self.moved])
        if keys.size == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.concatenate([keys // num_vertices, keys % num_vertices])
        )


def placement_diff(
    old_keys: np.ndarray,
    old_machines: np.ndarray,
    new_keys: np.ndarray,
    new_machines: np.ndarray,
) -> PlacementDiff:
    """Diff two placements given as sorted key arrays + machine arrays.

    Both key arrays must be strictly increasing (the canonical order of
    :meth:`~repro.dynamic.DynamicDiGraph.edge_array` and of CSR
    snapshots); the machine arrays are aligned with them.
    """
    old_keys = np.asarray(old_keys, dtype=np.int64)
    new_keys = np.asarray(new_keys, dtype=np.int64)
    old_machines = np.asarray(old_machines)
    new_machines = np.asarray(new_machines)
    if old_keys.size == 0:
        return PlacementDiff(
            added=new_keys,
            removed=old_keys,
            moved=np.empty(0, dtype=np.int64),
        )
    # One searchsorted pass classifies everything: a new key survived
    # iff it lands on an equal old key; an old key was removed iff no
    # surviving new key landed on it.
    positions = np.minimum(
        np.searchsorted(old_keys, new_keys), old_keys.size - 1
    )
    survived = old_keys[positions] == new_keys
    hit = np.zeros(old_keys.size, dtype=bool)
    hit[positions[survived]] = True
    moved = new_keys[survived][
        old_machines[positions[survived]] != new_machines[survived]
    ]
    return PlacementDiff(
        added=new_keys[~survived], removed=old_keys[~hit], moved=moved
    )


class Partitioner:
    """Base class for ingress strategies."""

    name = "base"

    def partition(self, graph: DiGraph, num_machines: int) -> EdgePartition:
        raise NotImplementedError


class RandomVertexCut(Partitioner):
    """Uniform random edge placement."""

    name = "random"

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed

    def partition(self, graph: DiGraph, num_machines: int) -> EdgePartition:
        _validate(graph, num_machines)
        rng = np.random.default_rng(
            self._seed if self._seed is None else [102, self._seed]
        )
        placement = rng.integers(0, num_machines, size=graph.num_edges, dtype=np.int32)
        return EdgePartition(placement, num_machines)


class ObliviousVertexCut(Partitioner):
    """PowerGraph's greedy heuristic (Gonzalez et al., OSDI 2012).

    Processes edges in a random order; for edge ``(u, v)`` with current
    replica sets ``A(u)``, ``A(v)`` and machine loads ``L``:

    1. if ``A(u) ∩ A(v)`` non-empty, pick its least-loaded member;
    2. elif both sets non-empty, pick the least-loaded member of the set
       belonging to the endpoint with more *unplaced* edges (approximated
       here by total degree, the standard simplification);
    3. elif one set non-empty, pick its least-loaded member;
    4. else pick the globally least-loaded machine.
    """

    name = "oblivious"

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed

    def partition(self, graph: DiGraph, num_machines: int) -> EdgePartition:
        _validate(graph, num_machines)
        rng = np.random.default_rng(
            self._seed if self._seed is None else [103, self._seed]
        )
        m = graph.num_edges
        src = graph.edge_sources()
        dst = graph.indices
        order = rng.permutation(m)

        n = graph.num_vertices
        # Replica sets as boolean bitmaps: n x num_machines is fine at
        # simulator scale (20k x 24 booleans = 480 KB).
        replicas = np.zeros((n, num_machines), dtype=bool)
        loads = np.zeros(num_machines, dtype=np.int64)
        degree = np.asarray(graph.out_degree()) + np.asarray(graph.in_degree())
        placement = np.empty(m, dtype=np.int32)

        for edge in order:
            u, v = int(src[edge]), int(dst[edge])
            a_u = replicas[u]
            a_v = replicas[v]
            both = a_u & a_v
            if both.any():
                candidates = both
            elif a_u.any() and a_v.any():
                candidates = a_u if degree[u] >= degree[v] else a_v
            elif a_u.any():
                candidates = a_u
            elif a_v.any():
                candidates = a_v
            else:
                candidates = None
            if candidates is None:
                machine = int(np.argmin(loads))
            else:
                cand_idx = np.flatnonzero(candidates)
                machine = int(cand_idx[np.argmin(loads[cand_idx])])
            placement[edge] = machine
            replicas[u, machine] = True
            replicas[v, machine] = True
            loads[machine] += 1
        return EdgePartition(placement, num_machines)


def grid_shape(num_machines: int) -> tuple[int, int]:
    """Most-square ``rows x cols`` factorization of ``num_machines``.

    PowerGraph's grid ingress wants the grid as square as possible: the
    replication cap is ``rows + cols - 1``, minimized at the squarest
    factorization.  Primes degenerate to ``1 x p`` (the cap then equals
    ``p``, i.e. no constraint) — callers wanting a real grid should pick
    composite cluster sizes, as the paper's 12/16/20/24 all are.
    """
    if num_machines < 1:
        raise PartitionError("num_machines must be positive")
    rows = int(np.sqrt(num_machines))
    while num_machines % rows != 0:
        rows -= 1
    return rows, num_machines // rows


class GridVertexCut(Partitioner):
    """Constrained 2D grid ingress (Gonzalez et al., OSDI 2012).

    Machines are arranged in a ``rows x cols`` grid.  Every vertex hashes
    to a home machine; its *constraint set* is the full row and column of
    that cell.  An edge ``(u, v)`` may only be placed inside
    ``S(u) ∩ S(v)``, which is never empty (the two "crossing" cells are
    always shared).  The least-loaded member of the intersection wins.

    Guarantees replication factor ≤ ``rows + cols - 1`` per vertex while
    keeping ingress embarrassingly parallel in the real system (placement
    depends only on the two endpoint hashes plus local load).
    """

    name = "grid"

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed

    def partition(self, graph: DiGraph, num_machines: int) -> EdgePartition:
        _validate(graph, num_machines)
        rng = np.random.default_rng(
            self._seed if self._seed is None else [105, self._seed]
        )
        rows, cols = grid_shape(num_machines)
        n = graph.num_vertices
        home = rng.integers(0, num_machines, size=n, dtype=np.int64)
        home_row = home // cols
        home_col = home % cols

        # Constraint bitmap: machine (r, c) is in S(v) iff r == row(v) or
        # c == col(v).
        machine_row = np.arange(num_machines, dtype=np.int64) // cols
        machine_col = np.arange(num_machines, dtype=np.int64) % cols
        src = graph.edge_sources()
        dst = graph.indices
        m = graph.num_edges
        placement = np.empty(m, dtype=np.int32)
        loads = np.zeros(num_machines, dtype=np.int64)
        order = rng.permutation(m)
        for edge in order:
            u, v = int(src[edge]), int(dst[edge])
            in_su = (machine_row == home_row[u]) | (machine_col == home_col[u])
            in_sv = (machine_row == home_row[v]) | (machine_col == home_col[v])
            candidates = np.flatnonzero(in_su & in_sv)
            machine = int(candidates[np.argmin(loads[candidates])])
            placement[edge] = machine
            loads[machine] += 1
        return EdgePartition(placement, num_machines)


class HdrfVertexCut(Partitioner):
    """High-Degree-Replicated-First streaming vertex-cut.

    For each edge ``(u, v)`` every machine ``p`` gets the score

    ``C(p) = C_rep(p) + lam * C_bal(p)``

    where ``C_rep(p) = g(u, p) + g(v, p)`` with
    ``g(w, p) = 1 + (1 - theta_w)`` if ``p`` already replicates ``w``
    (else 0), ``theta_w`` the normalized partial degree of ``w`` within
    the pair, and ``C_bal`` the standard normalized slack term.  Higher
    ``lam`` trades replication factor for load balance.

    The effect on power-law graphs: hubs (high partial degree, small
    ``1 - theta``) are the endpoints allowed to replicate, while tail
    vertices stay compact — exactly the degree profile of the paper's
    Twitter/LiveJournal workloads.
    """

    name = "hdrf"

    def __init__(self, seed: int | None = 0, lam: float = 1.0) -> None:
        if lam < 0:
            raise PartitionError("lam must be non-negative")
        self._seed = seed
        self.lam = lam

    def partition(self, graph: DiGraph, num_machines: int) -> EdgePartition:
        _validate(graph, num_machines)
        rng = np.random.default_rng(
            self._seed if self._seed is None else [106, self._seed]
        )
        n = graph.num_vertices
        m = graph.num_edges
        src = graph.edge_sources()
        dst = graph.indices
        order = rng.permutation(m)

        replicas = np.zeros((n, num_machines), dtype=bool)
        partial_degree = np.zeros(n, dtype=np.int64)
        loads = np.zeros(num_machines, dtype=np.int64)
        placement = np.empty(m, dtype=np.int32)
        epsilon = 1.0

        for edge in order:
            u, v = int(src[edge]), int(dst[edge])
            partial_degree[u] += 1
            partial_degree[v] += 1
            du, dv = partial_degree[u], partial_degree[v]
            theta_u = du / (du + dv)
            theta_v = 1.0 - theta_u
            g_u = np.where(replicas[u], 1.0 + (1.0 - theta_u), 0.0)
            g_v = np.where(replicas[v], 1.0 + (1.0 - theta_v), 0.0)
            max_load = loads.max()
            min_load = loads.min()
            c_bal = (max_load - loads) / (epsilon + max_load - min_load)
            score = g_u + g_v + self.lam * c_bal
            machine = int(np.argmax(score))
            placement[edge] = machine
            replicas[u, machine] = True
            replicas[v, machine] = True
            loads[machine] += 1
        return EdgePartition(placement, num_machines)


def _mix64(keys: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: deterministic high-quality 64-bit mixing."""
    z = keys.astype(np.uint64, copy=True)
    with np.errstate(over="ignore"):
        z += np.uint64(0x9E3779B97F4A7C15)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        z ^= z >> np.uint64(31)
    return z


def stable_hash_machines(
    keys: np.ndarray, num_machines: int, seed: int | None = 0
) -> np.ndarray:
    """Machine of each edge key under the stable endpoint-pair hash.

    ``keys`` are ``source * num_vertices + target`` edge identifiers (the
    canonical key encoding used by :class:`~repro.dynamic.DynamicDiGraph`).
    The result depends only on ``(key, seed)`` — never on which other
    edges exist — which is exactly the property incremental ingress
    maintenance needs: an edge that survives churn keeps its machine.
    ``seed=None`` degrades to seed 0 (the hash has no entropy source).
    """
    if num_machines < 1:
        raise PartitionError("num_machines must be positive")
    keys = np.asarray(keys).astype(np.uint64)
    with np.errstate(over="ignore"):
        salted = keys + np.uint64(
            (seed or 0) % (1 << 63)
        ) * np.uint64(0x5851F42D4C957F2D)
    hashed = _mix64(salted)
    return (hashed % np.uint64(num_machines)).astype(np.int32)


class StableHashVertexCut(Partitioner):
    """Vertex-cut placement by deterministic endpoint-pair hash.

    Deterministic in ``(source, target, seed)``: the same edge always
    lands on the same machine, across snapshots, insertions and
    deletions — the property incremental ingress needs.  Statistically
    equivalent to :class:`RandomVertexCut` (uniform, independent
    placements).
    """

    name = "stable-hash"

    def __init__(self, seed: int | None = 0) -> None:
        self._seed = seed

    def partition(self, graph: DiGraph, num_machines: int) -> EdgePartition:
        _validate(graph, num_machines)
        n = graph.num_vertices
        keys = graph.edge_sources().astype(np.int64) * n + graph.indices
        return EdgePartition(
            stable_hash_machines(keys, num_machines, self._seed),
            num_machines,
        )


_PARTITIONERS: dict[str, type[Partitioner]] = {
    "random": RandomVertexCut,
    "oblivious": ObliviousVertexCut,
    "grid": GridVertexCut,
    "hdrf": HdrfVertexCut,
    "stable-hash": StableHashVertexCut,
}


def make_partitioner(name: str, seed: int | None = 0) -> Partitioner:
    """Factory over the registered ingress strategies.

    Accepts ``"random"``, ``"oblivious"``, ``"grid"`` or ``"hdrf"``.
    """
    try:
        cls = _PARTITIONERS[name]
    except KeyError:
        raise PartitionError(
            f"unknown partitioner {name!r}; "
            f"expected one of {sorted(_PARTITIONERS)}"
        ) from None
    return cls(seed)


def _validate(graph: DiGraph, num_machines: int) -> None:
    if num_machines < 1:
        raise PartitionError("num_machines must be positive")
    if graph.num_edges == 0:
        raise PartitionError("cannot partition a graph with no edges")
