"""Simulated PowerGraph cluster: machines, network, vertex-cuts, time."""

from .costmodel import CostModel, SimulatedClock, SuperstepCost
from .machine import Machine, MachineGroup
from .network import MessageSizeModel, NetworkFabric, TrafficSnapshot
from .partition import (
    EdgePartition,
    GridVertexCut,
    HdrfVertexCut,
    ObliviousVertexCut,
    Partitioner,
    PlacementDiff,
    RandomVertexCut,
    StableHashVertexCut,
    grid_shape,
    make_partitioner,
    placement_diff,
    stable_hash_machines,
)
from .replication import ReplicationTable
from .shared import ArenaSpec, SharedArena
from .transport import RecordChannel, TransportTally, WireCodec

__all__ = [
    "Machine",
    "MachineGroup",
    "MessageSizeModel",
    "NetworkFabric",
    "TrafficSnapshot",
    "EdgePartition",
    "PlacementDiff",
    "placement_diff",
    "Partitioner",
    "RandomVertexCut",
    "ObliviousVertexCut",
    "GridVertexCut",
    "HdrfVertexCut",
    "StableHashVertexCut",
    "stable_hash_machines",
    "grid_shape",
    "make_partitioner",
    "ReplicationTable",
    "ArenaSpec",
    "SharedArena",
    "WireCodec",
    "RecordChannel",
    "TransportTally",
    "CostModel",
    "SuperstepCost",
    "SimulatedClock",
]
