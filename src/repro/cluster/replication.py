"""Master/mirror replication tables derived from a vertex-cut.

Given an :class:`~repro.cluster.partition.EdgePartition`, this module
precomputes everything the engine needs per superstep:

* which machines replicate each vertex and which one is the master,
* the out-edges of each vertex grouped by hosting machine (the unit of
  work a *synchronized mirror* performs during scatter),
* the in-edges of each vertex grouped by hosting machine (the unit of a
  distributed gather: each machine sends one partial-sum record to the
  master).

Everything is laid out in flat numpy arrays so the hot loops touch no
Python object per edge.

The grouped structures support *incremental* maintenance: a live
refresh (:class:`~repro.live.IncrementalReplication`) patches a table
delta by delta instead of rebuilding it, re-sorting only the edges of
vertices whose incident edge set or machine assignment changed and
splicing every untouched vertex's segments across
(:meth:`_GroupedEdges.spliced`, :meth:`ReplicationTable.from_components`).
The maintained table is pinned — by tests and by
:meth:`ReplicationTable.structurally_equal` — to be equivalent to a
from-scratch build of the same snapshot.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph import DiGraph
from .partition import EdgePartition

__all__ = ["ReplicationTable"]


def _segment_gather(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenated ``arange(start, start+length)`` per segment."""
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    return (
        np.repeat(np.asarray(starts, dtype=np.int64) - offsets, lengths)
        + np.arange(total, dtype=np.int64)
    )


def _index_masters(
    masters: np.ndarray, num_machines: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-machine master index: (machine pointer, vertices by master).

    The single definition shared by the from-scratch constructor and
    the incremental :meth:`ReplicationTable.from_components` path, so
    :meth:`ReplicationTable.masters_on` can never diverge between them.
    """
    order = np.argsort(masters, kind="stable")
    counts = np.bincount(masters, minlength=num_machines)
    ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return ptr, order.astype(np.int64)


def _grouping_order(anchor: np.ndarray, machine: np.ndarray) -> np.ndarray:
    """Stable (anchor, machine) sort order of an edge set.

    Equivalent to ``np.lexsort((machine, anchor))`` but via a stable
    argsort of the packed key ``anchor * num_machines + machine``, which
    numpy radix-sorts — ~2.5x faster than lexsort's mergesort on the
    serving-shaped graphs, for both the from-scratch build and the
    incremental splice's touched-edge subsort.
    """
    if anchor.size == 0:
        return np.empty(0, dtype=np.int64)
    span = int(machine.max()) + 1
    key = np.asarray(anchor, dtype=np.int64) * span + machine
    return np.argsort(key, kind="stable")


class _GroupedEdges:
    """Edges grouped by (anchor vertex, hosting machine).

    ``anchor`` is the source vertex for scatter grouping and the target
    vertex for gather grouping.  Groups of a vertex occupy a contiguous
    slice ``vertex_ptr[v]:vertex_ptr[v+1]`` in the group arrays.
    """

    __slots__ = (
        "group_machine",
        "group_anchor",
        "group_start",
        "group_stop",
        "vertex_ptr",
        "anchor_edge_ptr",
        "sorted_other",
        "edge_machine_sorted",
    )

    def __init__(
        self,
        anchor: np.ndarray,
        machine: np.ndarray,
        other: np.ndarray,
        num_vertices: int,
        presorted: bool = False,
    ) -> None:
        if presorted:
            # Caller guarantees (anchor, machine)-lexsorted input with
            # the same tie-break as the sort below (original edge order
            # within equal keys) — the splice path relies on this to
            # keep patched tables bit-identical to from-scratch builds.
            anchor_sorted, machine_sorted, self.sorted_other = (
                anchor,
                machine,
                other,
            )
        else:
            order = _grouping_order(anchor, machine)
            anchor_sorted = anchor[order]
            machine_sorted = machine[order]
            self.sorted_other = other[order]
        self.edge_machine_sorted = machine_sorted.astype(np.int32)

        if anchor_sorted.size:
            boundary = np.empty(anchor_sorted.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = (anchor_sorted[1:] != anchor_sorted[:-1]) | (
                machine_sorted[1:] != machine_sorted[:-1]
            )
            starts = np.flatnonzero(boundary)
        else:
            starts = np.empty(0, dtype=np.int64)
        self.group_start = starts
        self.group_stop = np.concatenate([starts[1:], [anchor_sorted.size]]).astype(
            np.int64
        )
        self.group_machine = machine_sorted[starts].astype(np.int32)
        self.group_anchor = anchor_sorted[starts].astype(np.int64)
        counts = np.bincount(self.group_anchor, minlength=num_vertices)
        self.vertex_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        # Edge range of each anchor vertex in the (anchor, machine)-sorted
        # edge order; edges of a vertex are contiguous in that order.
        edge_counts = np.bincount(anchor_sorted, minlength=num_vertices)
        self.anchor_edge_ptr = np.concatenate([[0], np.cumsum(edge_counts)]).astype(
            np.int64
        )

    @property
    def num_groups(self) -> int:
        return int(self.group_machine.size)

    def group_sizes(self) -> np.ndarray:
        """Edges per group."""
        return self.group_stop - self.group_start

    def edge_anchor(self) -> np.ndarray:
        """Anchor vertex of every edge in sorted order."""
        n = self.anchor_edge_ptr.size - 1
        return np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.anchor_edge_ptr)
        )

    def groups_of(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(machines, slice starts, slice stops) of vertex ``v``'s groups."""
        lo, hi = self.vertex_ptr[v], self.vertex_ptr[v + 1]
        return (
            self.group_machine[lo:hi],
            self.group_start[lo:hi],
            self.group_stop[lo:hi],
        )

    def as_arrays(self) -> dict[str, np.ndarray]:
        """Flat component arrays, keyed by slot (shared-memory export)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "_GroupedEdges":
        """Reassemble a grouping directly from :meth:`as_arrays` output.

        No sorting, grouping or validation happens — the arrays are
        adopted as-is (they may be read-only shared-memory views), so
        the caller owns the obligation that they came from an actual
        grouping over the same graph.
        """
        grouped = cls.__new__(cls)
        for slot in cls.__slots__:
            setattr(grouped, slot, arrays[slot])
        return grouped

    @classmethod
    def spliced(
        cls,
        old: "_GroupedEdges",
        touched: np.ndarray,
        t_anchor: np.ndarray,
        t_machine: np.ndarray,
        t_other: np.ndarray,
        num_vertices: int,
    ) -> "_GroupedEdges":
        """New grouping: re-sort only the edges anchored at ``touched``
        vertices, splice every untouched anchor's segment from ``old``.

        ``t_anchor``/``t_machine``/``t_other`` are the *new* edges of the
        touched anchors, in the snapshot's CSR (canonical key) order.
        Sorting cost is ``O(t log t)`` in the touched edge count; the
        untouched remainder is a pure segment memcopy, so the result is
        bit-identical to a from-scratch build (same stable sort order,
        same grouping code) at a fraction of the work.
        """
        touched = np.asarray(touched, dtype=bool)
        order = _grouping_order(t_anchor, t_machine)
        t_anchor = np.asarray(t_anchor, dtype=np.int64)[order]
        t_machine = np.asarray(t_machine)[order]
        t_other = np.asarray(t_other)[order]

        t_counts = np.bincount(t_anchor, minlength=num_vertices).astype(
            np.int64
        )
        old_counts = np.diff(old.anchor_edge_ptr)
        counts = np.where(touched, t_counts, old_counts)

        # One gather permutation over the virtual concatenation
        # [old sorted edges | touched sorted edges]: per anchor, the
        # source segment starts in the old arrays (untouched) or —
        # offset by the old edge count — in the touched arrays.
        m_old = int(old.sorted_other.size)
        t_ptr = np.concatenate([[0], np.cumsum(t_counts)[:-1]])
        starts = np.where(touched, m_old + t_ptr, old.anchor_edge_ptr[:-1])
        gather = _segment_gather(starts, counts)
        machine_full = np.concatenate(
            [old.edge_machine_sorted, t_machine]
        )[gather]
        other_full = np.concatenate([old.sorted_other, t_other])[gather]

        anchor_full = np.repeat(np.arange(num_vertices, dtype=np.int64), counts)
        return cls(
            anchor_full, machine_full, other_full, num_vertices, presorted=True
        )


class ReplicationTable:
    """Master/mirror placement plus machine-grouped adjacency.

    Parameters
    ----------
    graph:
        The partitioned graph.
    partition:
        Edge placement from a :class:`Partitioner`.
    seed:
        Seed for the (uniform) master selection among each vertex's
        replicas, mirroring PowerGraph's randomized master assignment.
    """

    def __init__(
        self, graph: DiGraph, partition: EdgePartition, seed: int | None = 0
    ) -> None:
        if partition.edge_machine.shape != (graph.num_edges,):
            raise PartitionError(
                "partition does not match graph: "
                f"{partition.edge_machine.shape} vs m={graph.num_edges}"
            )
        self.graph = graph
        self.partition = partition
        self.num_machines = partition.num_machines
        # Memo for structures derived purely from this ingress (kernel
        # tables, mirror bitmap, ...), filled lazily via
        # :meth:`repro.engine.ClusterState.ingress_cache` and shared by
        # every accounting state built over this table.
        self._ingress_cache: dict = {}
        n = graph.num_vertices

        src = graph.edge_sources()
        dst = graph.indices
        machine = partition.edge_machine.astype(np.int32)

        # Replica bitmap: vertex v lives on machine p iff p hosts an
        # incident edge.  Isolated vertices (possible only with repair
        # disabled) are pinned to machine 0.
        replicas = np.zeros((n, self.num_machines), dtype=bool)
        replicas[src, machine] = True
        replicas[dst, machine] = True
        lonely = ~replicas.any(axis=1)
        replicas[lonely, 0] = True
        self._replicas = replicas
        self.replica_counts = replicas.sum(axis=1).astype(np.int32)

        # Distinct seed stream: master selection must not correlate with
        # other components (partitioner, sync coins) fed the same seed.
        # Uniform master choice among replicas, vectorized: score every
        # (vertex, machine) cell with iid noise, mask non-replicas, argmax.
        noise = self.master_noise(n, self.num_machines, seed)
        noise[~replicas] = -1.0
        self.masters = np.argmax(noise, axis=1).astype(np.int32)

        self.out_groups = _GroupedEdges(src, machine, dst, n)
        self.in_groups = _GroupedEdges(dst, machine, src, n)

        # Vertices mastered on each machine (for init-phase placement).
        self._master_ptr, self._master_sorted_vertices = _index_masters(
            self.masters, self.num_machines
        )

    # ------------------------------------------------------------------
    # Incremental construction
    # ------------------------------------------------------------------
    @classmethod
    def master_noise(
        cls, num_vertices: int, num_machines: int, seed: int | None
    ) -> np.ndarray:
        """The master-selection noise matrix a from-scratch build draws.

        Deterministic in ``(n, num_machines, seed)`` for integer seeds,
        so an incremental maintainer can cache it once and re-derive the
        *same* master choice as a from-scratch build for any vertex
        whose replica set changed.  ``seed=None`` draws fresh entropy —
        still a valid uniform choice, but not reproducible.
        """
        rng = np.random.default_rng(seed if seed is None else [101, seed])
        return rng.random((num_vertices, num_machines))

    @classmethod
    def from_components(
        cls,
        graph: DiGraph,
        partition: EdgePartition,
        masters: np.ndarray,
        replicas: np.ndarray,
        out_groups: _GroupedEdges,
        in_groups: _GroupedEdges,
    ) -> "ReplicationTable":
        """Assemble a table from prebuilt components (the patch path).

        Skips every O(m log m) / O(n * machines) construction step of
        :meth:`__init__`; only the per-machine master index (cheap, per
        vertex) is re-derived.  Callers own the equivalence obligation:
        the components must be exactly what a from-scratch build of
        ``(graph, partition)`` would produce.
        """
        table = cls.__new__(cls)
        table.graph = graph
        table.partition = partition
        table.num_machines = partition.num_machines
        table._ingress_cache = {}
        table._replicas = replicas
        table.replica_counts = replicas.sum(axis=1).astype(np.int32)
        table.masters = masters
        table.out_groups = out_groups
        table.in_groups = in_groups
        table._master_ptr, table._master_sorted_vertices = _index_masters(
            masters, table.num_machines
        )
        return table

    def shared_components(self) -> dict[str, np.ndarray]:
        """Every component array of this table, flat-keyed for export.

        The multi-process backend places these in a
        :class:`~repro.cluster.SharedArena`; a worker rebuilds an
        equivalent table with :meth:`from_shared_components` from the
        mapped views — no pickling, no re-sorting, no re-grouping.
        """
        arrays: dict[str, np.ndarray] = {
            "masters": self.masters,
            "replicas": self._replicas,
            "edge_machine": self.partition.edge_machine,
        }
        for prefix, groups in (
            ("out", self.out_groups),
            ("in", self.in_groups),
        ):
            for slot, array in groups.as_arrays().items():
                arrays[f"{prefix}.{slot}"] = array
        return arrays

    @classmethod
    def from_shared_components(
        cls, graph: DiGraph, arrays: dict[str, np.ndarray]
    ) -> "ReplicationTable":
        """Rebuild a table from :meth:`shared_components` output.

        The zero-copy attach path of the multi-process backend: group
        arrays are adopted verbatim (possibly read-only shared-memory
        views) and only the cheap per-vertex derivations of
        :meth:`from_components` run.  The result is structurally equal
        to the exported table by construction.
        """
        partition = EdgePartition(
            arrays["edge_machine"], int(arrays["replicas"].shape[1])
        )
        out_groups = _GroupedEdges.from_arrays(
            {
                slot: arrays[f"out.{slot}"]
                for slot in _GroupedEdges.__slots__
            }
        )
        in_groups = _GroupedEdges.from_arrays(
            {slot: arrays[f"in.{slot}"] for slot in _GroupedEdges.__slots__}
        )
        return cls.from_components(
            graph,
            partition,
            arrays["masters"],
            arrays["replicas"],
            out_groups,
            in_groups,
        )

    def patched(
        self,
        graph: DiGraph,
        partition: EdgePartition,
        changed_vertices: np.ndarray,
        noise: np.ndarray,
    ) -> "ReplicationTable":
        """A new table for ``(graph, partition)`` built by patching this one.

        ``changed_vertices`` must contain every vertex whose incident
        edge set or edge-machine assignment differs between this table's
        snapshot and ``graph`` (see
        :func:`~repro.cluster.placement_diff`); ``noise`` is the cached
        :meth:`master_noise` matrix.  Only the changed vertices' replica
        rows, master choices and machine-grouped adjacency are
        recomputed — everything else is spliced from this table into
        fresh arrays (this table is never mutated; epochs still serving
        it are unaffected).  The result is equivalent to
        ``ReplicationTable(graph, partition, seed)`` built from scratch
        (pinned by :meth:`structurally_equal` in the test suite).
        """
        n = graph.num_vertices
        if n != self.graph.num_vertices:
            raise PartitionError(
                "patched() requires a fixed vertex universe: "
                f"{n} vs {self.graph.num_vertices}"
            )
        if partition.num_machines != self.num_machines:
            raise PartitionError(
                "patched() cannot change the machine count: "
                f"{partition.num_machines} vs {self.num_machines}"
            )
        changed = np.asarray(changed_vertices, dtype=np.int64)
        touched = np.zeros(n, dtype=bool)
        touched[changed] = True

        src = graph.edge_sources()
        dst = graph.indices
        # EdgePartition normalizes edge_machine to int32 on construction.
        machine = partition.edge_machine

        # Replica rows of the changed vertices, rebuilt from their new
        # incident edges; everyone else keeps their row verbatim.
        replicas = self._replicas.copy()
        replicas[changed] = False
        out_touched = touched[src]
        in_touched = touched[dst]
        replicas[src[out_touched], machine[out_touched]] = True
        replicas[dst[in_touched], machine[in_touched]] = True
        lonely = changed[~replicas[changed].any(axis=1)]
        replicas[lonely, 0] = True

        # Master re-choice from the cached noise — identical to the
        # from-scratch argmax for the same replica row.
        masters = self.masters.copy()
        if changed.size:
            scores = noise[changed].copy()
            scores[~replicas[changed]] = -1.0
            masters[changed] = np.argmax(scores, axis=1).astype(np.int32)

        out_groups = _GroupedEdges.spliced(
            self.out_groups,
            touched,
            src[out_touched],
            machine[out_touched],
            dst[out_touched],
            n,
        )
        in_groups = _GroupedEdges.spliced(
            self.in_groups,
            touched,
            dst[in_touched],
            machine[in_touched],
            src[in_touched],
            n,
        )
        return ReplicationTable.from_components(
            graph, partition, masters, replicas, out_groups, in_groups
        )

    def structurally_equal(self, other: "ReplicationTable") -> bool:
        """Full structural equivalence: masters, replicas, both groupings.

        The pinned invariant of incremental maintenance — a patched
        table must be indistinguishable from a from-scratch build of the
        same snapshot in every array the engine reads.
        """
        for mine, theirs in (
            (self.masters, other.masters),
            (self._replicas, other._replicas),
            (self.replica_counts, other.replica_counts),
            (self.partition.edge_machine, other.partition.edge_machine),
        ):
            if not np.array_equal(mine, theirs):
                return False
        for mine, theirs in (
            (self.out_groups, other.out_groups),
            (self.in_groups, other.in_groups),
        ):
            for slot in _GroupedEdges.__slots__:
                if not np.array_equal(
                    getattr(mine, slot), getattr(theirs, slot)
                ):
                    return False
        return True

    # ------------------------------------------------------------------
    # Placement queries
    # ------------------------------------------------------------------
    def master_of(self, v: int) -> int:
        """Machine holding the master replica of ``v``."""
        return int(self.masters[v])

    def replicas_of(self, v: int) -> np.ndarray:
        """All machines holding a replica of ``v`` (master included)."""
        return np.flatnonzero(self._replicas[v])

    def mirrors_of(self, v: int) -> np.ndarray:
        """Machines holding mirror (non-master) replicas of ``v``."""
        reps = self.replicas_of(v)
        return reps[reps != self.masters[v]]

    def mirror_counts(self) -> np.ndarray:
        """Number of mirrors per vertex, shape ``(n,)``."""
        return (self.replica_counts - 1).astype(np.int64)

    def masters_on(self, machine: int) -> np.ndarray:
        """Vertices whose master replica lives on ``machine``."""
        lo, hi = self._master_ptr[machine], self._master_ptr[machine + 1]
        return self._master_sorted_vertices[lo:hi]

    def replication_factor(self) -> float:
        """Average number of replicas per vertex (PowerGraph's lambda)."""
        return float(self.replica_counts.mean())

    @property
    def replica_matrix(self) -> np.ndarray:
        """Boolean (n, num_machines) replica bitmap (read-only)."""
        return self._replicas

    def sync_record_matrix(self, changed: np.ndarray) -> np.ndarray:
        """Per machine-pair sync record counts for ``changed`` vertices.

        ``records[s, d]`` = number of changed vertices mastered on ``s``
        with a mirror on ``d`` — one full synchronization barrier's worth
        of master-to-mirror updates.
        """
        changed = np.asarray(changed, dtype=bool)
        records = np.zeros((self.num_machines, self.num_machines), dtype=np.int64)
        for mirror in range(self.num_machines):
            has_mirror = changed & self._replicas[:, mirror] & (self.masters != mirror)
            if has_mirror.any():
                counts = np.bincount(
                    self.masters[has_mirror], minlength=self.num_machines
                )
                records[:, mirror] += counts
        return records

    # ------------------------------------------------------------------
    # Machine-grouped adjacency
    # ------------------------------------------------------------------
    def out_edge_groups(self, v: int) -> tuple[np.ndarray, list[np.ndarray]]:
        """Out-edges of ``v`` split by hosting machine.

        Returns ``(machines, targets_per_machine)`` where
        ``targets_per_machine[i]`` are the successors reachable through
        the mirror on ``machines[i]``.
        """
        machines, starts, stops = self.out_groups.groups_of(v)
        targets = [
            self.out_groups.sorted_other[a:b] for a, b in zip(starts, stops)
        ]
        return machines, targets

    def in_edge_groups(self, v: int) -> tuple[np.ndarray, list[np.ndarray]]:
        """In-edges of ``v`` split by hosting machine (gather grouping)."""
        machines, starts, stops = self.in_groups.groups_of(v)
        sources = [
            self.in_groups.sorted_other[a:b] for a, b in zip(starts, stops)
        ]
        return machines, sources

    def out_group_count(self, v: int) -> int:
        """Number of machines hosting at least one out-edge of ``v``."""
        return int(self.out_groups.vertex_ptr[v + 1] - self.out_groups.vertex_ptr[v])
