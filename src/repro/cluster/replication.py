"""Master/mirror replication tables derived from a vertex-cut.

Given an :class:`~repro.cluster.partition.EdgePartition`, this module
precomputes everything the engine needs per superstep:

* which machines replicate each vertex and which one is the master,
* the out-edges of each vertex grouped by hosting machine (the unit of
  work a *synchronized mirror* performs during scatter),
* the in-edges of each vertex grouped by hosting machine (the unit of a
  distributed gather: each machine sends one partial-sum record to the
  master).

Everything is laid out in flat numpy arrays so the hot loops touch no
Python object per edge.
"""

from __future__ import annotations

import numpy as np

from ..errors import PartitionError
from ..graph import DiGraph
from .partition import EdgePartition

__all__ = ["ReplicationTable"]


class _GroupedEdges:
    """Edges grouped by (anchor vertex, hosting machine).

    ``anchor`` is the source vertex for scatter grouping and the target
    vertex for gather grouping.  Groups of a vertex occupy a contiguous
    slice ``vertex_ptr[v]:vertex_ptr[v+1]`` in the group arrays.
    """

    __slots__ = (
        "group_machine",
        "group_anchor",
        "group_start",
        "group_stop",
        "vertex_ptr",
        "anchor_edge_ptr",
        "sorted_other",
        "edge_machine_sorted",
    )

    def __init__(
        self,
        anchor: np.ndarray,
        machine: np.ndarray,
        other: np.ndarray,
        num_vertices: int,
    ) -> None:
        order = np.lexsort((machine, anchor))
        anchor_sorted = anchor[order]
        machine_sorted = machine[order]
        self.sorted_other = other[order]
        self.edge_machine_sorted = machine_sorted.astype(np.int32)

        if anchor_sorted.size:
            boundary = np.empty(anchor_sorted.size, dtype=bool)
            boundary[0] = True
            boundary[1:] = (anchor_sorted[1:] != anchor_sorted[:-1]) | (
                machine_sorted[1:] != machine_sorted[:-1]
            )
            starts = np.flatnonzero(boundary)
        else:
            starts = np.empty(0, dtype=np.int64)
        self.group_start = starts
        self.group_stop = np.concatenate([starts[1:], [anchor_sorted.size]]).astype(
            np.int64
        )
        self.group_machine = machine_sorted[starts].astype(np.int32)
        self.group_anchor = anchor_sorted[starts].astype(np.int64)
        counts = np.bincount(self.group_anchor, minlength=num_vertices)
        self.vertex_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        # Edge range of each anchor vertex in the (anchor, machine)-sorted
        # edge order; edges of a vertex are contiguous in that order.
        edge_counts = np.bincount(anchor_sorted, minlength=num_vertices)
        self.anchor_edge_ptr = np.concatenate([[0], np.cumsum(edge_counts)]).astype(
            np.int64
        )

    @property
    def num_groups(self) -> int:
        return int(self.group_machine.size)

    def group_sizes(self) -> np.ndarray:
        """Edges per group."""
        return self.group_stop - self.group_start

    def edge_anchor(self) -> np.ndarray:
        """Anchor vertex of every edge in sorted order."""
        n = self.anchor_edge_ptr.size - 1
        return np.repeat(
            np.arange(n, dtype=np.int64), np.diff(self.anchor_edge_ptr)
        )

    def groups_of(self, v: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(machines, slice starts, slice stops) of vertex ``v``'s groups."""
        lo, hi = self.vertex_ptr[v], self.vertex_ptr[v + 1]
        return (
            self.group_machine[lo:hi],
            self.group_start[lo:hi],
            self.group_stop[lo:hi],
        )


class ReplicationTable:
    """Master/mirror placement plus machine-grouped adjacency.

    Parameters
    ----------
    graph:
        The partitioned graph.
    partition:
        Edge placement from a :class:`Partitioner`.
    seed:
        Seed for the (uniform) master selection among each vertex's
        replicas, mirroring PowerGraph's randomized master assignment.
    """

    def __init__(
        self, graph: DiGraph, partition: EdgePartition, seed: int | None = 0
    ) -> None:
        if partition.edge_machine.shape != (graph.num_edges,):
            raise PartitionError(
                "partition does not match graph: "
                f"{partition.edge_machine.shape} vs m={graph.num_edges}"
            )
        self.graph = graph
        self.partition = partition
        self.num_machines = partition.num_machines
        # Memo for structures derived purely from this ingress (kernel
        # tables, mirror bitmap, ...), filled lazily via
        # :meth:`repro.engine.ClusterState.ingress_cache` and shared by
        # every accounting state built over this table.
        self._ingress_cache: dict = {}
        n = graph.num_vertices

        src = graph.edge_sources()
        dst = graph.indices
        machine = partition.edge_machine.astype(np.int32)

        # Replica bitmap: vertex v lives on machine p iff p hosts an
        # incident edge.  Isolated vertices (possible only with repair
        # disabled) are pinned to machine 0.
        replicas = np.zeros((n, self.num_machines), dtype=bool)
        replicas[src, machine] = True
        replicas[dst, machine] = True
        lonely = ~replicas.any(axis=1)
        replicas[lonely, 0] = True
        self._replicas = replicas
        self.replica_counts = replicas.sum(axis=1).astype(np.int32)

        # Distinct seed stream: master selection must not correlate with
        # other components (partitioner, sync coins) fed the same seed.
        rng = np.random.default_rng(seed if seed is None else [101, seed])
        # Uniform master choice among replicas, vectorized: score every
        # (vertex, machine) cell with iid noise, mask non-replicas, argmax.
        noise = rng.random((n, self.num_machines))
        noise[~replicas] = -1.0
        self.masters = np.argmax(noise, axis=1).astype(np.int32)

        self.out_groups = _GroupedEdges(src, machine, dst, n)
        self.in_groups = _GroupedEdges(dst, machine, src, n)

        # Vertices mastered on each machine (for init-phase placement).
        order = np.argsort(self.masters, kind="stable")
        counts = np.bincount(self.masters, minlength=self.num_machines)
        self._master_ptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        self._master_sorted_vertices = order.astype(np.int64)

    # ------------------------------------------------------------------
    # Placement queries
    # ------------------------------------------------------------------
    def master_of(self, v: int) -> int:
        """Machine holding the master replica of ``v``."""
        return int(self.masters[v])

    def replicas_of(self, v: int) -> np.ndarray:
        """All machines holding a replica of ``v`` (master included)."""
        return np.flatnonzero(self._replicas[v])

    def mirrors_of(self, v: int) -> np.ndarray:
        """Machines holding mirror (non-master) replicas of ``v``."""
        reps = self.replicas_of(v)
        return reps[reps != self.masters[v]]

    def mirror_counts(self) -> np.ndarray:
        """Number of mirrors per vertex, shape ``(n,)``."""
        return (self.replica_counts - 1).astype(np.int64)

    def masters_on(self, machine: int) -> np.ndarray:
        """Vertices whose master replica lives on ``machine``."""
        lo, hi = self._master_ptr[machine], self._master_ptr[machine + 1]
        return self._master_sorted_vertices[lo:hi]

    def replication_factor(self) -> float:
        """Average number of replicas per vertex (PowerGraph's lambda)."""
        return float(self.replica_counts.mean())

    @property
    def replica_matrix(self) -> np.ndarray:
        """Boolean (n, num_machines) replica bitmap (read-only)."""
        return self._replicas

    def sync_record_matrix(self, changed: np.ndarray) -> np.ndarray:
        """Per machine-pair sync record counts for ``changed`` vertices.

        ``records[s, d]`` = number of changed vertices mastered on ``s``
        with a mirror on ``d`` — one full synchronization barrier's worth
        of master-to-mirror updates.
        """
        changed = np.asarray(changed, dtype=bool)
        records = np.zeros((self.num_machines, self.num_machines), dtype=np.int64)
        for mirror in range(self.num_machines):
            has_mirror = changed & self._replicas[:, mirror] & (self.masters != mirror)
            if has_mirror.any():
                counts = np.bincount(
                    self.masters[has_mirror], minlength=self.num_machines
                )
                records[:, mirror] += counts
        return records

    # ------------------------------------------------------------------
    # Machine-grouped adjacency
    # ------------------------------------------------------------------
    def out_edge_groups(self, v: int) -> tuple[np.ndarray, list[np.ndarray]]:
        """Out-edges of ``v`` split by hosting machine.

        Returns ``(machines, targets_per_machine)`` where
        ``targets_per_machine[i]`` are the successors reachable through
        the mirror on ``machines[i]``.
        """
        machines, starts, stops = self.out_groups.groups_of(v)
        targets = [
            self.out_groups.sorted_other[a:b] for a, b in zip(starts, stops)
        ]
        return machines, targets

    def in_edge_groups(self, v: int) -> tuple[np.ndarray, list[np.ndarray]]:
        """In-edges of ``v`` split by hosting machine (gather grouping)."""
        machines, starts, stops = self.in_groups.groups_of(v)
        sources = [
            self.in_groups.sorted_other[a:b] for a, b in zip(starts, stops)
        ]
        return machines, sources

    def out_group_count(self, v: int) -> int:
        """Number of machines hosting at least one out-edge of ``v``."""
        return int(self.out_groups.vertex_ptr[v + 1] - self.out_groups.vertex_ptr[v])
