"""Cost model: converting counted bytes/ops into simulated seconds.

The paper reports wall-clock and CPU seconds measured on EC2
``m3.xlarge`` nodes.  We cannot measure those, so the simulator derives
time from first principles:

* each superstep pays a **barrier latency** (BSP synchronization),
* communication time is the straggler's ``max(bytes_in, bytes_out)``
  divided by per-node bandwidth (full-duplex NICs),
* compute time is the straggler's charged ops divided by a per-node
  processing rate.

Per-superstep time is ``barrier + comm + compute`` of the slowest
machine; total time sums supersteps.  CPU usage (Figure 1d) is the *sum*
over machines, which can exceed wall time — exactly as the paper notes.

Defaults are calibrated so the *scaled-down* workloads sit in the same
operating regime as the paper's clusters: communication and compute
dominate each superstep, barriers are secondary.  (A literal 1 Gb/s +
5 ms barrier setting would make barrier latency dominate at 1/1000th
graph scale and flatten every comparison the paper draws.)  The figures
only rely on relative ordering, which is invariant to a common rescale
of these constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["CostModel", "SuperstepCost", "SimulatedClock"]


@dataclass(frozen=True)
class CostModel:
    """Deterministic time model for the simulated cluster."""

    bandwidth_bytes_per_s: float = 2e7
    barrier_latency_s: float = 5e-4
    cpu_ops_per_s: float = 2e6
    per_message_overhead_s: float = 2e-6

    def superstep_time(
        self,
        bytes_sent: np.ndarray,
        bytes_received: np.ndarray,
        cpu_ops: np.ndarray,
        num_messages: int = 0,
    ) -> "SuperstepCost":
        """Cost of one superstep from per-machine traffic and work."""
        sent = np.asarray(bytes_sent, dtype=np.float64)
        received = np.asarray(bytes_received, dtype=np.float64)
        ops = np.asarray(cpu_ops, dtype=np.float64)
        comm = float(np.max(np.maximum(sent, received), initial=0.0))
        comm_time = comm / self.bandwidth_bytes_per_s
        comm_time += num_messages * self.per_message_overhead_s
        compute_time = float(np.max(ops, initial=0.0)) / self.cpu_ops_per_s
        return SuperstepCost(
            barrier_s=self.barrier_latency_s,
            comm_s=comm_time,
            compute_s=compute_time,
        )

    def cpu_seconds(self, total_ops: float) -> float:
        """Aggregate CPU seconds for summed ops (Figure 1d metric)."""
        return float(total_ops) / self.cpu_ops_per_s


@dataclass(frozen=True)
class SuperstepCost:
    """Breakdown of one superstep's simulated duration."""

    barrier_s: float
    comm_s: float
    compute_s: float

    @property
    def total_s(self) -> float:
        return self.barrier_s + self.comm_s + self.compute_s


@dataclass
class SimulatedClock:
    """Accumulates superstep costs into a running total."""

    elapsed_s: float = 0.0
    steps: list[SuperstepCost] = field(default_factory=list)

    def advance(self, cost: SuperstepCost) -> None:
        self.steps.append(cost)
        self.elapsed_s += cost.total_s

    @property
    def num_supersteps(self) -> int:
        return len(self.steps)

    def time_per_superstep(self) -> float:
        """Mean superstep duration; 0 if nothing ran."""
        if not self.steps:
            return 0.0
        return self.elapsed_s / len(self.steps)
