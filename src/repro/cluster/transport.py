"""Real record transport whose framing is priced by ``MessageSizeModel``.

The simulated :class:`~repro.cluster.NetworkFabric` *counts* bytes; this
module actually *moves* them.  A :class:`RecordChannel` wraps one
``multiprocessing`` pipe connection and ships batches of
``(vertex id, payload)`` records as framed binary messages whose layout
is generated from a :class:`~repro.cluster.MessageSizeModel`:

* one fixed header of ``message_header_bytes`` (magic, version, kind
  code, record count, tag — zero-padded to the model's header size),
* ``num_records`` packed records of ``record_bytes()`` each (vertex id,
  payload, ``record_overhead_bytes`` of framing pad).

Because the frame layout is *derived from* the size model, the measured
bytes of a non-empty frame equal ``batch_bytes(num_records)`` exactly —
and the channel still verifies that equality on every frame and keeps
independent measured-vs-model tallies, so a drifting model (or a buggy
codec) fails loudly instead of silently skewing the paper's
network-bytes claims.  The one structural difference is the empty
frame: a real transport must frame a zero-record message to keep the
stream aligned, while the simulated model prices empty sends at zero
(``batch_bytes(0) == 0``); empty frames are therefore tallied
separately and excluded from record-traffic reconciliation.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigError
from .network import MessageSizeModel

__all__ = ["WireCodec", "TransportTally", "RecordChannel", "KIND_CODES"]

_MAGIC = 0xF0
_VERSION = 1
_HEADER = struct.Struct("<BBBxIQ")  # magic, version, kind, count, tag

#: Stable record-kind numbering shared by both pipe ends.
KIND_CODES = {
    "control": 0,
    "sync": 1,
    "gather": 2,
    "scatter": 3,
    "result": 4,
}
_KIND_NAMES = {code: kind for kind, code in KIND_CODES.items()}


class WireCodec:
    """Frame encoder/decoder generated from a :class:`MessageSizeModel`."""

    def __init__(self, size_model: MessageSizeModel | None = None) -> None:
        self.size_model = size_model or MessageSizeModel()
        if self.size_model.message_header_bytes < _HEADER.size:
            raise ConfigError(
                f"message_header_bytes must be >= {_HEADER.size} to hold "
                "the frame header"
            )
        for name in ("vertex_id_bytes", "payload_bytes"):
            width = getattr(self.size_model, name)
            if width not in (1, 2, 4, 8):
                raise ConfigError(
                    f"{name}={width} has no packed integer encoding"
                )
        fields = [
            ("v", f"<i{self.size_model.vertex_id_bytes}"),
            ("p", f"<i{self.size_model.payload_bytes}"),
        ]
        if self.size_model.record_overhead_bytes:
            fields.append(
                ("pad", f"V{self.size_model.record_overhead_bytes}")
            )
        self.record_dtype = np.dtype(fields)
        assert self.record_dtype.itemsize == self.size_model.record_bytes()

    def encode(
        self,
        kind: str,
        vertices: np.ndarray,
        payloads: np.ndarray,
        tag: int = 0,
    ) -> bytes:
        vertices = np.asarray(vertices)
        payloads = np.asarray(payloads)
        if vertices.shape != payloads.shape or vertices.ndim != 1:
            raise ConfigError("vertices/payloads must be equal-length 1-d")
        records = np.zeros(vertices.size, dtype=self.record_dtype)
        records["v"] = vertices
        records["p"] = payloads
        header = _HEADER.pack(
            _MAGIC, _VERSION, KIND_CODES[kind], vertices.size, tag
        )
        pad = self.size_model.message_header_bytes - _HEADER.size
        return header + b"\x00" * pad + records.tobytes()

    def decode(self, frame: bytes) -> tuple[str, int, np.ndarray, np.ndarray]:
        """Return ``(kind, tag, vertices, payloads)`` of one frame."""
        magic, version, code, count, tag = _HEADER.unpack_from(frame)
        if magic != _MAGIC or version != _VERSION:
            raise ConfigError("malformed transport frame")
        records = np.frombuffer(
            frame,
            dtype=self.record_dtype,
            count=count,
            offset=self.size_model.message_header_bytes,
        )
        return (
            _KIND_NAMES[code],
            tag,
            records["v"].astype(np.int64),
            records["p"].astype(np.int64),
        )


@dataclass
class TransportTally:
    """One direction's cumulative transport traffic, measured and modeled.

    ``measured_bytes`` counts every byte of every frame as it actually
    crossed the pipe; ``model_bytes`` prices the same frames through
    ``MessageSizeModel.batch_bytes`` — the reconciliation invariant is
    ``measured == model + empty_frames * message_header_bytes`` (empty
    frames carry a real header the zero-priced model ignores).
    """

    measured_bytes: int = 0
    model_bytes: int = 0
    messages: int = 0
    records: int = 0
    empty_frames: int = 0
    bytes_by_kind: dict[str, int] = field(default_factory=dict)
    messages_by_kind: dict[str, int] = field(default_factory=dict)

    def add(self, kind: str, num_records: int, frame_bytes: int, model_bytes: int) -> None:
        self.measured_bytes += frame_bytes
        self.model_bytes += model_bytes
        self.messages += 1
        self.records += num_records
        if num_records == 0:
            self.empty_frames += 1
        self.bytes_by_kind[kind] = (
            self.bytes_by_kind.get(kind, 0) + frame_bytes
        )
        self.messages_by_kind[kind] = self.messages_by_kind.get(kind, 0) + 1

    def merge(self, other: "TransportTally") -> None:
        self.measured_bytes += other.measured_bytes
        self.model_bytes += other.model_bytes
        self.messages += other.messages
        self.records += other.records
        self.empty_frames += other.empty_frames
        for kind, nbytes in other.bytes_by_kind.items():
            self.bytes_by_kind[kind] = self.bytes_by_kind.get(kind, 0) + nbytes
        for kind, count in other.messages_by_kind.items():
            self.messages_by_kind[kind] = (
                self.messages_by_kind.get(kind, 0) + count
            )

    def reconciles(self, size_model: MessageSizeModel | None = None) -> bool:
        """Measured bytes match the model's pricing of the same frames."""
        header = (size_model or MessageSizeModel()).message_header_bytes
        return self.measured_bytes == (
            self.model_bytes + self.empty_frames * header
        )

    def as_dict(self) -> dict[str, float]:
        return {
            "measured_bytes": float(self.measured_bytes),
            "model_bytes": float(self.model_bytes),
            "messages": float(self.messages),
            "records": float(self.records),
            "empty_frames": float(self.empty_frames),
        }


class RecordChannel:
    """One measured end of a record pipe between two processes."""

    def __init__(
        self,
        connection,
        size_model: MessageSizeModel | None = None,
    ) -> None:
        self.connection = connection
        self.codec = WireCodec(size_model)
        self.sent = TransportTally()
        self.received = TransportTally()

    def send_records(
        self,
        kind: str,
        vertices: np.ndarray,
        payloads: np.ndarray,
        tag: int = 0,
    ) -> int:
        """Frame and send one record batch; returns measured bytes."""
        frame = self.codec.encode(kind, vertices, payloads, tag)
        self.connection.send_bytes(frame)
        num_records = int(np.asarray(vertices).size)
        model = self.codec.size_model.batch_bytes(num_records)
        self.sent.add(kind, num_records, len(frame), model)
        return len(frame)

    def recv_records(self) -> tuple[str, int, np.ndarray, np.ndarray]:
        """Receive one frame; verifies measured-vs-model byte equality."""
        frame = self.connection.recv_bytes()
        kind, tag, vertices, payloads = self.codec.decode(frame)
        model = self.codec.size_model.batch_bytes(vertices.size)
        expected = (
            model
            if vertices.size
            else self.codec.size_model.message_header_bytes
        )
        if len(frame) != expected:
            raise ConfigError(
                f"transport frame of {len(frame)} bytes does not "
                f"reconcile with the size model's {expected}"
            )
        self.received.add(kind, int(vertices.size), len(frame), model)
        return kind, tag, vertices, payloads

    def poll(self, timeout: float = 0.0) -> bool:
        return self.connection.poll(timeout)

    def close(self) -> None:
        try:
            self.connection.close()
        except OSError:
            pass
