"""Shared-memory arenas: zero-copy graph state across OS processes.

The multi-process execution backend puts every large read-only array —
the graph's CSR arrays and each shard's :class:`ReplicationTable`
components — into a single named ``multiprocessing.shared_memory``
segment per *arena*.  Worker processes receive only a tiny picklable
:class:`ArenaSpec` (segment name, epoch tag and an entry table of
``(key, dtype, shape, offset)`` rows) and map the segment back into
numpy views without copying or pickling a single array element.

Lifecycle contract:

* the **owner** (the parent process) calls :meth:`SharedArena.create`,
  which allocates the segment, copies the arrays in once, and later
  :meth:`SharedArena.destroy`\\ s it (close + unlink);
* **workers** call :meth:`SharedArena.attach` with the spec and
  :meth:`SharedArena.close` when told to drop an epoch; they never
  unlink.

Attached views are marked read-only: shared graph state is immutable
within an epoch by design (a refresh publishes a *new* arena under a
new epoch tag rather than mutating a mapped one), and a stray write
from a worker would silently corrupt every other process.

Epoch tagging is what makes live refresh safe: each
:class:`~repro.live.BackgroundRefresher` publish materializes fresh
arenas tagged with the new epoch id, workers attach them *before* the
parent retires the old epoch's segments, and a batch only ever runs
against the single epoch it was dispatched under.
"""

from __future__ import annotations

import os
import secrets
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from ..errors import ConfigError

__all__ = ["ArenaSpec", "SharedArena"]

#: Default segment-name prefix.  Owners that need a sweepable
#: namespace (one they can enumerate and garbage-collect after a
#: worker crash) pass their own prefix to :meth:`SharedArena.create`
#: and hand it to :meth:`SharedArena.sweep_orphans`.
DEFAULT_PREFIX = "repro-arena"

#: Where named POSIX shared-memory segments appear as files (Linux).
#: On platforms without it the sweep helpers degrade to no-ops — the
#: resource tracker remains the backstop there.
_SHM_DIR = "/dev/shm"

_ALIGN = 8


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArenaSpec:
    """Picklable manifest of one shared-memory arena.

    ``entries`` rows are ``(key, dtype_str, shape, offset)``; dtype is
    the numpy ``dtype.str`` spelling (endianness included) so the
    attach side reconstructs byte-identical views.
    """

    name: str
    epoch: int
    size: int
    entries: tuple[tuple[str, str, tuple[int, ...], int], ...]

    def keys(self) -> tuple[str, ...]:
        return tuple(entry[0] for entry in self.entries)


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Open an existing segment without adopting cleanup responsibility.

    Python's ``resource_tracker`` assumes every process that opens a
    segment co-owns it and unlinks "leaked" segments at interpreter
    exit — wrong for our attach side, where the parent owns the
    lifecycle.  3.13+ has ``track=False``; earlier versions need the
    unregister workaround.
    """
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:
        pass
    # Pre-3.13: suppress the constructor's tracker registration rather
    # than unregistering afterwards — with a forked worker sharing the
    # parent's tracker daemon, register-then-unregister would *remove*
    # the owner's registration and make the owner's eventual unlink
    # complain about an unknown segment.
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def _skip_shared_memory(tracked_name, rtype):
        if rtype != "shared_memory":
            original(tracked_name, rtype)

    resource_tracker.register = _skip_shared_memory
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SharedArena:
    """A dict of numpy arrays living in one named shared-memory segment."""

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        spec: ArenaSpec,
        owner: bool,
    ) -> None:
        self._segment = segment
        self.spec = spec
        self.owner = owner
        self._arrays: dict[str, np.ndarray] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        arrays: dict[str, np.ndarray],
        epoch: int = 0,
        name: str | None = None,
        prefix: str = DEFAULT_PREFIX,
    ) -> "SharedArena":
        """Allocate a segment and copy ``arrays`` in (owner side).

        ``prefix`` namespaces the generated segment name
        (``{prefix}-{epoch}-{random}``): a backend that creates all its
        arenas under one per-instance prefix can later enumerate and
        sweep exactly its own segments (:meth:`sweep_orphans`) without
        touching arenas owned by other pools in the same host.
        """
        if not arrays:
            raise ConfigError("an arena needs at least one array")
        entries: list[tuple[str, str, tuple[int, ...], int]] = []
        offset = 0
        for key, array in arrays.items():
            array = np.ascontiguousarray(array)
            offset = _aligned(offset)
            entries.append((key, array.dtype.str, array.shape, offset))
            offset += array.nbytes
        size = max(offset, 1)
        if name is None:
            name = f"{prefix}-{epoch}-{secrets.token_hex(4)}"
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=size
        )
        spec = ArenaSpec(
            name=segment.name,
            epoch=epoch,
            size=size,
            entries=tuple(entries),
        )
        arena = cls(segment, spec, owner=True)
        views = arena.arrays
        for key, array in arrays.items():
            views[key][...] = np.ascontiguousarray(array)
        return arena

    @classmethod
    def attach(cls, spec: ArenaSpec) -> "SharedArena":
        """Map an existing arena from its spec (worker side)."""
        return cls(_attach_segment(spec.name), spec, owner=False)

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def arrays(self) -> dict[str, np.ndarray]:
        """Zero-copy views into the segment, keyed per the spec.

        Owner views stay writable (the owner fills them once at
        creation); attached views are read-only — within an epoch the
        shared state is immutable, and refreshes publish new arenas.
        """
        if self._arrays is None:
            views: dict[str, np.ndarray] = {}
            for key, dtype, shape, offset in self.spec.entries:
                count = int(np.prod(shape, dtype=np.int64))
                view = np.frombuffer(
                    self._segment.buf,
                    dtype=np.dtype(dtype),
                    count=count,
                    offset=offset,
                ).reshape(shape)
                if not self.owner:
                    view.flags.writeable = False
                views[key] = view
            self._arrays = views
        return self._arrays

    def __getitem__(self, key: str) -> np.ndarray:
        return self.arrays[key]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping (both sides; never unlinks).

        Live numpy views pin the underlying mmap — if any outlive the
        arena object the close is deferred to process exit, which is
        safe (the owner's unlink already happened or will happen
        independently).
        """
        self._arrays = None
        try:
            self._segment.close()
        except BufferError:
            # Views still alive: defer the mapping release to process
            # exit (the OS reclaims it) and disarm the segment's
            # destructor so interpreter shutdown stays silent.
            self._segment._buf = None
            self._segment._mmap = None

    def destroy(self) -> None:
        """Close and unlink the segment (owner side only)."""
        self.close()
        if self.owner:
            try:
                self._segment.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "SharedArena":
        return self

    def __exit__(self, *exc) -> None:
        self.destroy() if self.owner else self.close()

    # ------------------------------------------------------------------
    # Orphan accounting
    # ------------------------------------------------------------------
    @staticmethod
    def list_segments(prefix: str) -> list[str]:
        """Names of live shared-memory segments under ``prefix``.

        Reads the kernel's shm directory, so the answer reflects what
        actually exists — including segments whose owning process died
        without unlinking.  Returns an empty list on platforms without
        a browsable shm filesystem.
        """
        if not prefix:
            raise ConfigError("list_segments needs a non-empty prefix")
        if not os.path.isdir(_SHM_DIR):  # pragma: no cover - non-Linux
            return []
        wanted = prefix + "-"
        return sorted(
            entry
            for entry in os.listdir(_SHM_DIR)
            if entry.startswith(wanted)
        )

    @staticmethod
    def sweep_orphans(
        prefix: str, live: frozenset[str] | set[str] = frozenset()
    ) -> list[str]:
        """Unlink leaked segments under ``prefix``; returns their names.

        A crashed owner (or a worker killed mid-attach) can leave named
        segments behind with nobody holding a handle.  This sweep
        unlinks every ``prefix``-named segment whose name is not in
        ``live`` — the set of segments the caller still owns — and is
        idempotent: segments already gone are skipped silently, so it
        is safe to call from ``close()``, from supervisor respawns and
        from overlapping cleanup paths.  No-op where the shm
        filesystem is not browsable.
        """
        swept: list[str] = []
        for name in SharedArena.list_segments(prefix):
            if name in live:
                continue
            try:
                os.unlink(os.path.join(_SHM_DIR, name))
            except FileNotFoundError:
                continue
            except OSError:  # pragma: no cover - permissions race
                continue
            swept.append(name)
        return swept
