"""Saving and loading experiment results (JSON and CSV).

Experiment rows round-trip losslessly through JSON; CSV is a flattened
export for spreadsheets (``as_dict`` columns, one row per run).  Figure
results carry their id/title/notes alongside the rows so a saved file
is self-describing.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from ..errors import ExperimentError
from .figures import FigureResult
from .harness import ExperimentRow

__all__ = [
    "row_to_dict",
    "row_from_dict",
    "save_rows_json",
    "load_rows_json",
    "save_figure_json",
    "load_figure_json",
    "save_rows_csv",
]


def row_to_dict(row: ExperimentRow) -> dict:
    """Full-fidelity dict (JSON-safe keys) for one row."""
    return {
        "workload": row.workload,
        "algorithm": row.algorithm,
        "num_machines": row.num_machines,
        "supersteps": row.supersteps,
        "total_time_s": row.total_time_s,
        "time_per_iteration_s": row.time_per_iteration_s,
        "network_bytes": row.network_bytes,
        "cpu_seconds": row.cpu_seconds,
        "mass_captured": {str(k): v for k, v in row.mass_captured.items()},
        "exact_identification": {
            str(k): v for k, v in row.exact_identification.items()
        },
        "params": dict(row.params),
    }


def row_from_dict(data: dict) -> ExperimentRow:
    """Inverse of :func:`row_to_dict`."""
    try:
        return ExperimentRow(
            workload=data["workload"],
            algorithm=data["algorithm"],
            num_machines=int(data["num_machines"]),
            supersteps=int(data["supersteps"]),
            total_time_s=float(data["total_time_s"]),
            time_per_iteration_s=float(data["time_per_iteration_s"]),
            network_bytes=int(data["network_bytes"]),
            cpu_seconds=float(data["cpu_seconds"]),
            mass_captured={
                int(k): float(v)
                for k, v in data.get("mass_captured", {}).items()
            },
            exact_identification={
                int(k): float(v)
                for k, v in data.get("exact_identification", {}).items()
            },
            params=dict(data.get("params", {})),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ExperimentError(f"malformed experiment row: {exc}") from exc


def save_rows_json(rows: list[ExperimentRow], path: str | Path) -> Path:
    """Write rows as a JSON array; returns the path written."""
    path = Path(path)
    payload = [row_to_dict(row) for row in rows]
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_rows_json(path: str | Path) -> list[ExperimentRow]:
    """Read rows saved by :func:`save_rows_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(payload, list):
        raise ExperimentError(f"{path}: expected a JSON array of rows")
    return [row_from_dict(item) for item in payload]


def save_figure_json(figure: FigureResult, path: str | Path) -> Path:
    """Write a figure (id, title, notes, rows) as one JSON object."""
    path = Path(path)
    payload = {
        "figure_id": figure.figure_id,
        "title": figure.title,
        "notes": figure.notes,
        "rows": [row_to_dict(row) for row in figure.rows],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def load_figure_json(path: str | Path) -> FigureResult:
    """Read a figure saved by :func:`save_figure_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    try:
        return FigureResult(
            figure_id=payload["figure_id"],
            title=payload["title"],
            notes=payload.get("notes", ""),
            rows=[row_from_dict(item) for item in payload["rows"]],
        )
    except (KeyError, TypeError) as exc:
        raise ExperimentError(f"malformed figure file {path}: {exc}") from exc


def save_rows_csv(rows: list[ExperimentRow], path: str | Path) -> Path:
    """Flattened CSV export (``as_dict`` columns, union over rows)."""
    path = Path(path)
    if not rows:
        raise ExperimentError("nothing to save: rows is empty")
    dicts = [row.as_dict() for row in rows]
    columns: list[str] = []
    for row in dicts:
        for key in row:
            if key not in columns:
                columns.append(key)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, restval="")
        writer.writeheader()
        writer.writerows(dicts)
    return path
