"""Standard experiment workloads (the paper's graphs, scaled down).

The paper evaluates on Twitter (41.6M vertices / 1.4B edges, AWS with
12–24 machines, 800K frogs) and LiveJournal (4.8M / 69M, VirtualBox
with 20 machines, 400K–1.4M frogs).  The simulator runs the same
experiments on synthetic stand-ins three orders of magnitude smaller;
frog counts are scaled so the *frogs-per-vertex* ratio stays in the
paper's sublinear regime while leaving enough samples for top-100
estimation (Remark 6: N grows with k/mu_k², not with n — the paper
itself uses the same 800K for graphs an order of magnitude apart).

Every figure function accepts an explicit workload so real SNAP graphs
(via :func:`repro.graph.read_edge_list`) can be dropped in unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..graph import DiGraph, livejournal_like, rmat, twitter_like
from ..pagerank import exact_pagerank

__all__ = [
    "Workload",
    "twitter_workload",
    "livejournal_workload",
    "rmat_workload",
    "PAPER_TWITTER_VERTICES",
    "PAPER_LIVEJOURNAL_VERTICES",
    "PAPER_FROGS",
]

#: Sizes of the paper's datasets, for documentation and frog scaling.
PAPER_TWITTER_VERTICES = 41_600_000
PAPER_LIVEJOURNAL_VERTICES = 4_800_000
#: The paper's default walker count ("800K rw").
PAPER_FROGS = 800_000


@dataclass
class Workload:
    """A named graph plus its experiment defaults and ground truth."""

    name: str
    graph: DiGraph
    default_frogs: int
    default_iterations: int
    default_machines: int
    #: Paper-scale counterparts, recorded in reports.
    paper_vertices: int
    _truth: np.ndarray | None = field(default=None, repr=False)

    @property
    def truth(self) -> np.ndarray:
        """Exact PageRank, computed lazily once and cached."""
        if self._truth is None:
            self._truth = exact_pagerank(self.graph)
        return self._truth

    def frogs_scaled(self, paper_frogs: int) -> int:
        """Translate a paper frog count (e.g. Figure 6's 400K–1.4M sweep)
        into this workload's scale, preserving the ratio to the default
        800K."""
        return max(1, round(self.default_frogs * paper_frogs / PAPER_FROGS))


@lru_cache(maxsize=8)
def _twitter_graph(n: int) -> DiGraph:
    return twitter_like(n=n)


@lru_cache(maxsize=8)
def _livejournal_graph(n: int) -> DiGraph:
    return livejournal_like(n=n)


def twitter_workload(
    n: int = 50_000,
    default_frogs: int = 24_000,
    default_machines: int = 16,
) -> Workload:
    """Scaled Twitter stand-in (paper: AWS, 12–24 nodes, 800K frogs)."""
    return Workload(
        name="twitter",
        graph=_twitter_graph(n),
        default_frogs=default_frogs,
        default_iterations=4,
        default_machines=default_machines,
        paper_vertices=PAPER_TWITTER_VERTICES,
    )


@lru_cache(maxsize=8)
def _rmat_graph(scale: int, edge_factor: int) -> DiGraph:
    return rmat(scale=scale, edge_factor=edge_factor, seed=17)


def rmat_workload(
    scale: int = 15,
    edge_factor: int = 16,
    default_frogs: int = 24_000,
    default_machines: int = 16,
) -> Workload:
    """Graph500-style R-MAT workload (not in the paper).

    A third graph family with a *different* generative process from the
    preferential-attachment stand-ins, used by the robustness bench to
    check that the reproduced figure shapes are not artifacts of one
    generator's degree correlations.
    """
    return Workload(
        name=f"rmat{scale}",
        graph=_rmat_graph(scale, edge_factor),
        default_frogs=default_frogs,
        default_iterations=4,
        default_machines=default_machines,
        paper_vertices=1 << scale,
    )


def livejournal_workload(
    n: int = 20_000,
    default_frogs: int = 24_000,
    default_machines: int = 20,
) -> Workload:
    """Scaled LiveJournal stand-in (paper: VirtualBox, 20 nodes)."""
    return Workload(
        name="livejournal",
        graph=_livejournal_graph(n),
        default_frogs=default_frogs,
        default_iterations=4,
        default_machines=default_machines,
        paper_vertices=PAPER_LIVEJOURNAL_VERTICES,
    )
