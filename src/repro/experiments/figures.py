"""Reproduction of every figure in the paper's evaluation (Section 3).

Each ``figure*`` function re-runs the corresponding experiment on the
simulated cluster and returns a :class:`FigureResult` whose rows carry
the exact series the paper plots.  Parameters default to the scaled
workloads of :mod:`repro.experiments.workloads`; passing smaller graphs
or fewer sweep points gives quick versions for tests.

The paper has no numbered tables — Figures 1–8 are the whole
evaluation.  See DESIGN.md for the per-figure shape criteria and
EXPERIMENTS.md for measured outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .harness import ExperimentHarness, ExperimentRow
from .reporting import format_rows
from .workloads import Workload, livejournal_workload, twitter_workload

__all__ = [
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "ALL_FIGURES",
]

_PS_SWEEP = (1.0, 0.7, 0.4, 0.1)


@dataclass
class FigureResult:
    """Rows backing one paper figure, plus context for reporting."""

    figure_id: str
    title: str
    rows: list[ExperimentRow] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        text = format_rows(
            self.rows, title=f"Figure {self.figure_id}: {self.title}"
        )
        if self.notes:
            text += f"\n  note: {self.notes}"
        return text

    def series(self, algorithm_prefix: str) -> list[ExperimentRow]:
        """Rows whose algorithm label starts with the given prefix."""
        return [
            row for row in self.rows if row.algorithm.startswith(algorithm_prefix)
        ]


def _default_twitter(workload: Workload | None) -> Workload:
    return workload if workload is not None else twitter_workload()


def _default_livejournal(workload: Workload | None) -> Workload:
    return workload if workload is not None else livejournal_workload()


def figure1(
    workload: Workload | None = None,
    machine_counts: tuple[int, ...] = (12, 16, 20, 24),
    ps_values: tuple[float, ...] = _PS_SWEEP,
    iterations: int = 4,
    seed: int = 0,
) -> FigureResult:
    """Figures 1a–1d: time/iteration, total time, network, CPU vs
    cluster size (Twitter, 800K-equivalent frogs, 4 iterations).

    One row per (cluster size, algorithm); the four sub-figures read
    different columns of the same rows.
    """
    workload = _default_twitter(workload)
    harness = ExperimentHarness(workload, seed=seed)
    result = FigureResult(
        "1",
        "PageRank performance vs number of nodes (Twitter-like)",
        notes=(
            "1a: time_per_iteration_s; 1b: total_time_s; "
            "1c: network_bytes; 1d: cpu_seconds"
        ),
    )
    for machines in machine_counts:
        result.rows.append(
            harness.run_graphlab(num_machines=machines, tolerance=1e-6)
        )
        for its in (2, 1):
            result.rows.append(
                harness.run_graphlab(iterations=its, num_machines=machines)
            )
        for ps in ps_values:
            result.rows.append(
                harness.run_frogwild(
                    num_machines=machines,
                    ps=ps,
                    iterations=iterations,
                    seed=seed,
                )
            )
    return result


def figure2(
    workload: Workload | None = None,
    ks: tuple[int, ...] = (30, 100, 300, 1000),
    ps_values: tuple[float, ...] = _PS_SWEEP,
    num_machines: int = 16,
    iterations: int = 4,
    seed: int = 0,
) -> FigureResult:
    """Figures 2a/2b: mass captured and exact identification vs k
    (Twitter, 16 nodes)."""
    workload = _default_twitter(workload)
    harness = ExperimentHarness(workload, num_machines=num_machines, seed=seed)
    result = FigureResult(
        "2",
        "Approximation accuracy vs k (Twitter-like, 16 nodes)",
        notes="2a: mass@k columns; 2b: exact@k columns",
    )
    for its in (2, 1):
        result.rows.append(harness.run_graphlab(iterations=its, ks=ks))
    for ps in ps_values:
        result.rows.append(
            harness.run_frogwild(ks=ks, ps=ps, iterations=iterations, seed=seed)
        )
    return result


def figure3(
    workload: Workload | None = None,
    num_machines: int = 24,
    iteration_values: tuple[int, ...] = (3, 4, 5),
    ps_values: tuple[float, ...] = _PS_SWEEP,
    k: int = 100,
    seed: int = 0,
) -> FigureResult:
    """Figures 3a/3b: accuracy (mu_100) vs total time and vs network
    bytes (Twitter, 24 nodes); FrogWild iters x ps grid vs GraphLab PR."""
    workload = _default_twitter(workload)
    harness = ExperimentHarness(workload, num_machines=num_machines, seed=seed)
    result = FigureResult(
        "3",
        "Accuracy vs total time / network (Twitter-like, 24 nodes)",
        notes="3a: (total_time_s, mass@k); 3b: (network_bytes, mass@k)",
    )
    result.rows.append(harness.run_graphlab(ks=(k,), tolerance=1e-6))
    for its in (2, 1):
        result.rows.append(harness.run_graphlab(iterations=its, ks=(k,)))
    for its in iteration_values:
        for ps in ps_values:
            result.rows.append(
                harness.run_frogwild(ks=(k,), ps=ps, iterations=its, seed=seed)
            )
    return result


def figure4(
    workload: Workload | None = None,
    num_machines: int = 24,
    seed: int = 0,
) -> FigureResult:
    """Figure 4: the Figure 3a scatter with circle area proportional to
    network bytes — identical data, bubble-size column included."""
    result = figure3(workload, num_machines=num_machines, seed=seed)
    return FigureResult(
        "4",
        "Accuracy vs time, bubble area = network bytes (Twitter-like)",
        rows=result.rows,
        notes="plot (total_time_s, mass@100) with size network_bytes",
    )


def figure5(
    workload: Workload | None = None,
    num_machines: int = 12,
    keep_probabilities: tuple[float, ...] = (0.4, 0.7, 1.0),
    ps_values: tuple[float, ...] = (0.4, 0.7, 1.0),
    iterations: int = 4,
    k: int = 100,
    seed: int = 0,
) -> FigureResult:
    """Figure 5: FrogWild vs the uniform-sparsification baseline
    (GraphLab PR, 2 iterations on an edge-deleted graph; q = 1 - r)."""
    workload = _default_twitter(workload)
    harness = ExperimentHarness(workload, num_machines=num_machines, seed=seed)
    result = FigureResult(
        "5",
        "FrogWild vs uniform sparsification (Twitter-like, 12 nodes)",
        notes="plot (total_time_s, mass@100) per q / ps",
    )
    for q in keep_probabilities:
        result.rows.append(
            harness.run_sparsified(q, iterations=2, ks=(k,))
        )
    for ps in ps_values:
        result.rows.append(
            harness.run_frogwild(ks=(k,), ps=ps, iterations=iterations, seed=seed)
        )
    return result


def figure6(
    workload: Workload | None = None,
    paper_frog_counts: tuple[int, ...] = (
        400_000,
        600_000,
        800_000,
        1_000_000,
        1_200_000,
        1_400_000,
    ),
    iteration_values: tuple[int, ...] = (2, 3, 4, 5, 6),
    ps_values: tuple[float, ...] = _PS_SWEEP,
    k: int = 100,
    seed: int = 0,
) -> FigureResult:
    """Figures 6a–6d: accuracy and total time vs number of walkers (at 4
    iterations) and vs iterations (at 800K-equivalent walkers), on
    LiveJournal with 20 nodes, for each ps.

    Paper frog counts are translated through
    :meth:`Workload.frogs_scaled`; rows carry both in ``params``.
    """
    workload = _default_livejournal(workload)
    harness = ExperimentHarness(workload, seed=seed)
    result = FigureResult(
        "6",
        "Walker-count and iteration sweeps (LiveJournal-like, 20 nodes)",
        notes=(
            "6a/6c: rows with iterations=4 grouped by num_frogs; "
            "6b/6d: rows with default frogs grouped by iterations"
        ),
    )
    result.rows.append(harness.run_graphlab(ks=(k,), tolerance=1e-6))
    for its in (2, 1):
        result.rows.append(harness.run_graphlab(iterations=its, ks=(k,)))
    for ps in ps_values:
        for paper_frogs in paper_frog_counts:
            result.rows.append(
                harness.run_frogwild(
                    ks=(k,),
                    ps=ps,
                    iterations=4,
                    num_frogs=workload.frogs_scaled(paper_frogs),
                    seed=seed,
                )
            )
        for its in iteration_values:
            result.rows.append(
                harness.run_frogwild(ks=(k,), ps=ps, iterations=its, seed=seed)
            )
    return result


def figure7(
    workload: Workload | None = None,
    num_machines: int = 20,
    iteration_values: tuple[int, ...] = (3, 4, 5),
    ps_values: tuple[float, ...] = _PS_SWEEP,
    k: int = 100,
    seed: int = 0,
) -> FigureResult:
    """Figures 7a/7b: accuracy vs total time / network bytes on
    LiveJournal with 20 nodes (the Figure 3 analysis on the second
    dataset)."""
    workload = _default_livejournal(workload)
    result = figure3(
        workload,
        num_machines=num_machines,
        iteration_values=iteration_values,
        ps_values=ps_values,
        k=k,
        seed=seed,
    )
    return FigureResult(
        "7",
        "Accuracy vs total time / network (LiveJournal-like, 20 nodes)",
        rows=result.rows,
        notes="7a: (total_time_s, mass@100); 7b: (network_bytes, mass@100)",
    )


def figure8(
    workload: Workload | None = None,
    paper_frog_counts: tuple[int, ...] = (
        400_000,
        600_000,
        800_000,
        1_000_000,
        1_200_000,
        1_400_000,
    ),
    iterations: int = 4,
    seed: int = 0,
) -> FigureResult:
    """Figure 8: network bytes vs number of walkers (ps=1, LiveJournal)
    — the linear-in-N traffic claim."""
    workload = _default_livejournal(workload)
    harness = ExperimentHarness(workload, seed=seed)
    result = FigureResult(
        "8",
        "Network usage vs initial walkers (LiveJournal-like, ps=1)",
        notes="plot (num_frogs, network_bytes); expect linear growth",
    )
    for paper_frogs in paper_frog_counts:
        result.rows.append(
            harness.run_frogwild(
                ps=1.0,
                iterations=iterations,
                num_frogs=workload.frogs_scaled(paper_frogs),
                seed=seed,
            )
        )
    return result


#: Registry used by the CLI.
ALL_FIGURES = {
    "1": figure1,
    "2": figure2,
    "3": figure3,
    "4": figure4,
    "5": figure5,
    "6": figure6,
    "7": figure7,
    "8": figure8,
}
