"""Experiment harness: run algorithms on a workload, collect rows.

One :class:`ExperimentHarness` wraps a workload and a cluster layout.
The ingress partition is computed once per cluster size and shared by
every algorithm run (the paper excludes ingress from all measurements
and compares algorithms on the same loaded graph), so comparisons are
not confounded by placement randomness.

Each run yields an :class:`ExperimentRow`: the engine's four headline
metrics (time/iteration, total time, network bytes, CPU seconds) plus
accuracy at each requested k under both of the paper's metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel, make_partitioner
from ..core import FrogWildConfig, run_frogwild
from ..engine import build_cluster
from ..errors import ExperimentError
from ..metrics import exact_identification, normalized_mass_captured
from ..pagerank import graphlab_pagerank, sparsified_pagerank
from .workloads import Workload

__all__ = ["ExperimentRow", "ExperimentHarness"]


@dataclass(frozen=True)
class ExperimentRow:
    """One algorithm execution, flattened for reporting."""

    workload: str
    algorithm: str
    num_machines: int
    supersteps: int
    total_time_s: float
    time_per_iteration_s: float
    network_bytes: int
    cpu_seconds: float
    mass_captured: dict[int, float] = field(default_factory=dict)
    exact_identification: dict[int, float] = field(default_factory=dict)
    params: dict[str, float] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        row: dict[str, object] = {
            "workload": self.workload,
            "algorithm": self.algorithm,
            "machines": self.num_machines,
            "supersteps": self.supersteps,
            "total_time_s": self.total_time_s,
            "time_per_iteration_s": self.time_per_iteration_s,
            "network_bytes": self.network_bytes,
            "cpu_seconds": self.cpu_seconds,
        }
        for k, value in sorted(self.mass_captured.items()):
            row[f"mass@{k}"] = value
        for k, value in sorted(self.exact_identification.items()):
            row[f"exact@{k}"] = value
        row.update(self.params)
        return row


class ExperimentHarness:
    """Runs the paper's algorithms on one workload, comparably."""

    def __init__(
        self,
        workload: Workload,
        num_machines: int | None = None,
        partitioner: str = "random",
        cost_model: CostModel | None = None,
        size_model: MessageSizeModel | None = None,
        seed: int = 0,
    ) -> None:
        self.workload = workload
        self.num_machines = num_machines or workload.default_machines
        self.partitioner = partitioner
        self.cost_model = cost_model or CostModel()
        self.size_model = size_model or MessageSizeModel()
        self.seed = seed
        self._partitions: dict[int, EdgePartition] = {}

    # ------------------------------------------------------------------
    def partition_for(self, num_machines: int) -> EdgePartition:
        """Ingress once per cluster size, shared across algorithms."""
        if num_machines not in self._partitions:
            partitioner = make_partitioner(self.partitioner, self.seed)
            self._partitions[num_machines] = partitioner.partition(
                self.workload.graph, num_machines
            )
        return self._partitions[num_machines]

    def _state(self, num_machines: int):
        return build_cluster(
            self.workload.graph,
            num_machines,
            cost_model=self.cost_model,
            size_model=self.size_model,
            seed=self.seed,
            partition=self.partition_for(num_machines),
        )

    def _accuracy(
        self, estimate: np.ndarray, ks: tuple[int, ...]
    ) -> tuple[dict[int, float], dict[int, float]]:
        truth = self.workload.truth
        mass = {
            k: normalized_mass_captured(estimate, truth, k) for k in ks
        }
        exact = {k: exact_identification(estimate, truth, k) for k in ks}
        return mass, exact

    # ------------------------------------------------------------------
    def run_frogwild(
        self,
        config: FrogWildConfig | None = None,
        ks: tuple[int, ...] = (100,),
        num_machines: int | None = None,
        **config_overrides,
    ) -> ExperimentRow:
        """Run FrogWild; ``config_overrides`` patch the workload default."""
        machines = num_machines or self.num_machines
        if config is None:
            config = FrogWildConfig(
                num_frogs=self.workload.default_frogs,
                iterations=self.workload.default_iterations,
                seed=self.seed,
            )
        if config_overrides:
            config = config.with_updates(**config_overrides)
        result = run_frogwild(
            self.workload.graph, config, state=self._state(machines)
        )
        mass, exact = self._accuracy(result.estimate.vector(), ks)
        return ExperimentRow(
            workload=self.workload.name,
            algorithm=f"FrogWild ps={config.ps:g}",
            num_machines=machines,
            supersteps=result.report.supersteps,
            total_time_s=result.report.total_time_s,
            time_per_iteration_s=result.report.time_per_iteration_s,
            network_bytes=result.report.network_bytes,
            cpu_seconds=result.report.cpu_seconds,
            mass_captured=mass,
            exact_identification=exact,
            params={
                "ps": config.ps,
                "num_frogs": config.num_frogs,
                "iterations": config.iterations,
            },
        )

    def run_graphlab(
        self,
        iterations: int | None = None,
        tolerance: float = 1e-3,
        ks: tuple[int, ...] = (100,),
        num_machines: int | None = None,
        max_supersteps: int = 200,
    ) -> ExperimentRow:
        """Run the GraphLab PR baseline (exact when ``iterations=None``)."""
        machines = num_machines or self.num_machines
        result = graphlab_pagerank(
            self.workload.graph,
            iterations=iterations,
            tolerance=tolerance,
            state=self._state(machines),
            max_supersteps=max_supersteps,
        )
        mass, exact = self._accuracy(result.ranks, ks)
        label = (
            "GraphLab PR exact"
            if iterations is None
            else f"GraphLab PR {iterations} iters"
        )
        return ExperimentRow(
            workload=self.workload.name,
            algorithm=label,
            num_machines=machines,
            supersteps=result.report.supersteps,
            total_time_s=result.report.total_time_s,
            time_per_iteration_s=result.report.time_per_iteration_s,
            network_bytes=result.report.network_bytes,
            cpu_seconds=result.report.cpu_seconds,
            mass_captured=mass,
            exact_identification=exact,
            params={"iterations": float(iterations or result.report.supersteps)},
        )

    def run_sparsified(
        self,
        keep_probability: float,
        iterations: int = 2,
        ks: tuple[int, ...] = (100,),
        num_machines: int | None = None,
    ) -> ExperimentRow:
        """Run the uniform-sparsification baseline (Figure 5).

        The sparsified graph differs per ``keep_probability``, so this
        run performs its own ingress — consistent with the paper, where
        sparsification happens before loading.
        """
        if not 0.0 < keep_probability <= 1.0:
            raise ExperimentError("keep_probability must lie in (0, 1]")
        machines = num_machines or self.num_machines
        result = sparsified_pagerank(
            self.workload.graph,
            keep_probability,
            iterations=iterations,
            num_machines=machines,
            partitioner=self.partitioner,
            cost_model=self.cost_model,
            size_model=self.size_model,
            seed=self.seed,
        )
        mass, exact = self._accuracy(result.ranks, ks)
        return ExperimentRow(
            workload=self.workload.name,
            algorithm=f"Sparsified PR q={keep_probability:g}",
            num_machines=machines,
            supersteps=result.report.supersteps,
            total_time_s=result.report.total_time_s,
            time_per_iteration_s=result.report.time_per_iteration_s,
            network_bytes=result.report.network_bytes,
            cpu_seconds=result.report.cpu_seconds,
            mass_captured=mass,
            exact_identification=exact,
            params={"q": keep_probability, "iterations": float(iterations)},
        )
