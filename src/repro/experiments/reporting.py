"""Plain-text rendering of experiment results.

The paper presents its evaluation as figures; the harness prints the
same series as aligned text tables so every number is inspectable and
diffable in CI.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

__all__ = ["format_value", "format_table", "format_rows"]


def format_value(value: object) -> str:
    """Human-friendly scalar formatting (SI-ish for big numbers)."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        if abs(value) >= 1_000_000:
            return f"{value:.3e}"
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1_000_000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        if abs(value) >= 100:
            return f"{value:.1f}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render mapping rows as an aligned monospace table."""
    rows = list(rows)
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [
        [format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[i]) for line in rendered))
        for i, col in enumerate(columns)
    ]
    parts = []
    if title:
        parts.append(title)
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    parts.append(header)
    parts.append("  ".join("-" * w for w in widths))
    for line in rendered:
        parts.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(line))
        )
    return "\n".join(parts)


def format_rows(rows, columns: list[str] | None = None, title: str | None = None) -> str:
    """Like :func:`format_table` but accepts ExperimentRow objects."""
    return format_table(
        [row.as_dict() if hasattr(row, "as_dict") else row for row in rows],
        columns=columns,
        title=title,
    )
