"""Machine-readable perf records for the serving benchmarks.

The serving benchmarks assert relative claims (batched < 0.5x
sequential, reuse >= 0.8) but until now threw the absolute numbers
away.  :func:`record_perf` persists them: each benchmark merges one
named record into a single JSON file (``BENCH_serving.json`` at the
repository root by default, overridable via the ``REPRO_PERF_PATH``
environment variable), so successive runs — and successive PRs — have
a trajectory to compare against instead of a green checkmark.

The file maps record names to flat metric dicts plus a wall-clock
timestamp.  Corrupt or foreign content is replaced rather than crashing
a benchmark run; perf recording must never be the reason a bench fails.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

__all__ = ["default_perf_path", "record_perf", "load_perf"]

_ENV_VAR = "REPRO_PERF_PATH"
_DEFAULT_NAME = "BENCH_serving.json"


def default_perf_path() -> Path:
    """Where perf records go: ``$REPRO_PERF_PATH`` or CWD-rooted file."""
    return Path(os.environ.get(_ENV_VAR, _DEFAULT_NAME))


def load_perf(path: str | Path | None = None) -> dict[str, dict]:
    """Read the record file; missing or corrupt files read as empty."""
    path = Path(path) if path is not None else default_perf_path()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return {}
    if not isinstance(payload, dict):
        return {}
    return {
        name: record
        for name, record in payload.items()
        if isinstance(record, dict)
    }


def record_perf(
    name: str,
    metrics: dict[str, float],
    path: str | Path | None = None,
) -> Path:
    """Merge one named metric record into the perf file and return it.

    Existing records under other names are preserved; the named record
    is replaced wholesale and stamped with ``recorded_unix``.
    """
    path = Path(path) if path is not None else default_perf_path()
    records = load_perf(path)
    records[name] = {
        **{key: _jsonable(value) for key, value in metrics.items()},
        "recorded_unix": round(time.time(), 3),
    }
    path.write_text(
        json.dumps(records, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return path


def _jsonable(value):
    """Coerce numpy scalars and other numerics to plain JSON types."""
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if hasattr(value, "item"):
        return value.item()
    return float(value)
