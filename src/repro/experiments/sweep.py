"""Generic parameter sweeps over the FrogWild configuration space.

The figure functions cover the paper's exact grids; these helpers
support ad-hoc exploration (ablations, sensitivity analyses) with the
same harness and row format.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from itertools import product

from ..errors import ExperimentError
from .harness import ExperimentHarness, ExperimentRow

__all__ = ["sweep_frogwild", "pareto_front"]

_SWEEPABLE = {
    "ps",
    "num_frogs",
    "iterations",
    "p_teleport",
    "scatter_mode",
    "erasure_model",
    "seed",
}


def sweep_frogwild(
    harness: ExperimentHarness,
    ks: tuple[int, ...] = (100,),
    **grids: Iterable,
) -> list[ExperimentRow]:
    """Run FrogWild for the cartesian product of the given parameter
    grids, e.g. ``sweep_frogwild(h, ps=[1, 0.5], iterations=[3, 4])``."""
    unknown = set(grids) - _SWEEPABLE
    if unknown:
        raise ExperimentError(
            f"cannot sweep over {sorted(unknown)}; "
            f"sweepable: {sorted(_SWEEPABLE)}"
        )
    names = list(grids)
    rows = []
    for values in product(*(list(grids[name]) for name in names)):
        overrides = dict(zip(names, values))
        rows.append(harness.run_frogwild(ks=ks, **overrides))
    return rows


def pareto_front(
    rows: Sequence[ExperimentRow],
    cost_attr: str = "total_time_s",
    k: int = 100,
) -> list[ExperimentRow]:
    """Rows not dominated in (lower cost, higher mass@k).

    Useful for summarizing the Figure 3/7 trade-off clouds: a row is on
    the front when no other row is both cheaper and more accurate.
    """
    front = []
    for row in rows:
        cost = getattr(row, cost_attr)
        acc = row.mass_captured.get(k)
        if acc is None:
            raise ExperimentError(f"row lacks mass@{k}: {row.algorithm}")
        dominated = any(
            getattr(other, cost_attr) <= cost
            and other.mass_captured.get(k, -1.0) >= acc
            and (
                getattr(other, cost_attr) < cost
                or other.mass_captured.get(k, -1.0) > acc
            )
            for other in rows
        )
        if not dominated:
            front.append(row)
    front.sort(key=lambda row: getattr(row, cost_attr))
    return front
