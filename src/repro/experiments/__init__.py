"""Per-figure reproduction harness for the paper's evaluation."""

from .figures import (
    ALL_FIGURES,
    FigureResult,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
)
from .harness import ExperimentHarness, ExperimentRow
from .perf import default_perf_path, load_perf, record_perf
from .persistence import (
    load_figure_json,
    load_rows_json,
    row_from_dict,
    row_to_dict,
    save_figure_json,
    save_rows_csv,
    save_rows_json,
)
from .reporting import format_rows, format_table, format_value
from .sweep import pareto_front, sweep_frogwild
from .workloads import (
    PAPER_FROGS,
    PAPER_LIVEJOURNAL_VERTICES,
    PAPER_TWITTER_VERTICES,
    Workload,
    livejournal_workload,
    rmat_workload,
    twitter_workload,
)

__all__ = [
    "Workload",
    "twitter_workload",
    "livejournal_workload",
    "rmat_workload",
    "PAPER_FROGS",
    "PAPER_TWITTER_VERTICES",
    "PAPER_LIVEJOURNAL_VERTICES",
    "ExperimentHarness",
    "ExperimentRow",
    "sweep_frogwild",
    "pareto_front",
    "FigureResult",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "ALL_FIGURES",
    "format_table",
    "format_rows",
    "format_value",
    "row_to_dict",
    "row_from_dict",
    "save_rows_json",
    "load_rows_json",
    "save_figure_json",
    "load_figure_json",
    "save_rows_csv",
    "default_perf_path",
    "load_perf",
    "record_perf",
]
