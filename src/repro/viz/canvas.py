"""A fixed-size character grid with primitive drawing operations.

Coordinates are ``(column, row)`` with the origin at the **top left**
(text order).  Chart renderers convert data coordinates (origin bottom
left) before plotting.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["Canvas"]


class Canvas:
    """Mutable character grid rendered row by row."""

    def __init__(self, width: int, height: int, fill: str = " ") -> None:
        if width < 1 or height < 1:
            raise ConfigError("canvas dimensions must be positive")
        if len(fill) != 1:
            raise ConfigError("fill must be a single character")
        self.width = width
        self.height = height
        self._rows = [[fill] * width for _ in range(height)]

    def put(self, col: int, row: int, char: str) -> None:
        """Place one character; silently clips out-of-bounds points."""
        if len(char) != 1:
            raise ConfigError("put() takes a single character")
        if 0 <= col < self.width and 0 <= row < self.height:
            self._rows[row][col] = char

    def get(self, col: int, row: int) -> str:
        if not (0 <= col < self.width and 0 <= row < self.height):
            raise ConfigError(f"({col}, {row}) outside canvas")
        return self._rows[row][col]

    def text(self, col: int, row: int, s: str) -> None:
        """Write a string left to right starting at (col, row), clipped."""
        for offset, char in enumerate(s):
            self.put(col + offset, row, char)

    def hline(self, row: int, char: str = "-") -> None:
        for col in range(self.width):
            self.put(col, row, char)

    def vline(self, col: int, char: str = "|") -> None:
        for row in range(self.height):
            self.put(col, row, char)

    def segment(
        self, col0: int, row0: int, col1: int, row1: int, char: str
    ) -> None:
        """Draw a line segment with Bresenham's algorithm (clipped)."""
        dc = abs(col1 - col0)
        dr = abs(row1 - row0)
        step_c = 1 if col0 < col1 else -1
        step_r = 1 if row0 < row1 else -1
        error = dc - dr
        col, row = col0, row0
        while True:
            self.put(col, row, char)
            if col == col1 and row == row1:
                break
            doubled = 2 * error
            if doubled > -dr:
                error -= dr
                col += step_c
            if doubled < dc:
                error += dc
                row += step_r

    def render(self) -> str:
        """The grid as newline-joined text, trailing spaces stripped."""
        return "\n".join("".join(row).rstrip() for row in self._rows)
