"""Terminal (ASCII) rendering of experiment series and paper figures."""

from .adapters import figure_chart, rows_to_series
from .canvas import Canvas
from .charts import Series, bar_chart, line_chart, scatter_chart
from .scale import LinearScale, LogScale, make_scale

__all__ = [
    "Canvas",
    "Series",
    "scatter_chart",
    "line_chart",
    "bar_chart",
    "LinearScale",
    "LogScale",
    "make_scale",
    "rows_to_series",
    "figure_chart",
]
