"""ASCII chart renderers: scatter, line and bar charts.

These render the same series the paper's figures plot, directly in the
terminal — the CLI's ``--render`` flag and EXPERIMENTS.md use them.  The
renderers take plain numeric series; the adapter that extracts series
from experiment rows lives in :func:`repro.viz.figure_chart`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from .canvas import Canvas
from .scale import make_scale

__all__ = ["Series", "scatter_chart", "line_chart", "bar_chart"]

_MARKERS = "*ox+#@%&"
_Y_LABEL_WIDTH = 9


@dataclass(frozen=True)
class Series:
    """One labelled (x, y) series."""

    label: str
    xs: np.ndarray
    ys: np.ndarray
    marker: str | None = None

    def __post_init__(self) -> None:
        xs = np.asarray(self.xs, dtype=np.float64)
        ys = np.asarray(self.ys, dtype=np.float64)
        if xs.shape != ys.shape or xs.ndim != 1:
            raise ConfigError(
                f"series {self.label!r}: xs/ys must be equal-length vectors"
            )
        object.__setattr__(self, "xs", xs)
        object.__setattr__(self, "ys", ys)


@dataclass
class _Frame:
    """Canvas plus the plot-region geometry and scales."""

    canvas: Canvas
    plot_left: int
    plot_width: int
    plot_height: int
    x_scale: object = None
    y_scale: object = None

    def to_canvas(self, x_frac: float, y_frac: float) -> tuple[int, int]:
        """Unit-square position -> canvas (col, row); row 0 is the top."""
        col = self.plot_left + int(round(x_frac * (self.plot_width - 1)))
        row = int(round((1.0 - y_frac) * (self.plot_height - 1)))
        return col, row


def _data_bounds(series: list[Series]) -> tuple[float, float, float, float]:
    all_x = np.concatenate([s.xs for s in series if s.xs.size])
    all_y = np.concatenate([s.ys for s in series if s.ys.size])
    if all_x.size == 0:
        raise ConfigError("cannot chart empty series")
    return (
        float(all_x.min()),
        float(all_x.max()),
        float(all_y.min()),
        float(all_y.max()),
    )


def _build_frame(
    series: list[Series],
    width: int,
    height: int,
    log_x: bool,
    log_y: bool,
) -> _Frame:
    if width < 24 or height < 6:
        raise ConfigError("chart needs width >= 24 and height >= 6")
    x_lo, x_hi, y_lo, y_hi = _data_bounds(series)
    frame = _Frame(
        canvas=Canvas(width, height),
        plot_left=_Y_LABEL_WIDTH + 1,
        plot_width=width - _Y_LABEL_WIDTH - 1,
        plot_height=height - 2,
    )
    frame.x_scale = make_scale(x_lo, x_hi, log=log_x)
    frame.y_scale = make_scale(y_lo, y_hi, log=log_y)
    _draw_axes(frame)
    return frame


def _draw_axes(frame: _Frame) -> None:
    canvas = frame.canvas
    axis_row = frame.plot_height
    for col in range(frame.plot_left, canvas.width):
        canvas.put(col, axis_row, "-")
    for row in range(frame.plot_height):
        canvas.put(frame.plot_left - 1, row, "|")
    canvas.put(frame.plot_left - 1, axis_row, "+")

    # Y tick labels, right-aligned in the label gutter.
    for tick in frame.y_scale.ticks(4):
        frac = float(frame.y_scale.project(np.array([tick]))[0])
        if not 0.0 <= frac <= 1.0:
            continue
        _, row = frame.to_canvas(0.0, frac)
        label = frame.y_scale.format_tick(tick)[: _Y_LABEL_WIDTH - 1]
        canvas.text(_Y_LABEL_WIDTH - 1 - len(label), row, label)
        canvas.put(frame.plot_left - 1, row, "+")

    # X tick labels on the bottom line.
    last_end = -2
    for tick in frame.x_scale.ticks(5):
        frac = float(frame.x_scale.project(np.array([tick]))[0])
        if not 0.0 <= frac <= 1.0:
            continue
        col, _ = frame.to_canvas(frac, 0.0)
        canvas.put(col, axis_row, "+")
        label = frame.x_scale.format_tick(tick)
        start = min(col - len(label) // 2, canvas.width - len(label))
        if start > last_end + 1:
            canvas.text(start, axis_row + 1, label)
            last_end = start + len(label)


def _plot_series(
    frame: _Frame, series: list[Series], connect: bool
) -> list[str]:
    """Draw every series; returns the legend marker per series."""
    markers = []
    for index, one in enumerate(series):
        marker = one.marker or _MARKERS[index % len(_MARKERS)]
        markers.append(marker)
        x_frac = np.clip(frame.x_scale.project(one.xs), 0.0, 1.0)
        y_frac = np.clip(frame.y_scale.project(one.ys), 0.0, 1.0)
        points = [
            frame.to_canvas(float(xf), float(yf))
            for xf, yf in zip(x_frac, y_frac)
        ]
        if connect and len(points) > 1:
            order = np.argsort(one.xs, kind="stable")
            ordered = [points[i] for i in order]
            for (c0, r0), (c1, r1) in zip(ordered, ordered[1:]):
                frame.canvas.segment(c0, r0, c1, r1, ".")
        for col, row in points:
            frame.canvas.put(col, row, marker)
    return markers


def _compose(
    frame: _Frame,
    series: list[Series],
    markers: list[str],
    title: str | None,
    x_label: str | None,
    y_label: str | None,
) -> str:
    lines = []
    if title:
        lines.append(title)
    if y_label:
        lines.append(f"[y: {y_label}]")
    lines.append(frame.canvas.render())
    if x_label:
        lines.append(f"{' ' * frame.plot_left}[x: {x_label}]")
    if len(series) > 1 or series[0].label:
        for marker, one in zip(markers, series):
            if one.label:
                lines.append(f"  {marker} {one.label}")
    return "\n".join(lines)


def scatter_chart(
    series: list[Series],
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
    x_label: str | None = None,
    y_label: str | None = None,
) -> str:
    """Render labelled point clouds — the paper's Figures 3, 4, 5, 7."""
    if not series:
        raise ConfigError("scatter_chart needs at least one series")
    frame = _build_frame(series, width, height, log_x, log_y)
    markers = _plot_series(frame, series, connect=False)
    return _compose(frame, series, markers, title, x_label, y_label)


def line_chart(
    series: list[Series],
    width: int = 72,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: str | None = None,
    x_label: str | None = None,
    y_label: str | None = None,
) -> str:
    """Render series connected in x order — Figures 1, 2, 6, 8."""
    if not series:
        raise ConfigError("line_chart needs at least one series")
    frame = _build_frame(series, width, height, log_x, log_y)
    markers = _plot_series(frame, series, connect=True)
    return _compose(frame, series, markers, title, x_label, y_label)


def bar_chart(
    labels: list[str],
    values: list[float] | np.ndarray,
    width: int = 72,
    title: str | None = None,
    log: bool = False,
) -> str:
    """Horizontal bar chart with one row per labelled value."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != values.size:
        raise ConfigError("labels and values must align")
    if values.size == 0:
        raise ConfigError("bar_chart needs at least one value")
    if values.min() < 0:
        raise ConfigError("bar_chart values must be non-negative")
    if log and values.min() <= 0:
        raise ConfigError("log bar_chart needs positive values")

    label_width = max(len(label) for label in labels)
    value_texts = [f"{v:g}" for v in values]
    value_width = max(len(t) for t in value_texts)
    bar_space = width - label_width - value_width - 4
    if bar_space < 5:
        raise ConfigError("width too small for these labels")

    scale = make_scale(0.0 if not log else float(values.min()),
                       float(values.max()), log=log)
    fractions = np.clip(scale.project(values), 0.0, 1.0)
    lines = [title] if title else []
    for label, value_text, frac in zip(labels, value_texts, fractions):
        bar = "#" * max(int(round(frac * bar_space)), 1 if frac > 0 else 0)
        lines.append(
            f"{label.rjust(label_width)} |{bar.ljust(bar_space)} {value_text}"
        )
    return "\n".join(lines)
