"""Axis scales: map data values onto the unit interval, with ticks.

The chart renderers (:mod:`repro.viz.charts`) are scale-agnostic; they
ask a scale to project values into ``[0, 1]`` and to propose tick
positions.  Two scales cover everything the paper plots: linear axes
and the log axes of Figures 1, 3, 6 and 7.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError

__all__ = ["LinearScale", "LogScale", "make_scale"]


def _nice_step(span: float, target_ticks: int) -> float:
    """Largest 1/2/5 x 10^k step yielding at least ``target_ticks``."""
    if span <= 0:
        return 1.0
    raw = span / max(target_ticks, 1)
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for multiplier in (1.0, 2.0, 5.0, 10.0):
        if raw <= multiplier * magnitude:
            return multiplier * magnitude
    return 10.0 * magnitude


class LinearScale:
    """Affine map of ``[lo, hi]`` onto ``[0, 1]``."""

    def __init__(self, lo: float, hi: float) -> None:
        if not np.isfinite(lo) or not np.isfinite(hi):
            raise ConfigError("scale bounds must be finite")
        if hi < lo:
            raise ConfigError(f"scale bounds inverted: [{lo}, {hi}]")
        if hi == lo:
            # Degenerate range: widen symmetrically so points land mid-axis.
            pad = 1.0 if lo == 0 else abs(lo) * 0.5
            lo, hi = lo - pad, hi + pad
        self.lo = float(lo)
        self.hi = float(hi)

    def project(self, values: np.ndarray) -> np.ndarray:
        """Fractional positions of ``values`` along the axis."""
        values = np.asarray(values, dtype=np.float64)
        return (values - self.lo) / (self.hi - self.lo)

    def ticks(self, target: int = 5) -> list[float]:
        """Nice tick values covering the data range."""
        step = _nice_step(self.hi - self.lo, target)
        first = math.ceil(self.lo / step) * step
        ticks = []
        value = first
        while value <= self.hi + step * 1e-9:
            ticks.append(round(value, 12))
            value += step
        return ticks or [self.lo, self.hi]

    def format_tick(self, value: float) -> str:
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            # Two significant digits so neighbouring ticks stay distinct.
            return f"{value:.1e}".replace("e+0", "e").replace("e-0", "e-")
        if abs(value) >= 10 and float(value).is_integer():
            return f"{int(value)}"
        return f"{value:g}"


class LogScale:
    """Log10 map of ``[lo, hi]`` (both positive) onto ``[0, 1]``."""

    def __init__(self, lo: float, hi: float) -> None:
        if lo <= 0 or hi <= 0:
            raise ConfigError(
                f"log scale needs positive bounds, got [{lo}, {hi}]"
            )
        if hi < lo:
            raise ConfigError(f"scale bounds inverted: [{lo}, {hi}]")
        if hi == lo:
            lo, hi = lo / 10.0, hi * 10.0
        self.lo = float(lo)
        self.hi = float(hi)

    def project(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        with np.errstate(divide="ignore", invalid="ignore"):
            logs = np.log10(values)
        span = math.log10(self.hi) - math.log10(self.lo)
        return (logs - math.log10(self.lo)) / span

    def ticks(self, target: int = 5) -> list[float]:
        """Decade ticks (thinned when the range spans many decades)."""
        lo_exp = math.floor(math.log10(self.lo))
        hi_exp = math.ceil(math.log10(self.hi))
        exponents = list(range(lo_exp, hi_exp + 1))
        stride = max(1, len(exponents) // max(target, 2))
        return [10.0**e for e in exponents[::stride]]

    def format_tick(self, value: float) -> str:
        exponent = math.log10(value)
        if exponent.is_integer():
            return f"1e{int(exponent)}"
        return f"{value:g}"


def make_scale(lo: float, hi: float, log: bool = False):
    """Build a :class:`LogScale` when ``log`` (and bounds allow), else
    a :class:`LinearScale`."""
    if log:
        return LogScale(lo, hi)
    return LinearScale(lo, hi)
