"""Adapters from experiment rows to chart series.

Experiment rows (anything with ``as_dict()``, e.g.
:class:`repro.experiments.ExperimentRow`) are grouped by their algorithm
label and turned into :class:`~repro.viz.charts.Series`, ready for the
scatter/line renderers.  This module is what lets the CLI draw a paper
figure straight into the terminal.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from .charts import Series, line_chart, scatter_chart

__all__ = ["rows_to_series", "figure_chart"]


def _row_dict(row) -> dict:
    return row.as_dict() if hasattr(row, "as_dict") else dict(row)


def rows_to_series(
    rows,
    x: str,
    y: str,
    group_by: str = "algorithm",
) -> list[Series]:
    """Group rows by ``group_by`` and extract aligned (x, y) vectors.

    Rows missing either column are skipped; a group whose every row was
    skipped is dropped.  Raises if nothing remains.
    """
    groups: dict[str, tuple[list[float], list[float]]] = {}
    for row in rows:
        data = _row_dict(row)
        if x not in data or y not in data:
            continue
        x_value, y_value = data[x], data[y]
        if x_value is None or y_value is None:
            continue
        label = str(data.get(group_by, ""))
        xs, ys = groups.setdefault(label, ([], []))
        xs.append(float(x_value))
        ys.append(float(y_value))
    series = [
        Series(label, np.asarray(xs), np.asarray(ys))
        for label, (xs, ys) in groups.items()
        if xs
    ]
    if not series:
        raise ConfigError(
            f"no rows carry both {x!r} and {y!r}; "
            "check the column names against row.as_dict()"
        )
    return series


def figure_chart(
    figure_result,
    x: str,
    y: str,
    kind: str = "scatter",
    log_x: bool = False,
    log_y: bool = False,
    width: int = 72,
    height: int = 20,
) -> str:
    """Render one paper figure's rows as an ASCII chart.

    ``figure_result`` is a :class:`repro.experiments.FigureResult`;
    ``x``/``y`` name columns of ``ExperimentRow.as_dict()`` (e.g.
    ``"total_time_s"``, ``"network_bytes"``, ``"mass@100"``).
    """
    if kind not in ("scatter", "line"):
        raise ConfigError(f"kind must be 'scatter' or 'line', got {kind!r}")
    series = rows_to_series(figure_result.rows, x, y)
    renderer = scatter_chart if kind == "scatter" else line_chart
    title = f"Figure {figure_result.figure_id}: {figure_result.title}"
    return renderer(
        series,
        width=width,
        height=height,
        log_x=log_x,
        log_y=log_y,
        title=title,
        x_label=x,
        y_label=y,
    )
