"""Computable forms of the paper's theorems and bounds."""

from .bounds import (
    empirical_intersection_probability,
    intersection_probability_bound,
    mixing_loss_bound,
    recommended_frogs,
    recommended_iterations,
    sampling_loss_bound,
    theorem1_epsilon,
)
from .contrast import (
    chi2_contrast,
    chi2_mixing_bound,
    l1_from_chi2,
    uniform_contrast_bound,
)
from .mixing import (
    chi2_mixing_curve,
    empirical_mixing_time,
    google_matrix,
    second_eigenvalue,
    total_variation,
    tv_mixing_curve,
    walk_distribution,
)
from .powerlaw import (
    expected_max,
    fit_tail_exponent,
    max_bound,
    max_bound_failure_probability,
    sample_powerlaw_simplex,
    theorem2_with_powerlaw,
)

__all__ = [
    "mixing_loss_bound",
    "sampling_loss_bound",
    "theorem1_epsilon",
    "intersection_probability_bound",
    "recommended_iterations",
    "recommended_frogs",
    "empirical_intersection_probability",
    "chi2_contrast",
    "uniform_contrast_bound",
    "chi2_mixing_bound",
    "l1_from_chi2",
    "max_bound",
    "max_bound_failure_probability",
    "expected_max",
    "sample_powerlaw_simplex",
    "fit_tail_exponent",
    "theorem2_with_powerlaw",
    "google_matrix",
    "second_eigenvalue",
    "walk_distribution",
    "total_variation",
    "tv_mixing_curve",
    "chi2_mixing_curve",
    "empirical_mixing_time",
]
