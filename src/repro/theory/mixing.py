"""Mixing analysis of the PageRank chain (the machinery behind Lemma 14).

The convergence half of Theorem 1 rests on the Google matrix's spectral
gap: ``|lambda_2(Q)| <= 1 - p_T`` (Haveliwala & Kamvar; the paper cites
[18, 15, 32] in the proof of Lemma 14).  This module makes those
quantities *computable* on small graphs so the tests can check the
theory against the linear algebra:

* the dense Google matrix ``Q`` itself,
* its second-largest eigenvalue modulus,
* the walk distribution ``pi_t = Q^t u`` for any horizon,
* total-variation and chi-squared distance curves versus ``pi``,
* the empirical mixing time (first ``t`` with TV below a threshold).

Dense routines guard against graphs too large to eigendecompose; the
distance curves also work at scale through the sparse operator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError, GraphError
from ..graph import DiGraph
from ..pagerank.exact import exact_pagerank, pagerank_operator
from .contrast import chi2_contrast

__all__ = [
    "google_matrix",
    "second_eigenvalue",
    "walk_distribution",
    "total_variation",
    "tv_mixing_curve",
    "chi2_mixing_curve",
    "empirical_mixing_time",
]

_DENSE_LIMIT = 4_000_000  # n*n entries


def google_matrix(graph: DiGraph, p_teleport: float = 0.15) -> np.ndarray:
    """Dense ``Q = (1 - p_T) P + (p_T / n) 1`` (Definition 1).

    Small graphs only (tests and theory validation); dangling columns
    are repaired with uniform teleportation, matching the exact solver.
    """
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError("p_teleport must lie in (0, 1)")
    n = graph.num_vertices
    if n * n > _DENSE_LIMIT:
        raise GraphError(
            f"dense Google matrix for n={n} exceeds the size guard; "
            "use the sparse curves instead"
        )
    out_deg = np.asarray(graph.out_degree(), dtype=np.float64)
    p = np.zeros((n, n), dtype=np.float64)
    sources = graph.edge_sources()
    nonzero = out_deg[sources] > 0
    p[graph.indices[nonzero], sources[nonzero]] = (
        1.0 / out_deg[sources[nonzero]]
    )
    dangling = out_deg == 0
    if dangling.any():
        p[:, dangling] = 1.0 / n
    return (1.0 - p_teleport) * p + p_teleport / n


def second_eigenvalue(graph: DiGraph, p_teleport: float = 0.15) -> float:
    """``|lambda_2(Q)|`` — provably at most ``1 - p_T``."""
    q = google_matrix(graph, p_teleport)
    magnitudes = np.sort(np.abs(np.linalg.eigvals(q)))[::-1]
    if magnitudes.size < 2:
        return 0.0
    return float(magnitudes[1])


def walk_distribution(
    graph: DiGraph,
    t: int,
    p_teleport: float = 0.15,
    start: np.ndarray | None = None,
) -> np.ndarray:
    """``pi_t = Q^t start`` via the sparse operator (uniform default)."""
    if t < 0:
        raise ConfigError("t must be non-negative")
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError("p_teleport must lie in (0, 1)")
    n = graph.num_vertices
    if start is None:
        pi_t = np.full(n, 1.0 / n)
    else:
        pi_t = np.asarray(start, dtype=np.float64).copy()
        if pi_t.shape != (n,):
            raise ConfigError(f"start must have shape ({n},)")
        if pi_t.min() < 0 or not np.isclose(pi_t.sum(), 1.0):
            raise ConfigError("start must be a probability distribution")
    operator = pagerank_operator(graph)
    dangling = np.asarray(graph.out_degree()) == 0
    for _ in range(t):
        spread = operator @ pi_t
        if dangling.any():
            spread = spread + pi_t[dangling].sum() / n
        pi_t = (1.0 - p_teleport) * spread + p_teleport / n
    return pi_t


def total_variation(alpha: np.ndarray, beta: np.ndarray) -> float:
    """``TV(alpha, beta) = 0.5 * ||alpha - beta||_1``."""
    alpha = np.asarray(alpha, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    if alpha.shape != beta.shape:
        raise ConfigError("distributions must have equal shape")
    return float(0.5 * np.abs(alpha - beta).sum())


def _distance_curve(
    graph: DiGraph, t_max: int, p_teleport: float, metric
) -> list[float]:
    if t_max < 0:
        raise ConfigError("t_max must be non-negative")
    pi = exact_pagerank(graph, p_teleport=p_teleport)
    n = graph.num_vertices
    operator = pagerank_operator(graph)
    dangling = np.asarray(graph.out_degree()) == 0
    pi_t = np.full(n, 1.0 / n)
    curve = [metric(pi_t, pi)]
    for _ in range(t_max):
        spread = operator @ pi_t
        if dangling.any():
            spread = spread + pi_t[dangling].sum() / n
        pi_t = (1.0 - p_teleport) * spread + p_teleport / n
        curve.append(metric(pi_t, pi))
    return curve


def tv_mixing_curve(
    graph: DiGraph, t_max: int, p_teleport: float = 0.15
) -> list[float]:
    """``TV(pi_t, pi)`` for ``t = 0 .. t_max`` from the uniform start."""
    return _distance_curve(graph, t_max, p_teleport, total_variation)


def chi2_mixing_curve(
    graph: DiGraph, t_max: int, p_teleport: float = 0.15
) -> list[float]:
    """``chi2(pi_t; pi)`` for ``t = 0 .. t_max`` — the quantity Lemma 14
    bounds by ``((1 - p_T)/p_T)(1 - p_T)^t``."""
    return _distance_curve(graph, t_max, p_teleport, chi2_contrast)


def empirical_mixing_time(
    graph: DiGraph,
    epsilon: float = 0.01,
    p_teleport: float = 0.15,
    t_max: int = 200,
) -> int:
    """Smallest ``t`` with ``TV(pi_t, pi) <= epsilon``.

    Raises when ``t_max`` steps do not suffice (they always do for
    valid inputs: TV contracts at least as fast as ``(1 - p_T)^t``).
    """
    if epsilon <= 0:
        raise ConfigError("epsilon must be positive")
    curve = tv_mixing_curve(graph, t_max, p_teleport)
    for t, distance in enumerate(curve):
        if distance <= epsilon:
            return t
    raise ConfigError(
        f"not mixed to TV <= {epsilon} within {t_max} steps"
    )  # pragma: no cover - unreachable for valid p_teleport
