"""Power-law facts used by the paper (Proposition 7 and Section 2.3).

PageRank values of web-scale graphs follow a power law with tail
exponent θ ≈ 2.2 (Becchetti & Castillo); Proposition 7 turns that into
a high-probability bound on ‖pi‖∞, which feeds Theorem 2's intersection
probability.  This module computes the bound, samples synthetic
power-law PageRank-like vectors for validation, and fits θ from data.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = [
    "max_bound",
    "max_bound_failure_probability",
    "expected_max",
    "sample_powerlaw_simplex",
    "fit_tail_exponent",
    "theorem2_with_powerlaw",
]


def max_bound(n: int, gamma: float = 0.5) -> float:
    """The Proposition 7 bound value ``n^{-gamma}`` on ‖pi‖∞."""
    if n < 1:
        raise ConfigError("n must be positive")
    if gamma <= 0:
        raise ConfigError("gamma must be positive")
    return float(n) ** (-gamma)


def max_bound_failure_probability(
    n: int, theta: float = 2.2, gamma: float = 0.5, c: float = 1.0
) -> float:
    """P(‖pi‖∞ > n^{-gamma}) ≤ c · n^{gamma − 1/(θ−1)} (Proposition 7).

    The universal constant is not pinned down by the paper; ``c = 1``
    reproduces its asymptotic statement.  Vanishes with n whenever
    ``gamma < 1/(θ−1)`` — e.g. γ = 0.5, θ = 2.2 gives exponent −1/3.

    Reproduction note: for *simplex-normalized* draws with minimum
    ``p_T/n`` (i.e. actual PageRank-like vectors, see
    :func:`sample_powerlaw_simplex`), ``E[max] = Θ(p_T n^{-(θ-2)/(θ-1)})``
    by Newman's extreme-value result, so the event ``max ≤ n^{-gamma}``
    is only typical for ``gamma < (θ-2)/(θ-1)`` (≈ 0.167 at θ = 2.2) —
    tighter than the paper's illustrative γ = 0.5.  The paper's claim
    appears to track the un-normalized draw scale; we keep its formula
    verbatim and validate at γ in the empirically valid range.
    """
    if theta <= 1.0:
        raise ConfigError("theta must exceed 1")
    if gamma <= 0:
        raise ConfigError("gamma must be positive")
    exponent = gamma - 1.0 / (theta - 1.0)
    return min(1.0, c * float(n) ** exponent)


def expected_max(n: int, theta: float = 2.2, scale: float = 1.0) -> float:
    """E[max of n iid power-law draws] = Θ(n^{1/(θ−1)}) · scale
    (Newman 2005, used in the proof of Proposition 7)."""
    if theta <= 1.0:
        raise ConfigError("theta must exceed 1")
    return scale * float(n) ** (1.0 / (theta - 1.0))


def sample_powerlaw_simplex(
    n: int,
    theta: float = 2.2,
    min_value: float | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Sample a probability vector whose entries follow a power law.

    Draws n iid Pareto(θ) values with minimum ``min_value`` (default
    ``0.15 / n``, matching the paper's ``p_T / n`` PageRank floor) and
    normalizes onto the simplex.
    """
    if n < 1:
        raise ConfigError("n must be positive")
    if theta <= 1.0:
        raise ConfigError("theta must exceed 1")
    floor = min_value if min_value is not None else 0.15 / n
    if floor <= 0:
        raise ConfigError("min_value must be positive")
    rng = np.random.default_rng(seed)
    draws = floor * (1.0 - rng.random(n)) ** (-1.0 / (theta - 1.0))
    return draws / draws.sum()


def fit_tail_exponent(values: np.ndarray, tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail exponent θ of ``values``.

    Fits on the largest ``tail_fraction`` of the entries; returns nan
    when fewer than 10 tail samples are available.
    """
    if not 0.0 < tail_fraction <= 1.0:
        raise ConfigError("tail_fraction must lie in (0, 1]")
    values = np.sort(np.asarray(values, dtype=np.float64))
    values = values[values > 0]
    tail_size = max(int(values.size * tail_fraction), 2)
    tail = values[-tail_size:]
    if tail.size < 10:
        return float("nan")
    x_min = tail[0]
    return float(1.0 + tail.size / np.log(tail / x_min).sum())


def theorem2_with_powerlaw(
    n: int, t: int, theta: float = 2.2, gamma: float = 0.5,
    p_teleport: float = 0.15,
) -> float:
    """Theorem 2 + Proposition 7 combined: the paper's
    ``p∩(t) ≤ 1/n + t/(p_T sqrt(n))`` form (for γ = 0.5)."""
    if t < 0:
        raise ConfigError("t must be non-negative")
    bound = max_bound(n, gamma)
    return min(1.0, 1.0 / n + t * bound / p_teleport)
