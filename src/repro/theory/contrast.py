"""χ²-contrast machinery (Definitions 12–14 of the paper's appendix).

The convergence half of Theorem 1 rests on the contrast bound for
non-reversible chains (Bremaud): the χ²-divergence of the walk's
distribution from pi decays geometrically with rate ``1 - p_T`` because
the Google matrix's second eigenvalue is at most ``1 - p_T``.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = [
    "chi2_contrast",
    "uniform_contrast_bound",
    "chi2_mixing_bound",
    "l1_from_chi2",
]


def chi2_contrast(alpha: np.ndarray, beta: np.ndarray) -> float:
    """χ²(α; β) = Σ (α_i − β_i)² / β_i (Definition 12).

    Requires ``beta`` strictly positive wherever ``alpha`` or ``beta``
    carries mass.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    beta = np.asarray(beta, dtype=np.float64)
    if alpha.shape != beta.shape:
        raise ConfigError("distributions must have equal shape")
    if np.any(beta <= 0):
        raise ConfigError("reference distribution must be strictly positive")
    diff = alpha - beta
    return float((diff * diff / beta).sum())


def uniform_contrast_bound(c: float) -> float:
    """Lemma 13: χ²(u; pi) ≤ (1 − c) / c when min_i pi(i) ≥ c / n."""
    if not 0.0 < c <= 1.0:
        raise ConfigError("c must lie in (0, 1]")
    return (1.0 - c) / c


def chi2_mixing_bound(p_teleport: float, t: int) -> float:
    """Lemma 14: χ²(pi_t; pi) ≤ ((1 − p_T)/p_T)(1 − p_T)^t."""
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError("p_teleport must lie in (0, 1)")
    if t < 0:
        raise ConfigError("t must be non-negative")
    return ((1.0 - p_teleport) / p_teleport) * (1.0 - p_teleport) ** t


def l1_from_chi2(chi2: float) -> float:
    """‖α − β‖₁ ≤ sqrt(χ²(α; β)) (Cauchy–Schwarz, used in Lemma 17)."""
    if chi2 < 0:
        raise ConfigError("chi-squared contrast cannot be negative")
    return float(np.sqrt(chi2))
