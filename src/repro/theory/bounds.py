"""The paper's analytical guarantees, computable.

* :func:`mixing_loss_bound` — Lemma 17's cut-off penalty.
* :func:`sampling_loss_bound` — Lemma 18's finite-sample /
  partial-synchronization penalty, driven by the intersection
  probability.
* :func:`theorem1_epsilon` — the full ε of Theorem 1 (their sum).
* :func:`config_error_bound` — Theorem 1 evaluated straight from a
  :class:`~repro.core.FrogWildConfig` (the shared machinery behind the
  admission ladder's degraded bounds and the process backend's
  partial-answer bounds).
* :func:`intersection_probability_bound` — Theorem 2.
* :func:`recommended_iterations` / :func:`recommended_frogs` — the
  scaling of Remark 6 made concrete.
* :func:`empirical_intersection_probability` — Monte-Carlo estimate of
  p∩(t), used to validate Theorem 2.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ConfigError
from ..graph import DiGraph
from ..pagerank.montecarlo import simulate_walkers

__all__ = [
    "mixing_loss_bound",
    "sampling_loss_bound",
    "theorem1_epsilon",
    "config_error_bound",
    "intersection_probability_bound",
    "recommended_iterations",
    "recommended_frogs",
    "empirical_intersection_probability",
]


def mixing_loss_bound(p_teleport: float, t: int) -> float:
    """sqrt((1 − p_T)^{t+1} / p_T): mass lost to the t-step cut-off."""
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError("p_teleport must lie in (0, 1)")
    if t < 0:
        raise ConfigError("t must be non-negative")
    return math.sqrt((1.0 - p_teleport) ** (t + 1) / p_teleport)


def sampling_loss_bound(
    k: int,
    delta: float,
    num_frogs: int,
    ps: float,
    p_intersect: float,
) -> float:
    """sqrt(k/δ · [1/N + (1 − ps²) p∩(t)]) (Lemma 18).

    The first bracket term is pure sampling noise; the second is the
    correlation injected by partial synchronization.
    """
    if k < 1:
        raise ConfigError("k must be positive")
    if not 0.0 < delta < 1.0:
        raise ConfigError("delta must lie in (0, 1)")
    if num_frogs < 1:
        raise ConfigError("num_frogs must be positive")
    if not 0.0 <= ps <= 1.0:
        raise ConfigError("ps must lie in [0, 1]")
    if not 0.0 <= p_intersect <= 1.0:
        raise ConfigError("p_intersect must lie in [0, 1]")
    inner = 1.0 / num_frogs + (1.0 - ps * ps) * p_intersect
    return math.sqrt(k / delta * inner)


def theorem1_epsilon(
    k: int,
    delta: float,
    num_frogs: int,
    ps: float,
    t: int,
    p_intersect: float,
    p_teleport: float = 0.15,
) -> float:
    """The ε of Theorem 1: with probability ≥ 1 − δ,
    ``mu_k(pi_hat) ≥ mu_k(pi) − ε``."""
    return mixing_loss_bound(p_teleport, t) + sampling_loss_bound(
        k, delta, num_frogs, ps, p_intersect
    )


def config_error_bound(
    config,
    k: int,
    num_vertices: int,
    delta: float = 0.1,
    pi_max: float = 0.01,
    num_frogs: int | None = None,
) -> float:
    """Theorem 1's ε promised by answers served under ``config``.

    The intersection probability comes from Theorem 2 with the given
    ``pi_max``.  ``config`` is duck typed (anything with ``num_frogs``,
    ``iterations``, ``ps`` and ``p_teleport`` — a
    :class:`~repro.core.FrogWildConfig` in practice), keeping this
    module import-light.  ``num_frogs`` overrides the config's budget:
    that is how partial answers — batches that lost a shard's frog
    slice mid-flight — report the *wider* bound their surviving
    population actually guarantees, through exactly the machinery the
    :class:`~repro.traffic.DegradationLadder` uses for load-shed
    answers.
    """
    frogs = config.num_frogs if num_frogs is None else int(num_frogs)
    p_intersect = intersection_probability_bound(
        num_vertices, config.iterations, pi_max, config.p_teleport
    )
    return theorem1_epsilon(
        k=k,
        delta=delta,
        num_frogs=frogs,
        ps=config.ps,
        t=config.iterations,
        p_intersect=p_intersect,
        p_teleport=config.p_teleport,
    )


def intersection_probability_bound(
    n: int, t: int, pi_max: float, p_teleport: float = 0.15
) -> float:
    """Theorem 2: p∩(t) ≤ 1/n + t ‖pi‖∞ / p_T (clipped to 1)."""
    if n < 1:
        raise ConfigError("n must be positive")
    if t < 0:
        raise ConfigError("t must be non-negative")
    if not 0.0 <= pi_max <= 1.0:
        raise ConfigError("pi_max must lie in [0, 1]")
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError("p_teleport must lie in (0, 1)")
    return min(1.0, 1.0 / n + t * pi_max / p_teleport)


def recommended_iterations(
    mu_k: float, p_teleport: float = 0.15, slack: float = 0.5
) -> int:
    """Smallest t with mixing loss ≤ ``slack · mu_k`` (Remark 6's
    ``t = O(log 1/mu_k)`` with explicit constants)."""
    if not 0.0 < mu_k <= 1.0:
        raise ConfigError("mu_k must lie in (0, 1]")
    if not 0.0 < slack < 1.0:
        raise ConfigError("slack must lie in (0, 1)")
    target = slack * mu_k
    t = 0
    while mixing_loss_bound(p_teleport, t) > target:
        t += 1
        if t > 10_000:  # pragma: no cover - unreachable for valid inputs
            raise ConfigError("failed to satisfy the mixing target")
    return t


def recommended_frogs(
    k: int, mu_k: float, delta: float = 0.1, slack: float = 0.5
) -> int:
    """Smallest N with sampling noise ≤ ``slack · mu_k`` at full sync
    (Remark 6's ``N = O(k / mu_k²)`` with explicit constants)."""
    if k < 1:
        raise ConfigError("k must be positive")
    if not 0.0 < mu_k <= 1.0:
        raise ConfigError("mu_k must lie in (0, 1]")
    if not 0.0 < delta < 1.0:
        raise ConfigError("delta must lie in (0, 1)")
    if not 0.0 < slack < 1.0:
        raise ConfigError("slack must lie in (0, 1)")
    return int(math.ceil(k / (delta * (slack * mu_k) ** 2)))


def empirical_intersection_probability(
    graph: DiGraph,
    t: int,
    trials: int = 2000,
    p_teleport: float = 0.15,
    seed: int | None = 0,
) -> float:
    """Monte-Carlo p∩(t): fraction of independent walker pairs (uniform
    starts, chain Q) that co-locate at some step ≤ t."""
    if t < 0:
        raise ConfigError("t must be non-negative")
    if trials < 1:
        raise ConfigError("trials must be positive")
    rng = np.random.default_rng(seed)
    n = graph.num_vertices
    a = rng.integers(0, n, size=trials).astype(np.int64)
    b = rng.integers(0, n, size=trials).astype(np.int64)
    met = a == b
    for _ in range(t):
        a = simulate_walkers(
            graph, a, p_teleport=p_teleport, max_steps=1, rng=rng,
            teleport_restarts=True,
        )
        b = simulate_walkers(
            graph, b, p_teleport=p_teleport, max_steps=1, rng=rng,
            teleport_restarts=True,
        )
        met |= a == b
    return float(met.mean())
