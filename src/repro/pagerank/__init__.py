"""PageRank solvers and the paper's baselines."""

from .async_pr import AsyncPageRank, async_pagerank
from .exact import PowerIterationResult, exact_pagerank, pagerank_operator
from .graphlab_pr import (
    GraphLabPageRank,
    GraphLabPageRankResult,
    graphlab_pagerank,
)
from .montecarlo import monte_carlo_pagerank, simulate_walkers
from .push import PushResult, forward_push_pagerank
from .sparsified import sparsified_pagerank, sparsify_uniform

__all__ = [
    "exact_pagerank",
    "pagerank_operator",
    "PowerIterationResult",
    "GraphLabPageRank",
    "GraphLabPageRankResult",
    "graphlab_pagerank",
    "sparsify_uniform",
    "sparsified_pagerank",
    "monte_carlo_pagerank",
    "simulate_walkers",
    "PushResult",
    "forward_push_pagerank",
    "AsyncPageRank",
    "async_pagerank",
]
