"""Monte-Carlo PageRank baselines (Avrachenkov et al., cited in §2.4).

The classic random-walk estimator starts ``R`` walkers *per vertex*
(Θ(n) walkers total) and lets each run until its geometric death —
"one iteration is sufficient" for a good global approximation.  FrogWild
differs in two ways the paper calls out: it uses o(n) walkers (enough
for the top-k, not for the tail) and imposes a hard iteration cut-off
instead of waiting for the last walker.

This module provides the classic estimator as an algorithmic baseline
and the shared :func:`simulate_walkers` primitive, also used by tests
and theory validation to sample the chain of Definition 1 directly.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError
from ..graph import DiGraph

__all__ = ["simulate_walkers", "monte_carlo_pagerank"]


def simulate_walkers(
    graph: DiGraph,
    start: np.ndarray,
    p_teleport: float = 0.15,
    max_steps: int | None = None,
    rng: np.random.Generator | None = None,
    teleport_restarts: bool = False,
) -> np.ndarray:
    """Walk all ``start`` positions until death (or ``max_steps``).

    With ``teleport_restarts=False`` (Process 15 of the paper) a walker
    *dies* at teleportation time and its final position is returned.
    With ``teleport_restarts=True`` walkers jump to a uniform vertex and
    continue — the literal chain Q of Definition 1 — in which case
    ``max_steps`` must be given and positions after that many steps are
    returned.

    Returns the array of final positions, aligned with ``start``.
    """
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError("p_teleport must lie in (0, 1)")
    if teleport_restarts and max_steps is None:
        raise ConfigError("teleport_restarts=True requires max_steps")
    rng = rng or np.random.default_rng()
    n = graph.num_vertices
    indptr, indices = graph.indptr, graph.indices
    out_deg = np.diff(indptr)

    positions = np.asarray(start, dtype=np.int64).copy()
    alive = np.ones(positions.size, dtype=bool)
    step = 0
    while alive.any():
        if max_steps is not None and step >= max_steps:
            break
        step += 1
        idx = np.flatnonzero(alive)
        pos = positions[idx]
        coin = rng.random(idx.size) < p_teleport
        if teleport_restarts:
            teleported = idx[coin]
            positions[teleported] = rng.integers(0, n, size=teleported.size)
        else:
            alive[idx[coin]] = False
        movers = idx[~coin]
        pos = positions[movers]
        deg = out_deg[pos]
        can_move = deg > 0
        movers = movers[can_move]
        pos = pos[can_move]
        deg = deg[can_move]
        pick = indptr[pos] + (rng.random(movers.size) * deg).astype(np.int64)
        positions[movers] = indices[pick]
    return positions


def monte_carlo_pagerank(
    graph: DiGraph,
    walkers_per_vertex: int = 1,
    p_teleport: float = 0.15,
    max_steps: int = 200,
    seed: int | None = 0,
) -> np.ndarray:
    """Classic Θ(n)-walker Monte-Carlo PageRank estimate.

    Each vertex launches ``walkers_per_vertex`` walkers; every walker
    runs to its geometric death and its endpoint is tallied.  Returns
    the normalized endpoint histogram (an unbiased estimate of pi as
    walkers → ∞).
    """
    if walkers_per_vertex < 1:
        raise ConfigError("walkers_per_vertex must be positive")
    n = graph.num_vertices
    rng = np.random.default_rng(seed)
    start = np.repeat(np.arange(n, dtype=np.int64), walkers_per_vertex)
    finals = simulate_walkers(
        graph, start, p_teleport=p_teleport, max_steps=max_steps, rng=rng
    )
    histogram = np.bincount(finals, minlength=n).astype(np.float64)
    return histogram / histogram.sum()
