"""Uniform-sparsification baseline (Section 2.4 and Figure 5).

The natural heuristic the paper compares against: delete every edge
independently with probability ``r`` (keep with ``q = 1 - r``), then run
a couple of GraphLab PR iterations on the sparsified graph.  Fewer edges
mean less gather traffic per iteration, but the paper shows FrogWild is
still faster at comparable accuracy.

Vertices whose whole out-neighbourhood gets deleted receive a self-loop
so the random-surfer semantics stay well-defined (mirroring what the
dangling-repair logic in a real deployment would do).
"""

from __future__ import annotations

import numpy as np

from ..cluster import CostModel, MessageSizeModel
from ..errors import ConfigError
from ..graph import DiGraph, from_edges
from .graphlab_pr import GraphLabPageRankResult, graphlab_pagerank

__all__ = ["sparsify_uniform", "sparsified_pagerank"]


def sparsify_uniform(
    graph: DiGraph, keep_probability: float, seed: int | None = 0
) -> DiGraph:
    """Keep each edge independently with probability ``q``.

    Returns a graph on the same vertex set; vertices left dangling are
    repaired with self loops.
    """
    if not 0.0 < keep_probability <= 1.0:
        raise ConfigError(
            f"keep_probability must lie in (0, 1], got {keep_probability}"
        )
    if keep_probability == 1.0:
        return graph
    rng = np.random.default_rng(seed)
    keep = rng.random(graph.num_edges) < keep_probability
    kept = graph.subgraph_edges(keep)
    return from_edges(
        kept._edge_array(),
        num_vertices=graph.num_vertices,
        repair_dangling="self-loop",
    )


def sparsified_pagerank(
    graph: DiGraph,
    keep_probability: float,
    iterations: int = 2,
    num_machines: int = 16,
    p_teleport: float = 0.15,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    seed: int | None = 0,
) -> GraphLabPageRankResult:
    """Sparsify, then run ``iterations`` of GraphLab PR on the result.

    The paper runs 2 iterations: a single iteration merely measures
    in-degree, which the engine already knows after ingress (Section
    2.4), so 2 is the first informative setting.
    """
    sparse_graph = sparsify_uniform(graph, keep_probability, seed=seed)
    result = graphlab_pagerank(
        sparse_graph,
        num_machines=num_machines,
        iterations=iterations,
        p_teleport=p_teleport,
        partitioner=partitioner,
        cost_model=cost_model,
        size_model=size_model,
        seed=seed,
    )
    result.report.extra["keep_probability"] = keep_probability
    return result
