"""Asynchronous dynamically-scheduled PageRank.

The classic GraphLab *async* PageRank: each vertex update recomputes
``p_T / n + (1 - p_T) * gather`` against the current neighbour state and
reschedules its successors while its own value keeps moving by more
than the tolerance.  No barriers, but every update pays the distributed
locking protocol — the trade-off the paper's Section 1 contrasts with
FrogWild's randomized synchronization.
"""

from __future__ import annotations

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel
from ..engine import AsyncEngine, AsyncVertexProgram, ClusterState, build_cluster
from ..errors import ConfigError
from ..graph import DiGraph
from .graphlab_pr import GraphLabPageRankResult

__all__ = ["AsyncPageRank", "async_pagerank"]


class AsyncPageRank(AsyncVertexProgram):
    """Tolerance-driven asynchronous PageRank updates."""

    def __init__(
        self, p_teleport: float = 0.15, tolerance: float = 1e-3
    ) -> None:
        if not 0.0 < p_teleport < 1.0:
            raise ConfigError("p_teleport must lie in (0, 1)")
        if tolerance <= 0:
            raise ConfigError("tolerance must be positive")
        self.p_teleport = p_teleport
        self.tolerance = tolerance
        self.name = f"async_pr(tol={tolerance:g})"

    def initial_data(self, state: ClusterState) -> np.ndarray:
        n = state.num_vertices
        return np.full(n, 1.0 / n)

    def update(
        self,
        vertex: int,
        gather_sum: float,
        data: np.ndarray,
        state: ClusterState,
    ) -> tuple[float, bool]:
        n = state.num_vertices
        new_value = self.p_teleport / n + (1.0 - self.p_teleport) * gather_sum
        moved = abs(new_value - data[vertex]) > self.tolerance / n
        return new_value, bool(moved)


def async_pagerank(
    graph: DiGraph,
    num_machines: int = 16,
    tolerance: float = 1e-3,
    p_teleport: float = 0.15,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    state: ClusterState | None = None,
    lock_ops: int = 1,
    max_updates: int = 2_000_000,
    seed: int | None = 0,
) -> GraphLabPageRankResult:
    """Run asynchronous PageRank on the simulated cluster.

    Returns the same result type as :func:`graphlab_pagerank` so the
    experiment harness can compare the two engines row for row.
    """
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            partition=partition,
        )
    program = AsyncPageRank(p_teleport=p_teleport, tolerance=tolerance)
    engine = AsyncEngine(state, program, lock_ops=lock_ops)
    report = engine.run(max_updates=max_updates)
    assert engine.data is not None
    return GraphLabPageRankResult(engine.data, report, state)
