"""The baseline: GraphLab's built-in PageRank as a GAS program.

This reproduces the comparator the paper calls **GraphLab PR** — the
PageRank implementation shipped with GraphLab v2.2 (PowerGraph), run in
three regimes:

* ``iterations=None, tolerance=...`` — "GraphLab PR exact": dynamic
  scheduling; a vertex keeps iterating until its own rank moves by less
  than the tolerance, signalling successors whenever it changes.
* ``iterations=1`` / ``iterations=2`` — the reduced-iteration heuristic
  the paper uses as its fast approximate baseline.

Every superstep a full gather over in-edges runs (one partial-sum record
per remote mirror), changed vertices synchronize *all* their mirrors
(``ps`` does not apply to the stock engine), and changed vertices signal
their successors — exactly the traffic pattern whose cost Figure 1
demonstrates.
"""

from __future__ import annotations

import numpy as np

from ..cluster import CostModel, EdgePartition, MessageSizeModel
from ..engine import (
    ApplyResult,
    BSPEngine,
    BulkVertexProgram,
    ClusterState,
    RunReport,
    build_cluster,
)
from ..errors import ConfigError
from ..graph import DiGraph

__all__ = ["GraphLabPageRank", "graphlab_pagerank", "GraphLabPageRankResult"]


class GraphLabPageRank(BulkVertexProgram):
    """Synchronous-engine PageRank vertex program.

    Vertex data is the current rank estimate (normalized; sums to 1 at
    convergence).  ``apply`` computes ``p_T / n + (1 - p_T) * gather``;
    a vertex signals its out-neighbours while its last change exceeds
    ``tolerance``.
    """

    gather_edges = "in"

    def __init__(
        self,
        p_teleport: float = 0.15,
        tolerance: float = 1e-3,
        iterations: int | None = None,
    ) -> None:
        if not 0.0 < p_teleport < 1.0:
            raise ConfigError("p_teleport must lie in (0, 1)")
        if tolerance <= 0:
            raise ConfigError("tolerance must be positive")
        if iterations is not None and iterations < 1:
            raise ConfigError("iterations must be positive when given")
        self.p_teleport = p_teleport
        self.tolerance = tolerance
        self.iterations = iterations
        #: L1 change of the rank vector per superstep (diagnostics).
        self.residuals: list[float] = []
        self.name = (
            f"graphlab_pr({iterations} iters)"
            if iterations is not None
            else f"graphlab_pr(tol={tolerance:g})"
        )

    def initial_data(self, state) -> np.ndarray:
        n = state.num_vertices
        return np.full(n, 1.0 / n)

    def apply_bulk(
        self,
        active: np.ndarray,
        gather_sums: np.ndarray,
        data: np.ndarray,
        state,
        step: int,
    ) -> ApplyResult:
        n = state.num_vertices
        new_values = self.p_teleport / n + (1.0 - self.p_teleport) * gather_sums
        delta = np.abs(new_values - data[active])
        self.residuals.append(float(delta.sum()))
        moved = delta > self.tolerance / n
        if self.iterations is not None:
            done = step + 1 >= self.iterations
            # Fixed-iteration mode keeps the whole graph active: signal
            # everything until the final round, like running the toolkit
            # binary with --iterations.
            signal = (
                None if done else np.ones(active.size, dtype=bool)
            )
            return ApplyResult(
                new_values=new_values, signal_mask=signal, done=done
            )
        # Dynamic mode: only vertices that moved re-signal; convergence is
        # reached when nothing moved (empty next frontier ends the run).
        return ApplyResult(
            new_values=new_values,
            signal_mask=moved,
            changed_mask=moved,
            done=not bool(moved.any()),
        )


class GraphLabPageRankResult:
    """Ranks plus the execution report of one engine run."""

    def __init__(self, ranks: np.ndarray, report: RunReport, state: ClusterState):
        self.ranks = ranks
        self.report = report
        self.state = state

    def distribution(self) -> np.ndarray:
        """Ranks renormalized to a probability vector."""
        total = self.ranks.sum()
        if total <= 0:
            return np.full(self.ranks.size, 1.0 / self.ranks.size)
        return self.ranks / total

    def top_k(self, k: int) -> np.ndarray:
        from ..core.estimator import top_k_indices

        return top_k_indices(self.ranks, k)


def graphlab_pagerank(
    graph: DiGraph,
    num_machines: int = 16,
    iterations: int | None = None,
    tolerance: float = 1e-3,
    p_teleport: float = 0.15,
    partitioner: str = "random",
    cost_model: CostModel | None = None,
    size_model: MessageSizeModel | None = None,
    partition: EdgePartition | None = None,
    state: ClusterState | None = None,
    max_supersteps: int = 200,
    seed: int | None = 0,
) -> GraphLabPageRankResult:
    """Run the GraphLab PR baseline on the simulated cluster.

    ``iterations=None`` gives the "exact" dynamically scheduled run;
    ``iterations=k`` runs exactly k synchronous iterations.
    """
    if state is None:
        state = build_cluster(
            graph,
            num_machines,
            partitioner=partitioner,
            cost_model=cost_model,
            size_model=size_model,
            seed=seed,
            partition=partition,
        )
    program = GraphLabPageRank(
        p_teleport=p_teleport, tolerance=tolerance, iterations=iterations
    )
    engine = BSPEngine(state, program)
    report = engine.run(max_supersteps=max_supersteps)
    assert engine.data is not None
    if program.residuals:
        report.extra["final_residual"] = program.residuals[-1]
    return GraphLabPageRankResult(engine.data, report, state)
