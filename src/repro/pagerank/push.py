"""Forward local-push PageRank approximation (Andersen et al. style).

The paper's related-work section (§2.4) cites local-computation
approaches to PageRank ([4] Andersen et al., and the Personalized-
PageRank line [22]).  The forward-push scheme maintains per-vertex
``(estimate, residual)`` pairs and repeatedly *pushes* residual mass at
any vertex whose residual-to-degree ratio exceeds a threshold ``eps``:

* ``estimate[u] += p_T * residual[u]``
* each successor ``w`` receives ``(1 - p_T) * residual[u] / d_out(u)``
* ``residual[u] = 0``

On termination every vertex satisfies ``residual[u] < eps * d_out(u)``,
which bounds the pointwise approximation error by ``eps * d_out`` — a
*deterministic* guarantee, unlike FrogWild's probabilistic one.  The
total work is ``O(1 / (eps * p_T))`` pushes independent of graph size,
which is why it serves as the classic "local" baseline: sublinear like
FrogWild, but sequential and residual-driven rather than parallel and
walker-driven.

Global PageRank corresponds to a uniform source; a one-hot source gives
Personalized PageRank for that seed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..graph import DiGraph

__all__ = ["PushResult", "forward_push_pagerank"]


@dataclass(frozen=True)
class PushResult:
    """Estimate vector plus termination diagnostics of one push run.

    Attributes
    ----------
    estimate:
        Per-vertex PageRank estimate; underestimates pi pointwise, with
        total deficit equal to ``residual.sum()``.
    residual:
        Unpushed mass per vertex at termination.
    pushes:
        Number of push operations performed (the work measure).
    converged:
        Whether the push queue drained before ``max_pushes``.
    """

    estimate: np.ndarray
    residual: np.ndarray
    pushes: int
    converged: bool

    def mass_accounted(self) -> float:
        """Fraction of the unit source mass already in the estimate."""
        return float(self.estimate.sum())


def forward_push_pagerank(
    graph: DiGraph,
    eps: float = 1e-4,
    p_teleport: float = 0.15,
    source: np.ndarray | int | None = None,
    max_pushes: int = 50_000_000,
) -> PushResult:
    """Approximate (personalized) PageRank by forward push.

    Parameters
    ----------
    graph:
        The directed graph.  Dangling vertices absorb the teleport share
        of their residual and donate the rest back through the source
        law — the same convention as :func:`~repro.pagerank.exact_pagerank`.
    eps:
        Push threshold: terminate when every vertex has
        ``residual < eps * max(d_out, 1)``.  Smaller is more accurate
        and more work.
    p_teleport:
        p_T, the absorption probability per push (paper default 0.15).
    source:
        Teleport/source distribution.  ``None`` = uniform (global
        PageRank); an integer = one-hot Personalized PageRank seed; an
        array = arbitrary source distribution over vertices.
    max_pushes:
        Safety cap on total pushes; exceeded runs return
        ``converged=False``.
    """
    if eps <= 0:
        raise ConfigError("eps must be positive")
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError(f"p_teleport must lie in (0, 1), got {p_teleport}")
    if max_pushes < 1:
        raise ConfigError("max_pushes must be positive")
    n = graph.num_vertices
    if n == 0:
        raise ConfigError("cannot push on an empty graph")

    if source is None:
        source_law = np.full(n, 1.0 / n)
    elif isinstance(source, (int, np.integer)):
        if not 0 <= int(source) < n:
            raise ConfigError(f"source vertex {source} out of range [0, {n})")
        source_law = np.zeros(n)
        source_law[int(source)] = 1.0
    else:
        source_law = np.asarray(source, dtype=np.float64).copy()
        if source_law.shape != (n,):
            raise ConfigError(f"source must have shape ({n},)")
        if source_law.min() < 0 or not np.isclose(source_law.sum(), 1.0):
            raise ConfigError("source must be a probability distribution")
    residual = source_law.copy()

    indptr, indices = graph.indptr, graph.indices
    out_deg = np.diff(indptr)
    threshold = eps * np.maximum(out_deg, 1)
    estimate = np.zeros(n)

    # FIFO work queue of over-threshold vertices, with a membership mask
    # so each vertex appears at most once.
    over = residual >= threshold
    queue: deque[int] = deque(np.flatnonzero(over).tolist())
    queued = over.copy()

    pushes = 0
    while queue and pushes < max_pushes:
        u = queue.popleft()
        queued[u] = False
        r_u = residual[u]
        if r_u < threshold[u]:
            continue
        pushes += 1
        estimate[u] += p_teleport * r_u
        residual[u] = 0.0
        deg = out_deg[u]
        if deg == 0:
            # Dangling: the surfer teleports, i.e. the non-absorbed mass
            # re-enters through the source law (the exact solver's
            # dangling convention).
            residual += (1.0 - p_teleport) * r_u * source_law
            newly_over = np.flatnonzero((residual >= threshold) & ~queued)
        else:
            share = (1.0 - p_teleport) * r_u / deg
            targets = indices[indptr[u] : indptr[u + 1]]
            residual[targets] += share
            newly_over = targets[
                (residual[targets] >= threshold[targets]) & ~queued[targets]
            ]
        if newly_over.size:
            queue.extend(newly_over.tolist())
            queued[newly_over] = True

    converged = not queue
    return PushResult(
        estimate=estimate,
        residual=residual,
        pushes=pushes,
        converged=converged,
    )
