"""Exact PageRank by sparse power iteration (the ground truth).

Implements Definition 1 of the paper: the invariant vector of
``Q = (1 - p_T) P + (p_T / n) 1``, with ``P[i, j] = A[i, j] / d_out(j)``.
All accuracy metrics in the experiments are computed against this
solver's output.  Dangling vertices (possible when graphs are built with
``repair_dangling="none"``) donate their mass uniformly, the standard
convention.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from ..errors import ConfigError
from ..graph import DiGraph

__all__ = ["PowerIterationResult", "exact_pagerank", "pagerank_operator"]


@dataclass(frozen=True)
class PowerIterationResult:
    """Converged PageRank vector plus convergence diagnostics."""

    vector: np.ndarray
    iterations: int
    residual: float
    converged: bool


def pagerank_operator(graph: DiGraph) -> sp.csc_matrix:
    """Sparse out-degree-normalized adjacency ``P`` with
    ``(P x)[i] = sum_{j -> i} x[j] / d_out(j)``.

    Dangling columns are all-zero; callers must reinject their mass.
    """
    n = graph.num_vertices
    out_deg = np.asarray(graph.out_degree(), dtype=np.float64)
    inv_deg = np.divide(
        1.0, out_deg, out=np.zeros_like(out_deg), where=out_deg > 0
    )
    weights = np.repeat(inv_deg, np.asarray(graph.out_degree(), dtype=np.int64))
    adj = sp.csr_matrix(
        (weights, graph.indices, graph.indptr), shape=(n, n)
    )
    return adj.T.tocsc()


def exact_pagerank(
    graph: DiGraph,
    p_teleport: float = 0.15,
    tolerance: float = 1e-12,
    max_iterations: int = 1000,
    return_info: bool = False,
    personalization: np.ndarray | None = None,
) -> np.ndarray | PowerIterationResult:
    """Power-iterate to the PageRank vector pi (sums to 1).

    Parameters
    ----------
    graph:
        The directed graph.
    p_teleport:
        p_T, the teleportation probability (paper default 0.15).
    tolerance:
        L1 convergence threshold between successive iterates.
    max_iterations:
        Iteration cap; exceeded runs return the last iterate with
        ``converged=False`` when ``return_info`` is set, else raise.
    return_info:
        Return a :class:`PowerIterationResult` instead of the bare
        vector.
    personalization:
        Optional teleport distribution over vertices (length n, sums to
        1).  ``None`` gives classic PageRank (uniform teleports); a
        concentrated vector gives Personalized PageRank, the variant
        discussed in the paper's Section 2.4.
    """
    if not 0.0 < p_teleport < 1.0:
        raise ConfigError(f"p_teleport must lie in (0, 1), got {p_teleport}")
    if tolerance <= 0:
        raise ConfigError("tolerance must be positive")
    n = graph.num_vertices
    if n == 0:
        raise ConfigError("cannot compute PageRank of an empty graph")
    if personalization is None:
        teleport_vector = np.full(n, 1.0 / n)
    else:
        teleport_vector = np.asarray(personalization, dtype=np.float64)
        if teleport_vector.shape != (n,):
            raise ConfigError(f"personalization must have shape ({n},)")
        if teleport_vector.min() < 0 or not np.isclose(
            teleport_vector.sum(), 1.0
        ):
            raise ConfigError(
                "personalization must be a probability distribution"
            )

    operator = pagerank_operator(graph)
    dangling = np.asarray(graph.out_degree()) == 0
    pi = teleport_vector.copy()
    residual = np.inf
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        spread = operator @ pi
        if dangling.any():
            spread = spread + pi[dangling].sum() * teleport_vector
        new_pi = (1.0 - p_teleport) * spread + p_teleport * teleport_vector
        residual = float(np.abs(new_pi - pi).sum())
        pi = new_pi
        if residual < tolerance:
            break
    converged = residual < tolerance
    if not converged and not return_info:
        raise ConfigError(
            f"power iteration failed to converge in {max_iterations} "
            f"iterations (residual {residual:.3e})"
        )
    if return_info:
        return PowerIterationResult(
            vector=pi,
            iterations=iterations,
            residual=residual,
            converged=converged,
        )
    return pi
