"""Synthetic graph generators.

The paper evaluates on the Twitter follower graph (41.6M vertices, 1.4B
edges) and LiveJournal (4.8M vertices, 69M edges).  Neither ships with
this repository, so we provide power-law generators whose PageRank
distribution exhibits the same heavy tail (exponent θ ≈ 2.2, see
Section 2.3 and Proposition 7 of the paper) at laptop scale:

* :func:`twitter_like` — sparse, highly skewed in-degree (celebrity
  vertices), low reciprocity; default 20k vertices.
* :func:`livejournal_like` — denser, higher reciprocity (friendships),
  milder skew; default 10k vertices.

Both delegate to :func:`preferential_attachment`, a directed
Bollobás-style model, with different parameters.  :func:`chung_lu` gives
a configurable expected-degree power-law model, and small deterministic
fixtures (cycle, star, complete) support exact tests.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphError
from .builder import from_edges
from .digraph import DiGraph

__all__ = [
    "erdos_renyi",
    "chung_lu",
    "preferential_attachment",
    "rmat",
    "twitter_like",
    "livejournal_like",
    "cycle_graph",
    "star_graph",
    "complete_graph",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def erdos_renyi(
    n: int,
    avg_out_degree: float,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """Directed G(n, p) with ``p = avg_out_degree / (n - 1)``.

    Self loops are excluded at sampling time; dedup and dangling repair
    happen in the builder.
    """
    if n < 2:
        raise GraphError("erdos_renyi requires n >= 2")
    if avg_out_degree <= 0 or avg_out_degree > n - 1:
        raise GraphError("avg_out_degree must be in (0, n-1]")
    rng = _rng(seed)
    m = rng.poisson(n * avg_out_degree)
    src = rng.integers(0, n, size=m)
    dst = rng.integers(0, n, size=m)
    ok = src != dst
    return from_edges(np.column_stack([src[ok], dst[ok]]), num_vertices=n)


def chung_lu(
    n: int,
    exponent: float = 2.2,
    avg_degree: float = 10.0,
    min_weight: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """Directed Chung–Lu graph with power-law expected in-degrees.

    Vertex ``v`` receives an attractiveness weight ``w_v`` drawn from a
    Pareto law with the given tail ``exponent``; each of the
    ``n * avg_degree`` sampled edges picks its target proportionally to
    ``w`` and its source uniformly.  The resulting in-degree sequence is
    power-law with the same exponent while out-degrees stay near-uniform,
    mimicking follower graphs.
    """
    if n < 2:
        raise GraphError("chung_lu requires n >= 2")
    if exponent <= 1.0:
        raise GraphError("exponent must exceed 1 for a normalizable tail")
    rng = _rng(seed)
    weights = min_weight * (1.0 - rng.random(n)) ** (-1.0 / (exponent - 1.0))
    prob = weights / weights.sum()
    m = int(round(n * avg_degree))
    dst = rng.choice(n, size=m, p=prob)
    src = rng.integers(0, n, size=m)
    ok = src != dst
    return from_edges(np.column_stack([src[ok], dst[ok]]), num_vertices=n)


def preferential_attachment(
    n: int,
    out_degree: int = 8,
    reciprocity: float = 0.0,
    attachment_bias: float = 1.0,
    out_degree_exponent: float | None = None,
    recency: float = 1.0,
    seed: int | np.random.Generator | None = None,
) -> DiGraph:
    """Directed preferential attachment (Bollobás-style) generator.

    Vertices arrive one at a time; each new vertex emits edges whose
    targets mix preferential attachment (proportional to current
    in-degree + 1, with probability ``attachment_bias``) and uniform
    choice.  With probability ``reciprocity`` each edge is also
    mirrored, modelling mutual friendships.

    ``out_degree`` is the mean number of edges a vertex emits.  With
    ``out_degree_exponent`` set, per-vertex emission counts are drawn
    from a Pareto law with that tail exponent (mean preserved), giving
    the heavy-tailed *out*-degrees real social graphs exhibit — this
    decorrelates in-degree from PageRank, because a vertex followed by
    a few low-out-degree vertices can out-rank one followed by many
    high-out-degree spammers.

    ``recency`` skews attachment toward recently active vertices:
    the pool index is drawn as ``len * (1 - U^recency)``, so values
    above 1 favour fresh entries.  This deepens the graph — rank mass
    must flow several hops to reach the old hubs — which is what makes
    one power-iteration step a poor approximation on real friendship
    graphs.  ``recency = 1`` recovers classic uniform-pool attachment.

    The in-degree tail exponent is approximately
    ``1 + 1 / attachment_bias`` for ``reciprocity = 0``; the default gives
    the θ ≈ 2 regime observed for web/social graphs.
    """
    if n < 2:
        raise GraphError("preferential_attachment requires n >= 2")
    if out_degree < 1:
        raise GraphError("out_degree must be at least 1")
    if not 0.0 <= reciprocity <= 1.0:
        raise GraphError("reciprocity must lie in [0, 1]")
    if not 0.0 < attachment_bias <= 1.0:
        raise GraphError("attachment_bias must lie in (0, 1]")
    if out_degree_exponent is not None and out_degree_exponent <= 2.0:
        raise GraphError(
            "out_degree_exponent must exceed 2 so the mean exists"
        )
    if recency <= 0.0:
        raise GraphError("recency must be positive")
    rng = _rng(seed)

    # Repeated-targets trick: keep a pool of past edge endpoints and sample
    # from it; sampling an endpoint uniformly from the pool is equivalent
    # to in-degree-proportional sampling.
    seed_size = max(2, out_degree)
    pool: list[int] = list(range(seed_size))
    sources: list[np.ndarray] = []
    targets: list[np.ndarray] = []
    # Seed clique among the first few vertices so attachment has mass.
    seed_src = np.repeat(np.arange(seed_size), seed_size - 1)
    seed_dst = np.concatenate(
        [np.delete(np.arange(seed_size), i) for i in range(seed_size)]
    )
    sources.append(seed_src)
    targets.append(seed_dst)

    if out_degree_exponent is None:
        emissions = np.full(n, out_degree, dtype=np.int64)
    else:
        # Pareto(alpha) with unit minimum has mean alpha/(alpha-1);
        # rescale so the emission mean matches ``out_degree``.
        alpha = out_degree_exponent - 1.0
        raw = (1.0 - rng.random(n)) ** (-1.0 / alpha)
        scale = out_degree * (alpha - 1.0) / alpha
        emissions = np.maximum(1, (raw * scale).astype(np.int64))

    pool_arr = np.array(pool, dtype=np.int64)
    pool_len = pool_arr.size
    capacity = 4 * (seed_size + int(emissions.sum()) * 2 + 2 * n)
    pool_buf = np.empty(capacity, dtype=np.int64)
    pool_buf[:pool_len] = pool_arr

    for v in range(seed_size, n):
        emit = int(emissions[v])
        use_pa = rng.random(emit) < attachment_bias
        if recency == 1.0:
            pool_idx = rng.integers(0, pool_len, size=emit)
        else:
            draw = rng.random(emit)
            pool_idx = np.minimum(
                (pool_len * (1.0 - draw**recency)).astype(np.int64),
                pool_len - 1,
            )
        picks = np.where(
            use_pa,
            pool_buf[pool_idx],
            rng.integers(0, v, size=emit),
        )
        picks = picks[picks != v]
        sources.append(np.full(picks.size, v, dtype=np.int64))
        targets.append(picks)
        # Targets enter the pool (in-degree-proportional attachment) and
        # the emitter enters once — the "+1" smoothing that keeps fresh
        # vertices attachable even at attachment_bias = 1.
        entries = [picks, np.array([v], dtype=np.int64)]
        recip = picks[rng.random(picks.size) < reciprocity]
        if recip.size:
            sources.append(recip)
            targets.append(np.full(recip.size, v, dtype=np.int64))
            entries.append(np.full(recip.size, v, dtype=np.int64))
        new_entries = np.concatenate(entries)
        end = pool_len + new_entries.size
        pool_buf[pool_len:end] = new_entries
        pool_len = end

    edges = np.column_stack([np.concatenate(sources), np.concatenate(targets)])
    return from_edges(edges, num_vertices=n)


def rmat(
    scale: int = 14,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int | np.random.Generator | None = 0,
    noise: float = 0.1,
) -> DiGraph:
    """Recursive-matrix (R-MAT / Kronecker) generator, Graph500 style.

    The standard stress-test input for graph engines (the PowerGraph
    and GraphX papers both benchmark on it): ``2^scale`` vertices and
    ``edge_factor * 2^scale`` edge draws, each placed by recursively
    descending into the quadrant of the adjacency matrix chosen with
    probabilities ``(a, b, c, d = 1 - a - b - c)``.  Defaults are the
    Graph500 parameters; ``noise`` jitters the probabilities per level
    (SmoothKron), which avoids the artificial staircase degree plot of
    pure R-MAT.

    Duplicate draws are deduplicated by the builder, so the realized
    edge count lands below ``edge_factor * n`` — heavier skew (larger
    ``a``) collides more.
    """
    if not 1 <= scale <= 24:
        raise GraphError("scale must lie in [1, 24]")
    if edge_factor < 1:
        raise GraphError("edge_factor must be positive")
    d = 1.0 - a - b - c
    if min(a, b, c, d) < 0 or max(a, b, c, d) > 1:
        raise GraphError("quadrant probabilities must form a distribution")
    if not 0.0 <= noise < 1.0:
        raise GraphError("noise must lie in [0, 1)")
    rng = _rng(seed)
    n = 1 << scale
    m = edge_factor * n
    src = np.zeros(m, dtype=np.int64)
    dst = np.zeros(m, dtype=np.int64)
    for level in range(scale):
        # Per-level jittered quadrant probabilities (one draw per level,
        # shared by all edges: the SmoothKron simplification).
        if noise:
            jitter = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
        else:
            jitter = np.ones(4)
        probs = np.array([a, b, c, d]) * jitter
        probs /= probs.sum()
        # Quadrant layout within the adjacency matrix: a = (src 0, dst 0),
        # b = (0, 1), c = (1, 0), d = (1, 1); one uniform draw selects
        # the quadrant, coupling the two bit decisions.
        draw = rng.random(m)
        in_b = (draw >= probs[0]) & (draw < probs[0] + probs[1])
        in_c = (draw >= probs[0] + probs[1]) & (
            draw < probs[0] + probs[1] + probs[2]
        )
        in_d = draw >= probs[0] + probs[1] + probs[2]
        bit = np.int64(1) << level
        src |= np.where(in_c | in_d, bit, 0)
        dst |= np.where(in_b | in_d, bit, 0)
    keep = src != dst  # drop self loops
    return from_edges(
        np.column_stack([src[keep], dst[keep]]), num_vertices=n
    )


def twitter_like(
    n: int = 20_000,
    avg_out_degree: int = 16,
    seed: int | np.random.Generator | None = 7,
) -> DiGraph:
    """Scaled-down stand-in for the Twitter follower graph.

    Highly skewed in-degree (a few celebrity hubs), near-zero
    reciprocity, sparse.  Defaults reproduce the workload used by the
    figure benchmarks.
    """
    return preferential_attachment(
        n,
        out_degree=avg_out_degree,
        reciprocity=0.05,
        attachment_bias=0.85,
        out_degree_exponent=2.2,
        seed=seed,
    )


def livejournal_like(
    n: int = 10_000,
    avg_out_degree: int = 14,
    seed: int | np.random.Generator | None = 11,
) -> DiGraph:
    """Scaled-down stand-in for the LiveJournal friendship graph.

    Higher reciprocity and a milder degree tail than
    :func:`twitter_like`.
    """
    return preferential_attachment(
        n,
        out_degree=avg_out_degree,
        reciprocity=0.3,
        attachment_bias=0.7,
        out_degree_exponent=2.3,
        recency=4.0,
        seed=seed,
    )


def cycle_graph(n: int) -> DiGraph:
    """Directed n-cycle ``0 -> 1 -> ... -> n-1 -> 0`` (uniform PageRank)."""
    if n < 2:
        raise GraphError("cycle_graph requires n >= 2")
    src = np.arange(n, dtype=np.int64)
    return from_edges(np.column_stack([src, (src + 1) % n]), num_vertices=n)


def star_graph(n: int) -> DiGraph:
    """Star: vertex 0 points to all others, all others point back to 0."""
    if n < 2:
        raise GraphError("star_graph requires n >= 2")
    spokes = np.arange(1, n, dtype=np.int64)
    hub = np.zeros(n - 1, dtype=np.int64)
    edges = np.concatenate(
        [np.column_stack([hub, spokes]), np.column_stack([spokes, hub])]
    )
    return from_edges(edges, num_vertices=n)


def complete_graph(n: int) -> DiGraph:
    """Complete directed graph without self loops (uniform PageRank)."""
    if n < 2:
        raise GraphError("complete_graph requires n >= 2")
    src = np.repeat(np.arange(n, dtype=np.int64), n - 1)
    dst = np.concatenate([np.delete(np.arange(n), v) for v in range(n)])
    return from_edges(np.column_stack([src, dst]), num_vertices=n)
