"""Graph transformations for preparing real-world edge lists.

SNAP datasets (LiveJournal, Twitter) are not strongly connected; random
walks can drain into rank sinks and PageRank experiments often restrict
to the largest strongly connected component (LSCC).  This module
provides the standard preparation steps: SCC decomposition (via
scipy's compiled Tarjan), vertex-induced subgraphs with id compaction,
and LSCC extraction.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp
from scipy.sparse import csgraph

from ..errors import GraphError
from .builder import from_edges
from .digraph import DiGraph

__all__ = [
    "strongly_connected_components",
    "subgraph_vertices",
    "largest_scc",
]


def strongly_connected_components(graph: DiGraph) -> np.ndarray:
    """Component label per vertex (0-based, arbitrary order)."""
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    adjacency = sp.csr_matrix(
        (
            np.ones(graph.num_edges, dtype=np.int8),
            graph.indices,
            graph.indptr,
        ),
        shape=(n, n),
    )
    _, labels = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    return labels.astype(np.int64)


def subgraph_vertices(
    graph: DiGraph,
    vertices: np.ndarray,
    repair_dangling: str = "self-loop",
    return_mapping: bool = False,
) -> DiGraph | tuple[DiGraph, np.ndarray]:
    """Induced subgraph on ``vertices`` with compacted ids.

    Vertex ``vertices[i]`` of the original graph becomes vertex ``i``;
    with ``return_mapping=True`` the original ids are returned too.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    if vertices.size == 0:
        raise GraphError("vertex set must be non-empty")
    if vertices.min() < 0 or vertices.max() >= graph.num_vertices:
        raise GraphError("vertex ids out of range")
    keep = np.zeros(graph.num_vertices, dtype=bool)
    keep[vertices] = True
    relabel = np.full(graph.num_vertices, -1, dtype=np.int64)
    relabel[vertices] = np.arange(vertices.size)

    src = graph.edge_sources()
    dst = graph.indices
    inside = keep[src] & keep[dst]
    edges = np.column_stack([relabel[src[inside]], relabel[dst[inside]]])
    sub = from_edges(
        edges, num_vertices=vertices.size, repair_dangling=repair_dangling
    )
    if return_mapping:
        return sub, vertices
    return sub


def largest_scc(
    graph: DiGraph, return_mapping: bool = False
) -> DiGraph | tuple[DiGraph, np.ndarray]:
    """The subgraph induced by the largest strongly connected component."""
    labels = strongly_connected_components(graph)
    if labels.size == 0:
        raise GraphError("graph has no vertices")
    counts = np.bincount(labels)
    biggest = int(np.argmax(counts))
    members = np.flatnonzero(labels == biggest)
    return subgraph_vertices(
        graph, members, repair_dangling="none", return_mapping=return_mapping
    )
