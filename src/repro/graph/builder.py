"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

The paper assumes every vertex has at least one successor
(``d_out(j) > 0``, Section 2.1).  Real edge lists violate this, so the
builder offers the standard repairs used by PageRank systems:

* ``"self-loop"`` — dangling vertices get a self edge (GraphLab's choice
  for random-walk programs; a frog landing there stays until it dies).
* ``"uniform"`` — not materialized as n-1 edges; instead the builder
  refuses and directs the caller to the exact solver, which handles
  dangling mass analytically.
* ``"drop"`` — recursively remove dangling vertices (relabelling the
  survivors) until none remain.
* ``"none"`` — keep the graph as-is.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from ..errors import GraphError
from .digraph import DiGraph

__all__ = ["GraphBuilder", "from_edges"]

_REPAIRS = ("self-loop", "drop", "none")


class GraphBuilder:
    """Accumulates directed edges, then emits a deduplicated CSR graph.

    Parameters
    ----------
    num_vertices:
        Fix the vertex count up front.  When omitted the count is inferred
        as ``max vertex id + 1`` at build time.
    repair_dangling:
        One of ``"self-loop"``, ``"drop"``, ``"none"``; see module docs.
    """

    def __init__(
        self,
        num_vertices: int | None = None,
        repair_dangling: str = "self-loop",
    ) -> None:
        if repair_dangling not in _REPAIRS:
            raise GraphError(
                f"repair_dangling must be one of {_REPAIRS}, "
                f"got {repair_dangling!r}"
            )
        if num_vertices is not None and num_vertices < 0:
            raise GraphError("num_vertices must be non-negative")
        self._fixed_n = num_vertices
        self._repair = repair_dangling
        self._sources: list[np.ndarray] = []
        self._targets: list[np.ndarray] = []
        self._count = 0

    @property
    def num_pending_edges(self) -> int:
        """Edges added so far (before dedup)."""
        return self._count

    def add_edge(self, source: int, target: int) -> "GraphBuilder":
        """Add a single directed edge ``source -> target``."""
        return self.add_edges([(source, target)])

    def add_edges(
        self, edges: Iterable[tuple[int, int]] | np.ndarray
    ) -> "GraphBuilder":
        """Add a batch of directed edges.

        Accepts any iterable of ``(source, target)`` pairs or an
        ``(k, 2)`` integer array.  Returns ``self`` for chaining.
        """
        arr = np.asarray(
            edges if isinstance(edges, np.ndarray) else list(edges),
            dtype=np.int64,
        )
        if arr.size == 0:
            return self
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(f"edges must be (k, 2) pairs, got shape {arr.shape}")
        if arr.min() < 0:
            raise GraphError("vertex ids must be non-negative")
        self._sources.append(arr[:, 0].copy())
        self._targets.append(arr[:, 1].copy())
        self._count += arr.shape[0]
        return self

    def build(self) -> DiGraph:
        """Produce the immutable graph: dedup, sort, repair dangling."""
        if self._sources:
            src = np.concatenate(self._sources)
            dst = np.concatenate(self._targets)
        else:
            src = np.empty(0, dtype=np.int64)
            dst = np.empty(0, dtype=np.int64)

        n = self._infer_n(src, dst)
        src, dst = _dedup(src, dst, n)
        if self._repair == "self-loop":
            src, dst = _repair_self_loops(src, dst, n)
        elif self._repair == "drop":
            src, dst, n = _repair_drop(src, dst, n)
        return _to_csr(src, dst, n)

    def _infer_n(self, src: np.ndarray, dst: np.ndarray) -> int:
        observed = 0
        if src.size:
            observed = int(max(src.max(), dst.max())) + 1
        if self._fixed_n is None:
            return observed
        if observed > self._fixed_n:
            raise GraphError(
                f"edge references vertex {observed - 1} but "
                f"num_vertices={self._fixed_n}"
            )
        return self._fixed_n


def from_edges(
    edges: Iterable[tuple[int, int]] | np.ndarray,
    num_vertices: int | None = None,
    repair_dangling: str = "self-loop",
) -> DiGraph:
    """One-shot convenience wrapper around :class:`GraphBuilder`."""
    builder = GraphBuilder(num_vertices, repair_dangling)
    builder.add_edges(edges)
    return builder.build()


def _dedup(src: np.ndarray, dst: np.ndarray, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Sort edges by (source, target) and drop exact duplicates."""
    if src.size == 0:
        return src, dst
    keys = src * n + dst
    keys = np.unique(keys)
    return keys // n, keys % n


def _repair_self_loops(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Append a self edge for every dangling vertex (keeps sorted order)."""
    out_deg = np.bincount(src, minlength=n)
    dangling = np.flatnonzero(out_deg == 0)
    if dangling.size == 0:
        return src, dst
    src = np.concatenate([src, dangling])
    dst = np.concatenate([dst, dangling])
    order = np.lexsort((dst, src))
    return src[order], dst[order]


def _repair_drop(
    src: np.ndarray, dst: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Iteratively delete dangling vertices and compact vertex ids."""
    keep_vertex = np.ones(n, dtype=bool)
    while True:
        out_deg = np.bincount(src, minlength=n)
        newly_dangling = keep_vertex & (out_deg == 0)
        if not newly_dangling.any():
            break
        keep_vertex &= ~newly_dangling
        edge_ok = keep_vertex[src] & keep_vertex[dst]
        src, dst = src[edge_ok], dst[edge_ok]
    relabel = np.cumsum(keep_vertex) - 1
    return relabel[src], relabel[dst], int(keep_vertex.sum())


def _to_csr(src: np.ndarray, dst: np.ndarray, n: int) -> DiGraph:
    counts = np.bincount(src, minlength=n) if src.size else np.zeros(n, dtype=np.int64)
    indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    return DiGraph(indptr, dst, validate=False)
