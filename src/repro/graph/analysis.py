"""Structural graph statistics used by experiments and documentation.

These helpers characterize workloads the way the paper does: degree
distributions and their power-law tail exponent (Section 2.3 relies on a
tail exponent θ ≈ 2.2 for PageRank values), reciprocity (distinguishes
the Twitter-like from the LiveJournal-like regime), and reachability
(used to sanity-check generated graphs).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .digraph import DiGraph

__all__ = ["GraphSummary", "summarize", "reciprocity", "power_law_exponent",
           "is_strongly_connected"]


@dataclass(frozen=True)
class GraphSummary:
    """Descriptive statistics for a directed graph."""

    num_vertices: int
    num_edges: int
    avg_out_degree: float
    max_out_degree: int
    max_in_degree: int
    dangling_count: int
    reciprocity: float
    in_degree_tail_exponent: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view, convenient for report tables."""
        return {
            "num_vertices": self.num_vertices,
            "num_edges": self.num_edges,
            "avg_out_degree": self.avg_out_degree,
            "max_out_degree": self.max_out_degree,
            "max_in_degree": self.max_in_degree,
            "dangling_count": self.dangling_count,
            "reciprocity": self.reciprocity,
            "in_degree_tail_exponent": self.in_degree_tail_exponent,
        }


def summarize(graph: DiGraph) -> GraphSummary:
    """Compute a :class:`GraphSummary` for ``graph``."""
    out_deg = np.asarray(graph.out_degree())
    in_deg = np.asarray(graph.in_degree())
    return GraphSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        avg_out_degree=float(out_deg.mean()) if out_deg.size else 0.0,
        max_out_degree=int(out_deg.max()) if out_deg.size else 0,
        max_in_degree=int(in_deg.max()) if in_deg.size else 0,
        dangling_count=int((out_deg == 0).sum()),
        reciprocity=reciprocity(graph),
        in_degree_tail_exponent=power_law_exponent(in_deg),
    )


def reciprocity(graph: DiGraph) -> float:
    """Fraction of edges ``u -> v`` whose reverse ``v -> u`` also exists."""
    if graph.num_edges == 0:
        return 0.0
    n = graph.num_vertices
    forward = graph.edge_sources() * n + graph.indices
    backward = graph.indices * n + graph.edge_sources()
    forward_set = np.sort(forward)
    found = np.searchsorted(forward_set, backward)
    found = np.clip(found, 0, forward_set.size - 1)
    mutual = forward_set[found] == backward
    return float(mutual.mean())


def power_law_exponent(degrees: np.ndarray, d_min: int = 4) -> float:
    """Maximum-likelihood (Hill) estimator of a degree tail exponent.

    Uses the discrete-to-continuous approximation
    ``theta = 1 + k / sum(log(d_i / (d_min - 0.5)))`` over degrees
    ``>= d_min`` (Clauset–Shalizi–Newman).  Returns ``nan`` when fewer
    than 10 tail samples exist.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    tail = degrees[degrees >= d_min]
    if tail.size < 10:
        return float("nan")
    return float(1.0 + tail.size / np.log(tail / (d_min - 0.5)).sum())


def is_strongly_connected(graph: DiGraph) -> bool:
    """Whether every vertex can reach every other vertex.

    Two BFS passes (forward and on the reverse graph) from vertex 0 —
    the standard linear-time check.
    """
    n = graph.num_vertices
    if n == 0:
        return True
    return _bfs_reaches_all(graph, 0) and _bfs_reaches_all(graph.reverse(), 0)


def _bfs_reaches_all(graph: DiGraph, root: int) -> bool:
    n = graph.num_vertices
    seen = np.zeros(n, dtype=bool)
    seen[root] = True
    frontier = np.array([root], dtype=np.int64)
    reached = 1
    indptr, indices = graph.indptr, graph.indices
    while frontier.size:
        starts = indptr[frontier]
        stops = indptr[frontier + 1]
        if not (stops > starts).any():
            break
        chunks = [indices[a:b] for a, b in zip(starts, stops) if b > a]
        neighbours = np.unique(np.concatenate(chunks)) if chunks else np.empty(0, int)
        fresh = neighbours[~seen[neighbours]]
        seen[fresh] = True
        reached += fresh.size
        frontier = fresh
    return reached == n
