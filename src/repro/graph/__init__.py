"""Directed-graph substrate: CSR storage, builders, generators, I/O."""

from .analysis import (
    GraphSummary,
    is_strongly_connected,
    power_law_exponent,
    reciprocity,
    summarize,
)
from .builder import GraphBuilder, from_edges
from .digraph import DiGraph
from .generators import (
    chung_lu,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    livejournal_like,
    preferential_attachment,
    rmat,
    star_graph,
    twitter_like,
)
from .io import load_npz, read_edge_list, save_npz, write_edge_list
from .transform import largest_scc, strongly_connected_components, subgraph_vertices

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "from_edges",
    "erdos_renyi",
    "chung_lu",
    "rmat",
    "preferential_attachment",
    "twitter_like",
    "livejournal_like",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "GraphSummary",
    "summarize",
    "reciprocity",
    "power_law_exponent",
    "is_strongly_connected",
    "strongly_connected_components",
    "subgraph_vertices",
    "largest_scc",
]
