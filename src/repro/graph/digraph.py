"""Compressed sparse row (CSR) directed graph.

This is the base substrate every other subsystem builds on.  A
:class:`DiGraph` is immutable once constructed: vertices are the integers
``0 .. n-1`` and edges are stored twice, once in out-adjacency (CSR) form
and once in in-adjacency (CSC-like) form, so both successor and
predecessor scans are O(degree).

The PageRank transition matrix convention follows the paper (Section 2.1):
``P[i, j] = A[i, j] / d_out(j)`` where ``A[i, j] = 1`` iff there is an edge
``j -> i``; i.e. a random walker at ``j`` moves to a uniformly random
successor of ``j``.
"""

from __future__ import annotations

import warnings
from typing import Iterator

import numpy as np

from ..errors import GraphError

__all__ = ["DiGraph"]


def _deprecated(old: str, new: str) -> None:
    """One-release deprecation warning for the pre-store accessors."""
    warnings.warn(
        f"{old} is deprecated and will be removed in the next release; "
        f"use {new} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class DiGraph:
    """Immutable directed graph over vertices ``0 .. n-1`` in CSR form.

    Parameters
    ----------
    indptr:
        Out-adjacency index pointer, shape ``(n + 1,)``.  The successors of
        vertex ``v`` are ``indices[indptr[v]:indptr[v + 1]]``.
    indices:
        Flat successor array, shape ``(m,)``.
    validate:
        When true (default), check structural invariants.  Generators that
        construct graphs guaranteed-valid may skip validation for speed.
    """

    __slots__ = (
        "_indptr",
        "_indices",
        "_in_indptr",
        "_in_indices",
        "_edge_perm",
        "_n",
        "_m",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        validate: bool = True,
    ) -> None:
        indptr = np.asarray(indptr, dtype=np.int64)
        indices = np.asarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indices.ndim != 1:
            raise GraphError("indptr and indices must be one-dimensional")
        if indptr.size == 0:
            raise GraphError("indptr must have at least one entry")
        n = indptr.size - 1
        m = indices.size
        if validate:
            if indptr[0] != 0 or indptr[-1] != m:
                raise GraphError(
                    "indptr must start at 0 and end at the edge count "
                    f"(got {indptr[0]}..{indptr[-1]}, m={m})"
                )
            if np.any(np.diff(indptr) < 0):
                raise GraphError("indptr must be non-decreasing")
            if m and (indices.min() < 0 or indices.max() >= n):
                raise GraphError("edge targets out of range")
        self._indptr = indptr
        self._indices = indices
        self._n = int(n)
        self._m = int(m)
        self._in_indptr: np.ndarray | None = None
        self._in_indices: np.ndarray | None = None
        self._edge_perm: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``m`` (parallel edges were deduped)."""
        return self._m

    @property
    def indptr(self) -> np.ndarray:
        """Out-adjacency CSR index pointer (read-only view)."""
        return self._indptr

    @property
    def indices(self) -> np.ndarray:
        """Out-adjacency CSR successor array (read-only view)."""
        return self._indices

    def csr_components(self) -> dict[str, np.ndarray]:
        """The out-adjacency CSR arrays, keyed for zero-copy export.

        Together with :meth:`from_csr_arrays` this is the zero-copy
        transport of a graph across process (or storage) boundaries:
        the owner places these arrays in a
        :class:`~repro.cluster.SharedArena` — or spills them to
        ``.npy`` files reopened with ``mmap_mode="r"``
        (:mod:`repro.store.spill`) — and consumers rebuild an
        equivalent graph from the mapped views without pickling an
        edge.
        """
        return {"indptr": self._indptr, "indices": self._indices}

    def csr_arrays(self) -> dict[str, np.ndarray]:
        """Deprecated alias of :meth:`csr_components` (one release)."""
        _deprecated("DiGraph.csr_arrays()", "DiGraph.csr_components()")
        return self.csr_components()

    @classmethod
    def from_csr_arrays(cls, arrays: dict[str, np.ndarray]) -> "DiGraph":
        """Rebuild a graph from :meth:`csr_arrays` output (no copy).

        Validation is skipped: the arrays come from an already-validated
        graph, and the views may be read-only shared-memory mappings.
        """
        return cls(arrays["indptr"], arrays["indices"], validate=False)

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self._n}, m={self._m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self._n == other._n
            and self._m == other._m
            and bool(np.array_equal(self._indptr, other._indptr))
            and bool(np.array_equal(self._indices, other._indices))
        )

    def __hash__(self) -> int:
        return hash((self._n, self._m, self._indices[: min(self._m, 64)].tobytes()))

    # ------------------------------------------------------------------
    # Degrees and adjacency
    # ------------------------------------------------------------------
    def out_degree(self, v: int | None = None) -> int | np.ndarray:
        """Out-degree of vertex ``v``, or the full out-degree vector."""
        if v is None:
            return np.diff(self._indptr)
        self._check_vertex(v)
        return int(self._indptr[v + 1] - self._indptr[v])

    def in_degree(self, v: int | None = None) -> int | np.ndarray:
        """In-degree of vertex ``v``, or the full in-degree vector."""
        self._ensure_in_adjacency()
        assert self._in_indptr is not None
        if v is None:
            return np.diff(self._in_indptr)
        self._check_vertex(v)
        return int(self._in_indptr[v + 1] - self._in_indptr[v])

    def successors(self, v: int) -> np.ndarray:
        """Successors of ``v`` (vertices ``w`` with an edge ``v -> w``)."""
        self._check_vertex(v)
        return self._indices[self._indptr[v] : self._indptr[v + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        """Predecessors of ``v`` (vertices ``u`` with an edge ``u -> v``)."""
        self._check_vertex(v)
        self._ensure_in_adjacency()
        assert self._in_indptr is not None and self._in_indices is not None
        return self._in_indices[self._in_indptr[v] : self._in_indptr[v + 1]]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists."""
        return bool(np.isin(v, self.successors(u)).item())

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all ``(source, target)`` edge pairs in CSR order."""
        for u in range(self._n):
            for w in self.successors(u):
                yield u, int(w)

    def edge_sources(self) -> np.ndarray:
        """Source vertex of every edge, aligned with :attr:`indices`."""
        return np.repeat(np.arange(self._n, dtype=np.int64), np.diff(self._indptr))

    def _edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` array, in CSR order (internal)."""
        return np.column_stack([self.edge_sources(), self._indices])

    def edge_array(self) -> np.ndarray:
        """Deprecated: all edges as ``(m, 2)`` rows, in CSR order.

        Use the :class:`~repro.store.GraphStore` protocol instead —
        :meth:`edge_keys` for the canonical sorted key stream, or
        ``repro.store.keys_to_edges(graph.edge_keys(), n)`` when
        ``(source, target)`` rows are needed.
        """
        _deprecated(
            "DiGraph.edge_array()",
            "DiGraph.edge_keys() / repro.store.keys_to_edges()",
        )
        return self._edge_array()

    # ------------------------------------------------------------------
    # GraphStore protocol (the in-RAM tier)
    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        """Store-protocol version counter; immutable graphs are 0."""
        return 0

    def edge_keys(self) -> np.ndarray:
        """Sorted unique ``source * n + target`` keys of every edge.

        The canonical :class:`~repro.store.GraphStore` read.  CSR rows
        built by :func:`~repro.graph.builder.from_edges` already store
        successors sorted, so the common case is a cheap column stack;
        hand-built graphs with unsorted rows pay one sort.
        """
        keys = self.edge_sources() * self._n + self._indices
        if keys.size > 1 and not bool((keys[1:] > keys[:-1]).all()):
            keys = np.sort(keys)
        return keys

    def scan(self, window) -> np.ndarray:
        """Window-filtered edge keys (see :class:`repro.store.Window`)."""
        from ..store.base import scan_keys

        return scan_keys(self.edge_keys(), self._n, window)

    def snapshot(self, repair_dangling: str = "self-loop") -> "DiGraph":
        """Store-protocol snapshot: an immutable graph is its own.

        When a dangling repair is requested and the graph actually has
        dangling vertices, a repaired copy is built (matching
        :meth:`~repro.dynamic.DynamicDiGraph.snapshot` semantics);
        otherwise this returns ``self`` unchanged.
        """
        if repair_dangling not in ("none", None) and bool(
            (np.diff(self._indptr) == 0).any()
        ):
            from .builder import from_edges

            return from_edges(
                self._edge_array(),
                num_vertices=self._n,
                repair_dangling=repair_dangling,
            )
        return self

    # ------------------------------------------------------------------
    # Derived structures
    # ------------------------------------------------------------------
    def transition_matrix(self) -> np.ndarray:
        """Dense column-stochastic transition matrix ``P`` (Eq. 1).

        ``P[i, j] = 1 / d_out(j)`` if the edge ``j -> i`` exists.  Intended
        for small graphs (tests, theory validation); raises for graphs
        whose dense form would exceed ~64M entries.
        """
        if self._n * self._n > 64_000_000:
            raise GraphError(
                f"dense transition matrix for n={self._n} is too large; "
                "use sparse power iteration instead"
            )
        out_deg = np.diff(self._indptr)
        if np.any(out_deg == 0):
            raise GraphError(
                "transition matrix undefined for dangling vertices; "
                "repair the graph first (GraphBuilder(repair_dangling=...))"
            )
        p = np.zeros((self._n, self._n), dtype=np.float64)
        sources = self.edge_sources()
        p[self._indices, sources] = 1.0 / out_deg[sources]
        return p

    def reverse(self) -> "DiGraph":
        """Graph with every edge direction flipped."""
        self._ensure_in_adjacency()
        assert self._in_indptr is not None and self._in_indices is not None
        return DiGraph(
            self._in_indptr.copy(), self._in_indices.copy(), validate=False
        )

    def subgraph_edges(self, keep: np.ndarray) -> "DiGraph":
        """Graph on the same vertex set keeping only edges where ``keep``.

        ``keep`` is a boolean mask aligned with CSR edge order (the order
        of :attr:`indices`).  Used by the sparsification baseline.
        """
        keep = np.asarray(keep, dtype=bool)
        if keep.shape != (self._m,):
            raise GraphError(
                f"keep mask must have shape ({self._m},), got {keep.shape}"
            )
        sources = self.edge_sources()[keep]
        targets = self._indices[keep]
        counts = np.bincount(sources, minlength=self._n)
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        order = np.argsort(sources, kind="stable")
        return DiGraph(indptr, targets[order], validate=False)

    def dangling_vertices(self) -> np.ndarray:
        """Vertices with out-degree zero."""
        return np.flatnonzero(np.diff(self._indptr) == 0)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_vertex(self, v: int) -> None:
        if not 0 <= v < self._n:
            raise GraphError(f"vertex {v} out of range [0, {self._n})")

    def _ensure_in_adjacency(self) -> None:
        """Build the in-adjacency (reverse CSR) lazily, once."""
        if self._in_indptr is not None:
            return
        targets = self._indices
        counts = np.bincount(targets, minlength=self._n)
        in_indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        perm = np.argsort(targets, kind="stable")
        in_indices = self.edge_sources()[perm]
        self._in_indptr = in_indptr
        self._in_indices = in_indices
        self._edge_perm = perm
