"""Graph serialization.

Two formats are supported:

* **SNAP edge lists** (the format LiveJournal and Twitter are distributed
  in): plain text, one ``source<whitespace>target`` pair per line, ``#``
  comments.  Vertex ids need not be contiguous; they are compacted and the
  mapping is returned.
* **NPZ snapshots**: the CSR arrays in a single compressed numpy file —
  loads orders of magnitude faster for repeated experiments.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from ..errors import GraphFormatError
from .builder import from_edges
from .digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
]


def read_edge_list(
    path: str | os.PathLike[str],
    comments: str = "#",
    repair_dangling: str = "self-loop",
    return_mapping: bool = False,
) -> DiGraph | tuple[DiGraph, np.ndarray]:
    """Read a SNAP-style whitespace-separated edge list.

    Vertex ids are compacted to ``0..n-1`` in sorted order of the original
    ids.  With ``return_mapping=True`` the original id of each compact
    vertex is returned alongside the graph.
    """
    sources: list[int] = []
    targets: list[int] = []
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith(comments):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise GraphFormatError(
                    f"{path}:{lineno}: expected 'source target', got {line!r}"
                )
            try:
                sources.append(int(parts[0]))
                targets.append(int(parts[1]))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{lineno}: non-integer vertex id in {line!r}"
                ) from exc
    if not sources:
        raise GraphFormatError(f"{path}: no edges found")

    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    original_ids, compact = np.unique(np.concatenate([src, dst]), return_inverse=True)
    src_c = compact[: src.size]
    dst_c = compact[src.size :]
    graph = from_edges(
        np.column_stack([src_c, dst_c]),
        num_vertices=original_ids.size,
        repair_dangling=repair_dangling,
    )
    if return_mapping:
        return graph, original_ids
    return graph


def write_edge_list(
    graph: DiGraph, path: str | os.PathLike[str], header: str | None = None
) -> None:
    """Write a graph as a SNAP-style edge list."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        if header:
            for line in header.splitlines():
                handle.write(f"# {line}\n")
        handle.write(f"# Nodes: {graph.num_vertices} Edges: {graph.num_edges}\n")
        edge_arr = graph._edge_array()
        np.savetxt(handle, edge_arr, fmt="%d\t%d")


def save_npz(graph: DiGraph, path: str | os.PathLike[str]) -> None:
    """Save the CSR arrays into a compressed ``.npz`` snapshot."""
    np.savez_compressed(
        Path(path), indptr=graph.indptr, indices=graph.indices
    )


def load_npz(path: str | os.PathLike[str]) -> DiGraph:
    """Load a graph previously stored with :func:`save_npz`."""
    try:
        with np.load(Path(path)) as data:
            return DiGraph(data["indptr"], data["indices"])
    except KeyError as exc:
        raise GraphFormatError(
            f"{path}: missing CSR arrays; not a repro graph snapshot"
        ) from exc
