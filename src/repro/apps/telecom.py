"""Influential-customer analysis on call graphs.

The paper's first motivating application (Section 1, citing Teradata's
"grow loyalty of influential customers"): a telecom ranks customers by
top-k PageRank on the call-activity graph and invests its retention
budget in the top k.  This module synthesizes a call-detail-record
(CDR) workload, builds the activity graph, and finds influencers with
FrogWild.

The synthetic CDR generator produces the two features that make the
problem PageRank-shaped: heavy-tailed calling activity (a few customers
interact very widely) and preferential receiving (popular customers
attract calls from other popular customers).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FrogWildConfig, run_frogwild
from ..errors import ConfigError
from ..graph import DiGraph, from_edges

__all__ = [
    "generate_call_graph",
    "find_influencers",
    "campaign_reach",
    "InfluencerReport",
]


def generate_call_graph(
    num_customers: int = 5_000,
    num_calls: int = 60_000,
    activity_exponent: float = 2.3,
    popularity_mix: float = 0.7,
    seed: int | None = 0,
) -> DiGraph:
    """Synthesize a directed call graph (edge = "caller called callee").

    Callers are sampled proportionally to a Pareto activity weight;
    callees mix popularity-proportional choice (probability
    ``popularity_mix``) with uniform choice.  Repeat calls collapse to
    one edge (the builder dedups), mirroring how CDR piles are reduced
    to contact graphs.
    """
    if num_customers < 2:
        raise ConfigError("need at least two customers")
    if num_calls < 1:
        raise ConfigError("need at least one call")
    if not 0.0 <= popularity_mix <= 1.0:
        raise ConfigError("popularity_mix must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    activity = (1.0 - rng.random(num_customers)) ** (
        -1.0 / (activity_exponent - 1.0)
    )
    # Popularity correlates with calling activity (socially active people
    # both place and receive many calls) with lognormal individual noise.
    popularity = activity * np.exp(rng.normal(0.0, 0.5, num_customers))
    p_call = activity / activity.sum()
    p_recv = popularity / popularity.sum()

    callers = rng.choice(num_customers, size=num_calls, p=p_call)
    prefer = rng.random(num_calls) < popularity_mix
    callees = np.where(
        prefer,
        rng.choice(num_customers, size=num_calls, p=p_recv),
        rng.integers(0, num_customers, size=num_calls),
    )
    ok = callers != callees
    return from_edges(
        np.column_stack([callers[ok], callees[ok]]),
        num_vertices=num_customers,
    )


@dataclass(frozen=True)
class InfluencerReport:
    """Result of an influencer-identification run."""

    influencers: np.ndarray
    scores: np.ndarray
    network_bytes: int
    total_time_s: float

    def top(self, limit: int = 10) -> list[tuple[int, float]]:
        """(customer id, score) pairs, most influential first."""
        return [
            (int(v), float(s))
            for v, s in zip(self.influencers[:limit], self.scores[:limit])
        ]


def find_influencers(
    graph: DiGraph,
    k: int = 50,
    config: FrogWildConfig | None = None,
    num_machines: int = 8,
) -> InfluencerReport:
    """Top-k influential customers by approximate PageRank."""
    if k < 1:
        raise ConfigError("k must be positive")
    if config is None:
        config = FrogWildConfig(
            num_frogs=max(2_000, graph.num_vertices // 2),
            iterations=5,
            ps=0.7,
            seed=0,
        )
    result = run_frogwild(graph, config, num_machines=num_machines)
    chosen = result.estimate.top_k(k)
    distribution = result.estimate.distribution()
    return InfluencerReport(
        influencers=chosen,
        scores=distribution[chosen],
        network_bytes=result.report.network_bytes,
        total_time_s=result.report.total_time_s,
    )


def campaign_reach(graph: DiGraph, seeds: np.ndarray, hops: int = 2) -> float:
    """Fraction of customers within ``hops`` of the seed set.

    A loyalty campaign aimed at the seeds "reaches" everyone they can
    influence within a few referral hops — the payoff metric for
    choosing good influencers.
    """
    if hops < 0:
        raise ConfigError("hops must be non-negative")
    n = graph.num_vertices
    reached = np.zeros(n, dtype=bool)
    seeds = np.asarray(seeds, dtype=np.int64)
    reached[seeds] = True
    frontier = seeds
    for _ in range(hops):
        if frontier.size == 0:
            break
        nexts = []
        for v in frontier:
            nexts.append(graph.successors(int(v)))
        neighbours = np.unique(np.concatenate(nexts)) if nexts else frontier
        fresh = neighbours[~reached[neighbours]]
        reached[fresh] = True
        frontier = fresh
    return float(reached.mean())
