"""Key-user identification in online social networks.

The paper's third motivating application (Section 1, citing Heidemann,
Klier & Probst, ICIS 2010): predict which users will remain active by
running PageRank on a *mixture* of the connectivity graph (friendships)
and the activity graph (recent interactions).  Because the activity
graph churns constantly, the ranking must be recomputed often — which
is why a fast top-k approximation beats the exact solver operationally.

This module synthesizes the pair of graphs with a known per-user
"engagement" ground truth, builds the mixture, ranks users with
FrogWild, and evaluates how well the top-k predicts future activity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import FrogWildConfig, run_frogwild
from ..errors import ConfigError
from ..graph import DiGraph, from_edges, livejournal_like

__all__ = [
    "SocialNetwork",
    "generate_social_network",
    "mixture_graph",
    "rank_key_users",
    "prediction_precision",
]


@dataclass(frozen=True)
class SocialNetwork:
    """Connectivity + activity graphs with latent engagement truth."""

    connectivity: DiGraph
    activity: DiGraph
    engagement: np.ndarray  # latent per-user propensity in (0, 1]

    @property
    def num_users(self) -> int:
        return self.connectivity.num_vertices

    def future_active_users(
        self, fraction: float = 0.05, seed: int | None = 1
    ) -> np.ndarray:
        """Simulate which users remain active next period.

        Users stay active with probability proportional to engagement;
        the top ``fraction`` of realized draws form the ground truth.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigError("fraction must lie in (0, 1]")
        rng = np.random.default_rng(seed)
        realized = self.engagement * (0.5 + rng.random(self.num_users))
        count = max(1, int(self.num_users * fraction))
        return np.argsort(-realized, kind="stable")[:count]


def generate_social_network(
    num_users: int = 5_000,
    interactions: int = 40_000,
    seed: int | None = 0,
) -> SocialNetwork:
    """Synthesize a friendship graph plus an engagement-driven
    activity graph over the same users.

    Engagement follows a power law; interactions are sampled along
    friendship edges with probability proportional to the *product* of
    endpoint engagements, so the activity graph concentrates on engaged
    users — the signal [19] exploits.
    """
    if num_users < 10:
        raise ConfigError("need at least ten users")
    rng = np.random.default_rng(seed)
    connectivity = livejournal_like(n=num_users, seed=rng)
    engagement = (1.0 - rng.random(num_users)) ** (-1.0 / 1.5)
    engagement = engagement / engagement.max()

    edges = connectivity._edge_array()
    weight = engagement[edges[:, 0]] * engagement[edges[:, 1]]
    prob = weight / weight.sum()
    picks = rng.choice(edges.shape[0], size=interactions, p=prob)
    activity = from_edges(edges[picks], num_vertices=num_users)
    return SocialNetwork(connectivity, activity, engagement)


def mixture_graph(
    network: SocialNetwork, activity_weight: float = 0.7, seed: int | None = 0
) -> DiGraph:
    """Blend activity and connectivity edges into one ranking graph.

    Following [19]'s mixture idea: each ranking edge comes from the
    activity graph with probability ``activity_weight`` and from the
    connectivity graph otherwise.  Sampled with replacement to the
    connectivity graph's edge count so density stays comparable.
    """
    if not 0.0 <= activity_weight <= 1.0:
        raise ConfigError("activity_weight must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    conn_edges = network.connectivity._edge_array()
    act_edges = network.activity._edge_array()
    total = conn_edges.shape[0]
    take_activity = rng.random(total) < activity_weight
    num_act = int(take_activity.sum())
    rows = []
    if num_act and act_edges.shape[0]:
        rows.append(act_edges[rng.integers(0, act_edges.shape[0], size=num_act)])
    num_conn = total - num_act
    if num_conn:
        rows.append(
            conn_edges[rng.integers(0, conn_edges.shape[0], size=num_conn)]
        )
    mixed = np.concatenate(rows) if rows else conn_edges
    return from_edges(mixed, num_vertices=network.num_users)


def rank_key_users(
    network: SocialNetwork,
    k: int = 100,
    activity_weight: float = 0.7,
    config: FrogWildConfig | None = None,
    num_machines: int = 8,
    seed: int | None = 0,
) -> np.ndarray:
    """Top-k key users by FrogWild PageRank on the mixture graph."""
    if k < 1:
        raise ConfigError("k must be positive")
    graph = mixture_graph(network, activity_weight, seed=seed)
    if config is None:
        config = FrogWildConfig(
            num_frogs=max(2_000, network.num_users // 2),
            iterations=5,
            ps=0.7,
            seed=seed if seed is not None else 0,
        )
    result = run_frogwild(graph, config, num_machines=num_machines)
    return result.estimate.top_k(k)


def prediction_precision(
    predicted: np.ndarray, actual: np.ndarray
) -> float:
    """Fraction of predicted key users who were actually active."""
    predicted = np.asarray(predicted)
    if predicted.size == 0:
        raise ConfigError("predicted set is empty")
    return float(np.isin(predicted, actual).mean())
