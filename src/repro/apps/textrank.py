"""Keyword extraction via PageRank over word co-occurrence graphs.

The paper's second motivating application (Section 1, citing Mihalcea &
Tarau's TextRank): build a graph whose vertices are content words and
whose edges connect words co-occurring within a small window, then rank
words by PageRank.  Approximate top-k PageRank finds the keywords
"much faster than obtaining the full ranking" — exactly FrogWild's
sweet spot for time-sensitive pipelines.

:func:`extract_keywords` supports both the exact solver and FrogWild so
callers can measure the trade-off on their own corpora.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass

from ..core import FrogWildConfig, run_frogwild
from ..errors import ConfigError
from ..graph import DiGraph, GraphBuilder
from ..pagerank import exact_pagerank

__all__ = [
    "tokenize",
    "build_cooccurrence_graph",
    "extract_keywords",
    "Keyword",
    "STOPWORDS",
]

#: A compact English stopword list — enough for demonstration corpora.
STOPWORDS = frozenset(
    """a about above after again all also am an and any are as at be because
    been before being below between both but by can could did do does doing
    down during each few for from further had has have having he her here
    hers him his how i if in into is it its itself just me more most my no
    nor not now of off on once only or other our ours out over own same she
    should so some such than that the their theirs them then there these
    they this those through to too under until up very was we were what
    when where which while who whom why will with would you your yours""".split()
)

_WORD_RE = re.compile(r"[a-zA-Z][a-zA-Z'-]+")


@dataclass(frozen=True)
class Keyword:
    """One extracted keyword with its (normalized) rank score."""

    word: str
    score: float


def tokenize(text: str, min_length: int = 3) -> list[str]:
    """Lowercase content words, stopwords and short tokens removed."""
    if min_length < 1:
        raise ConfigError("min_length must be positive")
    return [
        word
        for word in (match.group(0).lower() for match in _WORD_RE.finditer(text))
        if len(word) >= min_length and word not in STOPWORDS
    ]


def build_cooccurrence_graph(
    words: list[str], window: int = 3, min_count: int = 1
) -> tuple[DiGraph, list[str]]:
    """Word co-occurrence graph (edges both ways — TextRank is
    undirected) plus the vertex-id → word vocabulary.

    Words rarer than ``min_count`` are dropped before graph
    construction.
    """
    if window < 1:
        raise ConfigError("window must be positive")
    counts = Counter(words)
    vocabulary = sorted(word for word, c in counts.items() if c >= min_count)
    if len(vocabulary) < 2:
        raise ConfigError("need at least two distinct words to build a graph")
    index = {word: i for i, word in enumerate(vocabulary)}

    builder = GraphBuilder(num_vertices=len(vocabulary))
    edges = []
    kept = [index[w] for w in words if w in index]
    for pos, u in enumerate(kept):
        for v in kept[pos + 1 : pos + 1 + window]:
            if u != v:
                edges.append((u, v))
                edges.append((v, u))
    if not edges:
        raise ConfigError("no co-occurrences found within the window")
    builder.add_edges(edges)
    return builder.build(), vocabulary


def extract_keywords(
    text: str,
    k: int = 10,
    method: str = "frogwild",
    window: int = 3,
    config: FrogWildConfig | None = None,
    num_machines: int = 4,
) -> list[Keyword]:
    """Top-k keywords of ``text`` by (approximate) TextRank.

    ``method`` is ``"frogwild"`` or ``"exact"``.  FrogWild defaults to
    20 frogs per vertex and 8 iterations — plenty for the small, dense
    word graphs typical of documents.
    """
    if method not in ("frogwild", "exact"):
        raise ConfigError(f"method must be 'frogwild' or 'exact', got {method!r}")
    words = tokenize(text)
    graph, vocabulary = build_cooccurrence_graph(words, window=window)
    if method == "exact":
        scores = exact_pagerank(graph)
        from ..core.estimator import top_k_indices

        chosen = top_k_indices(scores, k)
        return [Keyword(vocabulary[i], float(scores[i])) for i in chosen]

    if config is None:
        config = FrogWildConfig(
            num_frogs=max(1000, 20 * graph.num_vertices),
            iterations=8,
            ps=1.0,
            seed=0,
        )
    result = run_frogwild(graph, config, num_machines=num_machines)
    estimate = result.estimate
    chosen = estimate.top_k(k)
    distribution = estimate.distribution()
    return [Keyword(vocabulary[i], float(distribution[i])) for i in chosen]
