"""Application scenarios from the paper's introduction."""

from .osn import (
    SocialNetwork,
    generate_social_network,
    mixture_graph,
    prediction_precision,
    rank_key_users,
)
from .telecom import (
    InfluencerReport,
    campaign_reach,
    find_influencers,
    generate_call_graph,
)
from .textrank import (
    STOPWORDS,
    Keyword,
    build_cooccurrence_graph,
    extract_keywords,
    tokenize,
)

__all__ = [
    "tokenize",
    "build_cooccurrence_graph",
    "extract_keywords",
    "Keyword",
    "STOPWORDS",
    "generate_call_graph",
    "find_influencers",
    "campaign_reach",
    "InfluencerReport",
    "SocialNetwork",
    "generate_social_network",
    "mixture_graph",
    "rank_key_users",
    "prediction_precision",
]
