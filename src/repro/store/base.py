"""The :class:`GraphStore` protocol — one storage API for every tier.

The paper's premise is PageRank on graphs too large to treat casually,
so the storage layer cannot assume the edge set is a RAM-resident numpy
array.  This module defines the seam every consumer (ingress, table
patching, serving backends, CLI) reads through:

* a graph store is an edge *set* over a fixed vertex universe,
  canonically represented as sorted ``source * n + target`` int64 keys
  (exactly the encoding :class:`~repro.dynamic.DynamicDiGraph` and
  :func:`~repro.cluster.stable_hash_machines` already use);
* reads are either a full :meth:`~GraphStore.edge_keys` stream or a
  window-pruned :meth:`~GraphStore.scan` over a ``(machine,
  vertex-range)`` interval — the DMR-XPath-style window contract: the
  store may consult only segments whose key interval intersects the
  window, and must return exactly what a full scan filtered to the
  window would (the interval-pruning proof obligation, pinned by the
  property tests in ``tests/test_store.py``);
* the in-RAM tiers are :class:`~repro.graph.DiGraph` and
  :class:`~repro.dynamic.DynamicDiGraph` themselves (both implement
  the protocol natively); the out-of-core tier is
  :class:`~repro.store.SegmentStore`.

:func:`as_graph_store` is the adapter call sites use instead of
branching on graph type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

import numpy as np

from ..errors import ConfigError

__all__ = [
    "GraphStore",
    "ScanStats",
    "Window",
    "as_graph_store",
    "edges_to_keys",
    "keys_to_edges",
    "scan_keys",
]


@dataclass(frozen=True)
class Window:
    """One ``(machine, vertex-range)`` scan interval.

    The window selects edges whose *source* vertex lies in
    ``[vertex_lo, vertex_hi)`` and — when ``machine`` is not ``None`` —
    whose key hashes to ``machine`` under
    :func:`~repro.cluster.stable_hash_machines` with this window's
    ``(num_machines, salt)`` placement.  A window whose placement
    matches a :class:`~repro.store.SegmentStore`'s layout is served
    from that machine's segments alone (the pruned path); any other
    placement still answers exactly, via hash filtering.
    """

    vertex_lo: int
    vertex_hi: int
    machine: int | None = None
    num_machines: int = 1
    salt: int = 0

    def __post_init__(self) -> None:
        if self.vertex_lo < 0 or self.vertex_hi < self.vertex_lo:
            raise ConfigError(
                f"window vertex range [{self.vertex_lo}, "
                f"{self.vertex_hi}) is not a valid interval"
            )
        if self.num_machines < 1:
            raise ConfigError("window num_machines must be positive")
        if self.machine is not None and not (
            0 <= self.machine < self.num_machines
        ):
            raise ConfigError(
                f"window machine {self.machine} out of range "
                f"[0, {self.num_machines})"
            )

    def key_range(self, num_vertices: int) -> tuple[int, int]:
        """The half-open key interval ``[lo, hi)`` of this window."""
        return (
            self.vertex_lo * num_vertices,
            min(self.vertex_hi, num_vertices) * num_vertices,
        )


@dataclass
class ScanStats:
    """Per-store counters proving scans are window-pruned.

    ``segments_pruned`` counts segments skipped purely on their
    manifest interval (never opened, never paged in);
    ``bytes_scanned`` counts the key bytes actually read from the
    segments that did intersect.  RAM stores count one virtual
    "segment" per scan.
    """

    scans: int = 0
    segments_considered: int = 0
    segments_scanned: int = 0
    segments_pruned: int = 0
    bytes_scanned: int = 0
    extra: dict = field(default_factory=dict)

    def pruned_fraction(self) -> float:
        """Fraction of considered segments skipped without a read."""
        if self.segments_considered == 0:
            return 0.0
        return self.segments_pruned / self.segments_considered

    def as_dict(self) -> dict[str, float]:
        return {
            "scans": float(self.scans),
            "segments_considered": float(self.segments_considered),
            "segments_scanned": float(self.segments_scanned),
            "segments_pruned": float(self.segments_pruned),
            "bytes_scanned": float(self.bytes_scanned),
            "pruned_fraction": self.pruned_fraction(),
        }


@runtime_checkable
class GraphStore(Protocol):
    """Storage seam between graph state and everything that reads it.

    ``edge_keys()`` is the canonical full read: sorted, deduplicated
    ``source * n + target`` int64 keys.  ``scan(window)`` is the pruned
    read; its contract is *exactness*: the result equals
    ``scan_keys(edge_keys(), num_vertices, window)`` for every window,
    however the store prunes internally.  ``version`` is a monotone
    counter advanced by every mutation, mixed into serving cache keys.
    """

    @property
    def num_vertices(self) -> int: ...

    @property
    def num_edges(self) -> int: ...

    @property
    def version(self) -> int: ...

    def edge_keys(self) -> np.ndarray: ...

    def scan(self, window: Window) -> np.ndarray: ...

    def snapshot(self, repair_dangling: str = "self-loop"): ...


def edges_to_keys(edges: np.ndarray, num_vertices: int) -> np.ndarray:
    """Sorted unique ``source * n + target`` keys of ``(m, 2)`` rows."""
    edges = np.asarray(edges, dtype=np.int64)
    if edges.size == 0:
        return np.empty(0, dtype=np.int64)
    return np.unique(edges[:, 0] * int(num_vertices) + edges[:, 1])


def keys_to_edges(keys: np.ndarray, num_vertices: int) -> np.ndarray:
    """Invert :func:`edges_to_keys` back to ``(m, 2)`` edge rows."""
    keys = np.asarray(keys, dtype=np.int64)
    n = int(num_vertices)
    return np.column_stack([keys // n, keys % n])


def _machine_filter(keys: np.ndarray, window: Window) -> np.ndarray:
    """Subset of ``keys`` that hash to the window's machine."""
    if window.machine is None or keys.size == 0:
        return keys
    from ..cluster.partition import stable_hash_machines

    machines = stable_hash_machines(keys, window.num_machines, window.salt)
    return keys[machines == window.machine]


def scan_keys(
    keys: np.ndarray, num_vertices: int, window: Window
) -> np.ndarray:
    """Reference (unpruned) window scan over a sorted key array.

    This is the semantic definition every pruned implementation must
    match bitwise: slice the key interval, then filter by the window's
    machine hash.
    """
    lo, hi = window.key_range(num_vertices)
    a, b = np.searchsorted(keys, [lo, hi])
    return _machine_filter(keys[a:b], window)


def as_graph_store(obj) -> GraphStore:
    """View ``obj`` through the :class:`GraphStore` protocol.

    :class:`~repro.graph.DiGraph`,
    :class:`~repro.dynamic.DynamicDiGraph` and
    :class:`~repro.store.SegmentStore` all implement the protocol
    natively, so this is a checked pass-through — the single place a
    call site's "is this a graph or a store?" branch lives.
    """
    if isinstance(obj, GraphStore):
        return obj
    raise ConfigError(
        f"{type(obj).__name__} does not implement the GraphStore "
        "protocol (num_vertices/num_edges/version/edge_keys/scan/"
        "snapshot)"
    )
