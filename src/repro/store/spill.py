"""Spill serving tables to disk and serve them back through mmap.

A :class:`~repro.store.SegmentStore` bounds the resident set of the
*edge list*, but a serving backend's working state is its derived
tables: the CSR snapshot, the per-shard
:class:`~repro.cluster.ReplicationTable` component arrays, the flat
kernel tables, and the mirror bitmap.  This module moves that state out
of core too:

* :func:`spill_serving_tables` writes every component array as a plain
  ``.npy`` file (one directory per spill tag) after the backend has
  built them in RAM;
* :func:`load_serving_tables` maps the files back with
  ``np.load(mmap_mode="r")`` and rebuilds the object graph *around*
  the mapped views — :meth:`~repro.graph.DiGraph.from_csr_arrays`
  adopts the CSR pair, :meth:`~repro.cluster.ReplicationTable.
  from_shared_components` adopts the grouped-edge arrays, and the
  kernel tables / mirror matrix are pre-seeded into the replication's
  ingress cache exactly as :func:`~repro.core.frogwild.
  prime_ingress_caches` would build them (the ``_KernelTables``
  constructor copies two arrays with ``astype``; rebuilding via
  ``__new__`` keeps the mapped views mapped).

Array values are identical before and after the round trip, so serving
from a loaded spill is bitwise-identical to serving from RAM; the OS
pages table slices in on demand, which is what bounds peak RSS when the
graph outgrows the working-set cap (the ``out-of-core`` bench asserts
both halves).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from ..errors import ConfigError

__all__ = ["load_serving_tables", "spill_serving_tables"]

_META = "meta.json"


def _save(directory: Path, name: str, array: np.ndarray) -> str:
    np.save(directory / f"{name}.npy", np.ascontiguousarray(array))
    return name


def spill_serving_tables(directory, graph, replications) -> Path:
    """Write ``graph`` + per-shard serving tables under ``directory``.

    ``replications`` is the backend's shard list (a single-backend spill
    passes a one-element list).  Kernel tables and the mirror matrix are
    built here — once, in the spilling process — so the loader never
    pays their construction against mapped arrays.
    """
    from ..core.frogwild import _KernelTables
    from ..engine import MirrorSynchronizer

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csr = graph.csr_components()
    names = [
        _save(directory, "csr.indptr", csr["indptr"]),
        _save(directory, "csr.indices", csr["indices"]),
    ]
    out_degree = graph.out_degree()
    for shard, replication in enumerate(replications):
        for key, array in replication.shared_components().items():
            names.append(_save(directory, f"rep{shard}.{key}", array))
        tables = _KernelTables(replication, out_degree)
        for slot in _KernelTables.__slots__:
            names.append(
                _save(directory, f"kt{shard}.{slot}", getattr(tables, slot))
            )
        names.append(
            _save(
                directory,
                f"mm{shard}",
                MirrorSynchronizer.mirror_matrix_for(replication),
            )
        )
    meta = {
        "num_vertices": int(graph.num_vertices),
        "num_shards": len(replications),
        "arrays": names,
    }
    tmp = directory / (_META + ".tmp")
    with tmp.open("w", encoding="utf-8") as handle:
        json.dump(meta, handle)
    os.replace(tmp, directory / _META)
    return directory


def load_serving_tables(directory):
    """Map a spill directory back into ``(graph, [replications])``.

    Every array is an ``np.load(mmap_mode="r")`` view; the returned
    replication tables carry pre-seeded ``kernel_tables`` /
    ``mirror_matrix`` ingress-cache entries, so the serving hot path
    never materializes a full in-RAM copy of any spilled component.
    """
    from ..cluster.replication import ReplicationTable
    from ..core.frogwild import _KernelTables
    from ..graph import DiGraph

    directory = Path(directory)
    meta_path = directory / _META
    if not meta_path.exists():
        raise ConfigError(
            f"{directory} is not a serving spill (no {_META}); "
            "use spill_serving_tables to create one"
        )
    with meta_path.open("r", encoding="utf-8") as handle:
        meta = json.load(handle)

    def _load(name: str) -> np.ndarray:
        return np.load(directory / f"{name}.npy", mmap_mode="r")

    graph = DiGraph.from_csr_arrays(
        {"indptr": _load("csr.indptr"), "indices": _load("csr.indices")}
    )
    replications = []
    for shard in range(int(meta["num_shards"])):
        prefix = f"rep{shard}."
        arrays = {
            name[len(prefix) :]: _load(name)
            for name in meta["arrays"]
            if name.startswith(prefix)
        }
        replication = ReplicationTable.from_shared_components(graph, arrays)
        tables = _KernelTables.__new__(_KernelTables)
        for slot in _KernelTables.__slots__:
            setattr(tables, slot, _load(f"kt{shard}.{slot}"))
        replication._ingress_cache["kernel_tables"] = tables
        replication._ingress_cache["mirror_matrix"] = _load(f"mm{shard}")
        replications.append(replication)
    return graph, replications
