"""Graph storage tiers behind one :class:`GraphStore` protocol.

``repro.store`` is the seam between graph state and everything that
reads it.  The in-RAM tiers — :class:`~repro.graph.DiGraph` and
:class:`~repro.dynamic.DynamicDiGraph` — implement the protocol
natively; :class:`SegmentStore` is the out-of-core tier (mmap'd sorted
edge segments, an in-RAM delta layer, periodic compaction), and
:mod:`~repro.store.spill` moves the *derived* serving tables out of
core to match.
"""

from .base import (
    GraphStore,
    ScanStats,
    Window,
    as_graph_store,
    edges_to_keys,
    keys_to_edges,
    scan_keys,
)
from .segments import CompactionStats, SegmentMeta, SegmentStore
from .spill import load_serving_tables, spill_serving_tables

__all__ = [
    "CompactionStats",
    "GraphStore",
    "ScanStats",
    "SegmentMeta",
    "SegmentStore",
    "Window",
    "as_graph_store",
    "edges_to_keys",
    "keys_to_edges",
    "load_serving_tables",
    "scan_keys",
    "spill_serving_tables",
]
