"""Out-of-core edge tier: mmap'd sorted segments + in-RAM delta layer.

:class:`SegmentStore` keeps the edge set on disk as sorted key-segment
files keyed by ``(machine, key-interval)``:

* every edge key is assigned a machine by the same
  :func:`~repro.cluster.stable_hash_machines` hash the ingress layer
  uses, so a shard's windows align with its placement and a shard scan
  touches only that machine's segment files;
* within a machine, keys are split into bounded sorted runs
  (``segment_edges`` apiece); each segment's manifest entry records the
  closed interval ``[key_lo, key_hi]`` covering *every* key inside it —
  the interval-pruning proof obligation.  The invariant holds by
  construction (segments are contiguous slices of a sorted array) and
  is re-checked on open and after every compaction
  (:meth:`check_intervals`), so a scan may skip any segment whose
  interval misses the window and still be exact;
* mutations never touch segment files: a :class:`~repro.dynamic.
  GraphDelta` lands in an in-RAM delta layer (sorted ``_added`` /
  ``_removed`` key arrays, same apply semantics as
  :class:`~repro.dynamic.DynamicDiGraph.apply`), and reads overlay it;
* :meth:`compact` folds the delta layer back into segment files —
  rewriting only the machines whose key set changed — and is driven
  periodically by the live refresh pipeline
  (:class:`~repro.live.BackgroundRefresher` →
  ``LiveRankingService(store=...)``), off the query path.

Segment files are read with ``np.load(mmap_mode="r")``: a scan pages in
only the slice its window selects, which is what bounds the resident
set when serving graphs larger than RAM (see :mod:`repro.store.spill`
for the serving-table side).  Orphaned segment files (e.g. left by a
crash between a compaction's write and its manifest swap) are swept by
:meth:`sweep_orphans`, mirroring the ``/dev/shm`` hygiene of
:meth:`~repro.cluster.SharedArena.sweep_orphans`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..errors import ConfigError, GraphError
from .base import (
    ScanStats,
    Window,
    edges_to_keys,
    keys_to_edges,
    scan_keys,
)

__all__ = ["CompactionStats", "SegmentMeta", "SegmentStore"]

_MANIFEST = "manifest.json"
_SEGMENT_GLOB = "seg-*.npy"


@dataclass(frozen=True)
class SegmentMeta:
    """Manifest entry of one on-disk sorted key run."""

    machine: int
    key_lo: int
    key_hi: int
    count: int
    file: str

    def intersects(self, lo: int, hi: int) -> bool:
        """Whether ``[key_lo, key_hi]`` meets the half-open ``[lo, hi)``."""
        return self.key_hi >= lo and self.key_lo < hi

    def as_dict(self) -> dict:
        return {
            "machine": self.machine,
            "key_lo": self.key_lo,
            "key_hi": self.key_hi,
            "count": self.count,
            "file": self.file,
        }


@dataclass(frozen=True)
class CompactionStats:
    """What one :meth:`SegmentStore.compact` call did."""

    folded_keys: int
    machines_rewritten: int
    segments_written: int
    segments_deleted: int
    bytes_written: int


class SegmentStore:
    """Disk-backed :class:`~repro.store.GraphStore` over segment files.

    Build one with :meth:`create` (bulk load from any graph store or
    edge array) and reopen it later with :meth:`open`.  The store
    implements the full protocol — ``edge_keys``/``scan``/``apply``/
    ``snapshot``/``version`` — so ingress and serving code cannot tell
    it from a RAM graph except through :attr:`scan_stats`.
    """

    #: Marks this tier for the serving seam: backends given an
    #: out-of-core store spill their derived tables to disk and serve
    #: from mapped views (see ``repro.store.spill``).
    out_of_core = True

    def __init__(self, directory: str | os.PathLike[str]) -> None:
        """Open an existing store directory (see :meth:`create`)."""
        self.directory = Path(directory)
        manifest_path = self.directory / _MANIFEST
        if not manifest_path.exists():
            raise ConfigError(
                f"{self.directory} is not a SegmentStore (no {_MANIFEST}; "
                "use SegmentStore.create to build one)"
            )
        with manifest_path.open("r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        self._n = int(manifest["num_vertices"])
        self.num_machines = int(manifest["num_machines"])
        self.salt = int(manifest["salt"])
        self.segment_edges = int(manifest["segment_edges"])
        self._version = int(manifest["version"])
        self._epoch = int(manifest["epoch"])
        self._segments = [
            SegmentMeta(**entry) for entry in manifest["segments"]
        ]
        self._added = np.empty(0, dtype=np.int64)
        self._removed = np.empty(0, dtype=np.int64)
        self._maps: dict[str, np.ndarray] = {}
        self.scan_stats = ScanStats()
        self.check_intervals()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: str | os.PathLike[str],
        source=None,
        *,
        num_vertices: int | None = None,
        num_machines: int = 1,
        salt: int = 0,
        segment_edges: int = 1 << 16,
    ) -> "SegmentStore":
        """Bulk-load a store directory from ``source`` and open it.

        ``source`` is any :class:`~repro.store.GraphStore` (a
        :class:`~repro.graph.DiGraph`, a
        :class:`~repro.dynamic.DynamicDiGraph`, another store) or an
        ``(m, 2)`` edge array (then ``num_vertices`` is required).
        ``num_machines``/``salt`` fix the segment layout — align them
        with the serving cluster's placement so shard scans hit the
        pruned path.
        """
        if num_machines < 1:
            raise ConfigError("num_machines must be positive")
        if segment_edges < 1:
            raise ConfigError("segment_edges must be positive")
        if source is None:
            if num_vertices is None:
                raise ConfigError(
                    "create() needs a source store/graph/edge array, "
                    "or num_vertices for an empty store"
                )
            n = int(num_vertices)
            keys = np.empty(0, dtype=np.int64)
        elif isinstance(source, np.ndarray):
            if num_vertices is None:
                raise ConfigError(
                    "num_vertices is required with a raw edge array"
                )
            n = int(num_vertices)
            if source.size and int(source.max()) >= n:
                raise GraphError("edge endpoint out of range")
            keys = edges_to_keys(source, n)
        else:
            n = int(source.num_vertices)
            keys = np.asarray(source.edge_keys(), dtype=np.int64)
        if n < 1:
            raise ConfigError("num_vertices must be positive")

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        store = cls.__new__(cls)
        store.directory = directory
        store._n = n
        store.num_machines = int(num_machines)
        store.salt = int(salt)
        store.segment_edges = int(segment_edges)
        store._version = 0
        store._epoch = 0
        store._segments = []
        store._added = np.empty(0, dtype=np.int64)
        store._removed = np.empty(0, dtype=np.int64)
        store._maps = {}
        store.scan_stats = ScanStats()
        machines = store._machine_of(keys)
        segments: list[SegmentMeta] = []
        for machine in range(store.num_machines):
            segments.extend(
                store._write_machine(machine, keys[machines == machine])
            )
        store._segments = segments
        store._write_manifest()
        store.check_intervals()
        return store

    @classmethod
    def open(cls, directory: str | os.PathLike[str]) -> "SegmentStore":
        """Alias of the constructor, for symmetry with :meth:`create`."""
        return cls(directory)

    # ------------------------------------------------------------------
    # GraphStore protocol
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._n

    @property
    def num_edges(self) -> int:
        base = sum(seg.count for seg in self._segments)
        return base + int(self._added.size) - int(self._removed.size)

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutating call."""
        return self._version

    def edge_keys(self) -> np.ndarray:
        """The merged edge set: base segments overlaid with the delta."""
        parts = [self._segment_keys(seg) for seg in self._segments]
        if self._added.size:
            parts.append(self._added)
        if not parts:
            return np.empty(0, dtype=np.int64)
        keys = np.sort(np.concatenate(parts))
        if self._removed.size:
            keys = keys[~np.isin(keys, self._removed, assume_unique=True)]
        return keys

    def scan(self, window: Window) -> np.ndarray:
        """Window-pruned scan, exactness-equal to the full-scan filter.

        When the window's ``(num_machines, salt)`` placement matches
        the store layout, only the target machine's segments whose
        manifest interval intersects the window are opened (the pruned
        path); a mismatched placement falls back to scanning every
        interval-intersecting segment and hash-filtering — still
        window-pruned on the vertex range, still exact.
        """
        stats = self.scan_stats
        stats.scans += 1
        lo, hi = window.key_range(self._n)
        aligned = (
            window.num_machines == self.num_machines
            and window.salt == self.salt
        )
        parts: list[np.ndarray] = []
        machines_hit = set()
        for seg in self._segments:
            stats.segments_considered += 1
            if (
                window.machine is not None
                and aligned
                and seg.machine != window.machine
            ) or not seg.intersects(lo, hi):
                stats.segments_pruned += 1
                continue
            arr = self._segment_keys(seg)
            a, b = np.searchsorted(arr, [lo, hi])
            stats.segments_scanned += 1
            stats.bytes_scanned += int(b - a) * arr.itemsize
            if b > a:
                parts.append(np.asarray(arr[a:b]))
                machines_hit.add(seg.machine)
        if parts:
            base = (
                np.concatenate(parts)
                if len(machines_hit) <= 1
                # Runs from one machine are disjoint and ordered; runs
                # from different machines interleave and need a merge.
                else np.sort(np.concatenate(parts))
            )
            if self._removed.size:
                base = base[
                    ~np.isin(base, self._removed, assume_unique=True)
                ]
        else:
            base = np.empty(0, dtype=np.int64)
        if not aligned and window.machine is not None:
            base = scan_keys(base, self._n, window)
        if self._added.size:
            a, b = np.searchsorted(self._added, [lo, hi])
            extra = scan_keys(self._added[a:b], self._n, window)
            if extra.size:
                base = np.sort(np.concatenate([base, extra]))
        return base

    def snapshot(self, repair_dangling: str = "self-loop"):
        """Freeze the merged edge set into an immutable CSR graph."""
        from ..graph.builder import from_edges

        return from_edges(
            keys_to_edges(self.edge_keys(), self._n),
            num_vertices=self._n,
            repair_dangling=repair_dangling,
        )

    # ------------------------------------------------------------------
    # Mutation (delta layer) — semantics mirror DynamicDiGraph exactly
    # ------------------------------------------------------------------
    def apply(self, delta) -> tuple[int, int]:
        """Apply one :class:`~repro.dynamic.GraphDelta` to the delta
        layer; returns ``(edges added, edges removed)``.  Removals run
        first, and version bumps match
        :meth:`~repro.dynamic.DynamicDiGraph.apply` call for call."""
        removed = self.remove_edges(delta.removed)
        added = self.add_edges(delta.added)
        return added, removed

    def add_edges(self, edges) -> int:
        """Insert edges; returns how many were actually new."""
        keys = self._delta_keys(edges)
        if keys is None:
            return 0
        missing = keys[~self._contains(keys)]
        if missing.size:
            resurrect = np.isin(
                missing, self._removed, assume_unique=True
            )
            if resurrect.any():
                self._removed = self._removed[
                    ~np.isin(
                        self._removed,
                        missing[resurrect],
                        assume_unique=True,
                    )
                ]
            fresh = missing[~resurrect]
            if fresh.size:
                self._added = np.sort(
                    np.concatenate([self._added, fresh])
                )
        self._version += 1
        return int(missing.size)

    def remove_edges(self, edges) -> int:
        """Delete edges; returns how many actually existed."""
        keys = self._delta_keys(edges)
        if keys is None:
            return 0
        present = keys[self._contains(keys)]
        if present.size:
            in_added = np.isin(present, self._added, assume_unique=True)
            if in_added.any():
                self._added = self._added[
                    ~np.isin(
                        self._added, present[in_added], assume_unique=True
                    )
                ]
            from_base = present[~in_added]
            if from_base.size:
                self._removed = np.sort(
                    np.concatenate([self._removed, from_base])
                )
        self._version += 1
        return int(present.size)

    def _delta_keys(self, edges) -> np.ndarray | None:
        arr = np.asarray(edges, dtype=np.int64)
        if arr.size == 0:
            return None
        if arr.ndim != 2 or arr.shape[1] != 2:
            raise GraphError(
                f"edges must be (k, 2) pairs, got shape {arr.shape}"
            )
        if arr.min() < 0 or arr.max() >= self._n:
            raise GraphError("edge endpoint out of range")
        return np.unique(arr[:, 0] * self._n + arr[:, 1])

    def _contains(self, keys: np.ndarray) -> np.ndarray:
        """Membership of sorted unique ``keys`` in the merged view.

        Base membership consults only segments whose interval covers a
        queried key — the same pruning the scan path uses.
        """
        mask = np.zeros(keys.size, dtype=bool)
        for seg in self._segments:
            a, b = np.searchsorted(keys, [seg.key_lo, seg.key_hi + 1])
            if b <= a:
                continue
            arr = self._segment_keys(seg)
            pos = np.searchsorted(arr, keys[a:b])
            pos = np.minimum(pos, arr.shape[0] - 1)
            # |= because machine intervals overlap in key space: a key
            # missing from this segment may live in another machine's.
            mask[a:b] |= np.asarray(arr[pos]) == keys[a:b]
        if self._removed.size:
            mask &= ~np.isin(keys, self._removed, assume_unique=True)
        if self._added.size:
            mask |= np.isin(keys, self._added, assume_unique=True)
        return mask

    # ------------------------------------------------------------------
    # Compaction and hygiene
    # ------------------------------------------------------------------
    @property
    def pending_delta(self) -> int:
        """Delta-layer size: keys awaiting compaction."""
        return int(self._added.size) + int(self._removed.size)

    def compact(self) -> CompactionStats:
        """Fold the delta layer into segment files.

        Only machines whose key set the delta touched are rewritten;
        every other machine's files are untouched (and their mmaps stay
        valid).  The manifest is replaced atomically (write + rename),
        then the superseded files are unlinked — a crash in between
        leaves orphans for :meth:`sweep_orphans`, never a torn store.
        """
        pending = np.concatenate([self._added, self._removed])
        if pending.size == 0:
            return CompactionStats(0, 0, 0, 0, 0)
        dirty = np.unique(self._machine_of(pending))
        keep = [s for s in self._segments if s.machine not in set(dirty.tolist())]
        old = [s for s in self._segments if s.machine in set(dirty.tolist())]
        written: list[SegmentMeta] = []
        bytes_written = 0
        for machine in dirty.tolist():
            merged = self.scan(
                Window(
                    0,
                    self._n,
                    machine=int(machine),
                    num_machines=self.num_machines,
                    salt=self.salt,
                )
            )
            new_segs = self._write_machine(int(machine), merged)
            written.extend(new_segs)
            bytes_written += sum(s.count * 8 for s in new_segs)
        self._segments = sorted(
            keep + written, key=lambda s: (s.machine, s.key_lo)
        )
        folded = self.pending_delta
        self._added = np.empty(0, dtype=np.int64)
        self._removed = np.empty(0, dtype=np.int64)
        self._write_manifest()
        for seg in old:
            self._maps.pop(seg.file, None)
            try:
                (self.directory / seg.file).unlink()
            except OSError:
                pass  # an orphan; the sweep reclaims it
        self.check_intervals()
        self.scan_stats.extra["compactions"] = (
            self.scan_stats.extra.get("compactions", 0) + 1
        )
        return CompactionStats(
            folded_keys=folded,
            machines_rewritten=int(dirty.size),
            segments_written=len(written),
            segments_deleted=len(old),
            bytes_written=bytes_written,
        )

    def maybe_compact(self, threshold: int = 4096) -> CompactionStats | None:
        """Compact when the delta layer has reached ``threshold`` keys.

        The periodic-compaction hook the live refresh pipeline calls
        off the query path; returns ``None`` when below threshold.
        """
        if self.pending_delta < max(int(threshold), 1):
            return None
        return self.compact()

    def segment_files(self) -> list[str]:
        """Manifest-owned segment file names (sorted)."""
        return sorted(seg.file for seg in self._segments)

    def list_segment_files(self) -> list[str]:
        """Every ``seg-*.npy`` file present in the directory (sorted)."""
        return sorted(p.name for p in self.directory.glob(_SEGMENT_GLOB))

    def sweep_orphans(self) -> list[str]:
        """Unlink segment files the manifest no longer owns.

        Mirrors :meth:`~repro.cluster.SharedArena.sweep_orphans`: a
        crash between a compaction's segment writes and its manifest
        swap (or between the swap and the unlinks) strands files; the
        sweep reclaims them.  Returns the names it removed.
        """
        owned = set(seg.file for seg in self._segments)
        swept = []
        for name in self.list_segment_files():
            if name not in owned:
                try:
                    (self.directory / name).unlink()
                except OSError:
                    continue
                swept.append(name)
        return swept

    def check_intervals(self) -> None:
        """Re-verify the interval-pruning proof obligation.

        Every segment's keys must be sorted and lie inside its manifest
        interval, intervals of one machine must be disjoint, and every
        key must hash to its segment's machine — together these make
        interval pruning exact.  Raises :class:`~repro.errors.
        GraphError` on any violation (a corrupted or foreign file).
        """
        by_machine: dict[int, list[SegmentMeta]] = {}
        for seg in self._segments:
            if seg.count == 0:
                raise GraphError(f"segment {seg.file} is empty")
            arr = self._segment_keys(seg)
            if arr.shape[0] != seg.count:
                raise GraphError(
                    f"segment {seg.file} holds {arr.shape[0]} keys, "
                    f"manifest says {seg.count}"
                )
            first, last = int(arr[0]), int(arr[-1])
            if first < seg.key_lo or last > seg.key_hi:
                raise GraphError(
                    f"segment {seg.file} violates its interval: keys "
                    f"[{first}, {last}] outside [{seg.key_lo}, "
                    f"{seg.key_hi}]"
                )
            if arr.shape[0] > 1 and not bool(
                (np.asarray(arr[1:]) > np.asarray(arr[:-1])).all()
            ):
                raise GraphError(f"segment {seg.file} keys not sorted")
            by_machine.setdefault(seg.machine, []).append(seg)
        for machine, segs in by_machine.items():
            segs = sorted(segs, key=lambda s: s.key_lo)
            for prev, cur in zip(segs, segs[1:]):
                if cur.key_lo <= prev.key_hi:
                    raise GraphError(
                        f"machine {machine} segments overlap: "
                        f"{prev.file} and {cur.file}"
                    )

    def nbytes_on_disk(self) -> int:
        """Total bytes of the manifest-owned segment files."""
        return sum(seg.count * 8 for seg in self._segments)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _machine_of(self, keys: np.ndarray) -> np.ndarray:
        from ..cluster.partition import stable_hash_machines

        return stable_hash_machines(keys, self.num_machines, self.salt)

    def _segment_keys(self, seg: SegmentMeta) -> np.ndarray:
        """The mmap'd key array of one segment (cached handle)."""
        arr = self._maps.get(seg.file)
        if arr is None:
            arr = np.load(self.directory / seg.file, mmap_mode="r")
            self._maps[seg.file] = arr
        return arr

    def _write_machine(
        self, machine: int, keys: np.ndarray
    ) -> list[SegmentMeta]:
        """Write one machine's sorted keys as fresh segment files."""
        segments: list[SegmentMeta] = []
        for start in range(0, int(keys.size), self.segment_edges):
            chunk = keys[start : start + self.segment_edges]
            self._epoch += 1
            name = f"seg-{self._epoch:08d}-m{machine}.npy"
            np.save(self.directory / name, np.ascontiguousarray(chunk))
            segments.append(
                SegmentMeta(
                    machine=int(machine),
                    key_lo=int(chunk[0]),
                    key_hi=int(chunk[-1]),
                    count=int(chunk.size),
                    file=name,
                )
            )
        return segments

    def _write_manifest(self) -> None:
        manifest = {
            "num_vertices": self._n,
            "num_machines": self.num_machines,
            "salt": self.salt,
            "segment_edges": self.segment_edges,
            "version": self._version,
            "epoch": self._epoch,
            "segments": [seg.as_dict() for seg in self._segments],
        }
        tmp = self.directory / (_MANIFEST + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            json.dump(manifest, handle)
        os.replace(tmp, self.directory / _MANIFEST)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SegmentStore(n={self._n}, m={self.num_edges}, "
            f"machines={self.num_machines}, "
            f"segments={len(self._segments)}, "
            f"pending={self.pending_delta}, version={self._version})"
        )
