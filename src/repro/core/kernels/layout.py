"""Cache-conscious data layout for the compiled kernel tier.

Three concerns live here, all purely about memory traffic — none of
them changes a single computed value:

* **int32 narrowing.**  The fused kernel addresses the batch with
  ``lane * n + vertex`` keys in int64.  When the key space ``B * n``
  fits int32 the compiled tier halves the bytes streamed per key;
  :func:`lane_key_dtype` implements the explicit overflow guard the
  narrowing hides behind (falls back to int64, or raises when int32 is
  demanded).  :class:`CompiledTables` applies the same narrowing to the
  per-ingress gather tables (vertex pointers, group and edge arrays).
* **CSR-blocked tiles.**  :func:`plan_tiles` splits the frontier into
  contiguous row tiles whose estimated working set fits the L2 budget,
  so the compiled expansion loops re-walk a cache-resident window
  instead of streaming the whole concatenation; tiling never reorders
  writes, so results are bit-identical for every tile plan.
* The per-array bytes live here too so the dense-vs-sorted pass
  selection in :mod:`.compiled` can reason about working-set size.
"""

from __future__ import annotations

import os

import numpy as np

__all__ = [
    "CompiledTables",
    "lane_key_dtype",
    "l2_tile_bytes",
    "pack_lane_keys",
    "plan_store_tiles",
    "plan_tiles",
    "unpack_lane_keys",
]

_INT32_SPAN = 2**31


def lane_key_dtype(num_lanes: int, num_vertices: int, *, require_int32=False):
    """Dtype for ``lane * n + vertex`` keys, with the overflow guard.

    Returns ``np.int32`` exactly when the key space ``num_lanes *
    num_vertices`` is below ``2**31``; otherwise falls back to
    ``np.int64`` — unless the caller demands int32, in which case the
    guard raises instead of silently wrapping.
    """
    span = int(num_lanes) * int(num_vertices)
    if span < _INT32_SPAN:
        return np.dtype(np.int32)
    if require_int32:
        raise OverflowError(
            f"lane-key space {num_lanes} * {num_vertices} = {span} "
            f"overflows int32 (>= 2**31); use int64 keys"
        )
    return np.dtype(np.int64)


def pack_lane_keys(
    lane_ids: np.ndarray,
    verts: np.ndarray,
    num_vertices: int,
    *,
    num_lanes: int | None = None,
    require_int32: bool = False,
) -> np.ndarray:
    """Pack ``(lane, vertex)`` pairs into lane-offset keys.

    The key dtype narrows to int32 when the span allows (guarded by
    :func:`lane_key_dtype`); the packed values are identical to the
    int64 path either way.
    """
    if num_lanes is None:
        num_lanes = int(lane_ids.max(initial=-1)) + 1
    dtype = lane_key_dtype(
        num_lanes, num_vertices, require_int32=require_int32
    )
    keys = lane_ids.astype(np.int64) * int(num_vertices) + verts
    return keys.astype(dtype)


def unpack_lane_keys(
    keys: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Invert :func:`pack_lane_keys` back to int64 ``(lane, vertex)``."""
    wide = keys.astype(np.int64)
    return wide // int(num_vertices), wide % int(num_vertices)


def _narrow(array: np.ndarray) -> np.ndarray:
    """An int32 copy when every value fits, else the original array."""
    if array.dtype == np.int32:
        return array
    if array.size == 0 or int(array.max(initial=0)) < _INT32_SPAN:
        return array.astype(np.int32)
    return array


class CompiledTables:
    """int32-narrowed gather views of :class:`.._KernelTables`.

    The compiled passes stream these arrays per superstep; narrowing
    them halves the gather bandwidth on every graph whose vertex, group
    and edge counts fit int32 (the guard keeps int64 for any array that
    does not).  Built once per ingress and cached alongside the int64
    tables (see ``batched.BatchedFrogWildRunner``).
    """

    __slots__ = (
        "masters",
        "vertex_ptr",
        "group_machine",
        "group_start",
        "group_sizes",
        "edge_target",
        "edge_host",
        "out_degree",
    )

    def __init__(self, tables) -> None:
        self.masters = _narrow(tables.masters)
        self.vertex_ptr = _narrow(tables.vertex_ptr)
        self.group_machine = _narrow(tables.group_machine)
        self.group_start = _narrow(tables.group_start)
        self.group_sizes = _narrow(tables.group_sizes)
        self.edge_target = _narrow(tables.edge_target)
        self.edge_host = _narrow(tables.edge_host)
        self.out_degree = _narrow(tables.out_degree)

    def nbytes(self) -> int:
        return sum(getattr(self, name).nbytes for name in self.__slots__)


def l2_tile_bytes() -> int:
    """The L2 working-set budget for one expansion tile (env-tunable)."""
    return int(os.environ.get("REPRO_L2_BYTES", str(1 << 20)))


def plan_tiles(weights: np.ndarray, budget: int) -> np.ndarray:
    """Split rows into contiguous tiles of at most ``budget`` weight.

    ``weights[r]`` estimates row r's working-set bytes.  Returns the
    tile boundaries as an int64 array ``[0, b1, ..., len(weights)]``;
    a single row heavier than the budget gets a tile of its own.  The
    expansion loops iterate tile by tile so the gather tables and the
    output window of one tile stay L2-resident; the plan affects only
    traversal order within an embarrassingly element-wise pass, never
    the results.
    """
    count = int(weights.size)
    if count == 0:
        return np.zeros(1, dtype=np.int64)
    cum = np.cumsum(weights, dtype=np.int64)
    bounds = [0]
    start = 0
    base = 0
    while start < count:
        hi = int(np.searchsorted(cum, base + int(budget), side="right"))
        if hi <= start:
            hi = start + 1  # one oversized row still advances
        bounds.append(hi)
        base = int(cum[hi - 1])
        start = hi
    return np.asarray(bounds, dtype=np.int64)


def plan_store_tiles(
    store,
    budget: int,
    *,
    window=None,
    chunk_vertices: int = 1 << 16,
    bytes_per_edge: int = 16,
) -> np.ndarray:
    """Vertex-range tile plan read through window-pruned store scans.

    The out-of-core twin of :func:`plan_tiles`: instead of a
    RAM-resident per-row weight vector it walks the queried window of a
    :class:`~repro.store.GraphStore` in ``chunk_vertices``-wide
    sub-windows, so at most one chunk's keys are materialized at a time
    and a :class:`~repro.store.SegmentStore` only pages in the segments
    each sub-window's interval intersects.  Per-vertex weight is
    ``out_degree * bytes_per_edge``.  Returns tile boundaries in vertex
    ids, ``[window.vertex_lo, ..., window.vertex_hi]``; the plan equals
    ``window.vertex_lo + plan_tiles(weights, budget)`` for the same
    weights read whole (pinned by the layout tests).
    """
    from ...store import Window

    n = int(store.num_vertices)
    if window is None:
        window = Window(0, n)
    lo0, hi0 = window.vertex_lo, min(window.vertex_hi, n)
    bounds = [lo0]
    acc = 0
    filled = False  # whether the open tile holds at least one vertex
    for lo in range(lo0, hi0, int(chunk_vertices)):
        hi = min(lo + int(chunk_vertices), hi0)
        keys = store.scan(
            Window(
                lo,
                hi,
                machine=window.machine,
                num_machines=window.num_machines,
                salt=window.salt,
            )
        )
        weights = np.bincount(
            (np.asarray(keys, dtype=np.int64) // n) - lo, minlength=hi - lo
        ) * int(bytes_per_edge)
        for vertex, weight in zip(range(lo, hi), weights.tolist()):
            if filled and acc + weight > int(budget):
                bounds.append(vertex)
                acc = 0
            acc += int(weight)
            filled = True
    if filled:
        bounds.append(hi0)
    return np.asarray(bounds, dtype=np.int64)
