"""Single-allocation buffer arena for per-superstep scratch memory.

The fused numpy kernel allocates a fresh temporary for every pass of
every superstep (``np.unique`` sort buffers, expansion gathers, key
arrays); at B=64 on the serving shape that is hundreds of short-lived
multi-megabyte allocations per query.  The compiled kernel tier instead
carves all per-superstep scratch out of **one** contiguous block that is
reused superstep after superstep: :meth:`BufferArena.take` bump-allocates
an aligned view, :meth:`BufferArena.reset` rewinds the whole arena at
the start of the next superstep.

The arena also keeps the books the bandwidth claim is measured against
(``benchmarks/bench_batch_kernel.py`` records them):

* ``capacity_bytes`` — the single backing allocation's size (the arena
  cost);
* ``scratch_peak_bytes`` — the high-water mark of live scratch within
  one superstep;
* ``alloc_demand_bytes`` — the cumulative bytes every :meth:`take`
  *requested* over the run, i.e. what per-pass ``np.empty`` calls would
  have allocated before the arena existed (the pre-arena cost).

Long-lived dense accumulators (the seen/count maps of the dedupe and
frontier-reduction passes, which must stay zeroed *across* supersteps)
live in a separate :meth:`persistent` region that ``reset`` never
touches.
"""

from __future__ import annotations

import numpy as np

__all__ = ["BufferArena"]

_ALIGN = 64  # cache-line alignment for every handed-out view


class BufferArena:
    """Bump allocator over one reusable numpy block."""

    def __init__(self, initial_bytes: int = 1 << 16) -> None:
        self._block = np.empty(int(initial_bytes), dtype=np.uint8)
        self._offset = 0
        self.scratch_peak_bytes = 0
        self.alloc_demand_bytes = 0
        self.persistent_bytes = 0
        self.grows = 0
        self.resets = 0
        self._persistent: dict[str, np.ndarray] = {}

    @property
    def capacity_bytes(self) -> int:
        """Size of the current backing allocation."""
        return int(self._block.nbytes)

    def reset(self) -> None:
        """Rewind the scratch region (start of a new superstep)."""
        self._offset = 0
        self.resets += 1

    def take(self, shape, dtype) -> np.ndarray:
        """Bump-allocate an uninitialized view of ``shape``/``dtype``.

        Views stay valid until the arena grows past them or the caller
        discards them; callers must not hold a view across
        :meth:`reset` (the next superstep reuses the bytes).
        """
        dtype = np.dtype(dtype)
        if isinstance(shape, (int, np.integer)):
            shape = (int(shape),)
        else:
            shape = tuple(int(s) for s in shape)
        count = 1
        for s in shape:
            count *= s
        nbytes = count * dtype.itemsize
        self.alloc_demand_bytes += nbytes
        # Align the *absolute* address: numpy guarantees nothing about
        # the block base, so pad relative to it, not relative to 0.
        base = self._block.ctypes.data
        start = self._offset + (-(base + self._offset)) % _ALIGN
        end = start + nbytes
        if end > self._block.nbytes:
            # Grow geometrically.  The old block is *not* copied: views
            # already handed out this superstep keep it alive on their
            # own, and the next superstep starts from the bigger block.
            new_cap = max(2 * self._block.nbytes, end + _ALIGN)
            self._block = np.empty(new_cap, dtype=np.uint8)
            self.grows += 1
            start = (-self._block.ctypes.data) % _ALIGN
            end = start + nbytes
        self._offset = end
        if end > self.scratch_peak_bytes:
            self.scratch_peak_bytes = end
        view = self._block[start:end].view(dtype)
        return view.reshape(shape)

    def persistent(self, name: str, size, dtype) -> np.ndarray:
        """A named zero-initialized buffer that survives :meth:`reset`.

        Grows (re-zeroed) when a larger ``size`` is requested; callers
        rely on these staying all-zero between uses and restore that
        invariant themselves after each pass.
        """
        dtype = np.dtype(dtype)
        size = int(size)
        arr = self._persistent.get(name)
        if arr is None or arr.size < size or arr.dtype != dtype:
            if arr is not None:
                self.persistent_bytes -= arr.nbytes
            arr = np.zeros(size, dtype=dtype)
            self._persistent[name] = arr
            self.persistent_bytes += arr.nbytes
        return arr

    def stats(self) -> dict[str, int]:
        """Machine-readable accounting for the perf record."""
        return {
            "capacity_bytes": self.capacity_bytes,
            "scratch_peak_bytes": int(self.scratch_peak_bytes),
            "alloc_demand_bytes": int(self.alloc_demand_bytes),
            "persistent_bytes": int(self.persistent_bytes),
            "grows": int(self.grows),
            "resets": int(self.resets),
        }
