"""Numba-compiled single-pass kernels for the fused batch superstep.

The numpy fused kernel (``core/batched.py``) is memory-bound: every
hot pass streams the full concatenated frontier through
``np.unique``/``searchsorted``/multi-``bincount`` chains, each of which
sorts or re-reads large temporaries.  The passes here replace those
chains with single compiled loops over the same inputs:

* enabled-group counting and the scatter expansions walk the CSR group
  ranges directly instead of materializing ``repeat``/gather arrays;
* the frog-record dedupe accumulates into a dense seen-map (or a single
  sort + scan when the key space is too large to keep dense), replacing
  two ``np.unique`` sorts per superstep;
* the next-frontier reduction scatter-adds into a persistent dense
  count map and sorts only the *touched* keys, replacing the
  ``np.unique(..., return_counts)`` sort of every hop key.

**Every random draw stays in numpy**, sliced per lane exactly like the
fused kernel — the compiled passes are deterministic gathers, scatters
and reductions, so the compiled tier is bitwise identical to
``kernel="fused"`` by construction (pinned in
``tests/test_compiled_kernel.py``).

Numba is optional (the ``[accel]`` extra).  Each pass is written as a
plain-Python loop and jitted at import when Numba is importable; when
it is not, the loops remain callable as pure Python — unusably slow
for production (the selection layer in ``kernels/__init__`` falls back
to ``"fused"`` with one warning) but exactly right for pinning parity
in tests via ``REPRO_COMPILED_FORCE=python``.
"""

from __future__ import annotations

import os

import numpy as np

from .arena import BufferArena
from .layout import (
    CompiledTables,
    l2_tile_bytes,
    lane_key_dtype,
    plan_tiles,
)

__all__ = ["HAVE_NUMBA", "CompiledPasses"]

try:  # pragma: no cover - exercised only on numba-equipped hosts
    from numba import njit as _numba_njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    _numba_njit = None
    HAVE_NUMBA = False


def _jit(fn):
    """njit when Numba is importable; the plain function otherwise."""
    if _numba_njit is None:
        return fn
    return _numba_njit(cache=True)(fn)


# Dense accumulators above this footprint switch to sort+scan passes.
def _dense_budget_bytes() -> int:
    return int(os.environ.get("REPRO_COMPILED_DENSE_BUDGET", str(1 << 28)))


# ----------------------------------------------------------------------
# apply(): death scatter-add + per-machine op charge
# ----------------------------------------------------------------------
@_jit
def _apply_pass(counts_flat, lane_ids, verts, dead, k, masters, apply_ops, n):
    for j in range(lane_ids.shape[0]):
        v = int(verts[j])
        counts_flat[int(lane_ids[j]) * n + v] += dead[j]
        apply_ops[masters[v]] += k[j]


# ----------------------------------------------------------------------
# enabled groups: CSR walk instead of repeat/gather materialization
# ----------------------------------------------------------------------
@_jit
def _enabled_groups_pass(
    vert_sv, fresh, vertex_ptr, groups_per_row, g_count, group_machine
):
    for r in range(vert_sv.shape[0]):
        v = int(vert_sv[r])
        lo = int(vertex_ptr[v])
        hi = int(vertex_ptr[v + 1])
        g_count[r] = hi - lo
        c = 0
        for gi in range(lo, hi):
            if fresh[r, group_machine[gi]]:
                c += 1
        groups_per_row[r] = c


@_jit
def _enabled_totals_pass(
    vert_sv,
    lane_sv,
    fresh,
    forced_g,
    vertex_ptr,
    group_machine,
    group_sizes,
    edge_counts,
    machine_groups,
    lane_groups,
):
    for r in range(vert_sv.shape[0]):
        fg = int(forced_g[r])
        lane = int(lane_sv[r])
        if fg >= 0:
            # Repaired row: exactly one (uniformly re-enabled) group.
            edge_counts[r] = group_sizes[fg]
            machine_groups[group_machine[fg]] += 1
            lane_groups[lane] += 1
            continue
        v = int(vert_sv[r])
        e = 0
        for gi in range(int(vertex_ptr[v]), int(vertex_ptr[v + 1])):
            m = group_machine[gi]
            if fresh[r, m]:
                e += int(group_sizes[gi])
                machine_groups[m] += 1
                lane_groups[lane] += 1
        edge_counts[r] = e


# ----------------------------------------------------------------------
# scatter(): multinomial expansion — one loop replaces the
# repeat/cumsum/fancy-gather chain of the fused kernel
# ----------------------------------------------------------------------
@_jit
def _expand_multinomial_pass(
    tile_bounds,
    vert_sv,
    lane_sv,
    k_send,
    edge_counts,
    forced_g,
    fresh,
    vertex_ptr,
    group_machine,
    group_start,
    group_sizes,
    edge_target,
    edge_host,
    draw,
    out_offsets,
    dest,
    host,
    frog_lane,
    hop_keys,
    scatter_ops,
    n,
):
    for t in range(tile_bounds.shape[0] - 1):
        for r in range(int(tile_bounds[t]), int(tile_bounds[t + 1])):
            k = int(k_send[r])
            if k == 0:
                continue
            base = int(out_offsets[r])
            cnt = int(edge_counts[r])
            lane = int(lane_sv[r])
            v = int(vert_sv[r])
            fg = int(forced_g[r])
            lo = int(vertex_ptr[v])
            hi = int(vertex_ptr[v + 1])
            for f in range(k):
                # Same truncation as the fused kernel's
                # (draw * enabled_counts).astype(int64).
                pick = int(draw[base + f] * cnt)
                gi = fg
                local = pick
                if fg < 0:
                    acc = 0
                    for g in range(lo, hi):
                        if fresh[r, group_machine[g]]:
                            s = int(group_sizes[g])
                            if pick < acc + s:
                                gi = g
                                local = pick - acc
                                break
                            acc += s
                e = int(group_start[gi]) + local
                d = int(edge_target[e])
                h = int(edge_host[e])
                dest[base + f] = d
                host[base + f] = h
                frog_lane[base + f] = lane
                hop_keys[base + f] = lane * n + d
                scatter_ops[h] += 1


# ----------------------------------------------------------------------
# scatter(): binomial candidate expansion + post-draw compaction
# ----------------------------------------------------------------------
@_jit
def _expand_binomial_pass(
    tile_bounds,
    vert_sv,
    lane_sv,
    k_sv,
    forced_g,
    fresh,
    vertex_ptr,
    group_machine,
    group_start,
    group_sizes,
    out_degree,
    lane_ps,
    out_offsets,
    chosen,
    k_per_edge,
    prob,
    edge_lane,
):
    for t in range(tile_bounds.shape[0] - 1):
        for r in range(int(tile_bounds[t]), int(tile_bounds[t + 1])):
            idx = int(out_offsets[r])
            lane = int(lane_sv[r])
            v = int(vert_sv[r])
            k = int(k_sv[r])
            if int(out_degree[v]) == 0:
                continue  # dangling: no groups, no candidate edges
            pe = lane_ps[lane]
            if pe < 1e-12:
                pe = 1e-12
            # Same float64 op order as the fused kernel's
            # minimum(1, 1 / (out_degree * p_eff)).
            p = 1.0 / (out_degree[v] * pe)
            if p > 1.0:
                p = 1.0
            fg = int(forced_g[r])
            if fg >= 0:
                st = int(group_start[fg])
                for e in range(int(group_sizes[fg])):
                    chosen[idx] = st + e
                    k_per_edge[idx] = k
                    prob[idx] = p
                    edge_lane[idx] = lane
                    idx += 1
                continue
            for g in range(int(vertex_ptr[v]), int(vertex_ptr[v + 1])):
                if fresh[r, group_machine[g]]:
                    st = int(group_start[g])
                    for e in range(int(group_sizes[g])):
                        chosen[idx] = st + e
                        k_per_edge[idx] = k
                        prob[idx] = p
                        edge_lane[idx] = lane
                        idx += 1


@_jit
def _binomial_post_pass(
    chosen,
    edge_lane,
    sent,
    edge_target,
    edge_host,
    hop_keys,
    hop_weights,
    hop_lane,
    hop_host,
    hop_dest,
    scatter_ops,
    lane_hops,
    n,
):
    t = 0
    for j in range(chosen.shape[0]):
        s = int(sent[j])
        if s == 0:
            continue
        e = int(chosen[j])
        d = int(edge_target[e])
        h = int(edge_host[e])
        lane = int(edge_lane[j])
        hop_keys[t] = lane * n + d
        hop_weights[t] = s
        hop_lane[t] = lane
        hop_host[t] = h
        hop_dest[t] = d
        t += 1
        scatter_ops[h] += s
        lane_hops[lane] += s
    return t


# ----------------------------------------------------------------------
# frog records: unique (lane, host, dest) triples -> per-lane demand
# (and unique (host, dest) pairs under wire dedupe) without np.unique
# ----------------------------------------------------------------------
@_jit
def _frog_records_dense(frog_lane, host, dest, masters, seen, touched, demand, M, n):
    t = 0
    for j in range(frog_lane.shape[0]):
        lane = int(frog_lane[j])
        h = int(host[j])
        d = int(dest[j])
        key = (lane * M + h) * n + d
        if seen[key] == 0:
            seen[key] = 1
            touched[t] = key
            t += 1
            dm = int(masters[d])
            if h != dm:
                demand[lane, h, dm] += 1
    for i in range(t):
        seen[int(touched[i])] = 0


@_jit
def _dedupe_pairs_dense(host, dest, masters, seen_pair, touched, phys, n):
    t = 0
    for j in range(host.shape[0]):
        h = int(host[j])
        d = int(dest[j])
        dm = int(masters[d])
        if h == dm:
            continue
        key = h * n + d
        if seen_pair[key] == 0:
            seen_pair[key] = 1
            touched[t] = key
            t += 1
            phys[h, dm] += 1
    for i in range(t):
        seen_pair[int(touched[i])] = 0


@_jit
def _triple_keys_pass(frog_lane, host, dest, out, M, n):
    for j in range(frog_lane.shape[0]):
        out[j] = (int(frog_lane[j]) * M + int(host[j])) * n + int(dest[j])


@_jit
def _frog_records_sorted(sorted_keys, masters, demand, pair_scratch, M, n):
    t = 0
    prev = -1
    for j in range(sorted_keys.shape[0]):
        key = int(sorted_keys[j])
        if key == prev:
            continue
        prev = key
        d = key % n
        rest = key // n
        h = rest % M
        lane = rest // M
        dm = int(masters[d])
        if h != dm:
            demand[lane, h, dm] += 1
            pair_scratch[t] = h * n + d
            t += 1
    return t


@_jit
def _pair_counts_sorted(sorted_pairs, masters, phys, n):
    prev = -1
    for j in range(sorted_pairs.shape[0]):
        key = int(sorted_pairs[j])
        if key == prev:
            continue
        prev = key
        phys[key // n, int(masters[key % n])] += 1


# ----------------------------------------------------------------------
# next frontier: dense scatter-add + touched-key sort (or sort + scan)
# ----------------------------------------------------------------------
@_jit
def _reduce_accumulate_ones(keys, dense, seen, touched, t0):
    t = t0
    for j in range(keys.shape[0]):
        key = int(keys[j])
        if seen[key] == 0:
            seen[key] = 1
            touched[t] = key
            t += 1
        dense[key] += 1
    return t


@_jit
def _reduce_accumulate(keys, weights, dense, seen, touched, t0):
    t = t0
    for j in range(keys.shape[0]):
        key = int(keys[j])
        if seen[key] == 0:
            seen[key] = 1
            touched[t] = key
            t += 1
        dense[key] += int(weights[j])
    return t


@_jit
def _reduce_collect(sorted_keys, dense, seen, lane_out, vert_out, count_out, n):
    for i in range(sorted_keys.shape[0]):
        key = int(sorted_keys[i])
        lane_out[i] = key // n
        vert_out[i] = key % n
        count_out[i] = dense[key]
        dense[key] = 0
        seen[key] = 0


@_jit
def _reduce_sorted(sorted_keys, sorted_weights, lane_out, vert_out, count_out, n):
    t = -1
    prev = -1
    for j in range(sorted_keys.shape[0]):
        key = int(sorted_keys[j])
        w = int(sorted_weights[j])
        if key != prev:
            t += 1
            lane_out[t] = key // n
            vert_out[t] = key % n
            count_out[t] = w
            prev = key
        else:
            count_out[t] += w
    return t + 1


# ----------------------------------------------------------------------
# façade
# ----------------------------------------------------------------------
class CompiledPasses:
    """Per-runner state and dispatch for the compiled pass pipeline.

    Owns the :class:`BufferArena`, the int32-narrowed
    :class:`CompiledTables` and the persistent dense accumulators, and
    decides per accumulator whether the dense map fits the working-set
    budget or the sort+scan variant runs instead (same results either
    way; the choice is pure bandwidth).
    """

    def __init__(
        self,
        tables,
        *,
        num_lanes: int,
        num_machines: int,
        num_vertices: int,
    ) -> None:
        self.ct = tables if isinstance(tables, CompiledTables) else CompiledTables(tables)
        self.arena = BufferArena()
        self.num_lanes = int(num_lanes)
        self.num_machines = int(num_machines)
        self.num_vertices = int(num_vertices)
        self.l2_bytes = l2_tile_bytes()
        budget = _dense_budget_bytes()
        B, M, n = self.num_lanes, self.num_machines, self.num_vertices
        # int64 counts + uint8 seen per frontier key; uint8 per triple/pair.
        self.frontier_dense = B * n * 9 <= budget
        self.triple_dense = B * M * n <= budget
        self.pair_dense = M * n <= budget
        self.hop_key_dtype = lane_key_dtype(B, n)
        # Edge/vertex ids always fit the narrowed table dtypes.
        self.id_dtype = self.ct.edge_target.dtype
        self._empty = np.empty(0, dtype=np.int64)

    # -- superstep lifecycle -------------------------------------------
    def begin_superstep(self) -> None:
        self.arena.reset()

    # -- apply ----------------------------------------------------------
    def apply(self, counts, lane_ids, verts, dead, k):
        apply_ops = np.zeros(self.num_machines, dtype=np.int64)
        _apply_pass(
            counts.reshape(-1),
            lane_ids,
            verts,
            dead,
            k,
            self.ct.masters,
            apply_ops,
            self.num_vertices,
        )
        return apply_ops

    # -- enabled groups -------------------------------------------------
    def enabled_groups(self, vert_sv, fresh):
        frontier = vert_sv.size
        groups_per_row = self.arena.take(frontier, np.int64)
        g_count = self.arena.take(frontier, np.int64)
        _enabled_groups_pass(
            vert_sv,
            fresh,
            self.ct.vertex_ptr,
            groups_per_row,
            g_count,
            self.ct.group_machine,
        )
        return groups_per_row, g_count

    def enabled_totals(self, vert_sv, lane_sv, fresh, forced_g):
        frontier = vert_sv.size
        edge_counts = self.arena.take(frontier, np.int64)
        machine_groups = np.zeros(self.num_machines, dtype=np.int64)
        lane_groups = np.zeros(self.num_lanes, dtype=np.int64)
        _enabled_totals_pass(
            vert_sv,
            lane_sv,
            fresh,
            forced_g,
            self.ct.vertex_ptr,
            self.ct.group_machine,
            self.ct.group_sizes,
            edge_counts,
            machine_groups,
            lane_groups,
        )
        return edge_counts, machine_groups, lane_groups

    # -- scatter --------------------------------------------------------
    def expand_multinomial(
        self, vert_sv, lane_sv, k_send, edge_counts, forced_g, fresh, draw
    ):
        total = draw.size
        out_offsets = self.arena.take(k_send.size, np.int64)
        np.cumsum(k_send, out=out_offsets)
        out_offsets -= k_send  # exclusive prefix sum
        dest = self.arena.take(total, self.id_dtype)
        host = self.arena.take(total, np.int32)
        frog_lane = self.arena.take(total, np.int32)
        hop_keys = self.arena.take(total, self.hop_key_dtype)
        scatter_ops = np.zeros(self.num_machines, dtype=np.int64)
        # ~bytes per row: its enabled-edge gather plus its hop outputs.
        weights = edge_counts * 12 + k_send * 20
        tile_bounds = plan_tiles(weights, self.l2_bytes)
        _expand_multinomial_pass(
            tile_bounds,
            vert_sv,
            lane_sv,
            k_send,
            edge_counts,
            forced_g,
            fresh,
            self.ct.vertex_ptr,
            self.ct.group_machine,
            self.ct.group_start,
            self.ct.group_sizes,
            self.ct.edge_target,
            self.ct.edge_host,
            draw,
            out_offsets,
            dest,
            host,
            frog_lane,
            hop_keys,
            scatter_ops,
            self.num_vertices,
        )
        return dest, host, frog_lane, hop_keys, scatter_ops

    def expand_binomial(
        self, vert_sv, lane_sv, k_sv, forced_g, fresh, edge_counts, lane_ps
    ):
        total = int(edge_counts.sum())
        out_offsets = self.arena.take(edge_counts.size, np.int64)
        np.cumsum(edge_counts, out=out_offsets)
        out_offsets -= edge_counts
        chosen = self.arena.take(total, self.ct.group_start.dtype)
        k_per_edge = self.arena.take(total, np.int64)
        prob = self.arena.take(total, np.float64)
        edge_lane = self.arena.take(total, np.int64)
        weights = edge_counts * 32
        tile_bounds = plan_tiles(weights, self.l2_bytes)
        _expand_binomial_pass(
            tile_bounds,
            vert_sv,
            lane_sv,
            k_sv,
            forced_g,
            fresh,
            self.ct.vertex_ptr,
            self.ct.group_machine,
            self.ct.group_start,
            self.ct.group_sizes,
            self.ct.out_degree,
            lane_ps,
            out_offsets,
            chosen,
            k_per_edge,
            prob,
            edge_lane,
        )
        return chosen, k_per_edge, prob, edge_lane

    def binomial_post(self, chosen, edge_lane, sent):
        count = chosen.size
        hop_keys = self.arena.take(count, self.hop_key_dtype)
        hop_weights = self.arena.take(count, np.int64)
        hop_lane = self.arena.take(count, np.int32)
        hop_host = self.arena.take(count, np.int32)
        hop_dest = self.arena.take(count, self.id_dtype)
        scatter_ops = np.zeros(self.num_machines, dtype=np.int64)
        lane_hops = np.zeros(self.num_lanes, dtype=np.int64)
        t = _binomial_post_pass(
            chosen,
            edge_lane,
            sent,
            self.ct.edge_target,
            self.ct.edge_host,
            hop_keys,
            hop_weights,
            hop_lane,
            hop_host,
            hop_dest,
            scatter_ops,
            lane_hops,
            self.num_vertices,
        )
        return (
            hop_keys[:t],
            hop_weights[:t],
            hop_lane[:t],
            hop_host[:t],
            hop_dest[:t],
            scatter_ops,
            lane_hops,
        )

    # -- frog records ---------------------------------------------------
    def frog_records(self, frog_lane, host, dest, *, dedupe: bool):
        B, M, n = self.num_lanes, self.num_machines, self.num_vertices
        count = frog_lane.size
        demand = np.zeros((B, M, M), dtype=np.int64)
        pair_keys = None
        if self.triple_dense:
            seen = self.arena.persistent("triple_seen", B * M * n, np.uint8)
            touched = self.arena.take(count, np.int64)
            _frog_records_dense(
                frog_lane, host, dest, self.ct.masters, seen, touched, demand, M, n
            )
        else:
            keys = self.arena.take(count, np.int64)
            _triple_keys_pass(frog_lane, host, dest, keys, M, n)
            sorted_keys = np.sort(keys)
            pair_scratch = self.arena.take(count, np.int64)
            t = _frog_records_sorted(
                sorted_keys, self.ct.masters, demand, pair_scratch, M, n
            )
            pair_keys = pair_scratch[:t]
        if not dedupe:
            return demand, None
        phys = np.zeros((M, M), dtype=np.int64)
        if pair_keys is not None:
            _pair_counts_sorted(np.sort(pair_keys), self.ct.masters, phys, n)
        elif self.pair_dense:
            seen_pair = self.arena.persistent("pair_seen", M * n, np.uint8)
            touched = self.arena.take(count, np.int64)
            _dedupe_pairs_dense(
                host, dest, self.ct.masters, seen_pair, touched, phys, n
            )
        else:
            keys = self.arena.take(count, np.int64)
            _triple_keys_pass(
                np.zeros(count, dtype=np.int32), host, dest, keys, M, n
            )
            scratch = self.arena.take(count, np.int64)
            scratch_demand = np.zeros((1, M, M), dtype=np.int64)
            t = _frog_records_sorted(
                np.sort(keys), self.ct.masters, scratch_demand, scratch, M, n
            )
            _pair_counts_sorted(np.sort(scratch[:t]), self.ct.masters, phys, n)
        return demand, phys

    # -- next frontier --------------------------------------------------
    def reduce_frontier(self, hop_keys, hop_weights, idle_keys, idle_weights):
        n = self.num_vertices
        idle_count = 0 if idle_keys is None else idle_keys.size
        total = hop_keys.size + idle_count
        if total == 0:
            return self._empty, self._empty, self._empty
        if self.frontier_dense:
            dense = self.arena.persistent(
                "frontier_dense", self.num_lanes * n, np.int64
            )
            seen = self.arena.persistent(
                "frontier_seen", self.num_lanes * n, np.uint8
            )
            touched = self.arena.take(total, np.int64)
            t = 0
            if hop_keys.size:
                if hop_weights is None:
                    t = _reduce_accumulate_ones(hop_keys, dense, seen, touched, t)
                else:
                    t = _reduce_accumulate(
                        hop_keys, hop_weights, dense, seen, touched, t
                    )
            if idle_count:
                t = _reduce_accumulate(
                    idle_keys, idle_weights, dense, seen, touched, t
                )
            sorted_keys = np.sort(touched[:t])
            lane_out = np.empty(t, dtype=np.int64)
            vert_out = np.empty(t, dtype=np.int64)
            count_out = np.empty(t, dtype=np.int64)
            _reduce_collect(
                sorted_keys, dense, seen, lane_out, vert_out, count_out, n
            )
            return lane_out, vert_out, count_out
        keys = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.int64)
        keys[: hop_keys.size] = hop_keys
        if hop_weights is None:
            weights[: hop_keys.size] = 1
        else:
            weights[: hop_keys.size] = hop_weights
        if idle_count:
            keys[hop_keys.size :] = idle_keys
            weights[hop_keys.size :] = idle_weights
        order = np.argsort(keys)
        sorted_keys = keys[order]
        sorted_weights = weights[order]
        lane_out = np.empty(total, dtype=np.int64)
        vert_out = np.empty(total, dtype=np.int64)
        count_out = np.empty(total, dtype=np.int64)
        u = _reduce_sorted(
            sorted_keys, sorted_weights, lane_out, vert_out, count_out, n
        )
        return lane_out[:u], vert_out[:u], count_out[:u]
