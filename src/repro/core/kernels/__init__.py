"""Kernel tier selection for the batched FrogWild superstep.

Three tiers sit behind the ``kernel=`` seam of
:class:`~repro.core.BatchedFrogWildRunner` and every serving backend:

* ``"lane-loop"`` — the pre-fusion per-lane reference loop;
* ``"fused"``     — the numpy lane-major fused kernel (default, and the
  pinned reference the other tiers are regression-tested against);
* ``"compiled"``  — Numba-jitted single-pass loops with cache-conscious
  layout (:mod:`.compiled`, :mod:`.layout`, :mod:`.arena`), installed
  via the ``[accel]`` extra.

Selection degrades gracefully: requesting ``"compiled"`` on a host
without Numba falls back to ``"fused"`` with a single
:class:`RuntimeWarning` (never an ImportError), and
:func:`available_kernels` reports what is actually runnable.  Setting
``REPRO_COMPILED_FORCE=python`` forces the compiled tier to run its
pure-Python pass implementations — far too slow for production but
exactly what the parity tests use to pin the compiled passes bitwise to
the fused kernel on Numba-less hosts.
"""

from __future__ import annotations

import os
import warnings

from ...errors import ConfigError
from .arena import BufferArena
from .compiled import HAVE_NUMBA, CompiledPasses
from .layout import (
    CompiledTables,
    lane_key_dtype,
    pack_lane_keys,
    plan_tiles,
    unpack_lane_keys,
)

__all__ = [
    "KERNEL_TIERS",
    "HAVE_NUMBA",
    "BufferArena",
    "CompiledPasses",
    "CompiledTables",
    "available_kernels",
    "compiled_available",
    "lane_key_dtype",
    "pack_lane_keys",
    "plan_tiles",
    "reset_fallback_warning",
    "resolve_kernel",
    "unpack_lane_keys",
]

KERNEL_TIERS = ("lane-loop", "fused", "compiled")

_warned_fallback = False


def compiled_available() -> bool:
    """Whether ``kernel="compiled"`` can actually run on this host."""
    from . import compiled  # live attribute so tests can mask the import

    if compiled.HAVE_NUMBA:
        return True
    return os.environ.get("REPRO_COMPILED_FORCE", "") == "python"


def available_kernels() -> tuple[str, ...]:
    """The kernel tiers runnable on this host, in escalation order."""
    if compiled_available():
        return KERNEL_TIERS
    return tuple(k for k in KERNEL_TIERS if k != "compiled")


def resolve_kernel(kernel: str) -> str:
    """Validate a requested tier and apply the graceful fallback.

    Unknown names raise :class:`~repro.errors.ConfigError`;
    ``"compiled"`` without a way to run it degrades to ``"fused"`` with
    one warning per process (the two tiers are bitwise identical, so
    only speed is lost).
    """
    if kernel not in KERNEL_TIERS:
        raise ConfigError(
            f"kernel must be one of {KERNEL_TIERS}, got {kernel!r}"
        )
    if kernel == "compiled" and not compiled_available():
        global _warned_fallback
        if not _warned_fallback:
            _warned_fallback = True
            warnings.warn(
                "kernel='compiled' requested but numba is not importable; "
                "falling back to the numpy fused kernel (results are "
                "identical). Install the accelerator extra: "
                "pip install 'frogwild-repro[accel]'",
                RuntimeWarning,
                stacklevel=3,
            )
        return "fused"
    return kernel


def reset_fallback_warning() -> None:
    """Re-arm the once-per-process fallback warning (tests only)."""
    global _warned_fallback
    _warned_fallback = False
