"""The FrogWild PageRank estimator (Definition 5 of the paper).

Each vertex accumulates a counter ``c(i)`` of frogs that stopped on it
(deaths during the run plus survivors at the cut-off).  The estimate is
``pi_hat(i) = c(i) / N`` and the top-k answer is the k largest entries.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigError

__all__ = ["PageRankEstimate", "top_k_indices"]


def top_k_indices(values: np.ndarray, k: int) -> np.ndarray:
    """Indices of the ``k`` largest entries, sorted by decreasing value.

    Ties break on the lower vertex id so output is deterministic.
    """
    values = np.asarray(values)
    if k < 0:
        raise ConfigError("k must be non-negative")
    k = min(k, values.size)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    # argsort on (-value, index): stable mergesort on negated values.
    order = np.argsort(-values, kind="stable")
    return order[:k].astype(np.int64)


class PageRankEstimate:
    """Normalized frog-stop counts, i.e. the estimator pi_hat_N.

    Parameters
    ----------
    counts:
        Per-vertex stop counters ``c(i)``, length n.
    num_frogs:
        The number N of walkers launched; the estimator denominator.
    """

    def __init__(self, counts: np.ndarray, num_frogs: int) -> None:
        counts = np.asarray(counts, dtype=np.int64)
        if counts.ndim != 1:
            raise ConfigError("counts must be one-dimensional")
        if num_frogs < 1:
            raise ConfigError("num_frogs must be positive")
        if counts.min(initial=0) < 0:
            raise ConfigError("counts must be non-negative")
        self._counts = counts
        self._num_frogs = int(num_frogs)

    @classmethod
    def merge(cls, estimates: "list[PageRankEstimate]") -> "PageRankEstimate":
        """Sum independent estimates of the same chain into one.

        Frogs are independent walkers, so an N-frog estimate split into
        disjoint sub-populations (the sharded serving backend runs each
        on its own sub-cluster) recombines exactly: counters add and the
        denominator is the total frog count.  All inputs must cover the
        same vertex universe.
        """
        if not estimates:
            raise ConfigError("need at least one estimate to merge")
        n = estimates[0].num_vertices
        if any(e.num_vertices != n for e in estimates):
            raise ConfigError("cannot merge estimates of different graphs")
        counts = np.zeros(n, dtype=np.int64)
        for estimate in estimates:
            counts += estimate.counts
        return cls(counts, sum(e.num_frogs for e in estimates))

    @property
    def counts(self) -> np.ndarray:
        """Raw stop counters ``c``."""
        return self._counts

    @property
    def num_frogs(self) -> int:
        return self._num_frogs

    @property
    def num_vertices(self) -> int:
        return self._counts.size

    @property
    def total_stopped(self) -> int:
        """Total counted frogs (== N in multinomial scatter mode)."""
        return int(self._counts.sum())

    def vector(self) -> np.ndarray:
        """The estimate pi_hat as a float vector summing to
        ``total_stopped / N`` (== 1 when no frogs were lost)."""
        return self._counts / self._num_frogs

    def distribution(self) -> np.ndarray:
        """pi_hat renormalized to sum exactly to 1 (when non-degenerate)."""
        total = self._counts.sum()
        if total == 0:
            return np.full(self._counts.size, 1.0 / self._counts.size)
        return self._counts / total

    def top_k(self, k: int) -> np.ndarray:
        """Vertex ids of the estimated top-k, by decreasing count."""
        return top_k_indices(self._counts, k)

    def top_k_with_scores(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """``(vertex ids, pi_hat scores)`` of the top-k, by decreasing
        count — the serving layer's answer payload."""
        top = top_k_indices(self._counts, k)
        return top, self._counts[top] / self._num_frogs

    def standard_errors(self) -> np.ndarray:
        """Per-vertex binomial standard error of pi_hat.

        Treating each frog's stop position as an independent categorical
        sample (exact at ps = 1 by Theorem 1's analysis), the estimator
        of vertex i has SE ``sqrt(p_i (1 - p_i) / N)``.  Partial
        synchronization adds positive correlation, so these are slightly
        optimistic for ps < 1 — the (1 - ps^2) p_meet term of Lemma 18
        quantifies the gap.
        """
        p = self.distribution()
        return np.sqrt(p * (1.0 - p) / self._num_frogs)

    def separation_z(self, k: int) -> float:
        """z-score separating rank k from rank k+1.

        A large value means the boundary of the reported top-k set is
        statistically solid; below ~2 the (k+1)-th vertex is within
        noise of the k-th and more frogs (Remark 6) are advisable.
        Returns ``inf`` when k covers all vertices.
        """
        if k < 1:
            raise ConfigError("k must be positive")
        if k >= self.num_vertices:
            return float("inf")
        order = top_k_indices(self._counts, k + 1)
        kth, next_one = order[k - 1], order[k]
        p = self.distribution()
        gap = p[kth] - p[next_one]
        se = np.sqrt(
            self.standard_errors()[kth] ** 2
            + self.standard_errors()[next_one] ** 2
        )
        if se == 0:
            return float("inf") if gap > 0 else 0.0
        return float(gap / se)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PageRankEstimate(n={self.num_vertices}, "
            f"N={self._num_frogs}, stopped={self.total_stopped})"
        )
